//! Offline stand-in for the `criterion` crate.
//!
//! The build container cannot reach crates.io, so this local path
//! dependency keeps the workspace's `[[bench]]` targets compiling and
//! running. It is a plain wall-clock harness: each `iter` closure is
//! warmed up, then timed over `sample_size` samples, and a median/mean
//! line is printed per benchmark id. No statistics beyond that — the
//! `repro` binary remains the canonical experiment runner.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of the standard black box (real criterion has its own).
pub use std::hint::black_box;

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function_id: String,
    parameter: String,
}

impl BenchmarkId {
    /// New id from a function name and a displayable parameter.
    pub fn new(function_id: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function_id: function_id.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function_id, self.parameter)
    }
}

/// Passed to the measured closure; `iter` runs and times the payload.
pub struct Bencher {
    samples: usize,
    /// Collected per-sample durations for the enclosing benchmark.
    durations: Vec<Duration>,
}

impl Bencher {
    /// Time `routine` once per sample after one untimed warm-up call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up, untimed
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.durations.push(start.elapsed());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (default 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run_one(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.sample_size,
            durations: Vec::new(),
        };
        f(&mut b);
        let line = summarize(&self.name, &id, &b.durations);
        println!("{line}");
        self.criterion.reports.push(line);
    }

    /// Benchmark a closure that receives a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        self.run_one(id.to_string(), |b| f(b, input));
        self
    }

    /// Benchmark a plain closure.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        self.run_one(id.to_string(), f);
        self
    }

    /// End the group (printing happened per benchmark).
    pub fn finish(&mut self) {}
}

fn summarize(group: &str, id: &str, durations: &[Duration]) -> String {
    if durations.is_empty() {
        return format!("{group}/{id}: no samples");
    }
    let mut sorted = durations.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let total: Duration = sorted.iter().sum();
    let mean = total / sorted.len() as u32;
    format!(
        "{group}/{id}: median {median:?}, mean {mean:?} over {} samples",
        sorted.len()
    )
}

/// The harness entry point handed to every bench function.
#[derive(Default)]
pub struct Criterion {
    reports: Vec<String>,
}

impl Criterion {
    /// Start a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            criterion: self,
        }
    }

    /// Benchmark a single function outside a group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        self
    }
}

/// Declare the benchmark functions of one bench target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Produce the bench target's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut calls = 0usize;
        g.bench_with_input(BenchmarkId::new("f", 1), &2usize, |b, &x| {
            b.iter(|| {
                calls += 1;
                x * 2
            })
        });
        g.finish();
        assert_eq!(calls, 4); // 1 warm-up + 3 samples
        assert!(c.reports[0].starts_with("g/f/1:"));
    }

    #[test]
    fn summarize_handles_empty() {
        assert!(summarize("g", "id", &[]).contains("no samples"));
    }
}
