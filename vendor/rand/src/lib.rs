//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access to crates.io, so this local
//! path dependency provides the (small) API surface the workspace actually
//! uses: `rngs::StdRng`, [`SeedableRng::seed_from_u64`], the [`RngExt`]
//! extension methods (`random_range`, `random_bool`) and
//! `seq::SliceRandom::shuffle`. The generator is xoshiro256** seeded via
//! SplitMix64 — deterministic across platforms, which is all the callers
//! (seeded corpus generation, seeded benchmarks, seeded tests) rely on.
//!
//! It is *not* a cryptographic RNG and implements nothing beyond what the
//! workspace imports.

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core generator: uniformly distributed 64-bit outputs.
pub trait RngCore {
    /// Next uniform `u64`.
    fn next_u64(&mut self) -> u64;
}

/// A type usable as the argument of [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample(self, rng: &mut impl RngCore) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end - start) as u64 + 1;
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_sample_range!(usize, u64, u32, u16, u8, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut impl RngCore) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(self, rng: &mut impl RngCore) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        start + unit * (end - start)
    }
}

/// Convenience sampling methods over any [`RngCore`] (the subset of the
/// real crate's `Rng` extension trait this workspace calls).
pub trait RngExt: RngCore {
    /// Uniform sample from a range, e.g. `rng.random_range(0..10)`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> RngExt for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256** seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the recommended xoshiro seeding.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256**
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::RngCore;

    /// Shuffling for slices (Fisher–Yates).
    pub trait SliceRandom {
        /// Uniform in-place shuffle.
        fn shuffle(&mut self, rng: &mut impl RngCore);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle(&mut self, rng: &mut impl RngCore) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0usize..1000), b.random_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(2usize..=5);
            assert!((2..=5).contains(&w));
            let f = rng.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn bool_probability_is_roughly_respected() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(3);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should change order");
    }
}
