//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so this local path
//! dependency implements the strategy/macro surface the workspace's
//! property tests actually use: the [`proptest!`] macro (with optional
//! `#![proptest_config(..)]`), [`Strategy`] with `prop_map`, [`Just`],
//! [`prop_oneof!`], numeric range strategies, a regex-subset string
//! strategy, and `prop::collection::vec`.
//!
//! Differences from the real crate, by design:
//! - cases are generated from a seed derived from the test's module path,
//!   case index, and a process-wide base seed
//!   (`SEMTREE_PROPTEST_SEED`, default 0), so runs are **deterministic**
//!   across machines and failures replay from the echoed seed;
//! - there is **no shrinking** — a failing case reports its index and
//!   re-panics;
//! - the default case count is 64 (not 256) to keep `cargo test` brisk.

use std::ops::{Range, RangeInclusive};
use std::sync::OnceLock;

/// Base seed for every property test in the process, read once from the
/// `SEMTREE_PROPTEST_SEED` environment variable (decimal or `0x`-prefixed
/// hex). The default of 0 reproduces the historical per-test streams
/// byte for byte; any other value derives a fresh deterministic family
/// of streams. Failing cases echo the active seed so
/// `SEMTREE_PROPTEST_SEED=<seed> cargo test <name>` replays them.
pub fn base_seed() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| match std::env::var("SEMTREE_PROPTEST_SEED") {
        Ok(raw) => parse_seed(&raw).unwrap_or_else(|| {
            eprintln!("proptest: ignoring unparseable SEMTREE_PROPTEST_SEED={raw:?}");
            0
        }),
        Err(_) => 0,
    })
}

fn parse_seed(raw: &str) -> Option<u64> {
    let raw = raw.trim();
    if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        raw.parse().ok()
    }
}

/// Number of cases to run per property.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// How many generated inputs each property is checked against.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Run each property against `cases` generated inputs.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic per-case generator (SplitMix64 stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    x: u64,
}

impl TestRng {
    /// RNG for one (test name, case index) pair under the process-wide
    /// [`base_seed`].
    #[must_use]
    pub fn for_case(test_path: &str, case: u32) -> Self {
        Self::for_case_seeded(test_path, case, base_seed())
    }

    /// RNG for one (test name, case index, base seed) triple. A base
    /// seed of 0 reproduces the historical streams exactly.
    #[must_use]
    pub fn for_case_seeded(test_path: &str, case: u32, seed: u64) -> Self {
        // FNV-1a over the path, mixed with the case index and seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            x: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                ^ seed.wrapping_mul(0xBF58_476D_1CE4_E5B9),
        }
    }

    /// Next uniform 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.x = self.x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between equally-weighted alternatives ([`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Choose uniformly among `options`.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                let span = (end - start) as u64 + 1;
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
}

// ---------------------------------------------------------------------
// Regex-subset string strategy
// ---------------------------------------------------------------------

enum Atom {
    /// `.` — any printable ASCII character.
    Any,
    /// `[...]` — explicit characters and `a-z` ranges.
    Class(Vec<char>),
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Parse the subset of regex syntax the workspace's strategies use:
/// sequences of `.` or `[class]` atoms, each with an optional `{n}` /
/// `{m,n}` repetition. Anything else panics with a clear message.
fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::Any
            }
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"))
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        assert!(lo <= hi, "bad class range in {pattern:?}");
                        set.extend((lo..=hi).filter(char::is_ascii));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                assert!(!set.is_empty(), "empty class in {pattern:?}");
                i = close + 1;
                Atom::Class(set)
            }
            other => panic!("unsupported pattern atom {other:?} in {pattern:?}"),
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"))
                + i;
            let spec: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("repeat lower bound"),
                    n.trim().parse().expect("repeat upper bound"),
                ),
                None => {
                    let n = spec.trim().parse().expect("repeat count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "bad repetition in {pattern:?}");
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse_pattern(self) {
            let count = piece.min + rng.below(piece.max - piece.min + 1);
            for _ in 0..count {
                match &piece.atom {
                    Atom::Any => {
                        // Printable ASCII, space through tilde.
                        let c = 32 + rng.below(95) as u8;
                        out.push(c as char);
                    }
                    Atom::Class(set) => out.push(set[rng.below(set.len())]),
                }
            }
        }
        out
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Element-count bound for [`vec`]: a fixed size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with a size in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy from an element strategy and a size (or size range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max - self.size.min + 1;
            let len = self.size.min + (rng.next_u64() % span as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything the workspace's `use proptest::prelude::*;` pulls in.
pub mod prelude {
    /// The `prop::` path used by `prop::collection::vec`.
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Assert inside a property (maps to a plain panic; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Uniform choice among strategy arms sharing a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Define property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running the body against generated inputs.
#[macro_export]
macro_rules! proptest {
    // The internal arm must precede the public catch-all: a catch-all
    // listed first would also match `@with_config ...` re-invocations and
    // wrap them again, recursing forever.
    (@with_config ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut __proptest_rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::Strategy::generate(
                        &($strategy),
                        &mut __proptest_rng,
                    );)*
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| $body),
                    );
                    if let Err(payload) = outcome {
                        eprintln!(
                            "proptest: {} failed on deterministic case {case}/{} \
                             (base seed {seed}); replay with \
                             SEMTREE_PROPTEST_SEED={seed} cargo test {}",
                            stringify!($name),
                            config.cases,
                            stringify!($name),
                            seed = $crate::base_seed(),
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn zero_base_seed_reproduces_the_historical_stream() {
        let mut legacy = TestRng::for_case_seeded("some::test", 3, 0);
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in "some::test".bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut manual = TestRng {
            x: h ^ 3u64.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        };
        for _ in 0..16 {
            assert_eq!(legacy.next_u64(), manual.next_u64());
        }
    }

    #[test]
    fn base_seed_selects_distinct_but_deterministic_streams() {
        let draw = |seed| {
            let mut r = TestRng::for_case_seeded("some::test", 0, seed);
            (0..4).map(|_| r.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draw(42), draw(42), "same seed must replay identically");
        assert_ne!(draw(42), draw(43), "different seeds must diverge");
        assert_ne!(draw(42), draw(0));
    }

    #[test]
    fn seed_parsing_accepts_decimal_and_hex() {
        assert_eq!(super::parse_seed("123"), Some(123));
        assert_eq!(super::parse_seed(" 0xABc "), Some(0xABC));
        assert_eq!(super::parse_seed("0Xff"), Some(0xFF));
        assert_eq!(super::parse_seed("nope"), None);
        assert_eq!(super::parse_seed(""), None);
    }

    #[test]
    fn pattern_strategy_respects_class_and_length() {
        let mut rng = TestRng::for_case("pattern", 0);
        for case in 0..200 {
            let mut r = TestRng::for_case("pattern", case);
            let s = Strategy::generate(&"[a-c]{0,8}", &mut r);
            assert!(s.len() <= 8);
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
        }
        let fixed = Strategy::generate(&"[A-Z][a-z]{1,6}", &mut rng);
        assert!((2..=7).contains(&fixed.len()), "{fixed:?}");
        assert!(fixed.chars().next().unwrap().is_ascii_uppercase());
    }

    #[test]
    fn determinism_per_case() {
        let a = Strategy::generate(&(0.0f64..1.0), &mut TestRng::for_case("t", 3));
        let b = Strategy::generate(&(0.0f64..1.0), &mut TestRng::for_case("t", 3));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_runs(
            v in prop::collection::vec(0usize..10, 1..5),
            x in 1usize..4,
            s in ".{0,6}",
        ) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!((1..4).contains(&x));
            prop_assert!(s.len() <= 6);
        }

        #[test]
        fn oneof_and_map_compose(t in prop_oneof![Just(1u32), Just(2u32)].prop_map(|x| x * 10)) {
            prop_assert!(t == 10 || t == 20);
        }
    }
}
