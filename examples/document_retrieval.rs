//! Document retrieval: the paper's headline use case — retrieve whole
//! documents by semantic similarity of their triples to a query, written
//! either as triples or as plain requirement prose.
//!
//! ```sh
//! cargo run -p semtree-examples --bin document_retrieval --release
//! ```

use semtree_core::DocumentRetriever;
use semtree_examples::{builder_for_corpus, stage_corpus};
use semtree_reqgen::{CorpusGenerator, GenConfig};

fn main() {
    // A corpus of requirement documents.
    let corpus = CorpusGenerator::new(GenConfig::small().with_seed(77)).generate();
    let mut builder = builder_for_corpus(&corpus).dimensions(6).bucket_size(16);
    stage_corpus(&mut builder, &corpus);
    let index = builder.build().expect("non-empty corpus");
    println!(
        "indexed {} triples from {} documents\n",
        index.len(),
        corpus.store.stats().documents
    );

    let retriever = DocumentRetriever::new(&index).with_k(10);

    // 1. Query by example document: take an existing requirement's triples
    //    and ask which documents talk about the same things.
    let sample_req = &corpus.requirements[3];
    let query_triples: Vec<_> = sample_req
        .triples
        .iter()
        .map(|&tid| corpus.store.get(tid).expect("live id").clone())
        .collect();
    println!(
        "query-by-example: requirement {} ({} triples)",
        sample_req.id,
        query_triples.len()
    );
    let hits = retriever.query_triples(&query_triples);
    for hit in hits.iter().take(5) {
        println!(
            "  {:<8} score {:.3}  ({} matched triples)",
            hit.name,
            hit.score,
            hit.matched.len()
        );
    }
    // The requirement's own document must rank first: it contains every
    // query triple verbatim.
    let own_doc = corpus.store.document(sample_req.doc).expect("live id");
    assert_eq!(hits[0].name, own_doc.name, "self-retrieval sanity");
    assert!(hits[0].score > 0.9);

    // 2. Free-text query: the NLP pipeline turns prose into query triples.
    let prose = "The OBSW001 shall accept the start-up command.";
    println!("\ntext query: {prose}");
    let hits = retriever.query_text(prose);
    for hit in hits.iter().take(5) {
        println!("  {:<8} score {:.3}", hit.name, hit.score);
    }
    assert!(!hits.is_empty());

    index.shutdown();
    println!("\nok");
}
