//! Semantic search: query-by-example over a mixed knowledge base, showing
//! how taxonomy distance (not string overlap) drives the ranking, and how
//! refinement re-ranks by the true Eq. 1 distance.
//!
//! ```sh
//! cargo run -p semtree-examples --bin semantic_search
//! ```

use std::sync::Arc;

use semtree_core::{QueryOptions, SemTree, Term, Triple, Weights};
use semtree_vocab::wordnet;

fn t(s: &str, p: &str, o: &str) -> Triple {
    Triple::new(Term::literal(s), Term::concept(p), Term::concept(o))
}

fn main() {
    // A small knowledge base over the standard taxonomy: facts about which
    // device performs which action on which artefact.
    let facts = vec![
        t("GroundStation", "send", "telemetry_frame"),
        t("GroundStation", "receive", "telemetry_frame"),
        t("Satellite", "send", "message"),
        t("Satellite", "acquire", "signal"),
        t("Satellite", "release", "signal"),
        t("Lander", "start", "process"),
        t("Lander", "stop", "process"),
        t("Rover", "monitor", "sensor"),
        t("Rover", "check", "actuator"),
        t("Orbiter", "enable", "antenna"),
        t("Orbiter", "disable", "antenna"),
        t("Probe", "validate", "command"),
    ];

    // Weight the predicate higher: we are searching for *actions*.
    let mut builder = SemTree::builder()
        .dimensions(5)
        .bucket_size(4)
        .weights(Weights::predicate_heavy())
        .register_standard(Arc::new(wordnet::mini_taxonomy()));
    builder.add_triples("knowledge-base", facts);
    let index = builder.build().expect("non-empty corpus");

    // "Who transmits communications?" — no literal word overlap with
    // ('Satellite', send, message) is needed: `send` and `receive` share
    // the `transfer` parent, `telemetry_frame` IS-A `message`.
    let query = t("Satellite", "send", "telemetry_frame");
    println!("query: {query}\n");

    println!("embedded-space ranking:");
    for hit in index.knn(&query, 5) {
        println!("  d={:.4}  {}", hit.embedded_distance, hit.triple);
    }

    println!("\nrefined ranking (true Eq. 1 distance):");
    for hit in index.knn_with(&query, 5, QueryOptions::refined()) {
        println!(
            "  d={:.4}  {}",
            hit.semantic_distance.expect("refined"),
            hit.triple
        );
    }

    // Semantic range query: everything within 0.35 of the example.
    println!("\nwithin semantic radius 0.35:");
    for hit in index.range_semantic(&query, 0.35, 2.0) {
        println!(
            "  d={:.4}  {}",
            hit.semantic_distance.expect("refined"),
            hit.triple
        );
    }

    let top = index.knn_with(&query, 1, QueryOptions::refined());
    assert_eq!(
        top[0].triple.predicate.lexical(),
        "send",
        "the same-action fact must rank first"
    );

    index.shutdown();
    println!("\nok");
}
