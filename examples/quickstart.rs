//! Quickstart: index a handful of requirement documents and query them.
//!
//! ```sh
//! cargo run -p semtree-examples --bin quickstart
//! ```

use std::sync::Arc;

use semtree_core::{AntinomyTable, InconsistencyFinder, SemTree, Term, Triple};
use semtree_vocab::wordnet;

fn main() {
    // 1. Build the index straight from document text: the NLP pipeline
    //    turns each "X shall <verb> the <param> <class>" sentence into an
    //    RDF-style triple.
    let mut builder = SemTree::builder()
        .dimensions(4)
        .bucket_size(8)
        .register_standard(Arc::new(wordnet::mini_taxonomy()));

    let docs = [
        (
            "REQ-OBSW-001",
            "The OBSW001 shall accept the start-up command. \
             The OBSW001 shall acquire the pre-launch phase input. \
             The OBSW001 shall send the power amplifier message.",
        ),
        (
            "REQ-OBSW-002",
            "The OBSW001 shall block the start-up command. \
             The OBSW001 shall monitor the battery voltage parameter.",
        ),
        (
            "REQ-PSU-001",
            "The PSU001 shall enable the heater output. \
             The PSU001 shall verify the bus current parameter.",
        ),
    ];
    for (name, text) in docs {
        let n = builder.add_document_text(name, text);
        println!("ingested {name}: {n} triples");
    }
    let index = builder.build().expect("non-empty corpus");
    println!("\nindexed {} distinct triples\n", index.len());

    // 2. Query by example: what is semantically close to "OBSW001 accepts
    //    start-up"?
    let query = Triple::new(
        Term::literal("OBSW001"),
        Term::concept_in("Fun", "accept_cmd"),
        Term::concept_in("CmdType", "start-up"),
    );
    println!("k-NN around {query}:");
    for hit in index.knn(&query, 3) {
        println!("  d={:.4}  {}", hit.embedded_distance, hit.triple);
    }

    // 3. The case study: find contradictions of the same requirement. The
    //    finder builds the target triple (antinomic predicate) and asks the
    //    index for its neighbourhood.
    let mut antinomies = AntinomyTable::new();
    antinomies.declare("accept_cmd", "block_cmd");
    antinomies.declare("enable_out", "disable_out");
    let finder = InconsistencyFinder::new(&index, antinomies);

    println!("\ninconsistency candidates for {query}:");
    let hits = finder
        .candidates(&query, 2)
        .expect("predicate has an antonym");
    for hit in &hits {
        println!("  d={:.4}  {}", hit.embedded_distance, hit.triple);
    }
    let confirmed = finder
        .confirmed(&query, 3)
        .expect("predicate has an antonym");
    println!("\nconfirmed by the formal rule (same subject/object + antinomy):");
    for hit in &confirmed {
        println!("  {}", hit.triple);
    }
    assert!(
        confirmed
            .iter()
            .any(|h| h.triple.predicate.lexical() == "block_cmd"),
        "the planted contradiction must be confirmed"
    );

    index.shutdown();
    println!("\nok");
}
