//! Shared helpers for the SemTree examples.

use std::sync::Arc;

use semtree_core::{SemTree, SemTreeBuilder};
use semtree_reqgen::Corpus;
use semtree_vocab::wordnet;

/// Wire a builder up with a generated corpus's full vocabulary set: the
/// `Fun` taxonomy, every parameter-class taxonomy, and the miniature
/// general-purpose taxonomy as the standard vocabulary.
#[must_use]
pub fn builder_for_corpus(corpus: &Corpus) -> SemTreeBuilder {
    let mut builder = SemTree::builder()
        .register_standard(Arc::new(wordnet::mini_taxonomy()))
        .register_vocabulary("Fun", Arc::clone(corpus.domain.fun_taxonomy()));
    for (prefix, tax) in corpus.domain.parameter_taxonomies() {
        builder = builder.register_vocabulary(prefix.clone(), Arc::clone(tax));
    }
    builder
}

/// Stage every document of a corpus into the builder.
pub fn stage_corpus(builder: &mut SemTreeBuilder, corpus: &Corpus) {
    builder.add_store(&corpus.store);
}
