//! Requirements audit: generate a synthetic requirements corpus, index it,
//! hunt for inconsistencies, and score the result against ground truth —
//! the paper's case study end to end.
//!
//! ```sh
//! cargo run -p semtree-examples --bin requirements_audit --release
//! ```

use semtree_core::InconsistencyFinder;
use semtree_eval::{f1_score, precision, recall};
use semtree_examples::{builder_for_corpus, stage_corpus};
use semtree_model::TripleId;
use semtree_reqgen::{CorpusGenerator, GenConfig, GroundTruthOracle};

fn main() {
    // 1. A corpus of requirement documents with seeded contradictions.
    let corpus = CorpusGenerator::new(GenConfig::small().with_seed(2026)).generate();
    let stats = corpus.store.stats();
    println!(
        "corpus: {} documents, {} distinct triples ({} occurrences), {} seeded inconsistencies",
        stats.documents,
        stats.triples,
        stats.occurrences,
        corpus.seeded_inconsistencies.len()
    );

    // 2. Index it.
    let mut builder = builder_for_corpus(&corpus).dimensions(6).bucket_size(16);
    stage_corpus(&mut builder, &corpus);
    let index = builder.build().expect("non-empty corpus");
    println!(
        "indexed {} triples in FastMap R^{}",
        index.len(),
        index.dimensions()
    );

    // 3. Sweep for confirmed inconsistencies via the index.
    let finder = InconsistencyFinder::new(&index, corpus.domain.antinomies().clone());
    let found = finder.sweep(10);
    println!("sweep found {} confirmed inconsistent pairs", found.len());

    // 4. Score against the oracle (the formal rule applied exhaustively).
    let oracle = GroundTruthOracle::new(&corpus);
    // Translate index ids to corpus store ids: both stores intern the same
    // distinct triples in the same insertion order, so ids coincide; assert
    // that instead of assuming it.
    for (id, triple) in corpus.store.iter().take(10) {
        assert_eq!(
            index.triple(id).map(ToString::to_string),
            Some(triple.to_string())
        );
    }
    let truth = oracle.all_pairs();
    let found_pairs: Vec<(TripleId, TripleId)> = found;
    let p = precision(&found_pairs, &truth);
    let r = recall(&found_pairs, &truth);
    println!(
        "vs ground truth: {} true pairs | precision {:.3}, recall {:.3}, F1 {:.3}",
        truth.len(),
        p,
        r,
        f1_score(p, r)
    );
    assert!(p > 0.99, "the formal post-filter makes precision ~1");
    assert!(r > 0.8, "k=10 neighbourhood recovers most pairs");

    // 5. Show a few findings as a human report.
    println!("\nsample findings:");
    for &(a, b) in found_pairs.iter().take(5) {
        let ta = index.triple(a).unwrap();
        let tb = index.triple(b).unwrap();
        let docs_a = corpus.store.documents_of(a).unwrap();
        let docs_b = corpus.store.documents_of(b).unwrap();
        println!(
            "  {} (in {}) contradicts {} (in {})",
            ta,
            corpus.store.document(docs_a[0]).unwrap().name,
            tb,
            corpus.store.document(docs_b[0]).unwrap().name,
        );
    }

    index.shutdown();
    println!("\nok");
}
