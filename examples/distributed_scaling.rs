//! Distributed scaling: the same corpus indexed at 1, 3, 5 and 9
//! partitions (the paper's configurations), comparing build time, query
//! time and interconnect traffic.
//!
//! ```sh
//! cargo run -p semtree-examples --bin distributed_scaling --release
//! ```

use std::time::Instant;

use semtree_core::CostModel;
use semtree_eval::Series;
use semtree_examples::{builder_for_corpus, stage_corpus};
use semtree_reqgen::{CorpusGenerator, GenConfig};

fn main() {
    let corpus = CorpusGenerator::new(GenConfig::medium().with_seed(7)).generate();
    println!(
        "corpus: {} distinct triples from {} documents\n",
        corpus.store.len(),
        corpus.store.stats().documents
    );

    let mut build_series = Series::new("build seconds");
    let mut query_series = Series::new("1000-query seconds");

    println!(
        "{:>10} {:>12} {:>14} {:>12} {:>12}",
        "partitions", "build (s)", "queries (s)", "messages", "KiB"
    );
    for m in [1usize, 3, 5, 9] {
        let mut builder = builder_for_corpus(&corpus)
            .dimensions(6)
            .bucket_size(32)
            .partitions(m)
            .cost_model(CostModel::zero());
        stage_corpus(&mut builder, &corpus);

        let t0 = Instant::now();
        let index = builder.build().expect("non-empty corpus");
        let build = t0.elapsed();

        index.reset_metrics();
        let queries: Vec<_> = (0..1000)
            .map(|i| {
                index
                    .triple(semtree_core::TripleId(
                        (i * 7 % index.len() as u32 as usize) as u32,
                    ))
                    .unwrap()
                    .clone()
            })
            .collect();
        let t1 = Instant::now();
        let mut total_hits = 0usize;
        for q in &queries {
            total_hits += index.knn(q, 3).len();
        }
        let query = t1.elapsed();
        assert_eq!(total_hits, 3000);

        let metrics = index.metrics();
        println!(
            "{:>10} {:>12.3} {:>14.3} {:>12} {:>12}",
            m,
            build.as_secs_f64(),
            query.as_secs_f64(),
            metrics.messages,
            metrics.bytes / 1024,
        );
        build_series.push(m as f64, build.as_secs_f64());
        query_series.push(m as f64, query.as_secs_f64());

        let stats = index.tree_stats();
        assert_eq!(stats.partition_count(), m);
        index.shutdown();
    }

    println!(
        "\nsingle-partition trees exchange no messages; multi-partition trees pay \
         per-border traffic — the trade Figures 5 and 7 of the paper plot."
    );
    println!("ok");
}
