//! Transport parity: the same distributed tree built over the in-process
//! channel fabric and over loopback TCP (three `NetFabric`s in one
//! process) must answer every query identically.

use std::time::Duration;

use semtree_cluster::{CostModel, Transport};
use semtree_dist::{
    build_tree, join_cluster, serve_cluster, CapacityPolicy, DistConfig, DistSemTree, Neighbor,
    Query, QueryOutcome,
};

fn insert(tree: &DistSemTree, point: &[f64], payload: u64) {
    tree.query(Query::insert(point, payload))
        .and_then(QueryOutcome::inserted)
        .expect("insert");
}

fn knn_pairs(tree: &DistSemTree, point: &[f64], k: usize) -> Vec<(f64, u64)> {
    tree.query(Query::knn(point, k))
        .and_then(QueryOutcome::neighbors)
        .expect("knn")
        .into_iter()
        .map(|n: Neighbor<u64>| (n.dist, n.payload))
        .collect()
}

fn range_pairs(tree: &DistSemTree, point: &[f64], radius: f64) -> Vec<(f64, u64)> {
    tree.query(Query::range(point, radius))
        .and_then(QueryOutcome::neighbors)
        .expect("range")
        .into_iter()
        .map(|n: Neighbor<u64>| (n.dist, n.payload))
        .collect()
}

fn sample_points(dims: usize, n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    (0..n)
        .map(|_| {
            (0..dims)
                .map(|_| (next() >> 11) as f64 / (1u64 << 53) as f64 * 100.0)
                .collect()
        })
        .collect()
}

#[test]
fn channel_and_tcp_fabrics_agree_on_every_query() {
    let dims = 2;
    let config = DistConfig::new(dims)
        .with_bucket_size(8)
        .with_max_partitions(16)
        .with_capacity(CapacityPolicy::MaxPoints(120));
    let sample = sample_points(dims, 64, 3);
    let points = sample_points(dims, 250, 77);

    // TCP deployment: a coordinator fabric plus two "worker processes"
    // living in this same test process, joined over 127.0.0.1.
    let fabric = serve_cluster("127.0.0.1:0".parse().unwrap(), &config, CostModel::zero())
        .expect("coordinator");
    let workers: Vec<_> = (0..2)
        .map(|_| {
            join_cluster(
                fabric.listen_addr(),
                CostModel::zero(),
                Duration::from_secs(10),
            )
            .expect("worker join")
        })
        .collect();
    fabric
        .wait_for_workers(2, Duration::from_secs(10))
        .expect("workers joined");
    let tcp_tree =
        build_tree(&fabric, config.clone(), CostModel::zero(), 3, &sample).expect("tcp tree");

    // The in-process reference over the default channel fabric.
    let channel_tree = DistSemTree::with_fanout(config, CostModel::zero(), 3, &sample);

    for (payload, point) in points.iter().enumerate() {
        insert(&tcp_tree, point, payload as u64);
        insert(&channel_tree, point, payload as u64);
    }

    for query in points.iter().step_by(17) {
        let tcp = knn_pairs(&tcp_tree, query, 9);
        let channel = knn_pairs(&channel_tree, query, 9);
        assert_eq!(tcp, channel, "knn around {query:?}");

        let tcp = range_pairs(&tcp_tree, query, 12.5);
        let channel = range_pairs(&channel_tree, query, 12.5);
        assert_eq!(tcp, channel, "range around {query:?}");
    }

    // A batched k-NN over TCP answers exactly like per-query k-NN over
    // the channel fabric — the batch path changes round trips, not
    // results.
    let batch_queries: Vec<Vec<f64>> = points.iter().step_by(17).cloned().collect();
    let batches = tcp_tree
        .query(Query::knn_batch(&batch_queries, 9))
        .and_then(QueryOutcome::neighbor_batches)
        .expect("batched knn");
    assert_eq!(batches.len(), batch_queries.len());
    for (query, batch) in batch_queries.iter().zip(&batches) {
        let channel = knn_pairs(&channel_tree, query, 9);
        let tcp: Vec<(f64, u64)> = batch.iter().map(|n| (n.dist, n.payload)).collect();
        assert_eq!(tcp, channel, "knn batch around {query:?}");
    }

    // Point conservation holds on both sides, and the capacity policy
    // forced build-partition over the wire (partitions beyond the fan-out).
    assert_eq!(tcp_tree.verify(), Vec::<String>::new());
    assert_eq!(channel_tree.verify(), Vec::<String>::new());
    let tcp_stats = tcp_tree.global_stats();
    let channel_stats = channel_tree.global_stats();
    assert_eq!(tcp_stats.total_points(), points.len());
    assert_eq!(
        tcp_stats.partition_count(),
        channel_stats.partition_count(),
        "build-partition must fire identically on both transports"
    );
    assert!(tcp_stats.partition_count() > 3, "capacity policy fired");

    // TCP metrics account real encoded frame bytes.
    let metrics = fabric.local_fabric().metrics();
    assert!(metrics.messages > 0);
    assert!(metrics.bytes > 0);

    // Coordinator-initiated shutdown reaches the worker fabrics.
    let waiters: Vec<_> = workers
        .into_iter()
        .map(|w| std::thread::spawn(move || w.run_until_shutdown()))
        .collect();
    tcp_tree.shutdown();
    for w in waiters {
        w.join().expect("worker shut down cleanly");
    }
    channel_tree.shutdown();
}
