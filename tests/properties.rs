//! Cross-crate property-based tests (proptest).

use std::sync::Arc;

use proptest::prelude::*;
use semtree_cluster::CostModel;
use semtree_dist::{DistConfig, DistSemTree, Query, QueryOutcome};
use semtree_distance::{TripleDistance, VocabularyRegistry, Weights};
use semtree_fastmap::FastMap;
use semtree_kdtree::{KdConfig, KdTree};
use semtree_model::{turtle, Term, Triple};
use semtree_rtree::RTree;
use semtree_vocab::wordnet;

fn dist_query(tree: &DistSemTree, q: Query) -> Vec<semtree_dist::Neighbor<u64>> {
    tree.query(q)
        .and_then(QueryOutcome::neighbors)
        .expect("distributed query")
}

fn euclid(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Strategy for terms: literals, standard concepts or prefixed concepts.
fn term_strategy() -> impl Strategy<Value = Term> {
    prop_oneof![
        "[A-Za-z0-9 _-]{1,12}".prop_map(Term::literal),
        prop_oneof![
            Just("accept"),
            Just("reject"),
            Just("send"),
            Just("receive"),
            Just("start"),
            Just("stop"),
            Just("monitor"),
            Just("command"),
            Just("message"),
            Just("device")
        ]
        .prop_map(Term::concept),
        ("[A-Z][a-z]{1,6}", "[a-z_-]{1,10}").prop_map(|(p, n)| Term::concept_in(p, n)),
    ]
}

fn triple_strategy() -> impl Strategy<Value = Triple> {
    (term_strategy(), term_strategy(), term_strategy()).prop_map(|(s, p, o)| Triple::new(s, p, o))
}

fn distance() -> TripleDistance {
    let mut reg = VocabularyRegistry::new();
    reg.register_standard(Arc::new(wordnet::mini_taxonomy()));
    TripleDistance::new(Weights::default(), Arc::new(reg))
}

proptest! {
    /// Eq. 1 stays in [0,1], is symmetric, and vanishes on identity.
    #[test]
    fn triple_distance_pseudo_metric(a in triple_strategy(), b in triple_strategy()) {
        let d = distance();
        let dab = d.distance(&a, &b);
        let dba = d.distance(&b, &a);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&dab), "range: {dab}");
        prop_assert!((dab - dba).abs() < 1e-12, "symmetry");
        prop_assert!(d.distance(&a, &a).abs() < 1e-12, "identity");
    }

    /// Turtle serialization round-trips arbitrary triples, as long as the
    /// lexical forms avoid the tuple meta-characters.
    #[test]
    fn turtle_roundtrip(t in triple_strategy()) {
        let rendered = turtle::write_triple(&t);
        let reparsed = turtle::parse_triple(&rendered);
        // Concepts whose names parse as another term kind (numeric names,
        // names with commas) are not round-trippable by design; only check
        // when parsing succeeds.
        if let Ok(back) = reparsed {
            let rerendered = turtle::write_triple(&back);
            prop_assert_eq!(rendered, rerendered, "stable after one round");
        }
    }

    /// KD-tree k-NN agrees with brute force on random point sets.
    #[test]
    fn kdtree_knn_exact(
        points in prop::collection::vec(
            prop::collection::vec(-100.0f64..100.0, 3),
            1..120
        ),
        query in prop::collection::vec(-100.0f64..100.0, 3),
        k in 1usize..8,
    ) {
        let data: Vec<(Vec<f64>, u32)> =
            points.iter().cloned().zip(0u32..).collect();
        let tree = KdTree::bulk_load(KdConfig::new(3).with_bucket_size(4), data);
        let got = tree.knn(&query, k);
        let mut brute: Vec<f64> = points.iter().map(|p| euclid(p, &query)).collect();
        brute.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let want = &brute[..k.min(points.len())];
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want) {
            prop_assert!((g.dist - w).abs() < 1e-9, "{} vs {}", g.dist, w);
        }
    }

    /// KD-tree range search returns exactly the brute-force ball.
    #[test]
    fn kdtree_range_exact(
        points in prop::collection::vec(
            prop::collection::vec(-50.0f64..50.0, 2),
            1..120
        ),
        query in prop::collection::vec(-50.0f64..50.0, 2),
        radius in 0.0f64..60.0,
    ) {
        let data: Vec<(Vec<f64>, u32)> =
            points.iter().cloned().zip(0u32..).collect();
        let tree = KdTree::bulk_load(KdConfig::new(2).with_bucket_size(4), data);
        let got = tree.range(&query, radius);
        let want = points.iter().filter(|p| euclid(p, &query) <= radius).count();
        prop_assert_eq!(got.len(), want);
        for hit in got {
            prop_assert!(hit.dist <= radius + 1e-12);
        }
    }

    /// Dynamic insertion and bulk loading retrieve the same neighbours.
    #[test]
    fn dynamic_equals_bulk(
        points in prop::collection::vec(
            prop::collection::vec(-10.0f64..10.0, 2),
            2..80
        ),
        query in prop::collection::vec(-10.0f64..10.0, 2),
    ) {
        let data: Vec<(Vec<f64>, u32)> =
            points.iter().cloned().zip(0u32..).collect();
        let bulk = KdTree::bulk_load(KdConfig::new(2).with_bucket_size(4), data.clone());
        let mut dynamic = KdTree::new(KdConfig::new(2).with_bucket_size(4));
        for (p, i) in &data {
            dynamic.insert(p, *i);
        }
        let a = bulk.knn(&query, 3);
        let b = dynamic.knn(&query, 3);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x.dist - y.dist).abs() < 1e-9);
        }
    }

    /// FastMap never expands distances when the input really is Euclidean.
    #[test]
    fn fastmap_contractive_on_euclidean(
        points in prop::collection::vec(
            prop::collection::vec(-5.0f64..5.0, 4),
            2..40
        ),
    ) {
        let d = |i: usize, j: usize| euclid(&points[i], &points[j]);
        let emb = FastMap::new(2).with_seed(7).embed(points.len(), &d);
        for i in 0..points.len() {
            for j in 0..points.len() {
                prop_assert!(emb.embedded_distance(i, j) <= d(i, j) + 1e-6);
            }
        }
    }

    /// Out-of-sample projection of an in-sample object reproduces its
    /// build coordinates.
    #[test]
    fn fastmap_projection_consistency(
        points in prop::collection::vec(
            prop::collection::vec(-5.0f64..5.0, 3),
            3..40
        ),
        pick in 0usize..1000,
    ) {
        let d = |i: usize, j: usize| euclid(&points[i], &points[j]);
        let emb = FastMap::new(2).with_seed(3).embed(points.len(), &d);
        let idx = pick % points.len();
        let projected = emb.project_with(&|p| d(idx, p));
        for (a, b) in projected.iter().zip(emb.point(idx)) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The distributed tree answers exactly like the sequential KD-tree
    /// for every partition count the paper evaluates.
    #[test]
    fn distributed_matches_sequential(
        points in prop::collection::vec(
            prop::collection::vec(-20.0f64..20.0, 2),
            8..60
        ),
        query in prop::collection::vec(-20.0f64..20.0, 2),
        m_idx in 0usize..3,
    ) {
        let m = [1usize, 3, 5][m_idx];
        let data: Vec<(Vec<f64>, u32)> =
            points.iter().cloned().zip(0u32..).collect();
        let seq = KdTree::bulk_load(KdConfig::new(2).with_bucket_size(4), data);

        let dist = DistSemTree::with_fanout(
            DistConfig::new(2).with_bucket_size(4).with_max_partitions(8),
            CostModel::zero(),
            m,
            &points,
        );
        for (i, p) in points.iter().enumerate() {
            dist.query(Query::insert(p, i as u64))
                .and_then(QueryOutcome::inserted)
                .expect("distributed insert");
        }

        let a = seq.knn(&query, 5);
        let b = dist_query(&dist, Query::knn(&query, 5));
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x.dist - y.dist).abs() < 1e-9, "m={}: {} vs {}", m, x.dist, y.dist);
        }

        let ra = seq.range(&query, 10.0);
        let rb = dist_query(&dist, Query::range(&query, 10.0));
        prop_assert_eq!(ra.len(), rb.len());

        prop_assert_eq!(dist.verify(), Vec::<String>::new());
        dist.shutdown();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// KD-tree and R-tree agree exactly on every query — two independent
    /// implementations cross-validating each other.
    #[test]
    fn kdtree_and_rtree_agree(
        points in prop::collection::vec(
            prop::collection::vec(-50.0f64..50.0, 3),
            1..150
        ),
        query in prop::collection::vec(-50.0f64..50.0, 3),
        k in 1usize..8,
        radius in 0.0f64..80.0,
    ) {
        let data: Vec<(Vec<f64>, u32)> =
            points.iter().cloned().zip(0u32..).collect();
        let kd = KdTree::bulk_load(KdConfig::new(3).with_bucket_size(4), data.clone());
        let rt = RTree::bulk_load(3, data);

        let a = kd.knn(&query, k);
        let b = rt.knn(&query, k);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x.dist - y.dist).abs() < 1e-9, "{} vs {}", x.dist, y.dist);
        }

        let ra = kd.range(&query, radius);
        let rb = rt.range(&query, radius);
        prop_assert_eq!(ra.len(), rb.len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Seqlock readers racing the writer (DESIGN.md §14): while a writer
    /// inserts (and splits leaves) the whole point set, a concurrent
    /// lock-free reader only ever observes internally consistent answers
    /// — sorted distances over some prefix of the inserts — and once the
    /// writer finishes, the versioned tree agrees with a sequential
    /// reference build on both k-NN and range.
    #[test]
    fn versioned_reads_under_writes_agree_with_sequential_reference(
        points in prop::collection::vec(
            prop::collection::vec(-20.0f64..20.0, 2),
            8..120
        ),
        query in prop::collection::vec(-20.0f64..20.0, 2),
        k in 1usize..6,
        radius in 0.0f64..25.0,
    ) {
        use std::sync::atomic::{AtomicBool, Ordering};
        use semtree_kdtree::versioned::VersionedKdTree;

        let config = KdConfig::new(2).with_bucket_size(2);
        let mut vtree = VersionedKdTree::<semtree_kdtree::versioned::StdShim>::new(config);
        let reader = vtree.reader();

        let done = Arc::new(AtomicBool::new(false));
        let racing_reader = {
            let reader = reader.clone();
            let done = Arc::clone(&done);
            let query = query.clone();
            std::thread::spawn(move || {
                let mut seen = 0usize;
                while !done.load(Ordering::Relaxed) {
                    let (hits, _) = reader.knn(&query, k);
                    // The result set grows monotonically with the
                    // writer's progress and is always sorted: a torn
                    // split would violate one of the two.
                    assert!(hits.len() >= seen, "result set shrank");
                    seen = hits.len();
                    for pair in hits.windows(2) {
                        assert!(pair[0].dist <= pair[1].dist, "unsorted hits");
                    }
                }
            })
        };

        let mut seq = KdTree::new(config);
        for (i, p) in points.iter().enumerate() {
            prop_assert!(vtree.insert(p, i as u64));
            seq.insert(p, i as u64);
        }
        done.store(true, Ordering::Relaxed);
        racing_reader.join().expect("racing reader");

        // Quiescent parity: exact distances, payload parity up to ties.
        let (hits, stats) = reader.knn(&query, k);
        let want = seq.knn(&query, k);
        prop_assert_eq!(stats.retries, 0, "no writer left, no retries");
        prop_assert_eq!(hits.len(), want.len());
        for (h, w) in hits.iter().zip(&want) {
            prop_assert_eq!(h.dist.to_bits(), w.dist.to_bits());
        }
        let mut got: Vec<u64> = hits.iter().map(|h| h.payload).collect();
        let mut expect: Vec<u64> = want.iter().map(|w| w.payload).collect();
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);

        let (in_range, _) = reader.range(&query, radius);
        let want_range = seq.range(&query, radius);
        prop_assert_eq!(in_range.len(), want_range.len());
        for pair in in_range.windows(2) {
            prop_assert!(pair[0].dist <= pair[1].dist);
        }
    }
}
