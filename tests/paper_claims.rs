//! Tests pinning the paper's qualitative claims: complexity shapes,
//! partition-structure invariants, message accounting, parallel border
//! search, and the Figure 8 effectiveness shape.

use std::sync::Arc;
use std::time::{Duration, Instant};

use semtree_cluster::CostModel;
use semtree_dist::{CapacityPolicy, DistConfig, DistSemTree, Query, QueryOutcome};

fn insert(tree: &DistSemTree, point: &[f64], payload: u64) {
    tree.query(Query::insert(point, payload))
        .and_then(QueryOutcome::inserted)
        .expect("insert");
}
use semtree_eval::{average_pr, precision, recall};
use semtree_kdtree::{KdConfig, KdTree, TreeShape};
use semtree_model::TripleId;
use semtree_reqgen::{CorpusGenerator, DomainVocabulary, GenConfig, GroundTruthOracle};
use semtree_vocab::wordnet;

fn line_points(n: usize) -> Vec<(Vec<f64>, u32)> {
    (0..n).map(|i| (vec![i as f64], i as u32)).collect()
}

/// §III-C: "when the tree is well-balanced, the time to navigate the tree
/// … is Θ(A + log2(N/M))" — node visits on a balanced tree grow
/// logarithmically, on a chain linearly.
#[test]
fn knn_visit_complexity_shapes() {
    let mut balanced_growth = Vec::new();
    let mut chain_growth = Vec::new();
    for n in [1_000usize, 4_000, 16_000] {
        let bal = KdTree::bulk_load(KdConfig::new(1).with_bucket_size(8), line_points(n));
        let chain = KdTree::chain_load(KdConfig::new(1).with_bucket_size(8), line_points(n));
        let q = vec![n as f64 / 2.0 + 0.3];
        let (_, bs) = bal.knn_with_stats(&q, 3);
        let (_, cs) = chain.knn_with_stats(&q, 3);
        balanced_growth.push(bs.nodes_visited as f64);
        chain_growth.push(cs.nodes_visited as f64);
    }
    // 16× more data: balanced visits grow ≤ 3× (log-ish), chain ≥ 8×.
    assert!(
        balanced_growth[2] / balanced_growth[0] <= 3.0,
        "balanced growth {balanced_growth:?}"
    );
    assert!(
        chain_growth[2] / chain_growth[0] >= 8.0,
        "chain growth {chain_growth:?}"
    );
}

/// §III-C: `N = 2K/Bs` nodes; leaves = routing + 1 in any binary KD-tree.
#[test]
fn node_count_formula_shape() {
    for (k_points, bs) in [(2_048usize, 8usize), (8_192, 32)] {
        let tree = KdTree::bulk_load(KdConfig::new(1).with_bucket_size(bs), line_points(k_points));
        let shape = TreeShape::of(&tree);
        assert_eq!(shape.leaves, shape.routing + 1);
        let formula = 2 * k_points / bs;
        assert!(
            shape.nodes >= formula / 4 && shape.nodes <= formula * 4,
            "nodes {} vs formula {formula}",
            shape.nodes
        );
        assert_eq!(shape.entries, k_points);
    }
}

/// The root partition of a fan-out tree is routing-only and hosts exactly
/// `M − 2` routing nodes for `M − 1` data partitions (a binary tree with
/// `M − 1` remote leaves), matching the paper's "Root Partition hosting
/// routing nodes and able to distribute messages between the other
/// partitions".
#[test]
fn root_partition_structure() {
    let sample: Vec<Vec<f64>> = (0..256).map(|i| vec![f64::from(i)]).collect();
    for m in [3usize, 5, 9] {
        let tree = DistSemTree::with_fanout(
            DistConfig::new(1)
                .with_bucket_size(8)
                .with_max_partitions(16),
            CostModel::zero(),
            m,
            &sample,
        );
        for i in 0..500u64 {
            insert(&tree, &[(i % 256) as f64], i);
        }
        let stats = tree.global_stats();
        assert_eq!(stats.partition_count(), m);
        assert_eq!(stats.partitions[0].1.points, 0, "root stores nothing");
        assert_eq!(stats.root_routing_nodes(), m - 2);
        // Every edge node is accounted: the root's remote children are the
        // M−1 data partitions.
        assert_eq!(stats.partitions[0].1.remote_children.len(), m - 1);
        assert_eq!(stats.total_points(), 500);
        tree.shutdown();
    }
}

/// Insertion across partitions costs messages; more partitions → more
/// messages (the overhead visible at small N in Figures 3/5/7).
#[test]
fn message_overhead_grows_with_partitions() {
    let sample: Vec<Vec<f64>> = (0..256).map(|i| vec![f64::from(i)]).collect();
    let mut per_m = Vec::new();
    for m in [1usize, 3, 9] {
        let tree = DistSemTree::with_fanout(
            DistConfig::new(1)
                .with_bucket_size(8)
                .with_max_partitions(16),
            CostModel::zero(),
            m,
            &sample,
        );
        tree.reset_metrics();
        for i in 0..300u64 {
            insert(&tree, &[(i % 256) as f64], i);
        }
        per_m.push(tree.metrics().messages);
        tree.shutdown();
    }
    assert!(per_m[1] > per_m[0], "{per_m:?}");
    // Client→root costs 2 messages per insert regardless; the fan-out adds
    // root→data forwarding on top.
    assert_eq!(per_m[0], 600);
    assert!(per_m[1] >= 1100, "{per_m:?}");
}

/// §III-B.4: at a border node whose two children live on other partitions,
/// the range search proceeds in parallel. With per-message latency
/// injected, the parallel fan-out is visibly faster than two sequential
/// sub-searches would be.
#[test]
fn border_range_search_runs_in_parallel() {
    let latency = Duration::from_millis(25);
    let sample: Vec<Vec<f64>> = (0..64).map(|i| vec![f64::from(i)]).collect();
    let tree = DistSemTree::with_fanout(
        DistConfig::new(1)
            .with_bucket_size(64)
            .with_max_partitions(8),
        CostModel {
            latency,
            per_kib: Duration::ZERO,
        },
        3,
        &sample,
    );
    for i in 0..64u64 {
        insert(&tree, &[i as f64], i);
    }
    // A query at the split point with a radius spanning both partitions.
    let t0 = Instant::now();
    let hits = tree
        .query(Query::range(&[32.0], 40.0))
        .and_then(QueryOutcome::neighbors)
        .expect("range");
    let elapsed = t0.elapsed();
    assert_eq!(hits.len(), 64, "radius covers everything");
    // Message path: client→root (2·25ms) + one parallel pair of
    // root→data round trips (2·25ms overlapped) ≈ 100ms; a sequential
    // implementation would pay ≈ 150ms.
    assert!(
        elapsed < Duration::from_millis(140),
        "range took {elapsed:?}; parallel border search expected"
    );
    tree.shutdown();
}

/// Build-partition leaves routing-only partitions behind, per Figure 2.
#[test]
fn build_partition_creates_routing_only_partitions() {
    let tree = DistSemTree::single(
        DistConfig::new(1)
            .with_bucket_size(8)
            .with_capacity(CapacityPolicy::MaxPoints(30))
            .with_max_partitions(32),
        CostModel::zero(),
    );
    for i in 0..400u64 {
        insert(&tree, &[i as f64], i);
    }
    let stats = tree.global_stats();
    assert!(stats.partition_count() > 1);
    assert_eq!(stats.total_points(), 400);
    // The original partition keeps shedding leaves until it routes more
    // than it stores; every partition respects the capacity.
    for (_, p) in &stats.partitions {
        assert!(p.points <= 30, "partition holds {}", p.points);
    }
    tree.shutdown();
}

/// The Figure 8 shape: as K grows, precision falls monotonically (weakly)
/// and recall rises monotonically.
#[test]
fn effectiveness_precision_falls_recall_rises() {
    let corpus = CorpusGenerator::new(GenConfig::small().with_seed(0xF18)).generate();
    let oracle = GroundTruthOracle::new(&corpus);
    let mut builder = semtree_core::SemTree::builder()
        .dimensions(6)
        .register_standard(Arc::new(wordnet::mini_taxonomy()))
        .register_vocabulary("Fun", Arc::clone(corpus.domain.fun_taxonomy()));
    for (prefix, tax) in corpus.domain.parameter_taxonomies() {
        builder = builder.register_vocabulary(prefix.clone(), Arc::clone(tax));
    }
    builder.add_store(&corpus.store);
    let index = builder.build().unwrap();

    let cases: Vec<(semtree_model::Triple, Vec<TripleId>)> = corpus
        .store
        .iter()
        .filter_map(|(id, _)| {
            let target = oracle.target_triple(id)?;
            let truth = oracle.inconsistent_with(id);
            (!truth.is_empty()).then_some((target, truth))
        })
        .take(60)
        .collect();
    assert!(cases.len() >= 20, "enough query cases");

    let mut last: Option<(f64, f64)> = None;
    for k in [1usize, 3, 6, 10, 15] {
        let per_query: Vec<(Vec<TripleId>, Vec<TripleId>)> = cases
            .iter()
            .map(|(target, truth)| {
                let retrieved: Vec<TripleId> =
                    index.knn(target, k).into_iter().map(|h| h.id).collect();
                (retrieved, truth.clone())
            })
            .collect();
        let pt = average_pr(k, &per_query);
        if let Some((lp, lr)) = last {
            assert!(
                pt.precision <= lp + 0.05,
                "P should fall: {lp} → {}",
                pt.precision
            );
            assert!(
                pt.recall >= lr - 0.05,
                "R should rise: {lr} → {}",
                pt.recall
            );
        }
        last = Some((pt.precision, pt.recall));
    }
    let (_, final_r) = last.unwrap();
    assert!(final_r > 0.8, "K=15 recall {final_r}");
    index.shutdown();
}

/// Antinomic predicates must be *near* in the Fun taxonomy but *far* from
/// unrelated predicates — the property that makes target-triple k-NN find
/// contradictions at all.
#[test]
fn antinomy_locality_in_embedding() {
    use semtree_distance::{TripleDistance, VocabularyRegistry, Weights};
    use semtree_model::{Term, Triple};

    let domain = DomainVocabulary::new(4);
    let mut reg = VocabularyRegistry::new();
    reg.register("Fun", Arc::clone(domain.fun_taxonomy()));
    for (prefix, tax) in domain.parameter_taxonomies() {
        reg.register(prefix.clone(), Arc::clone(tax));
    }
    let dist = TripleDistance::new(Weights::default(), Arc::new(reg));

    let base = Triple::new(
        Term::literal("OBSW001"),
        Term::concept_in("Fun", "accept_cmd"),
        Term::concept_in("CmdType", "start-up"),
    );
    let antonym = base.with_predicate(Term::concept_in("Fun", "block_cmd"));
    let unrelated = base.with_predicate(Term::concept_in("Fun", "send_msg"));
    assert!(dist.distance(&base, &antonym) < dist.distance(&base, &unrelated));
}

/// Precision/recall definitions match the paper's formulas exactly.
#[test]
fn pr_formulas() {
    let t = vec![1u32, 2, 3, 4];
    let t_star = vec![2u32, 4, 6];
    // |T∩T*| = 2, |T| = 4, |T*| = 3.
    assert!((precision(&t, &t_star) - 0.5).abs() < 1e-12);
    assert!((recall(&t, &t_star) - 2.0 / 3.0).abs() < 1e-12);
}
