//! Serving-fabric integration: the reactor-backed client port under
//! pipelining, mixed v1/v2 clients, and deliberate overload.
//!
//! A real `DistSemTree` is served over loopback TCP by
//! `serve_clients_with`; clients drive it with the pipelined
//! (correlation-id) protocol and assert answers are byte-identical to
//! querying the tree directly — out-of-order completion must never
//! mis-deliver a reply.

use std::net::TcpListener;
use std::time::Duration;

use semtree_cluster::CostModel;
use semtree_dist::{
    serve_clients_with, ClientReq, ClientResp, DistConfig, DistSemTree, NetClient, PipelinedClient,
    PollerBackend, Query, QueryOutcome, ServeOptions,
};
use semtree_reactor::DRAIN_BUDGET;

fn sample_points(dims: usize, n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    (0..n)
        .map(|_| {
            (0..dims)
                .map(|_| (next() >> 11) as f64 / (1u64 << 53) as f64 * 100.0)
                .collect()
        })
        .collect()
}

/// A populated single-process tree plus the expected k-NN answer for
/// each query, computed directly (no network) before serving starts.
fn tree_with_reference(
    n_points: usize,
    queries: &[Vec<f64>],
    k: usize,
) -> (DistSemTree, Vec<Vec<(f64, u64)>>) {
    let config = DistConfig::new(2)
        .with_bucket_size(16)
        .with_max_partitions(16);
    let tree = DistSemTree::single(config, CostModel::zero());
    for (i, p) in sample_points(2, n_points, 11).iter().enumerate() {
        tree.query(Query::insert(p, i as u64))
            .and_then(QueryOutcome::inserted)
            .expect("insert");
    }
    let expected: Vec<Vec<(f64, u64)>> = queries
        .iter()
        .map(|q| {
            tree.query(Query::knn(q, k))
                .and_then(QueryOutcome::neighbors)
                .expect("knn")
                .into_iter()
                .map(|h| (h.dist, h.payload))
                .collect()
        })
        .collect();
    (tree, expected)
}

/// Serve `tree` on an ephemeral port in a background thread; returns
/// the address and the join handle (which yields the tree back once a
/// shutdown request lands).
fn spawn_server(
    tree: DistSemTree,
    options: ServeOptions,
) -> (std::net::SocketAddr, std::thread::JoinHandle<DistSemTree>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let handle = std::thread::spawn(move || {
        serve_clients_with(&listener, &tree, &options).expect("serve");
        tree
    });
    (addr, handle)
}

fn shutdown(addr: std::net::SocketAddr, handle: std::thread::JoinHandle<DistSemTree>) {
    let client = NetClient::connect(addr, Duration::from_secs(5)).expect("connect");
    client.shutdown().expect("shutdown");
    let tree = handle.join().expect("server thread");
    tree.shutdown();
}

#[test]
fn pipelined_replies_complete_out_of_order_but_never_mismatched() {
    let k = 4;
    let queries = sample_points(2, 48, 23);
    let (tree, expected) = tree_with_reference(600, &queries, k);
    let (addr, handle) = spawn_server(tree, ServeOptions::default());

    // Interleave cheap single-point queries with expensive batched ones
    // on ONE connection, all in flight at once: completions come back
    // out of order, and every reply must still match ITS query.
    let mut client = PipelinedClient::connect(addr, Duration::from_secs(5)).expect("connect");
    let batch_all: Vec<Vec<f64>> = queries.clone();
    let mut pending = Vec::new();
    for (i, q) in queries.iter().enumerate() {
        if i % 5 == 0 {
            pending.push((None, client.knn_batch(&batch_all, k).expect("submit batch")));
        }
        pending.push((Some(i), client.knn(q, k).expect("submit knn")));
    }
    assert!(client.submitted() > queries.len() as u64);
    for (which, reply) in pending {
        match which {
            Some(i) => {
                let got = reply.wait_neighbors().expect("knn reply");
                assert_eq!(got, expected[i], "query {i} got someone else's answer");
            }
            None => {
                let got = reply.wait_batches().expect("batch reply");
                assert_eq!(got, expected, "batched answers must match the reference");
            }
        }
    }

    // A v1 (sequential) client shares the same port and still agrees.
    let mut v1 = NetClient::connect(addr, Duration::from_secs(5)).expect("v1 connect");
    for (i, q) in queries.iter().take(8).enumerate() {
        assert_eq!(v1.knn(q, k).expect("v1 knn"), expected[i]);
    }

    shutdown(addr, handle);
}

#[test]
fn queue_overflow_sheds_typed_overloaded_replies() {
    let k = 8;
    let queries = sample_points(2, 8, 31);
    let (tree, _) = tree_with_reference(3_000, &queries, k);
    // One executor, one admission slot: a pipelined burst of expensive
    // batch queries MUST overflow the global queue.
    let options = ServeOptions {
        executors: 1,
        global_depth: 1,
        per_conn_depth: 64,
        ..ServeOptions::default()
    };
    let (addr, handle) = spawn_server(tree, options);

    let mut client = PipelinedClient::connect(addr, Duration::from_secs(5)).expect("connect");
    let heavy: Vec<Vec<f64>> = sample_points(2, 512, 47);
    let burst = 48;
    let pending: Vec<_> = (0..burst)
        .map(|_| client.knn_batch(&heavy, k).expect("submit"))
        .collect();

    let mut served = 0u32;
    let mut shed = 0u32;
    for reply in pending {
        match reply.wait().expect("reply") {
            ClientResp::NeighborBatches(batches) => {
                assert_eq!(batches.len(), heavy.len());
                served += 1;
            }
            ClientResp::Overloaded => shed += 1,
            other => panic!("unexpected reply under overload: {other:?}"),
        }
    }
    assert_eq!(served + shed, burst);
    assert!(served >= 1, "admitted requests must still be answered");
    assert!(
        shed >= 1,
        "a 48-deep burst through a 1-slot queue must shed (served {served})"
    );

    // The shed connection is still usable for regular traffic.
    let q = &queries[0];
    let again = client.knn(q, k).expect("post-shed submit");
    assert!(again.wait_neighbors().is_ok() || shed == burst);

    shutdown(addr, handle);
}

/// v1 (sequential, uncorrelated) and v2 (pipelined, correlated) framing
/// interleaved on the same multi-shard epoll port: responses must route
/// by connection and correlation id, never by arrival order.
#[test]
#[cfg(target_os = "linux")]
fn v1_and_v2_clients_interleave_on_a_sharded_epoll_port() {
    let k = 4;
    let queries = sample_points(2, 24, 67);
    let (tree, expected) = tree_with_reference(500, &queries, k);
    let options = ServeOptions::default()
        .with_reactors(2)
        .with_backend(PollerBackend::Epoll);
    let (addr, handle) = spawn_server(tree, options);

    let mut v2 = PipelinedClient::connect(addr, Duration::from_secs(5)).expect("v2 connect");
    let mut v1 = NetClient::connect(addr, Duration::from_secs(5)).expect("v1 connect");
    let mut pending = Vec::new();
    for (i, q) in queries.iter().enumerate() {
        // Submit pipelined, then complete a v1 round trip while the v2
        // request is still in flight, then harvest — every iteration
        // interleaves the two framings in both directions.
        pending.push((i, v2.knn(q, k).expect("v2 submit")));
        assert_eq!(v1.knn(q, k).expect("v1 knn"), expected[i], "v1 query {i}");
        if i % 3 == 0 {
            let (j, reply) = pending.remove(0);
            let got = reply.wait_neighbors().expect("v2 reply");
            assert_eq!(got, expected[j], "v2 query {j}");
        }
    }
    for (j, reply) in pending {
        let got = reply.wait_neighbors().expect("v2 reply");
        assert_eq!(got, expected[j], "v2 query {j}");
    }

    shutdown(addr, handle);
}

/// One connection bursting far past the per-iteration drain budget must
/// not starve a well-behaved sequential client on the same shard: the
/// reactor admits at most `DRAIN_BUDGET` frames per connection per
/// iteration and re-pumps the remainder, so the light client's requests
/// interleave instead of queueing behind the whole flood.
#[test]
fn saturated_pipelined_connection_cannot_starve_a_light_one() {
    let k = 3;
    let queries = sample_points(2, 16, 71);
    let (tree, expected) = tree_with_reference(400, &queries, k);
    let flood = 6 * DRAIN_BUDGET;
    // A single reactor shard (both connections share its event loop)
    // with a per-connection window large enough to accept the whole
    // flood — fairness must come from the drain budget, not admission
    // backpressure.
    let options = ServeOptions::default()
        .with_reactors(1)
        .with_per_conn_depth(flood)
        .with_global_depth(4 * flood);
    let (addr, handle) = spawn_server(tree, options);

    let mut flooder = PipelinedClient::connect(addr, Duration::from_secs(5)).expect("connect");
    let burst: Vec<_> = (0..flood)
        .map(|i| {
            flooder
                .knn(&queries[i % queries.len()], k)
                .expect("flood submit")
        })
        .collect();
    assert!(
        burst.len() > DRAIN_BUDGET,
        "the burst must exceed one drain budget to exercise re-pumping"
    );

    // While the flood is in flight, a v1 client completes full round
    // trips; if the reactor drained the flooder's socket to exhaustion
    // before servicing other connections, these would stall behind
    // hundreds of queued executions.
    let mut light = NetClient::connect(addr, Duration::from_secs(5)).expect("light connect");
    for (i, q) in queries.iter().enumerate() {
        assert_eq!(
            light.knn(q, k).expect("light knn"),
            expected[i],
            "query {i}"
        );
    }

    for (i, reply) in burst.into_iter().enumerate() {
        let got = reply.wait_neighbors().expect("flood reply");
        assert_eq!(got, expected[i % expected.len()], "flood query {i}");
    }

    shutdown(addr, handle);
}

/// Deliberate overload through the multi-shard epoll path: the global
/// admission bound sheds with typed `Overloaded` replies, the shed
/// counters attribute every shed to the owning shard, and the
/// connection stays usable.
#[test]
#[cfg(target_os = "linux")]
fn multi_shard_epoll_path_sheds_and_attributes_overload() {
    let k = 8;
    let queries = sample_points(2, 8, 79);
    let (tree, _) = tree_with_reference(3_000, &queries, k);
    let options = ServeOptions::default()
        .with_reactors(2)
        .with_backend(PollerBackend::Epoll)
        .with_executors(1)
        .with_global_depth(1)
        .with_per_conn_depth(64);
    let (addr, handle) = spawn_server(tree, options);

    let mut client = PipelinedClient::connect(addr, Duration::from_secs(5)).expect("connect");
    let heavy: Vec<Vec<f64>> = sample_points(2, 512, 83);
    let burst = 48;
    let pending: Vec<_> = (0..burst)
        .map(|_| client.knn_batch(&heavy, k).expect("submit"))
        .collect();

    let mut served = 0u64;
    let mut shed = 0u64;
    for reply in pending {
        match reply.wait().expect("reply") {
            ClientResp::NeighborBatches(batches) => {
                assert_eq!(batches.len(), heavy.len());
                served += 1;
            }
            ClientResp::Overloaded => shed += 1,
            other => panic!("unexpected reply under overload: {other:?}"),
        }
    }
    assert_eq!(served + shed, burst);
    assert!(served >= 1, "admitted requests must still be answered");
    assert!(
        shed >= 1,
        "a 48-deep burst through a 1-slot queue must shed"
    );

    // The per-shard counters must account for exactly the sheds this
    // (only) client observed, and the topology must report both shards.
    let metrics = client.submit(&ClientReq::Metrics).expect("submit metrics");
    match metrics.wait().expect("metrics reply") {
        ClientResp::Metrics {
            reactor_shards,
            shard_served,
            shard_shed,
            ..
        } => {
            assert_eq!(reactor_shards, 2, "both reactor shards must report");
            assert_eq!(
                shard_shed.iter().sum::<u64>(),
                shed,
                "every shed must be attributed to its owning shard"
            );
            assert!(
                shard_served.iter().sum::<u64>() >= served,
                "served counters must cover the completed burst"
            );
        }
        other => panic!("expected Metrics, got {other:?}"),
    }

    shutdown(addr, handle);
}

#[test]
fn metrics_over_the_wire_report_latency_quantiles() {
    let k = 3;
    let queries = sample_points(2, 32, 53);
    let (tree, _) = tree_with_reference(400, &queries, k);
    let (addr, handle) = spawn_server(tree, ServeOptions::default());

    let mut client = PipelinedClient::connect(addr, Duration::from_secs(5)).expect("connect");
    let pending: Vec<_> = queries
        .iter()
        .map(|q| client.knn(q, k).expect("submit"))
        .collect();
    for reply in pending {
        reply.wait_neighbors().expect("knn reply");
    }
    let metrics = client.submit(&ClientReq::Metrics).expect("submit metrics");
    match metrics.wait().expect("metrics reply") {
        ClientResp::Metrics {
            latency_count,
            p50_nanos,
            p99_nanos,
            ..
        } => {
            assert!(
                latency_count >= queries.len() as u64,
                "every served request must be recorded, got {latency_count}"
            );
            assert!(p50_nanos > 0, "median latency cannot be zero nanoseconds");
            assert!(p99_nanos >= p50_nanos, "quantiles must be monotone");
        }
        other => panic!("expected Metrics, got {other:?}"),
    }

    shutdown(addr, handle);
}
