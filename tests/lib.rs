//! Shared fixtures for the cross-crate integration tests.
//!
//! The actual tests live in the sibling `*.rs` files declared as `[[test]]`
//! targets in this package's manifest.
