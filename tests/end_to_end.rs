//! End-to-end pipeline tests: text → triples → distance → FastMap →
//! distributed KD-tree → queries, across crate boundaries.

use std::sync::Arc;

use semtree_core::{
    AntinomyTable, InconsistencyFinder, QueryOptions, SemTree, Term, Triple, TripleStore,
};
use semtree_model::turtle;
use semtree_reqgen::{CorpusGenerator, GenConfig, GroundTruthOracle};
use semtree_vocab::wordnet;

/// Build an index over a turtle-parsed corpus and query it.
#[test]
fn turtle_corpus_to_index() {
    let src = "\
@prefix Fun: <urn:fun> .
@document REQ-1
('OBSW001', Fun:accept_cmd, CmdType:start-up)
('OBSW001', Fun:acquire_in, InType:pre-launch phase)
('OBSW001', Fun:send_msg, MsgType:power amplifier)
@document REQ-2
('OBSW001', Fun:block_cmd, CmdType:start-up)
";
    let mut store = TripleStore::new();
    let n = turtle::parse_into(&mut store, src).unwrap();
    assert_eq!(n, 4);

    let mut builder = SemTree::builder()
        .dimensions(3)
        .register_standard(Arc::new(wordnet::mini_taxonomy()));
    builder.add_store(&store);
    let index = builder.build().unwrap();
    assert_eq!(index.len(), 4);

    let query = turtle::parse_triple("('OBSW001', Fun:accept_cmd, CmdType:start-up)").unwrap();
    let hits = index.knn(&query, 2);
    assert_eq!(hits[0].triple, query);
    // The antinomic twin (same subject/object, sibling predicate) is next.
    assert_eq!(hits[1].triple.predicate.lexical(), "block_cmd");
    index.shutdown();
}

/// The full NLP path: prose documents in, inconsistency report out.
#[test]
fn prose_documents_to_inconsistency_report() {
    let mut builder = SemTree::builder()
        .dimensions(4)
        .register_standard(Arc::new(wordnet::mini_taxonomy()));
    builder.add_document_text(
        "A",
        "The OBSW009 shall accept the reboot command. \
         The OBSW009 shall send the heartbeat message.",
    );
    builder.add_document_text("B", "The OBSW009 shall block the reboot command.");
    builder.add_document_text("C", "The PSU002 shall enable the heater output.");
    let index = builder.build().unwrap();

    let mut antinomies = AntinomyTable::new();
    antinomies.declare("accept_cmd", "block_cmd");
    let finder = InconsistencyFinder::new(&index, antinomies);

    let subject = Triple::new(
        Term::literal("OBSW009"),
        Term::concept_in("Fun", "accept_cmd"),
        Term::concept_in("CmdType", "reboot"),
    );
    let confirmed = finder.confirmed(&subject, 4).unwrap();
    assert_eq!(confirmed.len(), 1);
    assert_eq!(confirmed[0].triple.predicate.lexical(), "block_cmd");
    index.shutdown();
}

/// The synthetic corpus flows through every layer, and the index-backed
/// sweep agrees with the exhaustive oracle.
#[test]
fn corpus_sweep_matches_oracle() {
    let corpus = CorpusGenerator::new(GenConfig::small().with_seed(99)).generate();
    let oracle = GroundTruthOracle::new(&corpus);

    let mut builder = SemTree::builder()
        .dimensions(6)
        .bucket_size(16)
        .register_standard(Arc::new(wordnet::mini_taxonomy()))
        .register_vocabulary("Fun", Arc::clone(corpus.domain.fun_taxonomy()));
    for (prefix, tax) in corpus.domain.parameter_taxonomies() {
        builder = builder.register_vocabulary(prefix.clone(), Arc::clone(tax));
    }
    builder.add_store(&corpus.store);
    let index = builder.build().unwrap();

    let found = InconsistencyFinder::new(&index, corpus.domain.antinomies().clone()).sweep(10);
    let truth = oracle.all_pairs();
    // The formal post-filter keeps precision at 1; k=10 recovers nearly all.
    for pair in &found {
        assert!(truth.contains(pair), "spurious pair {pair:?}");
    }
    assert!(
        found.len() * 10 >= truth.len() * 8,
        "recall too low: {}/{}",
        found.len(),
        truth.len()
    );
    index.shutdown();
}

/// Multi-partition indexes return the same answers as single-partition.
#[test]
fn partitioning_does_not_change_results() {
    let corpus = CorpusGenerator::new(GenConfig::small().with_seed(5)).generate();
    let build = |partitions: usize| {
        let mut b = SemTree::builder()
            .dimensions(4)
            .bucket_size(8)
            .partitions(partitions)
            .register_standard(Arc::new(wordnet::mini_taxonomy()))
            .register_vocabulary("Fun", Arc::clone(corpus.domain.fun_taxonomy()));
        for (prefix, tax) in corpus.domain.parameter_taxonomies() {
            b = b.register_vocabulary(prefix.clone(), Arc::clone(tax));
        }
        b.add_store(&corpus.store);
        b.build().unwrap()
    };
    let single = build(1);
    let multi = build(5);

    for (qid, _) in corpus.store.iter().take(25) {
        let q = single.triple(qid).unwrap().clone();
        let h1: Vec<f64> = single
            .knn(&q, 5)
            .iter()
            .map(|h| h.embedded_distance)
            .collect();
        let h5: Vec<f64> = multi
            .knn(&q, 5)
            .iter()
            .map(|h| h.embedded_distance)
            .collect();
        assert_eq!(h1.len(), h5.len());
        for (a, b) in h1.iter().zip(&h5) {
            assert!((a - b).abs() < 1e-9, "query {qid}: {h1:?} vs {h5:?}");
        }
    }
    single.shutdown();
    multi.shutdown();
}

/// Refined queries never rank worse than raw queries on the true distance.
#[test]
fn refinement_improves_or_preserves_semantic_ranking() {
    let corpus = CorpusGenerator::new(GenConfig::small().with_seed(17)).generate();
    let mut builder = SemTree::builder()
        .dimensions(4)
        .register_standard(Arc::new(wordnet::mini_taxonomy()))
        .register_vocabulary("Fun", Arc::clone(corpus.domain.fun_taxonomy()));
    for (prefix, tax) in corpus.domain.parameter_taxonomies() {
        builder = builder.register_vocabulary(prefix.clone(), Arc::clone(tax));
    }
    builder.add_store(&corpus.store);
    let index = builder.build().unwrap();
    let dist = index.distance().clone();

    for (qid, _) in corpus.store.iter().take(10) {
        let q = index.triple(qid).unwrap().clone();
        let raw = index.knn(&q, 5);
        let refined = index.knn_with(&q, 5, QueryOptions::refined());
        let sum_raw: f64 = raw.iter().map(|h| dist.distance(&q, &h.triple)).sum();
        let sum_ref: f64 = refined
            .iter()
            .map(|h| h.semantic_distance.expect("refined"))
            .sum();
        assert!(
            sum_ref <= sum_raw + 1e-9,
            "refined sum {sum_ref} worse than raw {sum_raw}"
        );
    }
    index.shutdown();
}

/// The whole store round-trips through the turtle serializer and produces
/// an identical index input.
#[test]
fn corpus_serialization_roundtrip() {
    let corpus = CorpusGenerator::new(GenConfig::small().with_seed(31)).generate();
    let rendered = turtle::write_store(&corpus.store);
    let mut reparsed = TripleStore::new();
    turtle::parse_into(&mut reparsed, &rendered).unwrap();
    assert_eq!(reparsed.len(), corpus.store.len());
    assert_eq!(
        reparsed.stats().occurrences,
        corpus.store.stats().occurrences
    );
    for (id, t) in corpus.store.iter() {
        assert_eq!(reparsed.get(id), Some(t));
    }
}

/// The paper's full scale: "several hundreds of documents from which about
/// 100,000 triples were extracted". Slow (FastMap over the whole corpus),
/// so ignored by default:
/// `cargo test -p semtree-integration --test end_to_end -- --ignored`
#[test]
#[ignore = "paper-scale run (~minutes); run explicitly with --ignored"]
fn paper_scale_pipeline() {
    let corpus = CorpusGenerator::new(GenConfig::paper_scale()).generate();
    let stats = corpus.store.stats();
    assert!(stats.occurrences >= 80_000, "paper-scale volume: {stats:?}");
    assert!(stats.documents >= 300);

    let mut builder = SemTree::builder()
        .dimensions(6)
        .bucket_size(32)
        .partitions(9)
        .register_standard(Arc::new(wordnet::mini_taxonomy()))
        .register_vocabulary("Fun", Arc::clone(corpus.domain.fun_taxonomy()));
    for (prefix, tax) in corpus.domain.parameter_taxonomies() {
        builder = builder.register_vocabulary(prefix.clone(), Arc::clone(tax));
    }
    builder.add_store(&corpus.store);
    let index = builder.build().unwrap();
    assert_eq!(index.len(), stats.triples);
    assert_eq!(index.tree_stats().partition_count(), 9);

    // Effectiveness spot-check at K = 10 over 50 queries.
    let oracle = GroundTruthOracle::new(&corpus);
    let mut hits_with_truth = 0usize;
    let mut recall_sum = 0.0;
    let mut cases = 0usize;
    for (id, _) in corpus.store.iter() {
        if cases >= 50 {
            break;
        }
        let Some(target) = oracle.target_triple(id) else {
            continue;
        };
        let truth = oracle.inconsistent_with(id);
        if truth.is_empty() {
            continue;
        }
        cases += 1;
        let retrieved: Vec<_> = index.knn(&target, 10).into_iter().map(|h| h.id).collect();
        let found = truth.iter().filter(|t| retrieved.contains(t)).count();
        if found > 0 {
            hits_with_truth += 1;
        }
        recall_sum += found as f64 / truth.len() as f64;
    }
    assert_eq!(cases, 50);
    assert!(
        hits_with_truth >= 25,
        "at least half the queries surface a true inconsistency ({hits_with_truth}/50)"
    );
    assert!(
        recall_sum / 50.0 > 0.3,
        "mean recall@10 = {}",
        recall_sum / 50.0
    );
    index.shutdown();
}
