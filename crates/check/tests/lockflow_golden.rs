//! Golden tests for the interprocedural rules: each injects a
//! violation into in-memory sources (crate names real, code synthetic)
//! and asserts the finding — rule id, location, and for the flow rules
//! the full file:line call chain.

use std::collections::BTreeSet;
use std::path::PathBuf;

use semtree_check::{analyze, collect_sources, lock_census, rules, SourceFile};

fn src(rel: &str, crate_name: &str, source: &str) -> SourceFile {
    SourceFile {
        rel: rel.to_string(),
        crate_name: crate_name.to_string(),
        source: source.to_string(),
    }
}

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/check sits two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn rank_inversion_across_a_call_reports_the_full_chain() {
    // conns (rank 32) is held across a call into a helper that takes
    // peers (rank 31) — invisible to the per-function rule, caught by
    // the interprocedural one.
    let files = [src(
        "crates/net/src/hub.rs",
        "net",
        r#"
struct Hub { conns: Mutex<u32>, peers: RwLock<u32> }
impl Hub {
    fn outer(&self) {
        let table = self.conns.lock();
        self.resolve_peer();
        drop(table);
    }
    fn resolve_peer(&self) {
        let p = self.peers.read();
        drop(p);
    }
}
"#,
    )];
    let findings: Vec<_> = analyze(&files)
        .into_iter()
        .filter(|f| f.rule == "lock-flow")
        .collect();
    assert_eq!(findings.len(), 1, "{findings:#?}");
    let f = &findings[0];
    assert_eq!(f.path, "crates/net/src/hub.rs");
    // The chain walks acquisition → call → acquisition with file:line
    // steps.
    assert!(
        f.message
            .contains("crates/net/src/hub.rs:5 acquires `conns`"),
        "{}",
        f.message
    );
    assert!(
        f.message
            .contains("crates/net/src/hub.rs:6 calls `resolve_peer`"),
        "{}",
        f.message
    );
    assert!(f.message.contains("acquires `peers`"), "{}", f.message);
    assert!(f.message.contains("rank 31"), "{}", f.message);
    assert!(f.message.contains("rank 32"), "{}", f.message);
}

#[test]
fn lock_held_across_recv_reports_direct_and_via_call_chain() {
    // Direct: guard live across rx.recv() in the same function.
    let direct = [src(
        "crates/net/src/hub.rs",
        "net",
        r#"
struct Hub { conns: Mutex<u32> }
impl Hub {
    fn pump(&self, rx: &Receiver<u32>) {
        let table = self.conns.lock();
        let _ = rx.recv();
        drop(table);
    }
}
"#,
    )];
    let findings: Vec<_> = analyze(&direct)
        .into_iter()
        .filter(|f| f.rule == "lock-blocking")
        .collect();
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert!(
        findings[0].message.contains("`recv`"),
        "{}",
        findings[0].message
    );
    assert!(
        findings[0].message.contains("`conns`"),
        "{}",
        findings[0].message
    );

    // Interprocedural: the guard is held in the caller, the recv sits
    // in the callee — the finding carries the chain.
    let chained = [src(
        "crates/net/src/hub.rs",
        "net",
        r#"
struct Hub { conns: Mutex<u32> }
impl Hub {
    fn outer(&self, rx: &Receiver<u32>) {
        let table = self.conns.lock();
        self.wait_for_reply(rx);
        drop(table);
    }
    fn wait_for_reply(&self, rx: &Receiver<u32>) {
        let _ = rx.recv();
    }
}
"#,
    )];
    let findings: Vec<_> = analyze(&chained)
        .into_iter()
        .filter(|f| f.rule == "lock-blocking")
        .collect();
    assert_eq!(findings.len(), 1, "{findings:#?}");
    let f = &findings[0];
    assert!(
        f.message
            .contains("crates/net/src/hub.rs:5 acquires `conns`"),
        "{}",
        f.message
    );
    assert!(
        f.message
            .contains("crates/net/src/hub.rs:6 calls `wait_for_reply`"),
        "{}",
        f.message
    );
    assert!(f.message.contains("`recv`"), "{}", f.message);
}

#[test]
fn undeclared_mutex_field_is_caught() {
    let files = [src(
        "crates/net/src/hub.rs",
        "net",
        "struct Hub { registry: Mutex<Vec<u32>> }\n",
    )];
    let findings: Vec<_> = analyze(&files)
        .into_iter()
        .filter(|f| f.rule == "undeclared-lock")
        .collect();
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].line, 1);
    assert!(
        findings[0].message.contains("`registry`"),
        "{}",
        findings[0].message
    );
}

#[test]
fn unsafe_without_safety_comment_is_caught_and_commented_is_clean() {
    let bare = [src(
        "crates/reactor/src/sys2.rs",
        "reactor",
        r#"
fn f(p: *const u8) -> u8 {
    unsafe { *p }
}
"#,
    )];
    let findings: Vec<_> = analyze(&bare)
        .into_iter()
        .filter(|f| f.rule == "unsafe-audit")
        .collect();
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].line, 3);

    let commented = [src(
        "crates/reactor/src/sys2.rs",
        "reactor",
        r#"
fn f(p: *const u8) -> u8 {
    // SAFETY: the caller guarantees `p` points into a live buffer.
    unsafe { *p }
}
"#,
    )];
    let findings: Vec<_> = analyze(&commented)
        .into_iter()
        .filter(|f| f.rule == "unsafe-audit")
        .collect();
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn truncating_len_cast_is_caught_in_codec_crates_only() {
    let body = r#"
fn encode(buf: &[u8], out: &mut Vec<u8>) {
    let n = buf.len() as u32;
    out.push(n as u8);
}
"#;
    let in_codec = [src("crates/net/src/codec2.rs", "net", body)];
    let findings: Vec<_> = analyze(&in_codec)
        .into_iter()
        .filter(|f| f.rule == "truncation-cast")
        .collect();
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert_eq!(findings[0].line, 3);

    // The same code outside the codec crates is fine (lengths there
    // are not wire-framing).
    let elsewhere = [src("crates/core/src/x.rs", "core", body)];
    let findings: Vec<_> = analyze(&elsewhere)
        .into_iter()
        .filter(|f| f.rule == "truncation-cast")
        .collect();
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn shim_wait_naming_its_lock_is_exempt_from_lock_blocking() {
    // The conc shim's condvar wait releases the mutex it names
    // atomically — holding `inner` across S::wait(.., &self.inner) is
    // the intended pattern, not a blocked holder.
    let files = [src(
        "crates/reactor/src/queue2.rs",
        "reactor",
        r#"
struct Q { inner: Mutex<u32>, cv: Condvar }
impl Q {
    fn pop(&self) -> u32 {
        let mut st = self.inner.lock();
        st = S::wait(&self.cv, st, &self.inner);
        drop(st);
        0
    }
}
"#,
    )];
    let findings: Vec<_> = analyze(&files)
        .into_iter()
        .filter(|f| f.rule == "lock-blocking")
        .collect();
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn guard_returning_helper_propagates_the_acquisition_to_callers() {
    // The lock_inflight pattern: a helper returns the guard, so the
    // caller's `let` binding holds the lock — here across a recv.
    let files = [src(
        "crates/dist/src/client.rs",
        "dist",
        r#"
fn lock_inflight(inflight: &Mutex<u32>) -> std::sync::MutexGuard<'_, u32> {
    inflight.lock()
}
fn outer(inflight: &Mutex<u32>, rx: &Receiver<u32>) {
    let st = lock_inflight(inflight);
    let _ = rx.recv();
    drop(st);
}
"#,
    )];
    let findings: Vec<_> = analyze(&files)
        .into_iter()
        .filter(|f| f.rule == "lock-blocking")
        .collect();
    assert_eq!(findings.len(), 1, "{findings:#?}");
    assert!(
        findings[0].message.contains("`inflight`"),
        "{}",
        findings[0].message
    );
    assert!(
        findings[0].message.contains("`recv`"),
        "{}",
        findings[0].message
    );
}

#[test]
fn lock_ranks_exactly_match_the_discovered_census() {
    // Self-sync: every (crate, lock) the parser discovers in the real
    // tree has a rank, and every rank entry corresponds to a real
    // declaration — LOCK_RANKS can go stale in neither direction.
    let files = collect_sources(&workspace_root()).expect("workspace sources");
    let discovered: BTreeSet<(String, String)> = lock_census(&files).into_iter().collect();
    let ranked: BTreeSet<(String, String)> = rules::LOCK_RANKS
        .iter()
        .map(|&(c, f, _)| (c.to_string(), f.to_string()))
        .collect();
    assert_eq!(
        ranked, discovered,
        "LOCK_RANKS out of sync with the locks actually declared in the tree"
    );
}
