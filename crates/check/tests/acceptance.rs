//! Acceptance tests for the lint gate, against the REAL workspace
//! sources: the pristine tree passes, and deliberately introducing (i)
//! an `unwrap()` in `fabric.rs` or (ii) an out-of-order nested lock
//! acquisition produces a non-zero outcome with file:line diagnostics.

use std::path::PathBuf;

use semtree_check::lexer::lex;
use semtree_check::{check_workspace, rules};

/// The real network fabric source, compiled into the test so injections
/// operate on production code, not a fixture.
const FABRIC: &str = include_str!("../../net/src/fabric.rs");

/// 1-indexed line of the LAST occurrence of `needle` (injections are
/// appended, so the last hit is the injected one even when the pristine
/// source contains the same text).
fn line_of(haystack: &str, needle: &str) -> u32 {
    let lines: Vec<&str> = haystack.lines().collect();
    lines
        .iter()
        .rposition(|l| l.contains(needle))
        .map(|i| i as u32 + 1)
        .expect("needle present in injected source")
}

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/check sits two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn pristine_workspace_is_clean() {
    let outcome = check_workspace(&workspace_root()).expect("driver runs");
    assert!(
        outcome.is_clean(),
        "the committed tree must pass its own gate:\n{:#?}",
        outcome.findings
    );
    assert!(
        outcome.files_checked > 50,
        "should scan the whole workspace"
    );
}

#[test]
fn pristine_fabric_has_no_panic_sites() {
    let f = rules::no_panics("crates/net/src/fabric.rs", &lex(FABRIC));
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn injected_unwrap_in_fabric_is_caught_with_file_and_line() {
    // Append a production function with an unwrap — the shape of the
    // regression the gate exists to stop.
    let injected =
        format!("{FABRIC}\nfn regressed(x: Option<u32>) -> u32 {{\n    x.unwrap()\n}}\n");
    let f = rules::no_panics("crates/net/src/fabric.rs", &lex(&injected));
    assert_eq!(f.len(), 1, "{f:?}");
    let expected_line = line_of(&injected, "x.unwrap()");
    assert_eq!(
        f[0].line, expected_line,
        "diagnostic must carry the real line"
    );
    assert_eq!(f[0].path, "crates/net/src/fabric.rs");
    assert_eq!(f[0].rule, "no-panics");
    assert!(f[0].message.contains(".unwrap()"));
    // And the allowlist cannot hide it: fabric.rs has no entry.
    let allow = std::fs::read_to_string(workspace_root().join("check.allow")).unwrap();
    assert!(
        !allow.contains("fabric.rs"),
        "fabric.rs must stay off the allowlist"
    );
}

#[test]
fn injected_out_of_order_nested_lock_is_caught_with_file_and_line() {
    // conns (rank 32) held while taking peers (rank 31): inverted.
    let injected = format!(
        "{FABRIC}\nimpl Broken {{\n    fn regressed(&self) {{\n        let table = self.conns.lock();\n        let peers = self.peers.read();\n        drop((table, peers));\n    }}\n}}\n"
    );
    let f = rules::lock_order("net", "crates/net/src/fabric.rs", &lex(&injected));
    assert_eq!(f.len(), 1, "{f:?}");
    let expected_line = line_of(&injected, "self.peers.read()");
    assert_eq!(f[0].line, expected_line);
    assert_eq!(f[0].rule, "lock-order");
    assert!(
        f[0].message.contains("`peers` (rank 31)"),
        "{}",
        f[0].message
    );
    assert!(
        f[0].message.contains("`conns` (rank 32"),
        "{}",
        f[0].message
    );
}

#[test]
fn pristine_fabric_lock_usage_follows_the_hierarchy() {
    let f = rules::lock_order("net", "crates/net/src/fabric.rs", &lex(FABRIC));
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn removing_a_codec_case_is_caught() {
    let msg = include_str!("../../net/src/msg.rs");
    let tests = include_str!("../../net/tests/codec_roundtrip.rs");
    // Full suite covers everything.
    let f = rules::codec_coverage(
        "crates/net/src/msg.rs",
        &lex(msg),
        "crates/net/tests/codec_roundtrip.rs",
        &lex(tests),
    );
    assert!(f.is_empty(), "{f:?}");
    // Dropping every Rejoin mention leaves a gap the rule reports.
    let gutted = tests.replace("NetMsg::Rejoin", "NetMsg::Shutdown; // gutted");
    let f = rules::codec_coverage(
        "crates/net/src/msg.rs",
        &lex(msg),
        "crates/net/tests/codec_roundtrip.rs",
        &lex(&gutted),
    );
    assert_eq!(f.len(), 1, "{f:?}");
    assert!(f[0].message.contains("NetMsg::Rejoin"));
    assert_eq!(f[0].rule, "codec-coverage");
}

#[test]
fn boxed_error_in_public_api_is_caught() {
    let injected = format!(
        "{FABRIC}\npub fn regressed() -> Result<(), Box<dyn std::error::Error>> {{\n    Ok(())\n}}\n"
    );
    let f = rules::no_boxed_errors("crates/net/src/fabric.rs", &lex(&injected));
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].line, line_of(&injected, "fn regressed"));
    assert_eq!(f[0].rule, "no-boxed-errors");
}
