//! The workspace invariants `semtree-check` enforces.
//!
//! Each rule is a pure function from lexed tokens to findings, so the
//! acceptance tests can run them against modified in-memory sources
//! without touching the tree.

use crate::lexer::{matching_brace, test_mask, Kind, Tok};

/// One diagnostic: a rule violation anchored to a file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-indexed line the violation starts on.
    pub line: u32,
    /// Stable rule identifier (`no-panics`, `lock-order`, ...).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// The declared lock hierarchy. Locks must be acquired in strictly
/// ascending rank within a function; the ordering across crates is
/// `cluster → dist → net → wal → par → reactor` (see DESIGN.md
/// §"Concurrency model & verification"). Ranks are spaced so new locks
/// can slot in without renumbering.
pub const LOCK_RANKS: &[(&str, &str, u32)] = &[
    // crates/cluster
    ("cluster", "nodes", 10),
    ("cluster", "handles", 11),
    ("cluster", "router", 12),
    ("cluster", "factory", 13),
    ("cluster", "generation", 14),
    // crates/dist — the pipelined client's correlation map. Submitters
    // and the demux reader take it briefly and call nothing ranked
    // while holding it.
    ("dist", "inflight", 20),
    // The coordinator's registry of lock-free partition read handles.
    // A leaf lock: register/lookup copy an Arc in and out and call
    // nothing ranked while holding it.
    ("dist", "read_handles", 21),
    // crates/net
    ("net", "peers", 31),
    ("net", "conns", 32),
    ("net", "pending", 33),
    ("net", "writer", 34),
    ("net", "shutdown_rx", 35),
    // crates/wal
    ("wal", "sink", 40),
    ("wal", "inner", 41),
    // crates/colz holds no locks at all: every codec is a pure function
    // over byte slices, so the crate is a lock-free leaf of the
    // hierarchy — it may be called with any rank held.
    // crates/par — leaf locks: pool internals never call back into
    // ranked subsystems while holding a deque or result-buffer lock.
    ("par", "deques", 50),
    ("par", "parts", 51),
    ("par", "feed", 52),
    // crates/distance
    ("distance", "shards", 60),
    // crates/reactor — the serving fabric's locks rank below everything
    // else: executors call into the tree (and through it every ranked
    // subsystem) only while holding *no* reactor lock.
    ("reactor", "inner", 70),
    ("reactor", "completions", 71),
    // Each shard's socket-handoff mailbox. A leaf: shard 0 pushes an
    // accepted socket and the owning shard drains it; neither side
    // calls anything ranked while holding it.
    ("reactor", "inbox", 72),
];

/// Locks that are *allowed* to be held across blocking socket IO: the
/// per-connection write serialization leaves. Holding `net::writer`
/// across `write_frame` is the design (one frame at a time per
/// socket); the lock guards the stream itself and nothing ranked is
/// ever taken under it.
pub const IO_LOCK_EXEMPT: &[(&str, &str)] = &[("net", "writer")];

fn rank_of(crate_name: &str, field: &str) -> Option<u32> {
    LOCK_RANKS
        .iter()
        .find(|&&(c, f, _)| c == crate_name && f == field)
        .map(|&(_, _, r)| r)
}

// ---------------------------------------------------------------------
// Rule 1: no `unwrap()` / `expect()` / `panic!` in non-test code.
// ---------------------------------------------------------------------

/// Flag every `.unwrap()`, `.expect(`, and `panic!` outside test code.
/// Known-justified sites are burned down via `check.allow`, not here.
pub fn no_panics(path: &str, toks: &[Tok]) -> Vec<Finding> {
    let mask = test_mask(toks);
    let mut findings = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if mask[i] || t.kind != Kind::Ident {
            continue;
        }
        let hit = match t.text.as_str() {
            "unwrap" | "expect" => {
                i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            }
            "panic" => toks.get(i + 1).is_some_and(|n| n.is_punct('!')),
            _ => false,
        };
        if hit {
            let what = if t.text == "panic" {
                "panic!".to_string()
            } else {
                format!(".{}()", t.text)
            };
            findings.push(Finding {
                path: path.to_string(),
                line: t.line,
                rule: "no-panics",
                message: format!(
                    "{what} in non-test code — return a typed error, or add a \
                     justified entry to check.allow"
                ),
            });
        }
    }
    findings
}

// ---------------------------------------------------------------------
// Rule 2: lock acquisitions follow the declared hierarchy.
// ---------------------------------------------------------------------

/// A detected lock acquisition in the token stream.
pub(crate) struct Acquisition {
    /// Index of the `lock`/`read`/`write` (or `S::lock`-style callee)
    /// token.
    pub(crate) field: String,
    pub(crate) rank: u32,
    pub(crate) line: u32,
    /// Token index just past the acquisition's closing `)`.
    pub(crate) end: usize,
}

/// Detect `self.<field>.lock()/.read()/.write()` and
/// `S::lock(&self.<field>)`-shaped acquisitions of ranked fields.
/// Returns `None` when token `i` is not such an acquisition.
pub(crate) fn acquisition_at(crate_name: &str, toks: &[Tok], i: usize) -> Option<Acquisition> {
    let t = &toks[i];
    if t.kind != Kind::Ident {
        return None;
    }
    let is_method = matches!(t.text.as_str(), "lock" | "read" | "write");
    if !is_method {
        return None;
    }
    let open = i + 1;
    if !toks.get(open).is_some_and(|n| n.is_punct('(')) {
        return None;
    }
    let close = matching_paren(toks, open)?;
    // Shape A: `<field> . lock ( )` — the receiver field sits two back.
    if i >= 2 && toks[i - 1].is_punct('.') && toks[i - 2].kind == Kind::Ident {
        let field = &toks[i - 2].text;
        if let Some(rank) = rank_of(crate_name, field) {
            return Some(Acquisition {
                field: field.clone(),
                rank,
                line: t.line,
                end: close + 1,
            });
        }
    }
    // Shape B: `S :: lock ( & self . <field> )` — shim-generic code.
    // The field is the last identifier reached through a `.` inside the
    // argument list.
    if i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':') {
        let mut field: Option<&str> = None;
        for j in (open + 1)..close {
            if toks[j].kind == Kind::Ident && toks[j - 1].is_punct('.') {
                field = Some(&toks[j].text);
            }
        }
        if let Some(field) = field {
            if let Some(rank) = rank_of(crate_name, field) {
                return Some(Acquisition {
                    field: field.to_string(),
                    rank,
                    line: t.line,
                    end: close + 1,
                });
            }
        }
    }
    None
}

fn matching_paren(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// A guard currently held, for nesting checks.
struct HeldGuard {
    field: String,
    rank: u32,
    line: u32,
    /// Brace depth of the block the guard lives in; it drops when the
    /// block closes.
    depth: u32,
}

/// Flag nested acquisitions that violate the rank order: while a guard
/// of rank `r` is live, acquiring any lock of rank `<= r` is an error
/// (equal rank means re-acquiring the same level — self-deadlock for a
/// mutex).
///
/// Guard liveness is decided lexically: an acquisition whose call is
/// immediately followed by `;` inside a `let` statement binds a guard
/// that lives to the end of the enclosing block; anything else (chained
/// `.len()`, match scrutinee, argument position) is a temporary that
/// drops at the end of the statement.
pub fn lock_order(crate_name: &str, path: &str, toks: &[Tok]) -> Vec<Finding> {
    let mask = test_mask(toks);
    let mut findings = Vec::new();
    let mut held: Vec<HeldGuard> = Vec::new();
    let mut depth: u32 = 0;
    let mut stmt_start = 0usize; // token index where the current statement began
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
            stmt_start = i + 1;
        } else if t.is_punct('}') {
            held.retain(|g| g.depth < depth);
            depth = depth.saturating_sub(1);
            stmt_start = i + 1;
        } else if t.is_punct(';') {
            stmt_start = i + 1;
        } else if !mask[i] {
            if let Some(acq) = acquisition_at(crate_name, toks, i) {
                // Ordering check against every live guard.
                for g in &held {
                    if acq.rank <= g.rank && acq.field != g.field {
                        findings.push(Finding {
                            path: path.to_string(),
                            line: acq.line,
                            rule: "lock-order",
                            message: format!(
                                "acquired `{}` (rank {}) while holding `{}` (rank {}, \
                                 taken at line {}) — the hierarchy requires strictly \
                                 ascending ranks (cluster → dist → net → wal → par → reactor)",
                                acq.field, acq.rank, g.field, g.rank, g.line
                            ),
                        });
                    } else if acq.field == g.field {
                        findings.push(Finding {
                            path: path.to_string(),
                            line: acq.line,
                            rule: "lock-order",
                            message: format!(
                                "re-acquired `{}` (rank {}) while already holding it \
                                 (taken at line {}) — self-deadlock",
                                acq.field, acq.rank, g.line
                            ),
                        });
                    }
                }
                // Liveness: `let ... = <acq>;` binds a guard for the
                // rest of the block.
                let is_binding = toks[stmt_start..i].iter().any(|t| t.is_ident("let"))
                    && toks.get(acq.end).is_some_and(|n| n.is_punct(';'));
                if is_binding {
                    held.push(HeldGuard {
                        field: acq.field,
                        rank: acq.rank,
                        line: acq.line,
                        depth,
                    });
                }
                i = acq.end;
                continue;
            }
        }
        i += 1;
    }
    findings
}

// ---------------------------------------------------------------------
// Rule 3: every NetMsg variant has codec round-trip coverage.
// ---------------------------------------------------------------------

/// Parse the variant names of `pub enum NetMsg` out of `msg.rs` tokens.
pub fn net_msg_variants(toks: &[Tok]) -> Vec<(String, u32)> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("enum") && toks.get(i + 1).is_some_and(|t| t.is_ident("NetMsg")) {
            // Skip generics to the enum body.
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct('{') {
                j += 1;
            }
            let close = match matching_brace(toks, j) {
                Some(c) => c,
                None => break,
            };
            // Walk the body at depth 1; a variant name is an identifier
            // directly inside the enum braces, and its optional
            // `{...}`/`(...)` body is skipped wholesale.
            let mut k = j + 1;
            while k < close {
                let t = &toks[k];
                if t.kind == Kind::Ident {
                    if t.text == "derive" || t.text == "doc" {
                        k += 1;
                        continue;
                    }
                    variants.push((t.text.clone(), t.line));
                    // Skip to the comma ending this variant, honoring
                    // nested braces/parens/brackets.
                    let mut d = 0i32;
                    while k < close {
                        let u = &toks[k];
                        if u.is_punct('{') || u.is_punct('(') || u.is_punct('[') {
                            d += 1;
                        } else if u.is_punct('}') || u.is_punct(')') || u.is_punct(']') {
                            d -= 1;
                        } else if u.is_punct(',') && d == 0 {
                            break;
                        }
                        k += 1;
                    }
                } else if t.is_punct('#') && toks.get(k + 1).is_some_and(|n| n.is_punct('[')) {
                    // Variant attribute: skip it.
                    let mut d = 0i32;
                    k += 1;
                    while k < close {
                        if toks[k].is_punct('[') {
                            d += 1;
                        } else if toks[k].is_punct(']') {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        k += 1;
                    }
                }
                k += 1;
            }
            return variants;
        }
        i += 1;
    }
    variants
}

/// Require every `NetMsg` variant (parsed from `msg_toks`) to be
/// mentioned as `NetMsg::<Variant>` in the round-trip test file.
pub fn codec_coverage(
    msg_path: &str,
    msg_toks: &[Tok],
    test_path: &str,
    test_toks: &[Tok],
) -> Vec<Finding> {
    let variants = net_msg_variants(msg_toks);
    let mut findings = Vec::new();
    if variants.is_empty() {
        findings.push(Finding {
            path: msg_path.to_string(),
            line: 1,
            rule: "codec-coverage",
            message: "could not locate `enum NetMsg` — the codec-coverage rule \
                      needs updating"
                .to_string(),
        });
        return findings;
    }
    for (variant, line) in variants {
        let covered = test_toks.windows(4).any(|w| {
            w[0].is_ident("NetMsg")
                && w[1].is_punct(':')
                && w[2].is_punct(':')
                && w[3].is_ident(&variant)
        });
        if !covered {
            findings.push(Finding {
                path: msg_path.to_string(),
                line,
                rule: "codec-coverage",
                message: format!(
                    "NetMsg::{variant} has no round-trip case in {test_path} — \
                     every wire variant must be encode/decode tested"
                ),
            });
        }
    }
    findings
}

// ---------------------------------------------------------------------
// Rule 4: no `Box<dyn Error>` in public APIs.
// ---------------------------------------------------------------------

/// Flag `Box<dyn ...Error...>` appearing in `pub` items: public crate
/// APIs must expose typed errors.
pub fn no_boxed_errors(path: &str, toks: &[Tok]) -> Vec<Finding> {
    let mask = test_mask(toks);
    let mut findings = Vec::new();
    for i in 0..toks.len() {
        if mask[i] || !toks[i].is_ident("Box") {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|t| t.is_punct('<')) {
            continue;
        }
        if !toks.get(i + 2).is_some_and(|t| t.is_ident("dyn")) {
            continue;
        }
        // A boxed closure (`Box<dyn FnOnce(Result<_, ClusterError>)>`)
        // is a completion callback, not an error type — the typed error
        // lives inside its signature, which is exactly what this rule
        // wants. Only bare boxed trait objects are suspect.
        if toks
            .get(i + 3)
            .is_some_and(|t| t.is_ident("Fn") || t.is_ident("FnMut") || t.is_ident("FnOnce"))
        {
            continue;
        }
        // Scan the generic argument to its closing `>` looking for an
        // Error-ish trait name.
        let mut depth = 0i32;
        let mut has_error = false;
        let mut j = i + 1;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.kind == Kind::Ident && t.text.ends_with("Error") {
                has_error = true;
            }
            j += 1;
        }
        if !has_error {
            continue;
        }
        // Only public items count: walk back to the item keyword and
        // check for a bare `pub` (pub(crate)/pub(super) are internal).
        if item_is_public(toks, i) {
            findings.push(Finding {
                path: path.to_string(),
                line: toks[i].line,
                rule: "no-boxed-errors",
                message: "`Box<dyn Error>` in a public API — expose a typed error \
                          enum instead"
                    .to_string(),
            });
        }
    }
    findings
}

/// Walk back from token `at` to the nearest item keyword and report
/// whether that item is `pub` (bare, not `pub(...)`).
fn item_is_public(toks: &[Tok], at: usize) -> bool {
    let mut i = at;
    while i > 0 {
        i -= 1;
        let t = &toks[i];
        if t.kind == Kind::Ident
            && matches!(
                t.text.as_str(),
                "fn" | "type" | "struct" | "enum" | "trait" | "impl" | "static" | "const"
            )
        {
            if i == 0 {
                return false;
            }
            if toks[i - 1].is_ident("pub") {
                return true;
            }
            // `pub ( crate ) fn` — restricted visibility, not public.
            if toks[i - 1].is_punct(')') {
                let mut k = i - 1;
                while k > 0 && !toks[k].is_punct('(') {
                    k -= 1;
                }
                return false_if_restricted(toks, k);
            }
            return false;
        }
        // Don't walk past a statement/block boundary without finding an
        // item keyword — the Box is in an expression position then, and
        // expression-position boxes inside private fns were already
        // excluded by the keyword search failing.
        if t.is_punct('{') || t.is_punct('}') || t.is_punct(';') {
            return false;
        }
    }
    false
}

fn false_if_restricted(toks: &[Tok], open_paren: usize) -> bool {
    // `pub(crate)` etc. — treat any parenthesized visibility as
    // non-public API surface.
    open_paren == 0 || !toks[open_paren - 1].is_ident("pub")
}

// ---------------------------------------------------------------------
// Rule 5: every Mutex/RwLock declaration is in the rank hierarchy.
// ---------------------------------------------------------------------

/// Crates whose lock declarations are not subject to the hierarchy:
/// `conc` *defines* the Mutex/RwLock wrappers and the model-checker
/// internals, and `check` is the gate itself.
pub const LOCK_DISCOVERY_EXEMPT_CRATES: &[&str] = &["conc", "check"];

/// Flag `Mutex`/`RwLock` declarations (struct fields and `let`-bound
/// locals, as discovered by the parser) that have no entry in
/// [`LOCK_RANKS`] — new locks cannot dodge the hierarchy silently.
pub fn undeclared_locks(
    crate_name: &str,
    path: &str,
    decls: &[crate::parse::LockDecl],
) -> Vec<Finding> {
    if LOCK_DISCOVERY_EXEMPT_CRATES.contains(&crate_name) {
        return Vec::new();
    }
    decls
        .iter()
        .filter(|d| rank_of(crate_name, &d.name).is_none())
        .map(|d| Finding {
            path: path.to_string(),
            line: d.line,
            rule: "undeclared-lock",
            message: format!(
                "{} `{}` holds a Mutex/RwLock but has no rank in LOCK_RANKS \
                 (crates/check/src/rules.rs) — every lock must join the declared \
                 hierarchy",
                if d.is_field { "field" } else { "local" },
                d.name
            ),
        })
        .collect()
}

// ---------------------------------------------------------------------
// Rule 6: every `unsafe` block/impl/fn carries a `// SAFETY:` comment.
// ---------------------------------------------------------------------

/// Require a `// SAFETY:` comment on (or directly above) every
/// non-test `unsafe` site. The comment must state the argument for
/// soundness; its presence is checked on the raw source because the
/// lexer drops comments.
pub fn unsafe_audit(path: &str, source: &str, sites: &[crate::parse::UnsafeSite]) -> Vec<Finding> {
    let lines: Vec<&str> = source.lines().collect();
    let mut findings = Vec::new();
    for site in sites {
        let at = site.line as usize - 1; // 0-indexed
        let mut justified = lines.get(at).is_some_and(|l| l.contains("SAFETY:"));
        // Walk up through the contiguous run of comments, attributes
        // and blank lines directly above the site.
        let mut j = at;
        while !justified && j > 0 {
            j -= 1;
            let text = lines[j].trim_start();
            if text.starts_with("//") || text.starts_with("#[") || text.is_empty() {
                justified = text.contains("SAFETY:");
                if justified {
                    break;
                }
            } else {
                break;
            }
        }
        if !justified {
            findings.push(Finding {
                path: path.to_string(),
                line: site.line,
                rule: "unsafe-audit",
                message: format!(
                    "`unsafe` {} without a `// SAFETY:` comment — state why every \
                     invariant the unsafe operation relies on holds",
                    site.kind
                ),
            });
        }
    }
    findings
}

// ---------------------------------------------------------------------
// Rule 7: no truncating `as` casts on length expressions in codec
// paths.
// ---------------------------------------------------------------------

/// Crates whose byte-level codecs must never silently truncate a
/// length: wire framing, WAL records, columnar blocks.
const CODEC_CRATES: &[&str] = &["net", "wal", "colz"];

/// Identifiers that read as a length/size computation.
const LEN_IDENTS: &[&str] = &["len", "encoded_len", "wire_size"];

/// Flag `<len-expr> as u32` / `as u16` in codec crates: a payload
/// larger than the target type silently wraps and corrupts the frame.
/// Use `u32::try_from(..)` with a typed error instead (see
/// `net::frame::write_frame` for the pattern).
pub fn truncation_casts(crate_name: &str, path: &str, toks: &[Tok]) -> Vec<Finding> {
    if !CODEC_CRATES.contains(&crate_name) {
        return Vec::new();
    }
    let mask = test_mask(toks);
    let mut findings = Vec::new();
    for i in 0..toks.len() {
        if mask[i] || !toks[i].is_ident("as") {
            continue;
        }
        let Some(target) = toks.get(i + 1) else {
            continue;
        };
        if !(target.is_ident("u32") || target.is_ident("u16")) {
            continue;
        }
        // The cast source must end in `<len-ident>( .. )`.
        if i == 0 || !toks[i - 1].is_punct(')') {
            continue;
        }
        let Some(open) = backward_matching_paren(toks, i - 1) else {
            continue;
        };
        if open == 0 {
            continue;
        }
        let callee = &toks[open - 1];
        if callee.kind == Kind::Ident && LEN_IDENTS.contains(&callee.text.as_str()) {
            findings.push(Finding {
                path: path.to_string(),
                line: toks[i].line,
                rule: "truncation-cast",
                message: format!(
                    "`{}() as {}` silently truncates oversized values in a codec \
                     path — use `{}::try_from(..)` and return a typed error",
                    callee.text, target.text, target.text
                ),
            });
        }
    }
    findings
}

/// Index of the `(` matching the `)` at `close`, scanning backwards.
fn backward_matching_paren(toks: &[Tok], close: usize) -> Option<usize> {
    let mut depth = 0i32;
    for i in (0..=close).rev() {
        if toks[i].is_punct(')') {
            depth += 1;
        } else if toks[i].is_punct('(') {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn no_panics_flags_production_sites_only() {
        let src = r#"
            fn prod(x: Option<u32>) -> u32 {
                let a = x.unwrap();
                let b = x.expect("msg");
                if a == 0 { panic!("boom"); }
                b
            }
            #[cfg(test)]
            mod tests {
                fn t(x: Option<u32>) { x.unwrap(); panic!("fine in tests"); }
            }
        "#;
        let f = no_panics("lib.rs", &lex(src));
        assert_eq!(f.len(), 3, "{f:?}");
        assert_eq!(f[0].line, 3);
        assert_eq!(f[1].line, 4);
        assert_eq!(f[2].line, 5);
    }

    #[test]
    fn no_panics_ignores_unwrap_or_else_and_comments() {
        let src = r#"
            fn prod(x: std::sync::Mutex<u32>) -> u32 {
                // x.unwrap() would panic! here
                *x.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
            }
        "#;
        assert!(no_panics("lib.rs", &lex(src)).is_empty());
    }

    #[test]
    fn lock_order_accepts_ascending_and_flags_descending() {
        let ok = r#"
            fn fine(&self) {
                let peers = self.peers.read();
                let mut conns = self.conns.lock();
                drop((peers, conns));
            }
        "#;
        assert!(lock_order("net", "fabric.rs", &lex(ok)).is_empty());

        let bad = r#"
            fn broken(&self) {
                let mut conns = self.conns.lock();
                let peers = self.peers.read();
                drop((peers, conns));
            }
        "#;
        let f = lock_order("net", "fabric.rs", &lex(bad));
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 4);
        assert!(f[0].message.contains("`peers` (rank 31)"));
        assert!(f[0].message.contains("`conns` (rank 32"));
    }

    #[test]
    fn lock_order_treats_chained_calls_as_temporaries() {
        // peers guard is dropped at end of statement; taking conns after
        // is fine even though ranks would forbid the reverse nesting.
        let src = r#"
            fn fine(&self) {
                let n = self.conns.lock().len();
                let p = self.peers.read().len();
                drop((n, p));
            }
        "#;
        assert!(lock_order("net", "fabric.rs", &lex(src)).is_empty());
    }

    #[test]
    fn lock_order_understands_shim_generic_acquisitions() {
        let bad = r#"
            fn broken(&self) {
                let mut inner = S::lock(&self.inner);
                let mut sink = S::lock(&self.sink);
            }
        "#;
        let f = lock_order("wal", "ordering.rs", &lex(bad));
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`sink` (rank 40)"));
    }

    #[test]
    fn lock_order_flags_self_deadlock() {
        let bad = r#"
            fn broken(&self) {
                let a = self.inner.lock();
                let b = self.inner.lock();
            }
        "#;
        let f = lock_order("wal", "log.rs", &lex(bad));
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("self-deadlock"));
    }

    #[test]
    fn lock_order_releases_guards_at_block_end() {
        let src = r#"
            fn fine(&self) {
                {
                    let mut conns = self.conns.lock();
                    drop(conns);
                }
                let peers = self.peers.read();
                drop(peers);
            }
        "#;
        assert!(lock_order("net", "fabric.rs", &lex(src)).is_empty());
    }

    #[test]
    fn io_reads_are_not_lock_acquisitions() {
        let src = r#"
            fn fine(&self, stream: &mut TcpStream) {
                let mut conns = self.conns.lock();
                let n = stream.read(&mut buf);
            }
        "#;
        assert!(lock_order("net", "fabric.rs", &lex(src)).is_empty());
    }

    #[test]
    fn variants_parse_and_coverage_reports_gaps() {
        let msg = r#"
            pub enum NetMsg<B, R> {
                Hello { process_index: u32, listen_port: u16 },
                Request { call_id: u64, target: u32, body: B },
                Shutdown,
                Rejoin { partitions: Vec<u32> },
            }
        "#;
        let toks = lex(msg);
        let names: Vec<String> = net_msg_variants(&toks)
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(names, ["Hello", "Request", "Shutdown", "Rejoin"]);

        let tests = r#"
            fn cases() { let _ = (NetMsg::Hello { process_index: 0, listen_port: 0 }, NetMsg::Shutdown); }
        "#;
        let f = codec_coverage("msg.rs", &toks, "codec_roundtrip.rs", &lex(tests));
        let missing: Vec<&str> = f
            .iter()
            .map(|f| f.message.split_whitespace().next().unwrap())
            .collect();
        assert_eq!(missing, ["NetMsg::Request", "NetMsg::Rejoin"]);
    }

    #[test]
    fn undeclared_locks_flags_unranked_fields_only() {
        let parsed = crate::parse::ParsedFile::parse(
            "crates/net/src/fabric.rs",
            "net",
            r#"
            struct Conn {
                writer: Mutex<TcpStream>,
                rogue: Mutex<u32>,
            }
            "#,
        );
        let f = undeclared_locks("net", "crates/net/src/fabric.rs", &parsed.lock_decls);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("`rogue`"));

        let conc = crate::parse::ParsedFile::parse(
            "crates/conc/src/sync.rs",
            "conc",
            "struct Mutex<T> { inner: std::sync::Mutex<T> }",
        );
        assert!(undeclared_locks("conc", "crates/conc/src/sync.rs", &conc.lock_decls).is_empty());
    }

    #[test]
    fn unsafe_audit_accepts_safety_comments_above_or_inline() {
        let ok = r#"
fn f() {
    // SAFETY: fds points to len valid pollfds for the whole call.
    let rc = unsafe { poll(fds, len, timeout) };
}
fn g() {
    let rc = unsafe { poll(a, b, c) }; // SAFETY: same as above.
}
"#;
        let parsed = crate::parse::ParsedFile::parse("sys.rs", "reactor", ok);
        assert!(unsafe_audit("sys.rs", ok, &parsed.unsafe_sites).is_empty());

        let bad = "fn f() {\n    let rc = unsafe { poll(a, b, c) };\n}\n";
        let parsed = crate::parse::ParsedFile::parse("sys.rs", "reactor", bad);
        let f = unsafe_audit("sys.rs", bad, &parsed.unsafe_sites);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 2);
        assert!(f[0].message.contains("SAFETY"));
    }

    #[test]
    fn truncation_casts_flag_len_casts_in_codec_crates_only() {
        let src = r#"
            fn encode(payload: &[u8], frame: &mut Vec<u8>) {
                (payload.len() as u32).encode(frame);
                let ok = u32::try_from(payload.len());
                let id = counter.fetch_add(1, Ordering::SeqCst) as u32;
                let bits = (i % 3) as u32;
            }
        "#;
        let f = truncation_casts("wal", "log.rs", &lex(src));
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 3);
        assert!(f[0].message.contains("try_from"));
        // Same source outside a codec crate: not a finding.
        assert!(truncation_casts("core", "lib.rs", &lex(src)).is_empty());
    }

    #[test]
    fn boxed_errors_flagged_only_in_public_items() {
        let src = r#"
            pub fn bad() -> Result<(), Box<dyn std::error::Error>> { Ok(()) }
            fn private_ok() -> Result<(), Box<dyn std::error::Error>> { Ok(()) }
            pub(crate) fn crate_ok() -> Result<(), Box<dyn std::error::Error>> { Ok(()) }
            pub fn fine() -> Result<(), Box<dyn Fn() -> u32>> { Ok(()) }
        "#;
        let f = no_boxed_errors("lib.rs", &lex(src));
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 2);
    }
}
