//! CLI driver: `cargo run -p semtree-check [--root DIR] [--json PATH]
//! [--explain RULE]`.
//!
//! Exit codes: 0 clean, 1 findings, 2 driver error (I/O, malformed
//! allowlist, unexpected layout). With `--json PATH` the outcome is
//! also written as a SARIF-shaped report for CI artifacts, and when
//! `GITHUB_ACTIONS` is set each finding is echoed as a
//! `::error file=..,line=..::` workflow annotation.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = workspace_root();
    let mut json_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("semtree-check: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--json" => match args.next() {
                Some(path) => json_path = Some(PathBuf::from(path)),
                None => {
                    eprintln!("semtree-check: --json needs an output path");
                    return ExitCode::from(2);
                }
            },
            "--explain" => {
                return match args.next() {
                    Some(rule) => match semtree_check::report::explain(&rule) {
                        Some(text) => {
                            println!("{rule}\n\n{text}");
                            ExitCode::SUCCESS
                        }
                        None => {
                            eprintln!(
                                "semtree-check: unknown rule `{rule}` (known: {})",
                                rule_list()
                            );
                            ExitCode::from(2)
                        }
                    },
                    None => {
                        eprintln!("semtree-check: --explain needs a rule id ({})", rule_list());
                        ExitCode::from(2)
                    }
                };
            }
            "--help" | "-h" => {
                println!(
                    "semtree-check: workspace invariant lint gate\n\
                     \n\
                     usage: cargo run -p semtree-check [-- OPTIONS]\n\
                     \n\
                     options:\n\
                     \x20 --root DIR      workspace root (default: two levels above this crate)\n\
                     \x20 --json PATH     also write a SARIF-shaped JSON report to PATH\n\
                     \x20 --explain RULE  print what a rule checks and how to fix findings\n\
                     \n\
                     Rules: {}.\n\
                     Justified exceptions live in check.allow (exact counts, burndown-only).",
                    rule_list()
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("semtree-check: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let outcome = match semtree_check::check_workspace(&root) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("semtree-check: error: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &json_path {
        let json = semtree_check::report::to_json(&outcome);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("semtree-check: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if outcome.is_clean() {
        println!(
            "semtree-check: {} files clean ({})",
            outcome.files_checked,
            rule_list()
        );
        return ExitCode::SUCCESS;
    }

    let annotate = std::env::var_os("GITHUB_ACTIONS").is_some();
    for finding in &outcome.findings {
        eprintln!("{finding}");
        if annotate {
            println!(
                "::error file={},line={},title=semtree-check {}::{}",
                finding.path,
                finding.line,
                finding.rule,
                annotation_escape(&finding.message)
            );
        }
    }
    eprintln!(
        "semtree-check: {} violation(s) across {} files",
        outcome.findings.len(),
        outcome.files_checked
    );
    ExitCode::FAILURE
}

/// Comma-separated list of every rule id, for help/error text.
fn rule_list() -> String {
    semtree_check::report::RULE_EXPLANATIONS
        .iter()
        .map(|&(id, _)| id)
        .collect::<Vec<_>>()
        .join(", ")
}

/// GitHub workflow-command message escaping (newlines and `%` must be
/// percent-encoded or the annotation is cut at the first newline).
fn annotation_escape(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

/// The workspace root: this crate's manifest dir is `crates/check`, two
/// levels below it. Falls back to the current directory (correct when
/// invoked from the workspace root without cargo).
fn workspace_root() -> PathBuf {
    match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => {
            let manifest = PathBuf::from(dir);
            manifest
                .parent()
                .and_then(|p| p.parent())
                .map(PathBuf::from)
                .unwrap_or(manifest)
        }
        None => PathBuf::from("."),
    }
}
