//! CLI driver: `cargo run -p semtree-check [--root DIR]`.
//!
//! Exit codes: 0 clean, 1 findings, 2 driver error (I/O, malformed
//! allowlist, unexpected layout).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = workspace_root();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("semtree-check: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "semtree-check: workspace invariant lint gate\n\
                     \n\
                     usage: cargo run -p semtree-check [-- --root DIR]\n\
                     \n\
                     Rules: no-panics, lock-order, codec-coverage, no-boxed-errors.\n\
                     Justified exceptions live in check.allow (exact counts, burndown-only)."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("semtree-check: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    match semtree_check::check_workspace(&root) {
        Ok(outcome) if outcome.is_clean() => {
            println!(
                "semtree-check: {} files clean (no-panics, lock-order, codec-coverage, \
                 no-boxed-errors)",
                outcome.files_checked
            );
            ExitCode::SUCCESS
        }
        Ok(outcome) => {
            for finding in &outcome.findings {
                eprintln!("{finding}");
            }
            eprintln!(
                "semtree-check: {} violation(s) across {} files",
                outcome.findings.len(),
                outcome.files_checked
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("semtree-check: error: {e}");
            ExitCode::from(2)
        }
    }
}

/// The workspace root: this crate's manifest dir is `crates/check`, two
/// levels below it. Falls back to the current directory (correct when
/// invoked from the workspace root without cargo).
fn workspace_root() -> PathBuf {
    match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => {
            let manifest = PathBuf::from(dir);
            manifest
                .parent()
                .and_then(|p| p.parent())
                .map(PathBuf::from)
                .unwrap_or(manifest)
        }
        None => PathBuf::from("."),
    }
}
