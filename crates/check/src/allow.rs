//! `check.allow`: the justified-exception burndown list.
//!
//! Format, one entry per line:
//!
//! ```text
//! # comment
//! <path> <rule> <count> -- <justification>
//! ```
//!
//! An entry suppresses exactly `count` findings of `rule` in `path` and
//! MUST carry a justification. The count is exact in both directions:
//! more findings than allowed fails the gate (a regression), fewer also
//! fails (the entry is stale and must be shrunk so the burndown only
//! ever goes down).

use std::collections::HashMap;

use crate::rules::Finding;

/// One parsed allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Workspace-relative path the entry covers.
    pub path: String,
    /// Rule identifier the entry suppresses.
    pub rule: String,
    /// Exact number of findings this entry accounts for.
    pub count: usize,
    /// Why these sites are acceptable (mandatory).
    pub justification: String,
    /// 1-indexed line in `check.allow`, for diagnostics.
    pub line: u32,
}

/// Parse `check.allow` content. Malformed lines are hard errors — a lint
/// gate with a silently-ignored allowlist is worse than none.
pub fn parse(source: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let line = idx as u32 + 1;
        let text = raw.trim();
        if text.is_empty() || text.starts_with('#') {
            continue;
        }
        let (head, justification) = text.split_once("--").ok_or_else(|| {
            format!("check.allow:{line}: entry has no `-- justification` clause: `{text}`")
        })?;
        let justification = justification.trim();
        if justification.is_empty() {
            return Err(format!(
                "check.allow:{line}: empty justification — every exception must say why"
            ));
        }
        let fields: Vec<&str> = head.split_whitespace().collect();
        let [path, rule, count] = fields[..] else {
            return Err(format!(
                "check.allow:{line}: expected `<path> <rule> <count> -- <why>`, got `{text}`"
            ));
        };
        let count: usize = count.parse().map_err(|_| {
            format!("check.allow:{line}: count `{count}` is not a non-negative integer")
        })?;
        if count == 0 {
            return Err(format!(
                "check.allow:{line}: count 0 — delete the entry instead"
            ));
        }
        entries.push(AllowEntry {
            path: path.to_string(),
            rule: rule.to_string(),
            count,
            justification: justification.to_string(),
            line,
        });
    }
    Ok(entries)
}

/// Apply the allowlist: findings fully covered by an exact-count entry
/// are suppressed; everything else — uncovered findings, exceeded
/// counts, and stale entries — comes back as diagnostics.
pub fn apply(entries: &[AllowEntry], findings: Vec<Finding>) -> Vec<Finding> {
    let mut by_key: HashMap<(String, String), Vec<Finding>> = HashMap::new();
    for f in findings {
        by_key
            .entry((f.path.clone(), f.rule.to_string()))
            .or_default()
            .push(f);
    }
    let mut out = Vec::new();
    for entry in entries {
        let key = (entry.path.clone(), entry.rule.clone());
        let actual = by_key.get(&key).map_or(0, Vec::len);
        match actual.cmp(&entry.count) {
            std::cmp::Ordering::Equal => {
                by_key.remove(&key);
            }
            std::cmp::Ordering::Greater => {
                // Regression: surface only the overflow is impossible to
                // attribute, so surface all of them plus the context.
                let mut fs = by_key.remove(&key).unwrap_or_default();
                let line = fs.first().map_or(1, |f| f.line);
                out.append(&mut fs);
                out.push(Finding {
                    path: entry.path.clone(),
                    line,
                    rule: "allowlist",
                    message: format!(
                        "{} findings of `{}` but check.allow:{} only allows {} — \
                         new violations were introduced",
                        actual, entry.rule, entry.line, entry.count
                    ),
                });
            }
            std::cmp::Ordering::Less => {
                by_key.remove(&key);
                out.push(Finding {
                    path: entry.path.clone(),
                    line: 1,
                    rule: "allowlist",
                    message: format!(
                        "check.allow:{} allows {} findings of `{}` but only {} remain — \
                         shrink the entry so the burndown is monotone",
                        entry.line, entry.count, entry.rule, actual
                    ),
                });
            }
        }
    }
    // Whatever has no entry at all stays a finding.
    let mut rest: Vec<Finding> = by_key.into_values().flatten().collect();
    out.append(&mut rest);
    out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(path: &str, line: u32) -> Finding {
        Finding {
            path: path.to_string(),
            line,
            rule: "no-panics",
            message: "x".to_string(),
        }
    }

    #[test]
    fn parse_requires_justification_and_exact_shape() {
        assert!(parse("a.rs no-panics 2 -- thread spawn is infallible here").is_ok());
        assert!(parse("a.rs no-panics 2").is_err());
        assert!(parse("a.rs no-panics 2 --   ").is_err());
        assert!(parse("a.rs no-panics -- why").is_err());
        assert!(parse("a.rs no-panics 0 -- why").is_err());
        assert!(parse("# comment\n\n").unwrap().is_empty());
    }

    #[test]
    fn exact_count_suppresses() {
        let entries = parse("a.rs no-panics 2 -- fine").unwrap();
        let out = apply(&entries, vec![finding("a.rs", 1), finding("a.rs", 2)]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn exceeded_count_fails_with_context() {
        let entries = parse("a.rs no-panics 1 -- fine").unwrap();
        let out = apply(&entries, vec![finding("a.rs", 1), finding("a.rs", 2)]);
        assert!(out.iter().any(|f| f.rule == "allowlist"
            && f.message.contains("2 findings")
            && f.message.contains("only allows 1")));
    }

    #[test]
    fn stale_count_fails() {
        let entries = parse("a.rs no-panics 3 -- fine").unwrap();
        let out = apply(&entries, vec![finding("a.rs", 1)]);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("shrink the entry"));
    }

    #[test]
    fn uncovered_findings_pass_through() {
        let out = apply(&[], vec![finding("b.rs", 9)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].path, "b.rs");
    }
}
