//! Machine-readable output: a SARIF-shaped JSON report for CI
//! artifacts/annotations, and `--explain` texts for every rule.

use crate::rules::Finding;
use crate::Outcome;

/// Render the outcome as a SARIF-shaped JSON document (subset:
/// `runs[0].tool.driver` + one `results` entry per finding with
/// `ruleId`, `level`, `message.text`, and one physical location).
/// Dependency-free, deterministic, and stable enough for CI to parse.
#[must_use]
pub fn to_json(outcome: &Outcome) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\"driver\": {\"name\": \"semtree-check\", \"rules\": [");
    for (i, (rule, _)) in RULE_EXPLANATIONS.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("{{\"id\": {}}}", json_string(rule)));
    }
    out.push_str("]}},\n");
    out.push_str(&format!(
        "      \"properties\": {{\"filesChecked\": {}}},\n",
        outcome.files_checked
    ));
    out.push_str("      \"results\": [\n");
    for (i, f) in outcome.findings.iter().enumerate() {
        out.push_str("        ");
        out.push_str(&result_json(f));
        if i + 1 < outcome.findings.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

fn result_json(f: &Finding) -> String {
    format!(
        "{{\"ruleId\": {}, \"level\": \"error\", \"message\": {{\"text\": {}}}, \
         \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": \
         {{\"uri\": {}}}, \"region\": {{\"startLine\": {}}}}}}}]}}",
        json_string(f.rule),
        json_string(&f.message),
        json_string(&f.path),
        f.line
    )
}

/// Escape a string for JSON.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Rule id → what it checks, why, and how to fix a finding.
pub const RULE_EXPLANATIONS: &[(&str, &str)] = &[
    (
        "no-panics",
        "No `.unwrap()`, `.expect()`, or `panic!` in production code. Panics tear \
         down worker threads mid-protocol and skip the typed error paths the \
         cluster relies on for recovery. Fix: return a typed error; if the site is \
         provably infallible, add an exact-count entry to check.allow naming the \
         invariant.",
    ),
    (
        "lock-order",
        "Within one function, ranked locks must be acquired in strictly ascending \
         rank order (cluster → dist → net → wal → par → distance → reactor; see \
         LOCK_RANKS in crates/check/src/rules.rs). Two threads nesting the same \
         pair in opposite orders deadlock. Fix: reorder the acquisitions or narrow \
         the first guard's scope so they never overlap.",
    ),
    (
        "lock-flow",
        "The interprocedural version of lock-order: a `let`-bound guard held across \
         a call constrains every function reachable through resolved call edges. A \
         finding shows the full acquisition-to-violation call chain as file:line \
         steps. Fix: release the guard before the call, or re-rank the locks so the \
         nesting ascends.",
    ),
    (
        "lock-blocking",
        "No ranked lock may be held across a blocking operation (`recv`, `join()`, \
         `read_frame`/`write_frame`/`accept`/`poll_fds` socket IO, `sleep`, or a \
         condvar wait outside the shim). A blocked holder stalls every thread that \
         needs the lock; under the model checker these sites are unexplorable. \
         Shim waits (`S::wait(&cv, guard, &mutex)`) that name the lock in their \
         arguments are exempt — they release it atomically — as are the declared \
         IO-serialization leaves in IO_LOCK_EXEMPT. Fix: drop the guard first \
         (take what you need out of the lock, then block).",
    ),
    (
        "undeclared-lock",
        "Every `Mutex`/`RwLock` declaration (struct field or `let` local) outside \
         the conc shim must have a rank in LOCK_RANKS. Unranked locks are \
         invisible to lock-order and lock-flow, so a new lock silently escapes the \
         deadlock gate. Fix: add a `(crate, field, rank)` entry at the right place \
         in the hierarchy (ranks are spaced for insertions).",
    ),
    (
        "unsafe-audit",
        "Every `unsafe` block/impl/fn needs a `// SAFETY:` comment on or directly \
         above it stating why the invariants the operation relies on hold. \
         Workspace policy denies unsafe_code everywhere except module-scoped \
         allows (reactor::sys), so sites are rare and each one must carry its \
         soundness argument. Fix: write the argument, or remove the unsafe.",
    ),
    (
        "truncation-cast",
        "In the codec crates (net, wal, colz), casting a length expression with \
         `as u32`/`as u16` silently wraps when the value outgrows the target and \
         corrupts the frame on disk or on the wire. Fix: `u32::try_from(..)` with \
         a typed error (see net::frame::write_frame).",
    ),
    (
        "codec-coverage",
        "Every `NetMsg` wire variant must appear in the codec round-trip suite \
         (crates/net/tests/codec_roundtrip.rs). An untested variant can ship an \
         asymmetric encode/decode and break cross-version clusters. Fix: add a \
         round-trip case for the new variant.",
    ),
    (
        "no-boxed-errors",
        "Public APIs must expose typed error enums, not `Box<dyn Error>`. Callers \
         (and the fault-injection tests) match on error variants to decide \
         retry/rejoin behavior. Fix: define or extend the crate's error enum.",
    ),
    (
        "allowlist",
        "check.allow entries carry exact counts that only burn down: more findings \
         than allowed is a regression, fewer means the entry is stale and must \
         shrink. Fix: repair the new violation, or shrink/delete the entry.",
    ),
];

/// The explanation for `rule`, if it exists.
#[must_use]
pub fn explain(rule: &str) -> Option<&'static str> {
    RULE_EXPLANATIONS
        .iter()
        .find(|(id, _)| *id == rule)
        .map(|&(_, text)| text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_shapes() {
        let outcome = Outcome {
            findings: vec![Finding {
                path: "crates/net/src/fabric.rs".to_string(),
                line: 12,
                rule: "lock-order",
                message: "acquired `a` while \"b\" held\nchain".to_string(),
            }],
            files_checked: 3,
        };
        let json = to_json(&outcome);
        assert!(json.contains("\"ruleId\": \"lock-order\""));
        assert!(json.contains("\\\"b\\\""));
        assert!(json.contains("\\n"));
        assert!(json.contains("\"startLine\": 12"));
        assert!(json.contains("\"filesChecked\": 3"));
        // Every reported rule id has an explanation.
        assert!(explain("lock-flow").is_some());
        assert!(explain("nope").is_none());
    }

    #[test]
    fn every_rule_id_documented() {
        for rule in [
            "no-panics",
            "lock-order",
            "lock-flow",
            "lock-blocking",
            "undeclared-lock",
            "unsafe-audit",
            "truncation-cast",
            "codec-coverage",
            "no-boxed-errors",
            "allowlist",
        ] {
            assert!(explain(rule).is_some(), "{rule} missing explanation");
        }
    }
}
