//! Cross-crate call graph over the parsed workspace.
//!
//! Resolution is name-based and deliberately conservative: a call edge
//! is created only when the callee is unambiguous. The heuristics, in
//! order:
//!
//! 1. `Type::name(..)` — functions defined in an `impl Type`/`trait
//!    Type` block with that name; ties broken toward the caller's
//!    crate.
//! 2. `name(..)` / `x.name(..)` — a unique function named `name` in
//!    the caller's crate, else a globally unique one; names that
//!    collide with ubiquitous std methods never resolve unqualified
//!    (see `STD_COLLISION_NAMES`).
//!
//! Anything still ambiguous (or defined outside the workspace) stays
//! unresolved and produces no edge — an UNDER-approximation the
//! lock-flow rule documents: the gate never guesses a callee.

use std::collections::HashMap;

use crate::parse::ParsedFile;

/// Names that collide with ubiquitous std methods (`Vec::push`,
/// `HashMap::get`, `Option::map`, ...). An unqualified call to one of
/// these is overwhelmingly a std call on a local value, so it never
/// resolves to a workspace fn — an under-approximation that trades a
/// little recall for zero false call edges (a `completions.push(..)`
/// on a `Vec` must not become an edge into a workspace `fn push`).
const STD_COLLISION_NAMES: &[&str] = &[
    "new",
    "default",
    "clone",
    "drop",
    "len",
    "is_empty",
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "push_back",
    "pop_front",
    "front",
    "back",
    "contains",
    "contains_key",
    "entry",
    "drain",
    "clear",
    "extend",
    "append",
    "split",
    "split_at",
    "join",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "peek",
    "map",
    "and_then",
    "or_else",
    "filter",
    "find",
    "position",
    "fold",
    "collect",
    "retain",
    "take",
    "replace",
    "swap",
    "write",
    "write_all",
    "read",
    "read_exact",
    "flush",
    "send",
    "recv",
    "lock",
    "unlock",
    "poll",
    "wait",
    "notify",
    "start",
    "run",
    "stop",
    "close",
    "open",
    "reset",
    "init",
    "from",
    "into",
    "as_ref",
    "as_mut",
    "as_str",
    "as_bytes",
    "to_vec",
    "to_string",
    "sort",
    "sort_by",
    "sort_by_key",
    "min",
    "max",
    "abs",
    "get_or_insert_with",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "cmp",
    "eq",
    "fmt",
];

/// One node: a non-test function definition somewhere in the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FnRef {
    /// Index into the `ParsedFile` slice the graph was built from.
    pub file: usize,
    /// Index into that file's `fns`.
    pub fn_idx: usize,
}

/// A resolved call edge out of a function.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// The resolved callee.
    pub callee: usize,
    /// Index into the caller's `calls` list (for line/args lookup).
    pub call_idx: usize,
}

/// The workspace call graph: flat function list plus resolved edges.
pub struct CallGraph {
    /// Every non-test function, in (file, source) order.
    pub nodes: Vec<FnRef>,
    /// Per node, its resolved outgoing edges in source order.
    pub edges: Vec<Vec<Edge>>,
}

impl CallGraph {
    /// Build the graph from the parsed workspace.
    pub fn build(files: &[ParsedFile]) -> CallGraph {
        let mut nodes = Vec::new();
        // name -> node indexes; (qualifier, name) -> node indexes.
        let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        let mut by_qual: HashMap<(&str, &str), Vec<usize>> = HashMap::new();
        for (file, parsed) in files.iter().enumerate() {
            for (fn_idx, def) in parsed.fns.iter().enumerate() {
                if def.is_test {
                    continue;
                }
                let node = nodes.len();
                nodes.push(FnRef { file, fn_idx });
                by_name.entry(&def.name).or_default().push(node);
                if let Some(q) = &def.qualifier {
                    by_qual.entry((q, &def.name)).or_default().push(node);
                }
            }
        }
        let mut edges = Vec::with_capacity(nodes.len());
        for &FnRef { file, fn_idx } in &nodes {
            let caller_crate = &files[file].crate_name;
            let def = &files[file].fns[fn_idx];
            let mut out = Vec::new();
            for (call_idx, call) in def.calls.iter().enumerate() {
                let candidates: &[usize] = if let Some(q) = &call.qualifier {
                    match by_qual.get(&(q.as_str(), call.name.as_str())) {
                        Some(c) => c,
                        None => continue,
                    }
                } else {
                    if STD_COLLISION_NAMES.contains(&call.name.as_str()) {
                        continue;
                    }
                    match by_name.get(call.name.as_str()) {
                        Some(c) => c,
                        None => continue,
                    }
                };
                let resolved = disambiguate(candidates, files, &nodes, caller_crate);
                if let Some(callee) = resolved {
                    out.push(Edge { callee, call_idx });
                }
            }
            edges.push(out);
        }
        CallGraph { nodes, edges }
    }

    /// The parsed definition behind node `n`.
    pub fn def<'a>(&self, files: &'a [ParsedFile], n: usize) -> &'a crate::parse::FnDef {
        let FnRef { file, fn_idx } = self.nodes[n];
        &files[file].fns[fn_idx]
    }

    /// The file behind node `n`.
    pub fn file<'a>(&self, files: &'a [ParsedFile], n: usize) -> &'a ParsedFile {
        &files[self.nodes[n].file]
    }
}

/// Pick the unique candidate: unique overall, else unique within the
/// caller's crate. Ambiguity yields `None` (no edge).
fn disambiguate(
    candidates: &[usize],
    files: &[ParsedFile],
    nodes: &[FnRef],
    caller_crate: &str,
) -> Option<usize> {
    if let [only] = candidates {
        return Some(*only);
    }
    let mut same_crate = candidates
        .iter()
        .filter(|&&n| files[nodes[n].file].crate_name == caller_crate);
    match (same_crate.next(), same_crate.next()) {
        (Some(&n), None) => Some(n),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(sources: &[(&str, &str, &str)]) -> (Vec<ParsedFile>, CallGraph) {
        let files: Vec<ParsedFile> = sources
            .iter()
            .map(|(rel, krate, src)| ParsedFile::parse(rel, krate, src))
            .collect();
        let graph = CallGraph::build(&files);
        (files, graph)
    }

    fn edge_names(files: &[ParsedFile], g: &CallGraph, caller: &str) -> Vec<String> {
        let n = (0..g.nodes.len())
            .find(|&n| g.def(files, n).name == caller)
            .unwrap();
        g.edges[n]
            .iter()
            .map(|e| g.def(files, e.callee).name.clone())
            .collect()
    }

    #[test]
    fn unique_names_resolve_across_crates() {
        let (files, g) = graph(&[
            ("crates/a/src/lib.rs", "a", "fn caller() { helper(); }"),
            ("crates/b/src/lib.rs", "b", "fn helper() {}"),
        ]);
        assert_eq!(edge_names(&files, &g, "caller"), ["helper"]);
    }

    #[test]
    fn ambiguous_names_prefer_the_callers_crate_or_drop() {
        let (files, g) = graph(&[
            (
                "crates/a/src/lib.rs",
                "a",
                "fn caller() { helper(); } fn helper() {}",
            ),
            ("crates/b/src/lib.rs", "b", "fn helper() {}"),
            ("crates/c/src/lib.rs", "c", "fn outsider() { helper(); }"),
        ]);
        // a::caller resolves to a::helper (same crate); c::outsider sees
        // two foreign helpers and resolves nothing.
        let n = (0..g.nodes.len())
            .find(|&n| g.def(&files, n).name == "caller")
            .unwrap();
        assert_eq!(g.edges[n].len(), 1);
        assert_eq!(g.file(&files, g.edges[n][0].callee).crate_name, "a");
        assert!(edge_names(&files, &g, "outsider").is_empty());
    }

    #[test]
    fn qualified_calls_use_the_impl_type() {
        let (files, g) = graph(&[(
            "crates/a/src/lib.rs",
            "a",
            r#"
            struct X; struct Y;
            impl X { fn go(&self) {} }
            impl Y { fn go(&self) {} }
            fn caller() { X::go(&x); }
            "#,
        )]);
        let n = (0..g.nodes.len())
            .find(|&n| g.def(&files, n).name == "caller")
            .unwrap();
        assert_eq!(g.edges[n].len(), 1);
        let callee = g.def(&files, g.edges[n][0].callee);
        assert_eq!(callee.qualifier.as_deref(), Some("X"));
    }

    #[test]
    fn std_collision_names_never_resolve_unqualified() {
        let (files, g) = graph(&[(
            "crates/a/src/lib.rs",
            "a",
            r#"
            struct Q;
            impl Q { fn push(&self, v: u32) {} }
            fn caller(q: &Q, v: Vec<u32>) { v.push(1); Q::push(q, 2); }
            "#,
        )]);
        // `v.push(1)` must NOT edge into Q::push; the qualified call
        // still resolves.
        assert_eq!(edge_names(&files, &g, "caller"), ["push"]);
    }

    #[test]
    fn test_fns_are_not_nodes() {
        let (_, g) = graph(&[(
            "crates/a/src/lib.rs",
            "a",
            r#"
            #[cfg(test)]
            mod tests { fn t() {} }
            fn prod() {}
            "#,
        )]);
        assert_eq!(g.nodes.len(), 1);
    }
}
