//! A lightweight item/function/call parser layered on the lexer.
//!
//! This is NOT a Rust parser — it recognizes exactly the shapes the
//! workspace rules need: function definitions with their enclosing
//! `impl`/`trait` type, call sites inside function bodies, `unsafe`
//! blocks/impls/fns, and `Mutex`/`RwLock` declarations (struct fields
//! and `let`-bound locals). Everything else is skipped by brace
//! matching. The simplifications (no macro expansion, no type
//! resolution, closures attributed to their enclosing function) are
//! deliberate and documented in DESIGN.md §"Static analysis".

use crate::lexer::{lex, matching_brace, test_mask, Kind, Tok};

/// One source file parsed into the item shapes the rules consume.
pub struct ParsedFile {
    /// Workspace-relative path (diagnostics use this).
    pub rel: String,
    /// Crate directory name under `crates/`.
    pub crate_name: String,
    /// The raw source (the unsafe-audit rule reads comment lines the
    /// lexer drops).
    pub source: String,
    /// Lexed tokens.
    pub toks: Vec<Tok>,
    /// Parallel mask: token lives in test-only code.
    pub mask: Vec<bool>,
    /// Function definitions, in source order.
    pub fns: Vec<FnDef>,
    /// `unsafe` blocks / impls / fns, in source order.
    pub unsafe_sites: Vec<UnsafeSite>,
    /// `Mutex`/`RwLock` declarations (struct fields + `let` locals),
    /// deduplicated by name.
    pub lock_decls: Vec<LockDecl>,
}

/// One function definition with a body.
pub struct FnDef {
    /// The function name.
    pub name: String,
    /// Self type of the enclosing `impl`/`trait` block, if any.
    pub qualifier: Option<String>,
    /// 1-indexed line of the `fn` keyword.
    pub line: u32,
    /// Token index of the `fn` keyword.
    pub sig_start: usize,
    /// Token index of the body's opening `{`.
    pub body_open: usize,
    /// Token index of the body's matching `}`.
    pub body_close: usize,
    /// Return type tokens (between `->` and the body/`where`), empty
    /// when the function returns `()`.
    pub ret: (usize, usize),
    /// Whether the definition lives in test-only code.
    pub is_test: bool,
    /// Call sites inside the body (innermost-fn attribution), in
    /// source order.
    pub calls: Vec<CallSite>,
}

/// One call site inside a function body.
pub struct CallSite {
    /// Callee name (`foo` in `foo(..)`, `x.foo(..)`, `T::foo(..)`).
    pub name: String,
    /// Path segment directly before `::` (`T` in `T::foo(..)`).
    pub qualifier: Option<String>,
    /// Whether this is a `.`-method call.
    pub is_method: bool,
    /// 1-indexed line of the callee name.
    pub line: u32,
    /// Token index of the callee name.
    pub tok: usize,
    /// Token index of the argument list's `(`.
    pub args_open: usize,
    /// Token index of the argument list's matching `)`.
    pub args_close: usize,
}

/// One `unsafe` occurrence.
pub struct UnsafeSite {
    /// 1-indexed line of the `unsafe` keyword.
    pub line: u32,
    /// What follows the keyword: `"block"`, `"impl"`, `"fn"`, or
    /// `"trait"`.
    pub kind: &'static str,
}

/// One discovered lock declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockDecl {
    /// Field or local binding name.
    pub name: String,
    /// 1-indexed line of the declaration.
    pub line: u32,
    /// `true` for a struct field, `false` for a `let` local.
    pub is_field: bool,
}

/// Keywords that can precede `(` without being a call.
fn is_keyword(name: &str) -> bool {
    matches!(
        name,
        "if" | "while"
            | "for"
            | "match"
            | "return"
            | "loop"
            | "let"
            | "else"
            | "in"
            | "move"
            | "as"
            | "ref"
            | "mut"
            | "unsafe"
            | "break"
            | "continue"
            | "fn"
            | "where"
            | "impl"
            | "dyn"
    )
}

impl ParsedFile {
    /// Lex and parse one source file.
    pub fn parse(rel: &str, crate_name: &str, source: &str) -> ParsedFile {
        let toks = lex(source);
        let mask = test_mask(&toks);
        let impls = impl_blocks(&toks);
        let mut fns = fn_defs(&toks, &mask, &impls);
        attribute_calls(&toks, &mut fns);
        let unsafe_sites = unsafe_sites(&toks, &mask);
        let lock_decls = lock_decls(&toks, &mask);
        ParsedFile {
            rel: rel.to_string(),
            crate_name: crate_name.to_string(),
            source: source.to_string(),
            toks,
            mask,
            fns,
            unsafe_sites,
            lock_decls,
        }
    }
}

/// An `impl`/`trait` block: its self-type name and body token range.
struct ImplBlock {
    qualifier: String,
    body_open: usize,
    body_close: usize,
}

/// Skip a `<...>` generic group starting at `open` (which must be `<`).
/// Returns the index just past the matching `>`. Arrow `->` inside
/// bounds is not counted as a closer.
fn skip_angles(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') && !(i > 0 && toks[i - 1].is_punct('-')) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

/// Collect `impl`/`trait` blocks with their self-type name.
fn impl_blocks(toks: &[Tok]) -> Vec<ImplBlock> {
    let mut blocks = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let is_impl = toks[i].is_ident("impl");
        let is_trait =
            toks[i].is_ident("trait") && toks.get(i + 1).is_some_and(|t| t.kind == Kind::Ident);
        if !is_impl && !is_trait {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if j < toks.len() && toks[j].is_punct('<') {
            j = skip_angles(toks, j);
        }
        // Walk the header, remembering the last path-segment identifier
        // seen; `for` (in `impl Trait for Type`) restarts the
        // collection so the self type wins.
        let mut qualifier: Option<String> = None;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct('{') || t.is_punct(';') || t.is_ident("where") {
                break;
            }
            if t.is_ident("for") {
                qualifier = None;
                j += 1;
                continue;
            }
            if t.kind == Kind::Ident {
                qualifier = Some(t.text.clone());
                j += 1;
                if j < toks.len() && toks[j].is_punct('<') {
                    j = skip_angles(toks, j);
                }
                continue;
            }
            j += 1;
        }
        if j < toks.len() && toks[j].is_punct('{') {
            if let (Some(qualifier), Some(close)) = (qualifier, matching_brace(toks, j)) {
                blocks.push(ImplBlock {
                    qualifier,
                    body_open: j,
                    body_close: close,
                });
            }
        }
        i = j + 1;
    }
    blocks
}

/// Collect every `fn` definition that has a body.
fn fn_defs(toks: &[Tok], mask: &[bool], impls: &[ImplBlock]) -> Vec<FnDef> {
    let mut fns = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("fn") {
            continue;
        }
        // `fn(..)` pointer types have no name; definitions do.
        let Some(name_tok) = toks.get(i + 1) else {
            continue;
        };
        if name_tok.kind != Kind::Ident {
            continue;
        }
        // Find the body `{` (a `;` first means a bodiless trait decl).
        let mut j = i + 2;
        let mut body_open = None;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct('{') {
                body_open = Some(j);
                break;
            }
            if t.is_punct(';') {
                break;
            }
            j += 1;
        }
        let Some(body_open) = body_open else { continue };
        let Some(body_close) = matching_brace(toks, body_open) else {
            continue;
        };
        // Return type: the `->` at paren depth 0 between the name and
        // the body (arrows inside argument types sit at depth >= 1).
        let mut ret = (body_open, body_open);
        let mut depth = 0i32;
        let mut k = i + 2;
        while k < body_open {
            let t = &toks[k];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if depth == 0
                && t.is_punct('-')
                && toks.get(k + 1).is_some_and(|n| n.is_punct('>'))
            {
                let start = k + 2;
                let mut end = start;
                while end < body_open && !toks[end].is_ident("where") {
                    end += 1;
                }
                ret = (start, end);
                break;
            }
            k += 1;
        }
        let qualifier = impls
            .iter()
            .filter(|b| b.body_open < i && i < b.body_close)
            .max_by_key(|b| b.body_open)
            .map(|b| b.qualifier.clone());
        fns.push(FnDef {
            name: name_tok.text.clone(),
            qualifier,
            line: toks[i].line,
            sig_start: i,
            body_open,
            body_close,
            ret,
            is_test: mask[i],
            calls: Vec::new(),
        });
    }
    fns
}

/// Find every call site and attribute it to the innermost enclosing
/// function body.
fn attribute_calls(toks: &[Tok], fns: &mut [FnDef]) {
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != Kind::Ident || is_keyword(&t.text) {
            continue;
        }
        // Not a definition name (`fn foo(`), not a macro (`foo!(`).
        if i > 0 && toks[i - 1].is_ident("fn") {
            continue;
        }
        // `foo(..)` directly, or `foo::<T>(..)` through a turbofish.
        let args_open = if toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            i + 1
        } else if toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 3).is_some_and(|n| n.is_punct('<'))
        {
            let past = skip_angles(toks, i + 3);
            if !toks.get(past).is_some_and(|n| n.is_punct('(')) {
                continue;
            }
            past
        } else {
            continue;
        };
        let Some(args_close) = matching_paren(toks, args_open) else {
            continue;
        };
        let is_method = i > 0 && toks[i - 1].is_punct('.');
        let qualifier = if i >= 3
            && toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
            && toks[i - 3].kind == Kind::Ident
        {
            Some(toks[i - 3].text.clone())
        } else {
            None
        };
        // Innermost function body containing this token.
        let owner = fns
            .iter_mut()
            .filter(|f| f.body_open < i && i < f.body_close)
            .max_by_key(|f| f.body_open);
        if let Some(owner) = owner {
            owner.calls.push(CallSite {
                name: t.text.clone(),
                qualifier,
                is_method,
                line: t.line,
                tok: i,
                args_open,
                args_close,
            });
        }
    }
}

/// Index of the `)` matching the `(` at `open`.
pub(crate) fn matching_paren(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Collect non-test `unsafe` sites.
fn unsafe_sites(toks: &[Tok], mask: &[bool]) -> Vec<UnsafeSite> {
    let mut sites = Vec::new();
    for i in 0..toks.len() {
        if mask[i] || !toks[i].is_ident("unsafe") {
            continue;
        }
        let kind = match toks.get(i + 1) {
            Some(n) if n.is_punct('{') => "block",
            Some(n) if n.is_ident("impl") => "impl",
            Some(n) if n.is_ident("fn") => "fn",
            Some(n) if n.is_ident("trait") => "trait",
            // `unsafe` in type position (`unsafe fn()` pointers) or
            // attribute grammar — not an auditable site.
            _ => continue,
        };
        sites.push(UnsafeSite {
            line: toks[i].line,
            kind,
        });
    }
    sites
}

/// Discover `Mutex`/`RwLock` declarations: struct fields whose type
/// mentions `Mutex`/`RwLock`, and `let` locals initialized through
/// `Mutex::new`/`RwLock::new`. Deduplicated by name (first site wins).
fn lock_decls(toks: &[Tok], mask: &[bool]) -> Vec<LockDecl> {
    let mut decls: Vec<LockDecl> = Vec::new();
    let mut push = |decl: LockDecl| {
        if !decls.iter().any(|d| d.name == decl.name) {
            decls.push(decl);
        }
    };
    let mut i = 0;
    while i < toks.len() {
        if mask[i] {
            i += 1;
            continue;
        }
        if toks[i].is_ident("struct") {
            // `struct Name<..> { field: Type, .. }` — walk the fields.
            let mut j = i + 1;
            while j < toks.len()
                && !toks[j].is_punct('{')
                && !toks[j].is_punct(';')
                && !toks[j].is_punct('(')
            {
                j += 1;
            }
            if j < toks.len() && toks[j].is_punct('{') {
                if let Some(close) = matching_brace(toks, j) {
                    for field in struct_fields(toks, j, close) {
                        push(field);
                    }
                    i = close + 1;
                    continue;
                }
            }
        } else if toks[i].is_ident("let") {
            // `let [mut] name = .. Mutex::new(..) ..;`
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            if let Some(name_tok) = toks.get(j).filter(|t| t.kind == Kind::Ident) {
                let name = name_tok.text.clone();
                let line = name_tok.line;
                let mut k = j + 1;
                let mut constructed = false;
                while k < toks.len() && !toks[k].is_punct(';') && !toks[k].is_punct('{') {
                    if (toks[k].is_ident("Mutex") || toks[k].is_ident("RwLock"))
                        && toks.get(k + 1).is_some_and(|t| t.is_punct(':'))
                        && toks.get(k + 2).is_some_and(|t| t.is_punct(':'))
                        && toks.get(k + 3).is_some_and(|t| t.is_ident("new"))
                    {
                        constructed = true;
                    }
                    k += 1;
                }
                if constructed {
                    push(LockDecl {
                        name,
                        line,
                        is_field: false,
                    });
                }
                i = k;
                continue;
            }
        }
        i += 1;
    }
    decls
}

/// Fields of the struct body `toks[open..=close]` whose type mentions
/// `Mutex` or `RwLock`.
fn struct_fields(toks: &[Tok], open: usize, close: usize) -> Vec<LockDecl> {
    let mut fields = Vec::new();
    let mut k = open + 1;
    while k < close {
        // A field is `name :` at top level of the struct body, where the
        // next token is not another `:` (that would be a path).
        let is_field_name = toks[k].kind == Kind::Ident
            && toks.get(k + 1).is_some_and(|t| t.is_punct(':'))
            && !toks.get(k + 2).is_some_and(|t| t.is_punct(':'));
        if !is_field_name {
            k += 1;
            continue;
        }
        let name = toks[k].text.clone();
        let line = toks[k].line;
        // Scan the type to the separating `,` at depth 0.
        let mut depth = 0i32;
        let mut j = k + 2;
        let mut locky = false;
        while j < close {
            let t = &toks[j];
            if t.is_punct('<') || t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')')
                || t.is_punct(']')
                || t.is_punct('}')
                || (t.is_punct('>') && !toks[j - 1].is_punct('-'))
            {
                depth -= 1;
            } else if t.is_punct(',') && depth == 0 {
                break;
            } else if t.is_ident("Mutex") || t.is_ident("RwLock") {
                locky = true;
            }
            j += 1;
        }
        if locky {
            fields.push(LockDecl {
                name,
                line,
                is_field: true,
            });
        }
        k = j + 1;
    }
    fields
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedFile {
        ParsedFile::parse("crates/x/src/lib.rs", "x", src)
    }

    #[test]
    fn fns_get_names_lines_and_impl_qualifiers() {
        let p = parse(
            r#"
            fn free() { helper(); }
            impl<S: Shim> Registry<S> {
                fn method(&self) -> u32 { 7 }
            }
            impl Transport for NetFabric {
                fn send(&self) {}
            }
            trait Greet {
                fn default_hello(&self) { wave(); }
                fn no_body(&self);
            }
        "#,
        );
        let sigs: Vec<(String, Option<String>)> = p
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.qualifier.clone()))
            .collect();
        assert_eq!(
            sigs,
            [
                ("free".to_string(), None),
                ("method".to_string(), Some("Registry".to_string())),
                ("send".to_string(), Some("NetFabric".to_string())),
                ("default_hello".to_string(), Some("Greet".to_string())),
            ]
        );
        assert_eq!(p.fns[0].calls.len(), 1);
        assert_eq!(p.fns[0].calls[0].name, "helper");
    }

    #[test]
    fn calls_capture_methods_qualifiers_and_turbofish() {
        let p = parse(
            r#"
            fn f(&self) {
                free(1);
                self.method(2);
                Type::assoc(3);
                decode_exact::<Resp>(body);
                mac!(ignored);
            }
        "#,
        );
        let calls: Vec<(&str, Option<&str>, bool)> = p.fns[0]
            .calls
            .iter()
            .map(|c| (c.name.as_str(), c.qualifier.as_deref(), c.is_method))
            .collect();
        assert_eq!(
            calls,
            [
                ("free", None, false),
                ("method", None, true),
                ("assoc", Some("Type"), false),
                ("decode_exact", None, false),
            ]
        );
    }

    #[test]
    fn return_type_range_covers_guards() {
        let p = parse(
            r#"
            fn lock_it(m: &Mutex<u32>) -> std::sync::MutexGuard<'_, u32> { m.lock().unwrap_or_else(s) }
            fn arrowed(f: impl Fn() -> u32) -> bool { f() > 0 }
        "#,
        );
        let ret_text = |f: &FnDef| {
            p.toks[f.ret.0..f.ret.1]
                .iter()
                .map(|t| t.text.clone())
                .collect::<String>()
        };
        assert!(ret_text(&p.fns[0]).contains("MutexGuard"));
        assert_eq!(ret_text(&p.fns[1]), "bool");
    }

    #[test]
    fn unsafe_sites_and_kinds() {
        let p = parse(
            r#"
            fn f() { let x = unsafe { poll(a, b, c) }; }
            unsafe impl Send for X {}
            #[cfg(test)]
            mod tests { fn t() { unsafe { ignored() } } }
        "#,
        );
        let kinds: Vec<&str> = p.unsafe_sites.iter().map(|u| u.kind).collect();
        assert_eq!(kinds, ["block", "impl"]);
    }

    #[test]
    fn lock_decls_find_fields_and_locals() {
        let p = parse(
            r#"
            struct Fabric<S: Shim> {
                peers: S::RwLock<HashMap<u32, SocketAddr>>,
                writer: Mutex<TcpStream>,
                inflight: Arc<Mutex<Inflight>>,
                plain: u32,
            }
            fn pool() {
                let parts = Mutex::new(Vec::new());
                let feed = semtree_conc::sync::Mutex::new(items);
                let not_a_lock = Vec::new();
            }
        "#,
        );
        let names: Vec<&str> = p.lock_decls.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, ["peers", "writer", "inflight", "parts", "feed"]);
        assert!(p.lock_decls[0].is_field);
        assert!(!p.lock_decls[3].is_field);
    }

    #[test]
    fn nested_fn_calls_attribute_to_the_inner_fn() {
        let p = parse(
            r#"
            fn outer() {
                fn inner() { deep(); }
                shallow();
            }
        "#,
        );
        let outer = p.fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = p.fns.iter().find(|f| f.name == "inner").unwrap();
        assert_eq!(
            outer.calls.iter().map(|c| &c.name).collect::<Vec<_>>(),
            ["shallow"]
        );
        assert_eq!(
            inner.calls.iter().map(|c| &c.name).collect::<Vec<_>>(),
            ["deep"]
        );
    }
}
