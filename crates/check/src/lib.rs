//! `semtree-check`: the workspace invariant lint gate.
//!
//! A zero-dependency static checker run in CI as
//! `cargo run -p semtree-check`. It lexes and (lightly) parses every
//! production source file in `crates/*/src` and enforces:
//!
//! 1. **no-panics** — no `.unwrap()`, `.expect()`, or `panic!` outside
//!    test code. Known-justified sites live in `check.allow` with a
//!    mandatory justification and an exact count that can only shrink.
//! 2. **lock-order** — within a function, lock acquisitions follow the
//!    declared hierarchy (`cluster → dist → net → wal → par →
//!    distance → reactor`; see [`rules::LOCK_RANKS`]): while a guard
//!    of rank *r* is live, only ranks > *r* may be taken.
//! 3. **lock-flow / lock-blocking** — the interprocedural extension:
//!    a cross-crate call graph ([`callgraph`]) propagates the set of
//!    held locks through resolved call edges ([`lockflow`]) to find
//!    rank inversions that span functions and locks held across
//!    blocking operations (`recv`, `join`, frame IO, non-shim waits),
//!    each reported with its full file:line call chain.
//! 4. **undeclared-lock** — every `Mutex`/`RwLock` declaration outside
//!    the conc shim has a rank in [`rules::LOCK_RANKS`].
//! 5. **unsafe-audit** — every `unsafe` block/impl/fn carries a
//!    `// SAFETY:` comment arguing its soundness.
//! 6. **truncation-cast** — no `<len>() as u32`/`u16` casts in the
//!    codec crates (net, wal, colz); lengths go through `try_from`.
//! 7. **codec-coverage** — every `NetMsg` wire variant appears in the
//!    codec round-trip suite (`crates/net/tests/codec_roundtrip.rs`).
//! 8. **no-boxed-errors** — no `Box<dyn Error>` in `pub` APIs; public
//!    surfaces expose typed error enums.
//!
//! The analysis is deliberately lexical/syntactic: no macro expansion,
//! no type information. That keeps the checker dependency-free, fast,
//! and byte-for-byte deterministic — and the invariants it enforces
//! are chosen to be decidable at that level (the approximations are
//! documented in DESIGN.md §13). The deeper properties (actual
//! deadlock freedom, flush-before-apply under every interleaving) are
//! verified dynamically by the `semtree-conc` model suite; this gate
//! keeps the static shape of the code inside what that model covers.

pub mod allow;
pub mod callgraph;
pub mod lexer;
pub mod lockflow;
pub mod parse;
pub mod report;
pub mod rules;

use std::fs;
use std::path::{Path, PathBuf};

use rules::Finding;

/// Result of checking a workspace.
#[derive(Debug)]
pub struct Outcome {
    /// Surviving diagnostics (after the allowlist); empty means pass.
    pub findings: Vec<Finding>,
    /// Production files scanned.
    pub files_checked: usize,
}

impl Outcome {
    /// Did the gate pass?
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Errors from the check driver itself (I/O, malformed allowlist) —
/// distinct from lint findings.
#[derive(Debug)]
pub enum CheckError {
    /// Filesystem problem walking or reading the workspace.
    Io(PathBuf, std::io::Error),
    /// `check.allow` is malformed.
    Allowlist(String),
    /// The workspace layout is not what the checker expects.
    Layout(String),
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::Io(path, e) => write!(f, "{}: {e}", path.display()),
            CheckError::Allowlist(msg) => write!(f, "{msg}"),
            CheckError::Layout(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CheckError {}

/// A production source file queued for checking.
pub struct SourceFile {
    /// Workspace-relative path (diagnostics use this).
    pub rel: String,
    /// Crate directory name under `crates/` (for the lock-rank table).
    pub crate_name: String,
    /// Full file contents.
    pub source: String,
}

/// Run every single- and cross-file rule over in-memory sources and
/// return the raw findings (no allowlist, no codec-coverage — those
/// need the workspace on disk; see [`check_workspace`]). This is the
/// seam the golden tests inject synthetic violations through.
pub fn analyze(files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut parsed = Vec::with_capacity(files.len());
    for file in files {
        let toks = lexer::lex(&file.source);
        findings.extend(rules::no_panics(&file.rel, &toks));
        findings.extend(rules::lock_order(&file.crate_name, &file.rel, &toks));
        findings.extend(rules::no_boxed_errors(&file.rel, &toks));
        findings.extend(rules::truncation_casts(&file.crate_name, &file.rel, &toks));
        let p = parse::ParsedFile::parse(&file.rel, &file.crate_name, &file.source);
        findings.extend(rules::undeclared_locks(
            &file.crate_name,
            &file.rel,
            &p.lock_decls,
        ));
        findings.extend(rules::unsafe_audit(
            &file.rel,
            &file.source,
            &p.unsafe_sites,
        ));
        parsed.push(p);
    }
    let graph = callgraph::CallGraph::build(&parsed);
    findings.extend(lockflow::analyze(&parsed, &graph));
    findings
}

/// Every `(crate, lock)` the parser discovers in non-exempt crates —
/// the ground truth the self-sync test holds [`rules::LOCK_RANKS`] to.
pub fn lock_census(files: &[SourceFile]) -> Vec<(String, String)> {
    let mut census = Vec::new();
    for file in files {
        if rules::LOCK_DISCOVERY_EXEMPT_CRATES.contains(&file.crate_name.as_str()) {
            continue;
        }
        let p = parse::ParsedFile::parse(&file.rel, &file.crate_name, &file.source);
        for decl in &p.lock_decls {
            census.push((file.crate_name.clone(), decl.name.clone()));
        }
    }
    census.sort();
    census.dedup();
    census
}

/// Check the workspace rooted at `root` (the directory containing
/// `crates/` and `check.allow`).
pub fn check_workspace(root: &Path) -> Result<Outcome, CheckError> {
    let files = collect_sources(root)?;
    let mut findings = analyze(&files);

    // codec-coverage is a two-file property: msg.rs variants vs the
    // round-trip suite (an integration test, so outside `src/`).
    let msg_rel = "crates/net/src/msg.rs";
    let test_rel = "crates/net/tests/codec_roundtrip.rs";
    let msg_src = files
        .iter()
        .find(|f| f.rel == msg_rel)
        .map(|f| f.source.clone())
        .ok_or_else(|| CheckError::Layout(format!("{msg_rel} not found")))?;
    let test_src = match fs::read_to_string(root.join(test_rel)) {
        Ok(s) => s,
        Err(e) => return Err(CheckError::Io(root.join(test_rel), e)),
    };
    findings.extend(rules::codec_coverage(
        msg_rel,
        &lexer::lex(&msg_src),
        test_rel,
        &lexer::lex(&test_src),
    ));

    // Burn the allowlist down against the raw findings.
    let allow_path = root.join("check.allow");
    let entries = if allow_path.exists() {
        let src = fs::read_to_string(&allow_path).map_err(|e| CheckError::Io(allow_path, e))?;
        allow::parse(&src).map_err(CheckError::Allowlist)?
    } else {
        Vec::new()
    };
    let findings = allow::apply(&entries, findings);

    Ok(Outcome {
        findings,
        files_checked: files.len(),
    })
}

/// Every `.rs` file under `crates/*/src`, recursively. Integration
/// `tests/` directories are excluded by construction (they are siblings
/// of `src`), and in-file `#[cfg(test)]` code is masked by the lexer.
pub fn collect_sources(root: &Path) -> Result<Vec<SourceFile>, CheckError> {
    let crates_dir = root.join("crates");
    let mut out = Vec::new();
    let entries = fs::read_dir(&crates_dir).map_err(|e| CheckError::Io(crates_dir.clone(), e))?;
    let mut crate_dirs: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    if crate_dirs.is_empty() {
        return Err(CheckError::Layout(format!(
            "no crates found under {}",
            crates_dir.display()
        )));
    }
    for crate_dir in crate_dirs {
        let crate_name = crate_dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        walk_rs(&src, &mut |path| {
            let source =
                fs::read_to_string(path).map_err(|e| CheckError::Io(path.to_path_buf(), e))?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(SourceFile {
                rel,
                crate_name: crate_name.clone(),
                source,
            });
            Ok(())
        })?;
    }
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(out)
}

fn walk_rs(
    dir: &Path,
    visit: &mut impl FnMut(&Path) -> Result<(), CheckError>,
) -> Result<(), CheckError> {
    let entries = fs::read_dir(dir).map_err(|e| CheckError::Io(dir.to_path_buf(), e))?;
    let mut paths: Vec<PathBuf> = entries.filter_map(Result::ok).map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            walk_rs(&path, visit)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            visit(&path)?;
        }
    }
    Ok(())
}
