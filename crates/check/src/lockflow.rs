//! Interprocedural held-locks dataflow over the call graph.
//!
//! For every function the analysis computes the set of ranked locks
//! that can be held **on entry** (propagated through resolved call
//! edges from `let`-bound acquisitions in callers) and checks, at each
//! local acquisition and each blocking operation, that:
//!
//! * no lock of rank <= a held rank is acquired (`lock-flow` — the
//!   cross-function generalization of the per-function `lock-order`
//!   rule), and
//! * no ranked lock is held across a blocking operation (`recv`,
//!   `join()`, frame/socket IO, `Condvar` waits outside the shim)
//!   (`lock-blocking`).
//!
//! Every finding carries a file:line witness chain from the
//! acquisition through each call edge to the violation.
//!
//! The dataflow is a may-analysis over an over-approximated graph
//! (unresolved calls produce no edges, `let`-bound guards are assumed
//! live to block end, match-scrutinee temporaries are NOT tracked);
//! the known over/under-approximations are listed in DESIGN.md §13.

use std::collections::{BTreeMap, VecDeque};

use crate::callgraph::CallGraph;
use crate::lexer::Kind;
use crate::parse::ParsedFile;
use crate::rules::{acquisition_at, Finding, IO_LOCK_EXEMPT};

/// Operations that can block the calling thread. `join` only counts
/// with an empty argument list (so `Path::join`/`str::join` never
/// match); `wait`/`wait_timeout` are exempted for locks whose field is
/// named in the call's arguments (the shim's condvar waits atomically
/// release their companion mutex).
const BLOCKING_OPS: &[&str] = &[
    "recv",
    "recv_timeout",
    "read_frame",
    "write_frame",
    "dial_with_timeout",
    "accept",
    "poll_fds",
    "sleep",
    "wait",
    "wait_timeout",
    "join",
];

/// A lock held at some program point, with its provenance chain.
#[derive(Debug, Clone)]
struct Flow {
    crate_name: String,
    field: String,
    rank: u32,
    /// Rendered witness steps: acquisition site, then one step per
    /// call edge crossed.
    chain: Vec<String>,
}

/// A `let`-bound guard live during the local walk.
struct Guard {
    field: String,
    rank: u32,
    line: u32,
    depth: u32,
}

/// Snapshot of locally held guards at an event.
#[derive(Debug, Clone)]
struct HeldAt {
    field: String,
    rank: u32,
    line: u32,
}

/// One resolved call with the locally held locks at the call site.
struct CallEvent {
    callee: usize,
    callee_name: String,
    line: u32,
    held: Vec<HeldAt>,
}

/// One blocking operation with the locally held locks at the site.
struct BlockingEvent {
    name: String,
    line: u32,
    /// Token range of the argument list (for the wait exemption).
    args: (usize, usize),
    held: Vec<HeldAt>,
}

/// Per-function local summary.
struct Summary {
    acquires: Vec<HeldAt>,
    calls: Vec<CallEvent>,
    blocking: Vec<BlockingEvent>,
}

/// Run the interprocedural analysis and return `lock-flow` and
/// `lock-blocking` findings.
pub fn analyze(files: &[ParsedFile], graph: &CallGraph) -> Vec<Finding> {
    // Pass 1: which functions return a live guard (`-> ..Guard..` with
    // an acquisition as the trailing expression)?
    let returns_guard: Vec<Option<(String, u32)>> = (0..graph.nodes.len())
        .map(|n| guard_returned(files, graph, n))
        .collect();

    // Pass 2: local walks.
    let summaries: Vec<Summary> = (0..graph.nodes.len())
        .map(|n| local_walk(files, graph, n, &returns_guard))
        .collect();

    // Pass 3: fixed-point propagation of entry-held sets.
    let mut entry: Vec<BTreeMap<(String, String), Flow>> = vec![BTreeMap::new(); graph.nodes.len()];
    let mut queue: VecDeque<usize> = (0..graph.nodes.len()).collect();
    while let Some(n) = queue.pop_front() {
        let rel = graph.file(files, n).rel.clone();
        let entry_n: Vec<Flow> = entry[n].values().cloned().collect();
        for call in &summaries[n].calls {
            let step = format!("{}:{} calls `{}`", rel, call.line, call.callee_name);
            let mut effective: Vec<Flow> = entry_n.clone();
            effective.extend(call.held.iter().map(|h| local_flow(files, graph, n, h)));
            for mut flow in effective {
                let key = (flow.crate_name.clone(), flow.field.clone());
                if entry[call.callee].contains_key(&key) {
                    continue;
                }
                flow.chain.push(step.clone());
                entry[call.callee].insert(key, flow);
                queue.push_back(call.callee);
            }
        }
    }

    // Pass 4: report.
    let mut findings = Vec::new();
    for n in 0..graph.nodes.len() {
        let parsed = graph.file(files, n);
        let rel = &parsed.rel;
        // (a) local acquisitions against propagated entry locks. Local
        // nesting violations are the per-function `lock-order` rule's
        // job; this only reports cross-function witnesses.
        for acq in &summaries[n].acquires {
            for flow in entry[n].values() {
                let violation = if flow.field == acq.field && flow.crate_name == parsed.crate_name {
                    Some("re-acquired across the call chain — self-deadlock")
                } else if acq.rank <= flow.rank {
                    Some("the hierarchy requires strictly ascending ranks")
                } else {
                    None
                };
                if let Some(why) = violation {
                    findings.push(Finding {
                        path: rel.clone(),
                        line: acq.line,
                        rule: "lock-flow",
                        message: format!(
                            "acquired `{}` (rank {}) while `{}` (rank {}) is held across \
                             the call chain: {} → {}:{} acquires `{}` — {}",
                            acq.field,
                            acq.rank,
                            flow.field,
                            flow.rank,
                            render_chain(&flow.chain),
                            rel,
                            acq.line,
                            acq.field,
                            why
                        ),
                    });
                }
            }
        }
        // (b) blocking operations with anything held.
        for block in &summaries[n].blocking {
            let mut flows: Vec<Flow> = block
                .held
                .iter()
                .map(|h| local_flow(files, graph, n, h))
                .collect();
            flows.extend(entry[n].values().cloned());
            for flow in flows {
                if exempt(parsed, &flow, block) {
                    continue;
                }
                findings.push(Finding {
                    path: rel.clone(),
                    line: block.line,
                    rule: "lock-blocking",
                    message: format!(
                        "`{}()` may block while `{}` (rank {}) is held: {} → {}:{} \
                         calls `{}` — release the lock before blocking, or route the \
                         wait through the shim",
                        block.name,
                        flow.field,
                        flow.rank,
                        render_chain(&flow.chain),
                        rel,
                        block.line,
                        block.name
                    ),
                });
            }
        }
    }
    findings.sort_by(|a, b| (&a.path, a.line, &a.message).cmp(&(&b.path, b.line, &b.message)));
    findings.dedup();
    findings
}

/// A locally held guard as a one-step flow rooted at its acquisition.
fn local_flow(files: &[ParsedFile], graph: &CallGraph, n: usize, h: &HeldAt) -> Flow {
    let parsed = graph.file(files, n);
    Flow {
        crate_name: parsed.crate_name.clone(),
        field: h.field.clone(),
        rank: h.rank,
        chain: vec![format!(
            "{}:{} acquires `{}` (rank {})",
            parsed.rel, h.line, h.field, h.rank
        )],
    }
}

/// Render a witness chain, eliding the middle of very deep chains.
fn render_chain(chain: &[String]) -> String {
    if chain.len() <= 6 {
        return chain.join(" → ");
    }
    let head = chain[..3].join(" → ");
    let tail = chain[chain.len() - 2..].join(" → ");
    format!("{head} → … → {tail}")
}

/// Is `flow` exempt from the blocking rule at this site? Two cases:
/// the IO-serialization leaf locks in [`IO_LOCK_EXEMPT`], and
/// wait-family calls that name the lock's field in their arguments
/// (shim condvar waits release that mutex atomically).
fn exempt(parsed: &ParsedFile, flow: &Flow, block: &BlockingEvent) -> bool {
    if IO_LOCK_EXEMPT
        .iter()
        .any(|&(c, f)| c == flow.crate_name && f == flow.field)
    {
        return true;
    }
    if matches!(block.name.as_str(), "wait" | "wait_timeout") {
        let (open, close) = block.args;
        return parsed.toks[open..=close]
            .iter()
            .any(|t| t.kind == Kind::Ident && t.text == flow.field);
    }
    false
}

/// Does node `n` return a guard it acquired? Heuristic: the return
/// type names a `*Guard*` type AND the body's trailing expression (no
/// `;` after it) is a ranked acquisition. Covers `fn lock_x(..) ->
/// MutexGuard<..> { x.lock().unwrap_or_else(..) }` helpers.
fn guard_returned(files: &[ParsedFile], graph: &CallGraph, n: usize) -> Option<(String, u32)> {
    let parsed = graph.file(files, n);
    let def = graph.def(files, n);
    let ret_names_guard = parsed.toks[def.ret.0..def.ret.1]
        .iter()
        .any(|t| t.kind == Kind::Ident && t.text.contains("Guard"));
    if !ret_names_guard {
        return None;
    }
    let mut i = def.body_open + 1;
    while i < def.body_close {
        if let Some(acq) = acquisition_at(&parsed.crate_name, &parsed.toks, i) {
            let trailing = parsed.toks[acq.end..def.body_close]
                .iter()
                .all(|t| !t.is_punct(';'));
            if trailing {
                return Some((acq.field, acq.rank));
            }
            i = acq.end;
            continue;
        }
        i += 1;
    }
    None
}

/// Walk one function body tracking `let`-bound guard liveness (same
/// lexical model as the `lock-order` rule: a `let`-bound acquisition
/// lives to the end of its block, anything else drops at statement
/// end), snapshotting the held set at every resolved call and every
/// blocking operation.
fn local_walk(
    files: &[ParsedFile],
    graph: &CallGraph,
    n: usize,
    returns_guard: &[Option<(String, u32)>],
) -> Summary {
    let parsed = graph.file(files, n);
    let def = graph.def(files, n);
    let toks = &parsed.toks;
    // Call sites by token index, with their resolved callee (if any).
    let mut call_at: BTreeMap<usize, (usize, Option<usize>)> = BTreeMap::new();
    for (call_idx, call) in def.calls.iter().enumerate() {
        let callee = graph.edges[n]
            .iter()
            .find(|e| e.call_idx == call_idx)
            .map(|e| e.callee);
        call_at.insert(call.tok, (call_idx, callee));
    }

    let mut summary = Summary {
        acquires: Vec::new(),
        calls: Vec::new(),
        blocking: Vec::new(),
    };
    let mut held: Vec<Guard> = Vec::new();
    let mut depth: u32 = 0;
    let mut stmt_start = def.body_open + 1;
    let mut i = def.body_open + 1;
    while i < def.body_close {
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
            stmt_start = i + 1;
        } else if t.is_punct('}') {
            held.retain(|g| g.depth < depth);
            depth = depth.saturating_sub(1);
            stmt_start = i + 1;
        } else if t.is_punct(';') {
            stmt_start = i + 1;
        } else if !parsed.mask[i] {
            // Ranked acquisition?
            if let Some(acq) = acquisition_at(&parsed.crate_name, toks, i) {
                summary.acquires.push(HeldAt {
                    field: acq.field.clone(),
                    rank: acq.rank,
                    line: acq.line,
                });
                let is_binding = toks[stmt_start..i].iter().any(|t| t.is_ident("let"))
                    && toks.get(acq.end).is_some_and(|t| t.is_punct(';'));
                if is_binding {
                    held.push(Guard {
                        field: acq.field,
                        rank: acq.rank,
                        line: acq.line,
                        depth,
                    });
                }
                i = acq.end;
                continue;
            }
            if let Some(&(call_idx, callee)) = call_at.get(&i) {
                let call = &def.calls[call_idx];
                let snapshot: Vec<HeldAt> = held
                    .iter()
                    .map(|g| HeldAt {
                        field: g.field.clone(),
                        rank: g.rank,
                        line: g.line,
                    })
                    .collect();
                // Blocking operation?
                if is_blocking(call) {
                    summary.blocking.push(BlockingEvent {
                        name: call.name.clone(),
                        line: call.line,
                        args: (call.args_open, call.args_close),
                        held: snapshot.clone(),
                    });
                }
                if let Some(callee) = callee {
                    summary.calls.push(CallEvent {
                        callee,
                        callee_name: call.name.clone(),
                        line: call.line,
                        held: snapshot,
                    });
                    // A `let`-bound call to a guard-returning helper
                    // acquires that lock for the rest of the block.
                    if let Some((field, rank)) = &returns_guard[callee] {
                        let is_binding = toks[stmt_start..i].iter().any(|t| t.is_ident("let"))
                            && toks
                                .get(call.args_close + 1)
                                .is_some_and(|t| t.is_punct(';'));
                        if is_binding {
                            held.push(Guard {
                                field: field.clone(),
                                rank: *rank,
                                line: call.line,
                                depth,
                            });
                        }
                    }
                }
            }
        }
        i += 1;
    }
    summary
}

/// Is this call site a blocking operation? `join` blocks only as a
/// no-argument call (`JoinHandle::join`); `Path::join(..)` and
/// `str::join(..)` take arguments and never match.
fn is_blocking(call: &crate::parse::CallSite) -> bool {
    if !BLOCKING_OPS.contains(&call.name.as_str()) {
        return false;
    }
    if call.name == "join" {
        return call.args_close == call.args_open + 1;
    }
    true
}
