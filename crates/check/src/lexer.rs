//! A minimal Rust lexer: just enough to walk identifiers and
//! punctuation with accurate line numbers while never being fooled by
//! comments, strings (including raw strings), char literals, or
//! lifetimes.
//!
//! This is NOT a full Rust tokenizer — numbers come out as opaque
//! `Other` tokens and multi-character operators are emitted as single
//! punctuation characters — but every rule in this crate only needs
//! identifier/punct sequences, so the simplification is safe: the
//! failure mode of a richer grammar (mis-nesting, macro expansion) is
//! exactly what a lint gate must not depend on.

/// One lexical token with the 1-indexed line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: Kind,
    /// The token text (single char for punctuation).
    pub text: String,
    /// 1-indexed source line.
    pub line: u32,
}

/// Token classification (only what the rules consume).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword.
    Ident,
    /// A single punctuation character (`{`, `.`, `!`, ...).
    Punct,
    /// A lifetime (`'a`) — kept distinct so it never reads as a char.
    Lifetime,
    /// Literals and anything else the rules don't care about.
    Other,
}

impl Tok {
    /// Is this an identifier with exactly this text?
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == Kind::Ident && self.text == text
    }

    /// Is this a punctuation token with exactly this character?
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == Kind::Punct && self.text.len() == 1 && self.text.starts_with(ch)
    }
}

/// Tokenize `source`, dropping comments and string/char literal
/// contents (literals become single `Other` tokens).
pub fn lex(source: &str) -> Vec<Tok> {
    let bytes = source.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;

    let bump_lines = |slice: &[u8]| slice.iter().filter(|&&b| b == b'\n').count() as u32;

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                // Line comment (incl. doc comments): to end of line.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comment, nesting like Rust's.
                let start = i;
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                line += bump_lines(&bytes[start..i]);
            }
            b'r' if matches!(bytes.get(i + 1), Some(&b'"') | Some(&b'#')) => {
                // Raw string r"..." or r#"..."# (any number of #).
                let start = i;
                let mut j = i + 1;
                let mut hashes = 0;
                while bytes.get(j) == Some(&b'#') {
                    hashes += 1;
                    j += 1;
                }
                if bytes.get(j) == Some(&b'"') {
                    j += 1;
                    'scan: while j < bytes.len() {
                        if bytes[j] == b'"' {
                            let mut k = j + 1;
                            let mut seen = 0;
                            while seen < hashes && bytes.get(k) == Some(&b'#') {
                                seen += 1;
                                k += 1;
                            }
                            if seen == hashes {
                                j = k;
                                break 'scan;
                            }
                        }
                        j += 1;
                    }
                    toks.push(Tok {
                        kind: Kind::Other,
                        text: String::from("\"raw\""),
                        line,
                    });
                    line += bump_lines(&bytes[start..j]);
                    i = j;
                } else {
                    // Just an identifier starting with r.
                    let (tok, next) = lex_ident(source, i, line);
                    toks.push(tok);
                    i = next;
                }
            }
            b'"' => {
                let start = i;
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                toks.push(Tok {
                    kind: Kind::Other,
                    text: String::from("\"str\""),
                    line,
                });
                line += bump_lines(&bytes[start..i.min(bytes.len())]);
            }
            b'\'' => {
                // Lifetime ('a, 'static) vs char literal ('x', '\n').
                // A lifetime is ' followed by ident chars with NO
                // closing quote right after them.
                let mut j = i + 1;
                if bytes.get(j) == Some(&b'\\') {
                    // Escaped char literal.
                    j += 2;
                    while j < bytes.len() && bytes[j] != b'\'' {
                        j += 1;
                    }
                    toks.push(Tok {
                        kind: Kind::Other,
                        text: String::from("'c'"),
                        line,
                    });
                    i = (j + 1).min(bytes.len());
                } else {
                    let ident_start = j;
                    while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_')
                    {
                        j += 1;
                    }
                    if j > ident_start && bytes.get(j) == Some(&b'\'') {
                        // 'x' — a char literal.
                        toks.push(Tok {
                            kind: Kind::Other,
                            text: String::from("'c'"),
                            line,
                        });
                        i = j + 1;
                    } else if j > ident_start {
                        // 'ident — a lifetime.
                        toks.push(Tok {
                            kind: Kind::Lifetime,
                            text: source[i..j].to_string(),
                            line,
                        });
                        i = j;
                    } else if bytes.get(j).is_some_and(|&b| b != b'\'')
                        && bytes.get(j + 1) == Some(&b'\'')
                    {
                        // Punctuation char literal ('"', '(', ' ') —
                        // must be consumed whole or an inner `"` would
                        // flip the string state for the rest of the
                        // file.
                        toks.push(Tok {
                            kind: Kind::Other,
                            text: String::from("'c'"),
                            line,
                        });
                        i = j + 2;
                    } else {
                        // Stray quote; emit as punct and move on.
                        toks.push(Tok {
                            kind: Kind::Punct,
                            text: String::from("'"),
                            line,
                        });
                        i += 1;
                    }
                }
            }
            b'_' | b'a'..=b'z' | b'A'..=b'Z' => {
                let (tok, next) = lex_ident(source, i, line);
                toks.push(tok);
                i = next;
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'.')
                {
                    // Stop a float's dot from eating a method call
                    // (`1.max(2)`): only consume '.' when followed by a
                    // digit.
                    if bytes[i] == b'.' && !bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
                        break;
                    }
                    i += 1;
                }
                toks.push(Tok {
                    kind: Kind::Other,
                    text: source[start..i].to_string(),
                    line,
                });
            }
            _ => {
                toks.push(Tok {
                    kind: Kind::Punct,
                    text: (b as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    toks
}

fn lex_ident(source: &str, start: usize, line: u32) -> (Tok, usize) {
    let bytes = source.as_bytes();
    let mut i = start;
    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
        i += 1;
    }
    (
        Tok {
            kind: Kind::Ident,
            text: source[start..i].to_string(),
            line,
        },
        i,
    )
}

/// For each token, whether it lives inside test-only code: a
/// `#[cfg(test)]` item (usually `mod tests { ... }`) or a `#[test]`
/// function. Returns a mask parallel to `toks`.
pub fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            // Consume a run of attributes, remembering whether any of
            // them marks the item as test-only.
            let attr_start = i;
            let mut test_attr = false;
            while i < toks.len()
                && toks[i].is_punct('#')
                && toks.get(i + 1).is_some_and(|t| t.is_punct('['))
            {
                let close = match matching_bracket(toks, i + 1) {
                    Some(c) => c,
                    None => return mask,
                };
                test_attr |= attr_is_test(&toks[i + 2..close]);
                i = close + 1;
            }
            if !test_attr {
                continue;
            }
            // Mark the attributed item: everything to its closing brace
            // (or trailing semicolon for brace-less items).
            let mut j = i;
            while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                j += 1;
            }
            let end = if j < toks.len() && toks[j].is_punct('{') {
                matching_brace(toks, j).unwrap_or(toks.len() - 1)
            } else {
                j.min(toks.len() - 1)
            };
            for m in &mut mask[attr_start..=end] {
                *m = true;
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
    mask
}

/// Does the attribute body (tokens between `#[` and `]`) mark a test
/// item? Matches `test`, `cfg(test)`, and `cfg(any(..., test, ...))`.
fn attr_is_test(body: &[Tok]) -> bool {
    if body.len() == 1 && body[0].is_ident("test") {
        return true;
    }
    if body.first().is_some_and(|t| t.is_ident("cfg")) {
        return body.iter().any(|t| t.is_ident("test"));
    }
    false
}

/// Index of the `]` matching the `[` at `open`.
fn matching_bracket(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Index of the `}` matching the `{` at `open`.
pub fn matching_brace(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_never_produce_idents() {
        let toks = lex(r##"
            // unwrap() in a comment
            /* panic! in /* a nested */ block */
            let s = "unwrap() in a string";
            let r = r#"expect( in a raw string"#;
            let c = 'u';
            "##);
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
        assert!(!toks.iter().any(|t| t.is_ident("panic")));
        assert!(!toks.iter().any(|t| t.is_ident("expect")));
    }

    #[test]
    fn punctuation_char_literals_do_not_flip_string_state() {
        // '"' used to fall into the stray-quote branch, leaving its
        // inner `"` to open a phantom string and invert the string
        // state for everything after it.
        let toks = lex(r#"
            let q = '"';
            let p = '(';
            let s = "unwrap() stays a string";
            real_ident();
        "#);
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
        assert!(toks.iter().any(|t| t.is_ident("real_ident")));
    }

    #[test]
    fn lifetimes_do_not_swallow_code() {
        let toks = lex("fn f<'a>(x: &'a str) { x.unwrap(); }");
        assert!(toks.iter().any(|t| t.kind == Kind::Lifetime));
        assert!(toks.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let toks = lex("a\n/* b\nc */\nd");
        let d = toks.iter().find(|t| t.is_ident("d")).unwrap();
        assert_eq!(d.line, 4);
    }

    #[test]
    fn cfg_test_modules_are_masked() {
        let src = r#"
            fn prod() { x.unwrap(); }
            #[cfg(test)]
            mod tests {
                fn t() { y.unwrap(); }
            }
        "#;
        let toks = lex(src);
        let mask = test_mask(&toks);
        let unwraps: Vec<bool> = toks
            .iter()
            .zip(&mask)
            .filter(|(t, _)| t.is_ident("unwrap"))
            .map(|(_, &m)| m)
            .collect();
        assert_eq!(unwraps, vec![false, true]);
    }

    #[test]
    fn test_fns_with_stacked_attributes_are_masked() {
        let src = r#"
            #[allow(dead_code)]
            #[test]
            fn t() { y.unwrap(); }
            fn prod() { x.unwrap(); }
        "#;
        let toks = lex(src);
        let mask = test_mask(&toks);
        let unwraps: Vec<bool> = toks
            .iter()
            .zip(&mask)
            .filter(|(t, _)| t.is_ident("unwrap"))
            .map(|(_, &m)| m)
            .collect();
        assert_eq!(unwraps, vec![true, false]);
    }
}
