//! Sequential bucketed KD-tree — the data structure SemTree distributes.
//!
//! The paper (§III-B) assumes a KD-tree in which "data can be stored only
//! into the leaf nodes": every leaf holds a *bucket* of up to `Bs` points,
//! and internal (*routing*) nodes carry a split index `Sr` and split value
//! `Sv`. This crate provides exactly that tree, plus everything the
//! experiments need:
//!
//! - dynamic insertion with leaf splits ([`KdTree::insert`]) — when a leaf
//!   "saturates the bucket, two new child nodes are instantiated … the
//!   related points are moved into the new child nodes";
//! - balanced bulk-loading ([`KdTree::bulk_load`]) — "Kd-trees are more
//!   efficient in bulk-loading situations (as required by our approach)";
//! - a *totally unbalanced* chain builder ([`KdTree::chain_load`])
//!   reproducing the worst-case series of Figures 3, 4 and 6;
//! - exact k-nearest search ([`KdTree::knn`]) with the standard
//!   backtracking condition of §III-B.3;
//! - range search ([`KdTree::range`]) descending both children whenever
//!   `|P[SI] − Sv| < D` (§III-B.4);
//! - instrumented variants returning [`SearchStats`] (nodes visited,
//!   distance evaluations) that the complexity-shape tests assert on.
//!
//! # Example
//!
//! ```
//! use semtree_kdtree::{KdConfig, KdTree};
//!
//! let mut tree = KdTree::new(KdConfig::new(2).with_bucket_size(4));
//! for i in 0..100u32 {
//!     tree.insert(&[f64::from(i % 10), f64::from(i / 10)], i);
//! }
//! let hits = tree.knn(&[3.2, 4.9], 3);
//! assert_eq!(hits.len(), 3);
//! assert_eq!(hits[0].payload, 53); // (3, 5) is the closest grid point
//! ```

mod search;
mod stats;
mod tree;
pub mod versioned;

pub use search::{Neighbor, SearchStats};
pub use stats::TreeShape;
pub use tree::{KdConfig, KdTree, NodeId, SplitRule};
pub use versioned::{ReadStats, VersionedKdReader, VersionedKdTree};
