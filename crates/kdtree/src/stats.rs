//! Tree-shape statistics (used by the experiments to verify balance).

use crate::tree::{KdTree, NodeKind};

/// Structural statistics of a KD-tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeShape {
    /// Total nodes (routing + leaves).
    pub nodes: usize,
    /// Routing (internal) nodes.
    pub routing: usize,
    /// Leaf nodes.
    pub leaves: usize,
    /// Stored points.
    pub entries: usize,
    /// Deepest node depth (root = 0).
    pub max_depth: u32,
    /// Mean leaf depth.
    pub mean_leaf_depth: f64,
    /// Largest leaf bucket occupancy.
    pub max_leaf_occupancy: usize,
}

impl TreeShape {
    /// Measure a tree.
    #[must_use]
    pub fn of<P: Clone>(tree: &KdTree<P>) -> Self {
        let mut routing = 0usize;
        let mut leaves = 0usize;
        let mut entries = 0usize;
        let mut max_depth = 0u32;
        let mut leaf_depth_sum = 0u64;
        let mut max_leaf_occupancy = 0usize;
        for node in &tree.nodes {
            max_depth = max_depth.max(node.depth);
            match &node.kind {
                NodeKind::Routing { .. } => routing += 1,
                NodeKind::Leaf { bucket } => {
                    leaves += 1;
                    entries += bucket.len();
                    leaf_depth_sum += u64::from(node.depth);
                    max_leaf_occupancy = max_leaf_occupancy.max(bucket.len());
                }
            }
        }
        TreeShape {
            nodes: routing + leaves,
            routing,
            leaves,
            entries,
            max_depth,
            mean_leaf_depth: if leaves == 0 {
                0.0
            } else {
                leaf_depth_sum as f64 / leaves as f64
            },
            max_leaf_occupancy,
        }
    }

    /// The ideal (perfectly balanced) depth for this leaf count.
    #[must_use]
    pub fn ideal_depth(&self) -> u32 {
        if self.leaves <= 1 {
            0
        } else {
            (self.leaves as f64).log2().ceil() as u32
        }
    }

    /// `max_depth / ideal_depth` — 1.0 is perfectly balanced, a chain over
    /// `L` leaves approaches `L / log2(L)`.
    #[must_use]
    pub fn balance_factor(&self) -> f64 {
        let ideal = self.ideal_depth();
        if ideal == 0 {
            1.0
        } else {
            f64::from(self.max_depth) / f64::from(ideal)
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::tree::{KdConfig, KdTree};

    use super::*;

    fn line(n: usize) -> Vec<(Vec<f64>, u32)> {
        (0..n).map(|i| (vec![i as f64], i as u32)).collect()
    }

    #[test]
    fn shape_counts_are_consistent() {
        let t = KdTree::bulk_load(KdConfig::new(1).with_bucket_size(4), line(100));
        let s = TreeShape::of(&t);
        assert_eq!(s.entries, 100);
        assert_eq!(s.nodes, s.routing + s.leaves);
        assert_eq!(s.leaves, s.routing + 1, "binary tree: L = R + 1");
        assert!(s.max_leaf_occupancy <= 4);
    }

    #[test]
    fn balanced_tree_balance_factor_near_one() {
        let t = KdTree::bulk_load(KdConfig::new(1).with_bucket_size(4), line(256));
        let s = TreeShape::of(&t);
        assert!(s.balance_factor() <= 1.5, "factor {}", s.balance_factor());
    }

    #[test]
    fn chain_tree_balance_factor_large() {
        let t = KdTree::chain_load(KdConfig::new(1).with_bucket_size(4), line(256));
        let s = TreeShape::of(&t);
        assert!(s.balance_factor() >= 3.0, "factor {}", s.balance_factor());
    }

    #[test]
    fn node_count_matches_paper_formula_on_balanced_tree() {
        // §III-C: with K points and bucket Bs, N = 2K/Bs nodes when leaves
        // sit half-full on average after median splits. Check the right
        // order of magnitude (exact equality needs perfectly full leaves).
        let k_points = 1024;
        let bs = 8;
        let t = KdTree::bulk_load(KdConfig::new(1).with_bucket_size(bs), line(k_points));
        let s = TreeShape::of(&t);
        let formula = 2 * k_points / bs;
        assert!(
            s.nodes >= formula / 4 && s.nodes <= formula * 4,
            "nodes {} vs formula {formula}",
            s.nodes
        );
    }

    #[test]
    fn empty_tree_shape() {
        let t: KdTree<u32> = KdTree::new(KdConfig::new(2));
        let s = TreeShape::of(&t);
        assert_eq!(s.entries, 0);
        assert_eq!(s.leaves, 1);
        assert_eq!(s.routing, 0);
        assert_eq!(s.balance_factor(), 1.0);
        assert_eq!(s.ideal_depth(), 0);
    }
}
