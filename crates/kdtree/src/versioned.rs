//! Seqlock-versioned KD-tree: lock-free optimistic readers under a
//! single writer.
//!
//! The sequential [`crate::KdTree`] requires `&mut` for inserts and `&`
//! for searches, so sharing one across threads forces a lock and every
//! reader queues behind every writer. This module removes the reader
//! side of that lock with the optimistic scheme used by modern in-memory
//! indexes (congee/ART-OLC style, adapted to a bucketed KD-tree):
//!
//! - **Append-only node arena.** Nodes live in chunked, write-once slots
//!   ([`std::sync::OnceLock`]); a node is never mutated after
//!   publication except for the routing node's packed child word, which
//!   is a single atomic. Readers therefore never observe a torn node.
//! - **Copy-on-write structural updates.** An insert clones the target
//!   leaf's bucket, builds the replacement leaf (or, on overflow, the
//!   whole replacement subtree) in fresh slots, then swings exactly one
//!   pointer — the parent's child word or the root word — with a single
//!   release store.
//! - **A tree-level seqlock.** The writer brackets every mutation with
//!   `version += 1` (odd = in progress, even = quiescent). A reader
//!   snapshots the version, traverses without any lock, then validates
//!   the version is unchanged; on mismatch it retries and reports the
//!   retry count so the serving layer can surface contention.
//!
//! Why readers can never return a torn result: every word a reader
//! loads (version, root, child words) is stored with release ordering
//! and loaded with acquire ordering, and every node reachable through
//! those words was fully written before the word was published. If a
//! traversal overlaps a writer transaction, the reader either saw only
//! pre-transaction words (the result is the pre-state, and the final
//! version check passes because it re-reads the pre-transaction value)
//! or it saw at least one post-transaction word — in which case the
//! acquire load that observed it also makes the writer's *entry* store
//! (`version = odd`) visible, so validation fails and the read retries.
//! Structural safety does not depend on validation at all: child words
//! only ever point at fully-published nodes, and no stored edge ever
//! points back at an existing node, so any interleaving of old and new
//! edges is still acyclic and every traversal terminates.
//!
//! All of this is safe Rust (the workspace denies `unsafe`): the arena
//! trades reclamation for simplicity — superseded nodes stay allocated
//! for the life of the tree, which is the right call for partition
//! mirrors that are rebuilt wholesale on topology changes.
//!
//! The module is generic over the leaf payload `L` and the
//! [`semtree_conc::shim::Shim`], so the same code runs under real
//! atomics in production ([`VersionedKdTree`]) and under the
//! deterministic model checker (`kdtree_read_split` in
//! `crates/conc/tests/models.rs`).

use std::collections::BinaryHeap;
use std::sync::{Arc, OnceLock};

pub use semtree_conc::shim::{Shim, StdShim};
use semtree_par::metric::euclidean;
use semtree_par::Pool;

use crate::search::Neighbor;
use crate::tree::{KdConfig, SplitRule};

/// Number of arena chunks. Chunk `c` holds `64 << c` slots, so 25
/// chunks cap the arena at ~2.1 billion nodes — comfortably inside
/// `u32` indices, which must pack two to a child word.
const MAX_CHUNKS: usize = 25;
/// Total slot capacity across all chunks.
const MAX_NODES: u64 = 64 * ((1 << MAX_CHUNKS as u64) - 1);

/// `(chunk, offset)` of arena index `idx`.
fn locate(idx: u32) -> (usize, usize) {
    let q = idx / 64 + 1;
    let chunk = (31 - q.leading_zeros()) as usize;
    let base = 64 * ((1u32 << chunk) - 1);
    (chunk, (idx - base) as usize)
}

fn chunk_capacity(chunk: usize) -> usize {
    64 << chunk
}

/// Pack two node indices into one child word (left high, right low).
fn pack_children(left: u32, right: u32) -> u64 {
    (u64::from(left) << 32) | u64::from(right)
}

fn unpack_children(word: u64) -> (u32, u32) {
    #[allow(clippy::cast_possible_truncation)]
    let right = word as u32;
    ((word >> 32) as u32, right)
}

/// One immutable-after-publication tree node.
pub struct VNode<L, S: Shim> {
    depth: u32,
    kind: VKind<L, S>,
}

enum VKind<L, S: Shim> {
    /// Interior node: split plane plus the one mutable word — both
    /// child indices packed into a single atomic so a structural swing
    /// is one release store, never a half-updated pair.
    Routing {
        split_dim: u32,
        split_val: f64,
        children: S::AtomicU64,
    },
    Leaf(L),
}

/// A routing node's fields as read at one instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoutingView {
    /// Split dimension `Sr`.
    pub split_dim: usize,
    /// Split value `Sv`; points with `coords[Sr] <= Sv` go left.
    pub split_val: f64,
    /// Left child arena index.
    pub left: u32,
    /// Right child arena index.
    pub right: u32,
}

impl<L, S: Shim> VNode<L, S> {
    /// Depth of this node (root = 0).
    #[must_use]
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// The leaf payload, when this is a leaf.
    #[must_use]
    pub fn as_leaf(&self) -> Option<&L> {
        match &self.kind {
            VKind::Leaf(leaf) => Some(leaf),
            VKind::Routing { .. } => None,
        }
    }

    /// The routing fields (children loaded with acquire), when this is
    /// an interior node.
    #[must_use]
    pub fn as_routing(&self) -> Option<RoutingView> {
        match &self.kind {
            VKind::Leaf(_) => None,
            VKind::Routing {
                split_dim,
                split_val,
                children,
            } => {
                let (left, right) = unpack_children(S::load_acquire(children));
                Some(RoutingView {
                    split_dim: *split_dim as usize,
                    split_val: *split_val,
                    left,
                    right,
                })
            }
        }
    }
}

/// How many failed validations spin (with doubling pause windows)
/// before the reader starts yielding its timeslice between attempts.
const SPIN_RETRIES: u64 = 6;

/// Bounded spin-then-yield backoff for the optimistic-read retry loop.
fn backoff(retries: u64) {
    if retries <= SPIN_RETRIES {
        // 2, 4, ... 64 pause hints: cheap enough to win when the writer
        // publishes within its own timeslice.
        for _ in 0..(1u32 << retries.min(SPIN_RETRIES)) {
            std::hint::spin_loop();
        }
    } else {
        // Persistent conflict: get off the CPU so the writer (or the
        // scheduler) can make progress before the next full traversal.
        std::thread::yield_now();
    }
}

/// Retry accounting for one optimistic read.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadStats {
    /// The (even) version the result was validated against.
    pub version: u64,
    /// Attempts that had to be discarded before the validated one.
    pub retries: u64,
}

/// One lazily-allocated arena chunk: a block of publish-once node slots.
type NodeChunk<L, S> = Box<[OnceLock<VNode<L, S>>]>;

/// The shared versioned tree. Construct with [`VersionedTree::channel`],
/// which splits ownership into one [`TreeWriter`] and cloneable
/// [`TreeReader`]s.
pub struct VersionedTree<L, S: Shim = StdShim> {
    /// Tree-level seqlock: odd while a writer transaction is open.
    version: S::AtomicU64,
    /// Arena index of the root node.
    root: S::AtomicU64,
    /// Next free arena slot (written by the single writer only).
    next: S::AtomicU64,
    chunks: Box<[OnceLock<NodeChunk<L, S>>]>,
}

/// The single mutating handle. Deliberately **not** `Clone`: writers
/// stay single-threaded per tree, which is what makes the plain
/// version counter a sufficient write lock.
pub struct TreeWriter<L, S: Shim = StdShim> {
    tree: Arc<VersionedTree<L, S>>,
}

/// A lock-free read handle; clone freely across threads.
pub struct TreeReader<L, S: Shim = StdShim> {
    tree: Arc<VersionedTree<L, S>>,
}

impl<L, S: Shim> Clone for TreeReader<L, S> {
    fn clone(&self) -> Self {
        TreeReader {
            tree: Arc::clone(&self.tree),
        }
    }
}

impl<L, S: Shim> TreeReader<L, S> {
    /// Optimistic read; see [`VersionedTree::read`].
    pub fn read<R>(
        &self,
        attempt: impl FnMut(&ReadGuard<'_, L, S>) -> Option<R>,
    ) -> (R, ReadStats) {
        self.tree.read(attempt)
    }

    /// Bounded-retry read; see [`VersionedTree::read_bounded`].
    pub fn read_bounded<R>(
        &self,
        attempts: u64,
        attempt: impl FnMut(&ReadGuard<'_, L, S>) -> Option<R>,
    ) -> Option<(R, ReadStats)> {
        self.tree.read_bounded(attempts, attempt)
    }
}

/// One consistent-attempt view handed to read closures. All node
/// lookups may observe an in-flight writer; a closure must treat
/// [`ReadGuard::node`] returning `None` as "retry", never as absence.
pub struct ReadGuard<'t, L, S: Shim> {
    tree: &'t VersionedTree<L, S>,
}

impl<L, S: Shim> ReadGuard<'_, L, S> {
    /// Current root index.
    #[must_use]
    pub fn root(&self) -> u32 {
        #[allow(clippy::cast_possible_truncation)]
        let idx = S::load_acquire(&self.tree.root) as u32;
        idx
    }

    /// The node at `idx`, or `None` when the slot is not yet published
    /// (the reader raced the writer and must retry).
    #[must_use]
    pub fn node(&self, idx: u32) -> Option<&VNode<L, S>> {
        self.tree.node(idx)
    }
}

impl<L, S: Shim> VersionedTree<L, S> {
    /// Build a tree whose root is a depth-0 leaf holding `root_leaf`,
    /// returning the unique writer and a first reader — mpsc-style
    /// split ownership, hence "channel" rather than "new".
    pub fn channel(root_leaf: L) -> (TreeWriter<L, S>, TreeReader<L, S>) {
        let tree = Arc::new(VersionedTree {
            version: S::atomic_u64(0),
            root: S::atomic_u64(0),
            next: S::atomic_u64(0),
            chunks: (0..MAX_CHUNKS).map(|_| OnceLock::new()).collect(),
        });
        // Publish the root leaf before any reader exists; no
        // transaction needed. The very first append cannot exhaust the
        // arena.
        let root = tree.append(VNode {
            depth: 0,
            kind: VKind::Leaf(root_leaf),
        });
        debug_assert_eq!(root, Some(0));
        let writer = TreeWriter {
            tree: Arc::clone(&tree),
        };
        let reader = TreeReader { tree };
        (writer, reader)
    }

    fn node(&self, idx: u32) -> Option<&VNode<L, S>> {
        let (chunk, offset) = locate(idx);
        self.chunks.get(chunk)?.get()?.get(offset)?.get()
    }

    /// Append a node, returning its index, or `None` when the arena is
    /// exhausted. Writer-only.
    fn append(&self, node: VNode<L, S>) -> Option<u32> {
        let idx = S::load(&self.next);
        if idx >= MAX_NODES {
            return None;
        }
        #[allow(clippy::cast_possible_truncation)]
        let idx32 = idx as u32;
        let (chunk, offset) = locate(idx32);
        let slot = self.chunks[chunk].get_or_init(|| {
            (0..chunk_capacity(chunk))
                .map(|_| OnceLock::new())
                .collect()
        });
        // `set` fails only if the slot was already published, which a
        // single writer never does; treat it as exhaustion rather than
        // corrupting the arena.
        if slot.get(offset)?.set(node).is_err() {
            return None;
        }
        S::store(&self.next, idx + 1);
        Some(idx32)
    }

    /// Run `attempt` until it returns a value that validates against an
    /// unchanged version. `attempt` must return `None` when it observes
    /// an unpublished slot (writer race); the loop retries in both
    /// cases and reports how often.
    ///
    /// Failed validations back off before retrying: the first few
    /// retries spin (the writer transaction is usually a handful of
    /// stores), then the reader yields its timeslice. Without the yield
    /// a reader that lost the race keeps re-running full traversals
    /// against the same open transaction — on a loaded or single-core
    /// host that starves the very writer it is waiting on and the retry
    /// counter climbs by millions per second.
    pub fn read<R>(
        &self,
        mut attempt: impl FnMut(&ReadGuard<'_, L, S>) -> Option<R>,
    ) -> (R, ReadStats) {
        let mut retries = 0u64;
        loop {
            if let Some(done) = self.read_once(&mut attempt) {
                return (
                    done.0,
                    ReadStats {
                        version: done.1,
                        retries,
                    },
                );
            }
            retries = retries.saturating_add(1);
            backoff(retries);
        }
    }

    /// Like [`VersionedTree::read`] but gives up after `attempts`
    /// failed validations instead of spinning — the form the bounded
    /// model checker drives, where an unbounded retry loop would be an
    /// unbounded schedule.
    pub fn read_bounded<R>(
        &self,
        attempts: u64,
        mut attempt: impl FnMut(&ReadGuard<'_, L, S>) -> Option<R>,
    ) -> Option<(R, ReadStats)> {
        for retries in 0..attempts {
            if let Some(done) = self.read_once(&mut attempt) {
                return Some((
                    done.0,
                    ReadStats {
                        version: done.1,
                        retries,
                    },
                ));
            }
        }
        None
    }

    fn read_once<R>(
        &self,
        attempt: &mut impl FnMut(&ReadGuard<'_, L, S>) -> Option<R>,
    ) -> Option<(R, u64)> {
        let v1 = S::load_acquire(&self.version);
        if v1 & 1 == 1 {
            return None; // writer transaction open
        }
        let value = attempt(&ReadGuard { tree: self })?;
        if S::load_acquire(&self.version) == v1 {
            Some((value, v1))
        } else {
            None
        }
    }
}

/// An open writer transaction: readers observe the version as odd and
/// retry until [`Txn`] is dropped. All structural mutations happen
/// through a transaction.
pub struct Txn<'w, L, S: Shim = StdShim> {
    tree: &'w VersionedTree<L, S>,
    entry_version: u64,
}

impl<L, S: Shim> TreeWriter<L, S> {
    /// A new reader handle for this tree.
    #[must_use]
    pub fn reader(&self) -> TreeReader<L, S> {
        TreeReader {
            tree: Arc::clone(&self.tree),
        }
    }

    /// Open a transaction (bumps the version to odd with a release
    /// store).
    pub fn begin(&mut self) -> Txn<'_, L, S> {
        let v = S::load(&self.tree.version);
        S::store_release(&self.tree.version, v | 1);
        Txn {
            tree: &self.tree,
            entry_version: v | 1,
        }
    }

    /// Writer-side node access outside a transaction (the writer is the
    /// only mutator, so its own view is always consistent).
    #[must_use]
    pub fn node(&self, idx: u32) -> Option<&VNode<L, S>> {
        self.tree.node(idx)
    }

    /// Writer-side root index.
    #[must_use]
    pub fn root(&self) -> u32 {
        #[allow(clippy::cast_possible_truncation)]
        let idx = S::load(&self.tree.root) as u32;
        idx
    }
}

impl<L, S: Shim> Txn<'_, L, S> {
    /// Current root index.
    #[must_use]
    pub fn root(&self) -> u32 {
        #[allow(clippy::cast_possible_truncation)]
        let idx = S::load(&self.tree.root) as u32;
        idx
    }

    /// The node at `idx`. Within a transaction the writer sees all of
    /// its own appends.
    #[must_use]
    pub fn node(&self, idx: u32) -> Option<&VNode<L, S>> {
        self.tree.node(idx)
    }

    /// Publish a fresh leaf; returns its index, or `None` when the
    /// arena is exhausted (the caller abandons the transaction — no
    /// pointer has swung, so the logical tree is unchanged).
    pub fn alloc_leaf(&mut self, depth: u32, leaf: L) -> Option<u32> {
        self.tree.append(VNode {
            depth,
            kind: VKind::Leaf(leaf),
        })
    }

    /// Publish a fresh routing node over two already-published
    /// children.
    pub fn alloc_routing(
        &mut self,
        depth: u32,
        split_dim: usize,
        split_val: f64,
        left: u32,
        right: u32,
    ) -> Option<u32> {
        #[allow(clippy::cast_possible_truncation)]
        let dim = split_dim as u32;
        self.tree.append(VNode {
            depth,
            kind: VKind::Routing {
                split_dim: dim,
                split_val,
                children: S::atomic_u64(pack_children(left, right)),
            },
        })
    }

    /// Swing one child edge of routing node `parent` to `child`
    /// (release store of the packed word). Returns `false` when
    /// `parent` is not a routing node.
    pub fn set_child(&mut self, parent: u32, left_side: bool, child: u32) -> bool {
        let Some(node) = self.tree.node(parent) else {
            return false;
        };
        let VKind::Routing { children, .. } = &node.kind else {
            return false;
        };
        let (left, right) = unpack_children(S::load(children));
        let word = if left_side {
            pack_children(child, right)
        } else {
            pack_children(left, child)
        };
        S::store_release(children, word);
        true
    }

    /// Swing the root pointer to `idx`.
    pub fn set_root(&mut self, idx: u32) {
        S::store_release(&self.tree.root, u64::from(idx));
    }
}

impl<L, S: Shim> Drop for Txn<'_, L, S> {
    fn drop(&mut self) {
        // Close the seqlock: odd → next even. Everything stored inside
        // the transaction happens-before this release store.
        S::store_release(&self.tree.version, self.entry_version + 1);
    }
}

// ---------------------------------------------------------------------
// The concrete point tree used by benches, tests and the model target.
// ---------------------------------------------------------------------

/// Leaf bucket: insertion-ordered `(coords, payload)` pairs.
pub type VBucket = Vec<(Box<[f64]>, u64)>;

/// Writer half of a concurrently-readable bucketed KD-tree with the
/// same split semantics as [`crate::KdTree`]. Obtain readers with
/// [`VersionedKdTree::reader`].
pub struct VersionedKdTree<S: Shim = StdShim> {
    writer: TreeWriter<VBucket, S>,
    config: KdConfig,
    len: usize,
}

/// Cloneable lock-free read handle over a [`VersionedKdTree`].
pub struct VersionedKdReader<S: Shim = StdShim> {
    reader: TreeReader<VBucket, S>,
    config: KdConfig,
}

impl<S: Shim> Clone for VersionedKdReader<S> {
    fn clone(&self) -> Self {
        VersionedKdReader {
            reader: self.reader.clone(),
            config: self.config,
        }
    }
}

/// k-NN candidate ordered lexicographically by `(distance, payload)`.
/// The payload tie-break makes every search result deterministic
/// regardless of traversal interleaving, which the parity tests and
/// the model target rely on.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Cand {
    dist: f64,
    payload: u64,
}

impl Eq for Cand {}

impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Cand {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dist
            .total_cmp(&other.dist)
            .then_with(|| self.payload.cmp(&other.payload))
    }
}

/// Explicit-stack traversal task (mirrors the sequential searcher).
enum Task {
    Visit(u32),
    CheckFar { idx: u32, plane_dist: f64 },
}

impl<S: Shim> VersionedKdTree<S> {
    /// Empty tree under `config`.
    #[must_use]
    pub fn new(config: KdConfig) -> Self {
        let (writer, _) = VersionedTree::channel(Vec::new());
        VersionedKdTree {
            writer,
            config,
            len: 0,
        }
    }

    /// A new lock-free read handle.
    #[must_use]
    pub fn reader(&self) -> VersionedKdReader<S> {
        VersionedKdReader {
            reader: self.writer.reader(),
            config: self.config,
        }
    }

    /// The tree configuration.
    #[must_use]
    pub fn config(&self) -> &KdConfig {
        &self.config
    }

    /// Points stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert one point. Returns `false` only when the node arena is
    /// exhausted (the tree is unchanged in that case).
    ///
    /// The insert navigates to the target leaf, republishes it with the
    /// point appended — splitting copy-on-write into a fresh subtree
    /// when the bucket overflows — and swings a single pointer, all
    /// inside one seqlock transaction.
    pub fn insert(&mut self, point: &[f64], payload: u64) -> bool {
        assert_eq!(point.len(), self.config.dims(), "dimensionality mismatch");
        let config = self.config;
        let mut txn = self.writer.begin();
        let mut idx = txn.root();
        let mut parent: Option<(u32, bool)> = None;
        let (leaf_idx, depth) = loop {
            let Some(node) = txn.node(idx) else {
                // Unreachable for the writer (its own view is always
                // consistent); bail without swinging anything.
                return false;
            };
            let depth = node.depth();
            match node.as_routing() {
                Some(r) => {
                    let left_side = point[r.split_dim] <= r.split_val;
                    parent = Some((idx, left_side));
                    idx = if left_side { r.left } else { r.right };
                }
                None => break (idx, depth),
            }
        };
        let mut bucket = match txn.node(leaf_idx).and_then(VNode::as_leaf) {
            Some(bucket) => bucket.clone(),
            None => return false,
        };
        bucket.push((point.into(), payload));
        let Some(new_idx) = build_subtree(&mut txn, &config, bucket, depth) else {
            return false;
        };
        match parent {
            Some((p, left_side)) => {
                if !txn.set_child(p, left_side, new_idx) {
                    return false;
                }
            }
            None => txn.set_root(new_idx),
        }
        self.len += 1;
        true
    }
}

/// Copy-on-write subtree build: identical split decisions to
/// [`crate::KdTree`] (cycle/widest/degenerate rules, `<=` partition,
/// unsplittable buckets stay leaves).
fn build_subtree<S: Shim>(
    txn: &mut Txn<'_, VBucket, S>,
    config: &KdConfig,
    bucket: VBucket,
    depth: u32,
) -> Option<u32> {
    if bucket.len() <= config.bucket_size() {
        return txn.alloc_leaf(depth, bucket);
    }
    let Some((split_dim, split_val)) = choose_split(&bucket, config, depth) else {
        return txn.alloc_leaf(depth, bucket);
    };
    let (left, right): (VBucket, VBucket) = bucket
        .into_iter()
        .partition(|(coords, _)| coords[split_dim] <= split_val);
    let left_idx = build_subtree(txn, config, left, depth + 1)?;
    let right_idx = build_subtree(txn, config, right, depth + 1)?;
    txn.alloc_routing(depth, split_dim, split_val, left_idx, right_idx)
}

/// Split selection over raw buckets, mirroring the sequential tree's
/// `choose_split_at` semantics exactly (the parity proptest in this
/// module guards against drift).
fn choose_split(bucket: &VBucket, config: &KdConfig, depth: u32) -> Option<(usize, f64)> {
    let dims = config.dims();
    let preferred = match config.split_rule() {
        SplitRule::Cycle | SplitRule::DegenerateMin => depth as usize % dims,
        SplitRule::WidestSpread => widest_dim(bucket, dims),
    };
    for offset in 0..dims {
        let dim = (preferred + offset) % dims;
        let mut values: Vec<f64> = bucket.iter().map(|(c, _)| c[dim]).collect();
        values.sort_by(f64::total_cmp);
        let (min, max) = (values[0], *values.last()?);
        if max == min {
            continue;
        }
        if config.split_rule() == SplitRule::DegenerateMin {
            return Some((dim, min));
        }
        let mid = values[values.len() / 2];
        let val = if mid < max {
            mid
        } else {
            values.iter().rev().find(|&&v| v < max).copied()?
        };
        return Some((dim, val));
    }
    None
}

fn widest_dim(bucket: &VBucket, dims: usize) -> usize {
    let mut best = 0;
    let mut best_spread = f64::NEG_INFINITY;
    for dim in 0..dims {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for (coords, _) in bucket {
            lo = lo.min(coords[dim]);
            hi = hi.max(coords[dim]);
        }
        if hi - lo > best_spread {
            best_spread = hi - lo;
            best = dim;
        }
    }
    best
}

impl<S: Shim> VersionedKdReader<S> {
    /// The `k` nearest stored points, sorted by `(distance, payload)`,
    /// plus retry accounting. Lock-free: retries only when racing a
    /// writer transaction.
    #[must_use]
    pub fn knn(&self, query: &[f64], k: usize) -> (Vec<Neighbor<u64>>, ReadStats) {
        assert_eq!(query.len(), self.config.dims(), "dimensionality mismatch");
        self.reader.tree.read(|guard| knn_attempt(guard, query, k))
    }

    /// Bounded-retry [`VersionedKdReader::knn`] for the model checker:
    /// `None` when every attempt raced a writer.
    #[must_use]
    pub fn knn_bounded(
        &self,
        query: &[f64],
        k: usize,
        attempts: u64,
    ) -> Option<(Vec<Neighbor<u64>>, ReadStats)> {
        self.reader
            .tree
            .read_bounded(attempts, |guard| knn_attempt(guard, query, k))
    }

    /// All stored points within `radius` of `query`, sorted by
    /// `(distance, payload)`, plus retry accounting.
    #[must_use]
    pub fn range(&self, query: &[f64], radius: f64) -> (Vec<Neighbor<u64>>, ReadStats) {
        assert_eq!(query.len(), self.config.dims(), "dimensionality mismatch");
        assert!(radius >= 0.0, "radius must be non-negative");
        self.reader
            .tree
            .read(|guard| range_attempt(guard, query, radius))
    }

    /// Answer a batch of k-NN queries, fanning out over `pool`. Each
    /// worker reads through its own optimistic guard; the second return
    /// value is the total retries across the batch.
    #[must_use]
    pub fn knn_batch(
        &self,
        queries: &[Vec<f64>],
        k: usize,
        pool: &Pool,
    ) -> (Vec<Vec<Neighbor<u64>>>, u64) {
        let per_query = pool.map(queries.len(), &|i| self.knn(&queries[i], k));
        let mut retries = 0u64;
        let mut out = Vec::with_capacity(per_query.len());
        for (hits, stats) in per_query {
            retries += stats.retries;
            out.push(hits);
        }
        (out, retries)
    }
}

/// One optimistic k-NN traversal attempt; `None` on any sign of a
/// writer race (unpublished slot).
fn knn_attempt<S: Shim>(
    guard: &ReadGuard<'_, VBucket, S>,
    query: &[f64],
    k: usize,
) -> Option<Vec<Neighbor<u64>>> {
    if k == 0 {
        return Some(Vec::new());
    }
    let mut heap: BinaryHeap<Cand> = BinaryHeap::with_capacity(k + 1);
    let mut stack = vec![Task::Visit(guard.root())];
    while let Some(task) = stack.pop() {
        let idx = match task {
            Task::Visit(idx) => idx,
            Task::CheckFar { idx, plane_dist } => {
                let descend = heap.len() < k || heap.peek().is_some_and(|w| plane_dist < w.dist);
                if !descend {
                    continue;
                }
                idx
            }
        };
        let node = guard.node(idx)?;
        match node.as_routing() {
            Some(r) => {
                let delta = query[r.split_dim] - r.split_val;
                let (near, far) = if delta <= 0.0 {
                    (r.left, r.right)
                } else {
                    (r.right, r.left)
                };
                stack.push(Task::CheckFar {
                    idx: far,
                    plane_dist: delta.abs(),
                });
                stack.push(Task::Visit(near));
            }
            None => {
                let bucket = node.as_leaf()?;
                for (coords, payload) in bucket {
                    let cand = Cand {
                        dist: euclidean(coords, query),
                        payload: *payload,
                    };
                    if heap.len() < k {
                        heap.push(cand);
                    } else if heap.peek().is_some_and(|w| cand < *w) {
                        heap.pop();
                        heap.push(cand);
                    }
                }
            }
        }
    }
    let mut hits = heap.into_vec();
    hits.sort_unstable();
    Some(
        hits.into_iter()
            .map(|c| Neighbor {
                dist: c.dist,
                payload: c.payload,
            })
            .collect(),
    )
}

/// One optimistic range traversal attempt (same descent rule as the
/// sequential tree: both children when `|P[Sr] − Sv| <= D`).
fn range_attempt<S: Shim>(
    guard: &ReadGuard<'_, VBucket, S>,
    query: &[f64],
    radius: f64,
) -> Option<Vec<Neighbor<u64>>> {
    let mut out = Vec::new();
    let mut stack = vec![guard.root()];
    while let Some(idx) = stack.pop() {
        let node = guard.node(idx)?;
        match node.as_routing() {
            Some(r) => {
                let delta = query[r.split_dim] - r.split_val;
                if delta.abs() <= radius {
                    stack.push(r.left);
                    stack.push(r.right);
                } else if delta <= 0.0 {
                    stack.push(r.left);
                } else {
                    stack.push(r.right);
                }
            }
            None => {
                let bucket = node.as_leaf()?;
                for (coords, payload) in bucket {
                    let dist = euclidean(coords, query);
                    if dist <= radius {
                        out.push(Cand {
                            dist,
                            payload: *payload,
                        });
                    }
                }
            }
        }
    }
    out.sort_unstable();
    Some(
        out.into_iter()
            .map(|c| Neighbor {
                dist: c.dist,
                payload: c.payload,
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    fn grid_points(n: usize) -> Vec<(Vec<f64>, u64)> {
        (0..n)
            .map(|i| {
                (
                    vec![f64::from(i as u32 % 10), f64::from(i as u32 / 10)],
                    i as u64,
                )
            })
            .collect()
    }

    #[test]
    fn chunk_math_is_contiguous() {
        let mut expected = (0usize, 0usize);
        for idx in 0..200_000u32 {
            let (chunk, offset) = locate(idx);
            assert_eq!((chunk, offset), expected, "idx {idx}");
            expected = if offset + 1 == chunk_capacity(chunk) {
                (chunk + 1, 0)
            } else {
                (chunk, offset + 1)
            };
            assert!(offset < chunk_capacity(chunk));
        }
    }

    #[test]
    fn children_pack_roundtrip() {
        for (l, r) in [(0, 0), (1, 2), (u32::MAX, 7), (123_456, u32::MAX)] {
            assert_eq!(unpack_children(pack_children(l, r)), (l, r));
        }
    }

    #[test]
    fn matches_sequential_tree_on_grid() {
        let config = KdConfig::new(2).with_bucket_size(4);
        let mut vtree = VersionedKdTree::<StdShim>::new(config);
        let mut seq = crate::KdTree::new(config);
        for (coords, payload) in grid_points(100) {
            assert!(vtree.insert(&coords, payload));
            seq.insert(&coords, payload);
        }
        let reader = vtree.reader();
        for query in [[3.2, 4.9], [0.0, 0.0], [9.9, 9.9], [5.0, 5.0]] {
            let (hits, stats) = reader.knn(&query, 5);
            let expected = seq.knn(&query, 5);
            assert_eq!(stats.retries, 0, "no writer, no retries");
            assert_eq!(hits.len(), expected.len());
            // Distances must agree exactly; payload order may differ on
            // ties (the versioned reader breaks ties by payload).
            for (h, e) in hits.iter().zip(expected.iter()) {
                assert_eq!(h.dist, e.dist);
            }
            let mut got: Vec<u64> = hits.iter().map(|h| h.payload).collect();
            let mut want: Vec<u64> = expected.iter().map(|e| e.payload).collect();
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want);
        }
        let (in_range, _) = reader.range(&[5.0, 5.0], 2.5);
        let expected = seq.range(&[5.0, 5.0], 2.5);
        assert_eq!(in_range.len(), expected.len());
    }

    #[test]
    fn insert_returns_points_immediately() {
        let mut tree = VersionedKdTree::<StdShim>::new(KdConfig::new(2).with_bucket_size(1));
        let reader = tree.reader();
        for (i, coords) in [[0.0, 0.0], [1.0, 0.0], [0.5, 2.0], [3.0, 3.0]]
            .iter()
            .enumerate()
        {
            assert!(tree.insert(coords, i as u64));
            let (hits, _) = reader.knn(coords, 1);
            assert_eq!(
                hits[0].payload, i as u64,
                "read-your-writes after insert {i}"
            );
            assert_eq!(hits[0].dist, 0.0);
        }
        assert_eq!(tree.len(), 4);
    }

    #[test]
    fn degenerate_chain_splits_stay_searchable() {
        let config = KdConfig::new(1)
            .with_bucket_size(1)
            .with_split_rule(SplitRule::DegenerateMin);
        let mut tree = VersionedKdTree::<StdShim>::new(config);
        for i in 0..32u64 {
            assert!(tree.insert(&[i as f64], i));
        }
        let (hits, _) = tree.reader().knn(&[15.4], 3);
        let payloads: Vec<u64> = hits.iter().map(|h| h.payload).collect();
        assert_eq!(payloads, vec![15, 16, 14]);
    }

    #[test]
    fn concurrent_readers_never_see_torn_state() {
        // Stress (not exhaustive — the model target is): readers
        // validate every result against "some prefix of the inserted
        // points" while the writer splits leaves underneath them.
        let config = KdConfig::new(2).with_bucket_size(2);
        let mut tree = VersionedKdTree::<StdShim>::new(config);
        let points = grid_points(400);
        let reader = tree.reader();
        let done = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for t in 0..3 {
            let reader = reader.clone();
            let done = Arc::clone(&done);
            handles.push(std::thread::spawn(move || {
                let query = [3.1 + f64::from(t), 4.2];
                let mut max_retries = 0u64;
                while !done.load(Ordering::Relaxed) {
                    let (hits, stats) = reader.knn(&query, 4);
                    // Result sizes grow monotonically with the prefix;
                    // distances are sorted and deterministic.
                    for pair in hits.windows(2) {
                        assert!(pair[0].dist <= pair[1].dist);
                    }
                    max_retries = max_retries.max(stats.retries);
                }
                max_retries
            }));
        }
        for (coords, payload) in &points {
            assert!(tree.insert(coords, *payload));
        }
        done.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().expect("reader thread");
        }
        // Final state matches a sequential build.
        let mut seq = crate::KdTree::new(config);
        for (coords, payload) in &points {
            seq.insert(coords, *payload);
        }
        let (hits, _) = reader.knn(&[3.1, 4.2], 4);
        let expected = seq.knn(&[3.1, 4.2], 4);
        assert_eq!(
            hits.iter()
                .map(|h| h.payload)
                .collect::<std::collections::BTreeSet<_>>(),
            expected
                .iter()
                .map(|e| e.payload)
                .collect::<std::collections::BTreeSet<_>>()
        );
    }
}
