//! k-nearest and range search with backtracking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use semtree_par::metric::euclidean_sq;
use semtree_par::Pool;
// The single shared Euclidean implementation; this crate's former
// private copy is gone.
pub(crate) use semtree_par::metric::euclidean;

use crate::tree::{KdTree, NodeId, NodeKind};

/// One search hit.
#[derive(Debug, Clone, PartialEq)]
pub struct Neighbor<P> {
    /// Euclidean distance from the query point.
    pub dist: f64,
    /// The stored payload.
    pub payload: P,
}

/// Instrumentation of one search, used by the complexity-shape tests and
/// the distributed layer's cost accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Nodes (routing + leaf) touched by the visit.
    pub nodes_visited: usize,
    /// Point-to-point distance evaluations.
    pub distance_evals: usize,
}

/// Max-heap item so the `BinaryHeap` evicts the *farthest* candidate.
/// Ordered by **squared** distance — monotone in the true distance, so
/// no `sqrt` runs inside the search loop; the root is taken once per
/// result at materialization.
struct HeapItem<P> {
    dist_sq: f64,
    payload: P,
}

impl<P> PartialEq for HeapItem<P> {
    fn eq(&self, other: &Self) -> bool {
        self.dist_sq == other.dist_sq
    }
}
impl<P> Eq for HeapItem<P> {}
impl<P> PartialOrd for HeapItem<P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<P> Ord for HeapItem<P> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist_sq
            .partial_cmp(&other.dist_sq)
            .expect("distances are finite")
    }
}

impl<P: Clone> KdTree<P> {
    /// The `k` nearest stored points to `query`, closest first.
    ///
    /// Backtracking follows §III-B.3: after reaching a leaf, a sibling
    /// sub-tree is descended iff the result set is not full yet
    /// (`|Rs| < K`) **or** the splitting hyperplane is closer than the
    /// current worst result — the distance-comparison disjunct of the
    /// paper's condition, stated on the full distance rather than one
    /// coordinate so the search stays exact.
    #[must_use]
    pub fn knn(&self, query: &[f64], k: usize) -> Vec<Neighbor<P>> {
        self.knn_with_stats(query, k).0
    }

    /// [`KdTree::knn`] plus visit instrumentation.
    #[must_use]
    pub fn knn_with_stats(&self, query: &[f64], k: usize) -> (Vec<Neighbor<P>>, SearchStats) {
        assert_eq!(query.len(), self.config().dims(), "dimensionality mismatch");
        let mut stats = SearchStats::default();
        let mut heap: BinaryHeap<HeapItem<P>> = BinaryHeap::new();
        if k > 0 && !self.is_empty() {
            self.knn_iterative(query, k, &mut heap, &mut stats);
        }
        let mut out: Vec<Neighbor<P>> = heap
            .into_sorted_vec()
            .into_iter()
            .map(|h| Neighbor {
                dist: h.dist_sq.sqrt(),
                payload: h.payload,
            })
            .collect();
        // `into_sorted_vec` is ascending by our Ord — already closest-first.
        out.truncate(k);
        (out, stats)
    }

    /// Depth-first k-NN with an explicit stack: the far-side check is
    /// deferred until after the near sub-tree completes (classic
    /// backtracking), and arbitrarily deep (chain) trees cannot overflow
    /// the call stack.
    fn knn_iterative(
        &self,
        query: &[f64],
        k: usize,
        heap: &mut BinaryHeap<HeapItem<P>>,
        stats: &mut SearchStats,
    ) {
        enum Task {
            Visit(NodeId),
            /// Evaluate the paper's descend condition for the far child
            /// *after* the near side has been searched.
            CheckFar {
                far: NodeId,
                plane_dist_sq: f64,
            },
        }
        let mut stack = vec![Task::Visit(NodeId(0))];
        while let Some(task) = stack.pop() {
            match task {
                Task::CheckFar { far, plane_dist_sq } => {
                    // The paper's disjunction: Rs not full, or the
                    // hyperplane distance |P[SI] − Sv| beats the worst
                    // (compared in squared space, which preserves order).
                    let must = heap.len() < k
                        || heap
                            .peek()
                            .is_some_and(|worst| plane_dist_sq < worst.dist_sq);
                    if must {
                        stack.push(Task::Visit(far));
                    }
                }
                Task::Visit(node) => {
                    stats.nodes_visited += 1;
                    match &self.nodes[node.index()].kind {
                        NodeKind::Leaf { bucket } => {
                            for e in bucket {
                                stats.distance_evals += 1;
                                let d_sq = euclidean_sq(&e.coords, query);
                                if heap.len() < k {
                                    heap.push(HeapItem {
                                        dist_sq: d_sq,
                                        payload: e.payload.clone(),
                                    });
                                } else if let Some(top) = heap.peek() {
                                    if d_sq < top.dist_sq {
                                        heap.pop();
                                        heap.push(HeapItem {
                                            dist_sq: d_sq,
                                            payload: e.payload.clone(),
                                        });
                                    }
                                }
                            }
                        }
                        NodeKind::Routing {
                            split_dim,
                            split_val,
                            left,
                            right,
                        } => {
                            let delta = query[*split_dim] - *split_val;
                            let (near, far) = if delta <= 0.0 {
                                (*left, *right)
                            } else {
                                (*right, *left)
                            };
                            stack.push(Task::CheckFar {
                                far,
                                plane_dist_sq: delta * delta,
                            });
                            stack.push(Task::Visit(near));
                        }
                    }
                }
            }
        }
    }

    /// All stored points within `radius` of `query` (inclusive), closest
    /// first. Descends *both* children of a routing node whenever
    /// `|P[SI] − Sv| ≤ D`, per §III-B.4.
    #[must_use]
    pub fn range(&self, query: &[f64], radius: f64) -> Vec<Neighbor<P>> {
        self.range_with_stats(query, radius).0
    }

    /// [`KdTree::range`] plus visit instrumentation.
    #[must_use]
    pub fn range_with_stats(&self, query: &[f64], radius: f64) -> (Vec<Neighbor<P>>, SearchStats) {
        assert_eq!(query.len(), self.config().dims(), "dimensionality mismatch");
        assert!(radius >= 0.0, "radius must be non-negative");
        let mut stats = SearchStats::default();
        let mut out = Vec::new();
        if !self.is_empty() {
            self.range_visit(NodeId(0), query, radius, &mut out, &mut stats);
        }
        out.sort_by(|a, b| a.dist.partial_cmp(&b.dist).expect("distances are finite"));
        (out, stats)
    }

    fn range_visit(
        &self,
        start: NodeId,
        query: &[f64],
        radius: f64,
        out: &mut Vec<Neighbor<P>>,
        stats: &mut SearchStats,
    ) {
        let mut stack = vec![start];
        while let Some(node) = stack.pop() {
            stats.nodes_visited += 1;
            match &self.nodes[node.index()].kind {
                NodeKind::Leaf { bucket } => {
                    for e in bucket {
                        stats.distance_evals += 1;
                        let d = euclidean(&e.coords, query);
                        if d <= radius {
                            out.push(Neighbor {
                                dist: d,
                                payload: e.payload.clone(),
                            });
                        }
                    }
                }
                NodeKind::Routing {
                    split_dim,
                    split_val,
                    left,
                    right,
                } => {
                    let delta = query[*split_dim] - *split_val;
                    if delta.abs() <= radius {
                        // |P[SI] − Sv| < D → "navigate across the two
                        // children".
                        stack.push(*left);
                        stack.push(*right);
                    } else if delta <= 0.0 {
                        stack.push(*left);
                    } else {
                        stack.push(*right);
                    }
                }
            }
        }
    }

    /// The single nearest stored point, if any.
    #[must_use]
    pub fn nearest(&self, query: &[f64]) -> Option<Neighbor<P>> {
        self.knn(query, 1).into_iter().next()
    }

    /// Answer a batch of k-NN queries, fanning the batch out over
    /// `pool`'s workers. Output order matches `queries`, and each entry
    /// is byte-identical to what [`KdTree::knn`] returns for that query
    /// — the per-query search is untouched, only the batch dimension is
    /// parallel.
    #[must_use]
    pub fn knn_batch(&self, queries: &[Vec<f64>], k: usize, pool: &Pool) -> Vec<Vec<Neighbor<P>>>
    where
        P: Send + Sync,
    {
        pool.map(queries.len(), &|i| self.knn(&queries[i], k))
    }
}

#[cfg(test)]
mod tests {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    use crate::tree::{KdConfig, KdTree};

    use super::*;

    fn random_points(n: usize, dims: usize, seed: u64) -> Vec<(Vec<f64>, u32)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                (
                    (0..dims).map(|_| rng.random_range(0.0..100.0)).collect(),
                    i as u32,
                )
            })
            .collect()
    }

    fn brute_knn(points: &[(Vec<f64>, u32)], query: &[f64], k: usize) -> Vec<(f64, u32)> {
        let mut all: Vec<(f64, u32)> = points
            .iter()
            .map(|(c, p)| (euclidean(c, query), *p))
            .collect();
        all.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        all.truncate(k);
        all
    }

    #[test]
    fn knn_matches_brute_force() {
        let points = random_points(500, 3, 42);
        let tree = KdTree::bulk_load(KdConfig::new(3).with_bucket_size(8), points.clone());
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let q: Vec<f64> = (0..3).map(|_| rng.random_range(0.0..100.0)).collect();
            let got = tree.knn(&q, 5);
            let want = brute_knn(&points, &q, 5);
            assert_eq!(got.len(), 5);
            for (g, w) in got.iter().zip(&want) {
                assert!(
                    (g.dist - w.0).abs() < 1e-9,
                    "dist mismatch {} vs {}",
                    g.dist,
                    w.0
                );
            }
        }
    }

    #[test]
    fn knn_matches_brute_force_on_dynamic_tree() {
        let points = random_points(300, 2, 3);
        let mut tree = KdTree::new(KdConfig::new(2).with_bucket_size(4));
        for (c, p) in &points {
            tree.insert(c, *p);
        }
        let q = vec![50.0, 50.0];
        let got = tree.knn(&q, 10);
        let want = brute_knn(&points, &q, 10);
        for (g, w) in got.iter().zip(&want) {
            assert!((g.dist - w.0).abs() < 1e-9);
        }
    }

    #[test]
    fn knn_matches_brute_force_on_chain_tree() {
        let points = random_points(200, 2, 9);
        let tree = KdTree::chain_load(KdConfig::new(2).with_bucket_size(4), points.clone());
        let q = vec![33.0, 66.0];
        let got = tree.knn(&q, 7);
        let want = brute_knn(&points, &q, 7);
        for (g, w) in got.iter().zip(&want) {
            assert!((g.dist - w.0).abs() < 1e-9);
        }
    }

    #[test]
    fn knn_results_sorted_ascending() {
        let points = random_points(100, 2, 5);
        let tree = KdTree::bulk_load(KdConfig::new(2), points);
        let hits = tree.knn(&[10.0, 10.0], 10);
        for w in hits.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
    }

    #[test]
    fn knn_with_k_larger_than_tree() {
        let points = random_points(5, 2, 1);
        let tree = KdTree::bulk_load(KdConfig::new(2), points);
        assert_eq!(tree.knn(&[0.0, 0.0], 50).len(), 5);
    }

    #[test]
    fn knn_zero_k_and_empty_tree() {
        let tree: KdTree<u32> = KdTree::new(KdConfig::new(2));
        assert!(tree.knn(&[0.0, 0.0], 3).is_empty());
        let tree = KdTree::bulk_load(KdConfig::new(2), random_points(10, 2, 2));
        assert!(tree.knn(&[0.0, 0.0], 0).is_empty());
    }

    #[test]
    fn range_matches_brute_force() {
        let points = random_points(400, 3, 11);
        let tree = KdTree::bulk_load(KdConfig::new(3).with_bucket_size(8), points.clone());
        let q = vec![50.0, 50.0, 50.0];
        for radius in [0.0, 5.0, 20.0, 75.0] {
            let got = tree.range(&q, radius);
            let want: Vec<u32> = points
                .iter()
                .filter(|(c, _)| euclidean(c, &q) <= radius)
                .map(|(_, p)| *p)
                .collect();
            assert_eq!(got.len(), want.len(), "radius {radius}");
            for hit in &got {
                assert!(hit.dist <= radius);
                assert!(want.contains(&hit.payload));
            }
        }
    }

    #[test]
    fn range_radius_zero_finds_exact_point() {
        let mut tree = KdTree::new(KdConfig::new(2).with_bucket_size(2));
        tree.insert(&[1.0, 2.0], 1u32);
        tree.insert(&[3.0, 4.0], 2u32);
        let hits = tree.range(&[1.0, 2.0], 0.0);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].payload, 1);
    }

    #[test]
    fn range_sorted_ascending() {
        let points = random_points(200, 2, 13);
        let tree = KdTree::bulk_load(KdConfig::new(2), points);
        let hits = tree.range(&[50.0, 50.0], 40.0);
        assert!(hits.len() > 2);
        for w in hits.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
    }

    #[test]
    fn nearest_is_knn_one() {
        let points = random_points(50, 2, 17);
        let tree = KdTree::bulk_load(KdConfig::new(2), points);
        let n = tree.nearest(&[1.0, 1.0]).unwrap();
        let k = tree.knn(&[1.0, 1.0], 1);
        assert_eq!(n.payload, k[0].payload);
        let empty: KdTree<u32> = KdTree::new(KdConfig::new(2));
        assert!(empty.nearest(&[0.0, 0.0]).is_none());
    }

    #[test]
    fn balanced_tree_visits_fewer_nodes_than_chain() {
        // The complexity shape behind Figure 4: a balanced tree answers
        // k-NN in ~log N node visits, the chain in ~N.
        let points: Vec<(Vec<f64>, u32)> = (0..1024).map(|i| (vec![i as f64], i as u32)).collect();
        let balanced = KdTree::bulk_load(KdConfig::new(1).with_bucket_size(8), points.clone());
        let chain = KdTree::chain_load(KdConfig::new(1).with_bucket_size(8), points);
        let q = vec![512.3];
        let (_, bal) = balanced.knn_with_stats(&q, 3);
        let (_, ch) = chain.knn_with_stats(&q, 3);
        assert!(
            ch.nodes_visited > 4 * bal.nodes_visited,
            "chain {} vs balanced {}",
            ch.nodes_visited,
            bal.nodes_visited
        );
    }

    #[test]
    fn larger_radius_visits_more_nodes() {
        let points = random_points(1000, 2, 23);
        let tree = KdTree::bulk_load(KdConfig::new(2).with_bucket_size(8), points);
        let q = vec![50.0, 50.0];
        let (_, small) = tree.range_with_stats(&q, 1.0);
        let (_, large) = tree.range_with_stats(&q, 50.0);
        assert!(large.nodes_visited > small.nodes_visited);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_radius_panics() {
        let tree: KdTree<u32> = KdTree::new(KdConfig::new(1));
        let _ = tree.range(&[0.0], -1.0);
    }

    #[test]
    fn knn_batch_is_bitwise_identical_to_sequential_knn() {
        let points = random_points(400, 3, 29);
        let tree = KdTree::bulk_load(KdConfig::new(3).with_bucket_size(8), points);
        let mut rng = StdRng::seed_from_u64(31);
        let queries: Vec<Vec<f64>> = (0..40)
            .map(|_| (0..3).map(|_| rng.random_range(0.0..100.0)).collect())
            .collect();
        let want: Vec<Vec<Neighbor<u32>>> = queries.iter().map(|q| tree.knn(q, 5)).collect();
        for threads in [1usize, 2, 3, 8] {
            let pool = Pool::sequential().with_threads(threads);
            let got = tree.knn_batch(&queries, 5, &pool);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.len(), w.len(), "threads={threads}");
                for (gn, wn) in g.iter().zip(w) {
                    assert_eq!(gn.dist.to_bits(), wn.dist.to_bits(), "threads={threads}");
                    assert_eq!(gn.payload, wn.payload, "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn knn_batch_empty_batch_and_empty_tree() {
        let pool = Pool::sequential().with_threads(4);
        let tree: KdTree<u32> = KdTree::new(KdConfig::new(2));
        assert!(tree.knn_batch(&[], 3, &pool).is_empty());
        let hits = tree.knn_batch(&[vec![0.0, 0.0]], 3, &pool);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].is_empty());
    }

    #[test]
    fn duplicate_points_all_returned_in_range() {
        let mut tree = KdTree::new(KdConfig::new(2).with_bucket_size(2));
        for i in 0..6u32 {
            tree.insert(&[1.0, 1.0], i);
        }
        let hits = tree.range(&[1.0, 1.0], 0.5);
        assert_eq!(hits.len(), 6);
    }
}
