//! Tree structure, dynamic insertion and bulk loading.

use semtree_par::Pool;

/// Identifier of a node in the tree arena; the root is always node 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The arena index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// How a leaf picks its split dimension (`Sr`) when it overflows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SplitRule {
    /// Cycle through the dimensions by depth (`depth mod k`) — "as in the
    /// standard Kd-Tree" the paper navigates by.
    #[default]
    Cycle,
    /// Split on the dimension with the widest coordinate spread in the
    /// bucket (adapts "to different densities in various regions of the
    /// space", the KD-tree property the paper calls out).
    WidestSpread,
    /// Degenerate rule: split at the *smallest* coordinate value, so the
    /// left child receives only the minimum-valued points. Combined with
    /// sorted insertion this reproduces the classic one-point-per-node
    /// unbalanced KD-tree — the paper's "totally unbalanced (chain)"
    /// series. Never use this in production; it exists for the worst-case
    /// experiments.
    DegenerateMin,
}

/// Tree configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KdConfig {
    dims: usize,
    bucket_size: usize,
    split_rule: SplitRule,
}

impl KdConfig {
    /// Configuration for `dims`-dimensional points with the default bucket
    /// size (32) and split rule.
    ///
    /// # Panics
    /// Panics if `dims == 0`.
    #[must_use]
    pub fn new(dims: usize) -> Self {
        assert!(dims > 0, "dimensionality must be at least 1");
        KdConfig {
            dims,
            bucket_size: 32,
            split_rule: SplitRule::default(),
        }
    }

    /// Set the leaf bucket capacity `Bs` (≥ 1).
    ///
    /// # Panics
    /// Panics if `bucket_size == 0`.
    #[must_use]
    pub fn with_bucket_size(mut self, bucket_size: usize) -> Self {
        assert!(bucket_size > 0, "bucket size must be at least 1");
        self.bucket_size = bucket_size;
        self
    }

    /// Set the split rule.
    #[must_use]
    pub fn with_split_rule(mut self, rule: SplitRule) -> Self {
        self.split_rule = rule;
        self
    }

    /// Point dimensionality.
    #[must_use]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Leaf bucket capacity `Bs`.
    #[must_use]
    pub fn bucket_size(&self) -> usize {
        self.bucket_size
    }

    /// The split rule.
    #[must_use]
    pub fn split_rule(&self) -> SplitRule {
        self.split_rule
    }
}

/// Planar points (`dims = 2`) with the default bucket size and split
/// rule — the smallest configuration every example in this workspace
/// starts from; call [`KdConfig::new`] for other dimensionalities.
impl Default for KdConfig {
    fn default() -> Self {
        KdConfig::new(2)
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Entry<P> {
    pub(crate) coords: Box<[f64]>,
    pub(crate) payload: P,
}

#[derive(Debug, Clone)]
pub(crate) enum NodeKind<P> {
    /// Internal node carrying the split index `Sr` and split value `Sv`.
    Routing {
        split_dim: usize,
        split_val: f64,
        left: NodeId,
        right: NodeId,
    },
    /// Leaf bucket ("data can be stored only into the leaf nodes").
    Leaf { bucket: Vec<Entry<P>> },
}

#[derive(Debug, Clone)]
pub(crate) struct Node<P> {
    pub(crate) kind: NodeKind<P>,
    pub(crate) depth: u32,
}

/// A bucketed KD-tree with payloads of type `P`.
#[derive(Debug, Clone)]
pub struct KdTree<P> {
    config: KdConfig,
    pub(crate) nodes: Vec<Node<P>>,
    len: usize,
}

impl<P: Clone> KdTree<P> {
    /// An empty tree (a single empty leaf as root).
    #[must_use]
    pub fn new(config: KdConfig) -> Self {
        KdTree {
            config,
            nodes: vec![Node {
                kind: NodeKind::Leaf { bucket: Vec::new() },
                depth: 0,
            }],
            len: 0,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &KdConfig {
        &self.config
    }

    /// Number of stored points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree stores no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of nodes (routing + leaf).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Insert a point with its payload, splitting the target leaf if it
    /// overflows its bucket.
    ///
    /// # Panics
    /// Panics if `coords.len() != config.dims()`.
    pub fn insert(&mut self, coords: &[f64], payload: P) {
        assert_eq!(coords.len(), self.config.dims, "dimensionality mismatch");
        let leaf = self.locate_leaf(coords);
        let entry = Entry {
            coords: coords.into(),
            payload,
        };
        match &mut self.nodes[leaf.index()].kind {
            NodeKind::Leaf { bucket } => bucket.push(entry),
            NodeKind::Routing { .. } => unreachable!("locate_leaf returns leaves"),
        }
        self.len += 1;
        self.maybe_split(leaf);
    }

    /// Remove one stored point matching both coordinates and payload.
    /// Returns `true` when a point was removed. The leaf may become empty;
    /// routing structure is left in place (deletion does not rebalance —
    /// call [`KdTree::rebalance`] after bulk deletions).
    pub fn remove(&mut self, coords: &[f64], payload: &P) -> bool
    where
        P: PartialEq,
    {
        assert_eq!(coords.len(), self.config.dims, "dimensionality mismatch");
        let leaf = self.locate_leaf(coords);
        let NodeKind::Leaf { bucket } = &mut self.nodes[leaf.index()].kind else {
            unreachable!("locate_leaf returns leaves");
        };
        let Some(pos) = bucket
            .iter()
            .position(|e| e.coords.as_ref() == coords && e.payload == *payload)
        else {
            return false;
        };
        bucket.swap_remove(pos);
        self.len -= 1;
        true
    }

    /// The leaf a point with these coordinates belongs to (navigation by
    /// `Sr`/`Sv` exactly as the paper's insertion algorithm).
    #[must_use]
    pub fn locate_leaf(&self, coords: &[f64]) -> NodeId {
        let mut node = NodeId(0);
        loop {
            match &self.nodes[node.index()].kind {
                NodeKind::Leaf { .. } => return node,
                NodeKind::Routing {
                    split_dim,
                    split_val,
                    left,
                    right,
                } => {
                    node = if coords[*split_dim] <= *split_val {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    fn maybe_split(&mut self, leaf: NodeId) {
        let (depth, over) = match &self.nodes[leaf.index()].kind {
            NodeKind::Leaf { bucket } => (
                self.nodes[leaf.index()].depth,
                bucket.len() > self.config.bucket_size,
            ),
            NodeKind::Routing { .. } => return,
        };
        if !over {
            return;
        }
        let NodeKind::Leaf { bucket } = std::mem::replace(
            &mut self.nodes[leaf.index()].kind,
            NodeKind::Leaf { bucket: Vec::new() },
        ) else {
            return;
        };

        let Some((split_dim, split_val)) = self.choose_split(&bucket, depth) else {
            // Every point identical: splitting is impossible; keep the
            // oversized bucket (re-checked at the next insert).
            self.nodes[leaf.index()].kind = NodeKind::Leaf { bucket };
            return;
        };

        let (left_bucket, right_bucket): (Vec<_>, Vec<_>) = bucket
            .into_iter()
            .partition(|e| e.coords[split_dim] <= split_val);
        debug_assert!(!left_bucket.is_empty() && !right_bucket.is_empty());

        let left = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind: NodeKind::Leaf {
                bucket: left_bucket,
            },
            depth: depth + 1,
        });
        let right = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind: NodeKind::Leaf {
                bucket: right_bucket,
            },
            depth: depth + 1,
        });
        self.nodes[leaf.index()].kind = NodeKind::Routing {
            split_dim,
            split_val,
            left,
            right,
        };

        // A median split leaves each side within capacity, but re-check for
        // safety with degenerate (heavily duplicated) coordinates.
        self.maybe_split(left);
        self.maybe_split(right);
    }

    /// Pick `(Sr, Sv)` for a bucket; `None` when no dimension separates the
    /// points. `Sv` is chosen so both sides are non-empty.
    fn choose_split(&self, bucket: &[Entry<P>], depth: u32) -> Option<(usize, f64)> {
        choose_split_at(&self.config, bucket, depth)
    }

    /// Balanced bulk-load: recursive median construction, the paper's
    /// "1 partition (balanced)" series.
    #[must_use]
    pub fn bulk_load(config: KdConfig, points: Vec<(Vec<f64>, P)>) -> Self {
        for (coords, _) in &points {
            assert_eq!(coords.len(), config.dims, "dimensionality mismatch");
        }
        let len = points.len();
        let mut tree = KdTree {
            config,
            nodes: Vec::new(),
            len,
        };
        let entries: Vec<Entry<P>> = points
            .into_iter()
            .map(|(coords, payload)| Entry {
                coords: coords.into(),
                payload,
            })
            .collect();
        tree.nodes.push(Node {
            kind: NodeKind::Leaf { bucket: Vec::new() },
            depth: 0,
        });
        tree.build_recursive(NodeId(0), entries, 0);
        tree
    }

    fn build_recursive(&mut self, node: NodeId, entries: Vec<Entry<P>>, depth: u32) {
        self.nodes[node.index()].depth = depth;
        if entries.len() <= self.config.bucket_size {
            self.nodes[node.index()].kind = NodeKind::Leaf { bucket: entries };
            return;
        }
        let Some((split_dim, split_val)) = self.choose_split(&entries, depth) else {
            self.nodes[node.index()].kind = NodeKind::Leaf { bucket: entries };
            return;
        };
        let (left_bucket, right_bucket): (Vec<_>, Vec<_>) = entries
            .into_iter()
            .partition(|e| e.coords[split_dim] <= split_val);
        let left = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind: NodeKind::Leaf { bucket: Vec::new() },
            depth: depth + 1,
        });
        let right = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            kind: NodeKind::Leaf { bucket: Vec::new() },
            depth: depth + 1,
        });
        self.nodes[node.index()].kind = NodeKind::Routing {
            split_dim,
            split_val,
            left,
            right,
        };
        self.build_recursive(left, left_bucket, depth + 1);
        self.build_recursive(right, right_bucket, depth + 1);
    }

    /// [`KdTree::bulk_load`] with the recursive median construction fanned
    /// out over `pool`'s workers. The resulting tree is **identical** to
    /// the sequential bulk-load — same arena layout, node numbering, split
    /// choices and bucket order — because the top of the tree is split
    /// sequentially into independent sub-tree tasks whose results are
    /// flattened back in exactly the order [`KdTree::bulk_load`] would
    /// have allocated them.
    #[must_use]
    pub fn bulk_load_par(config: KdConfig, points: Vec<(Vec<f64>, P)>, pool: &Pool) -> Self
    where
        P: Send,
    {
        if pool.threads() <= 1 {
            return Self::bulk_load(config, points);
        }
        for (coords, _) in &points {
            assert_eq!(coords.len(), config.dims, "dimensionality mismatch");
        }
        let len = points.len();
        let entries: Vec<Entry<P>> = points
            .into_iter()
            .map(|(coords, payload)| Entry {
                coords: coords.into(),
                payload,
            })
            .collect();
        // Split sequentially for the first few levels — enough to hand
        // every worker a handful of independent sub-trees.
        let levels = (pool.threads() * 4).next_power_of_two().trailing_zeros();
        let mut tasks: Vec<(Vec<Entry<P>>, u32)> = Vec::new();
        let top = skeleton(&config, entries, 0, levels, &mut tasks);
        let built = pool.map_vec(tasks, &|(sub, depth)| build_subtree(&config, sub, depth));
        let mut built: Vec<Option<BuildNode<P>>> = built.into_iter().map(Some).collect();
        let mut tree = KdTree {
            config,
            nodes: Vec::new(),
            len,
        };
        tree.nodes.push(Node {
            kind: NodeKind::Leaf { bucket: Vec::new() },
            depth: 0,
        });
        tree.flatten_built(NodeId(0), top, 0, &mut built);
        tree
    }

    /// Write a linked [`BuildNode`] sub-tree into the arena at `node`,
    /// allocating children in `build_recursive`'s exact order (left at
    /// `len`, right at `len + 1`, then the left sub-tree in full before
    /// the right) so the parallel build is arena-identical.
    fn flatten_built(
        &mut self,
        node: NodeId,
        built: BuildNode<P>,
        depth: u32,
        tasks: &mut [Option<BuildNode<P>>],
    ) {
        self.nodes[node.index()].depth = depth;
        match built {
            BuildNode::Leaf(bucket) => {
                self.nodes[node.index()].kind = NodeKind::Leaf { bucket };
            }
            BuildNode::Task(i) => {
                let Some(sub) = tasks[i].take() else {
                    unreachable!("each pool-built sub-tree is flattened exactly once");
                };
                self.flatten_built(node, sub, depth, tasks);
            }
            BuildNode::Split {
                split_dim,
                split_val,
                children,
            } => {
                let (l, r) = *children;
                let left = NodeId(self.nodes.len() as u32);
                self.nodes.push(Node {
                    kind: NodeKind::Leaf { bucket: Vec::new() },
                    depth: depth + 1,
                });
                let right = NodeId(self.nodes.len() as u32);
                self.nodes.push(Node {
                    kind: NodeKind::Leaf { bucket: Vec::new() },
                    depth: depth + 1,
                });
                self.nodes[node.index()].kind = NodeKind::Routing {
                    split_dim,
                    split_val,
                    left,
                    right,
                };
                self.flatten_built(left, l, depth + 1, tasks);
                self.flatten_built(right, r, depth + 1, tasks);
            }
        }
    }

    /// Totally unbalanced ("chain") construction: points are inserted in
    /// lexicographic coordinate order under the [`SplitRule::DegenerateMin`]
    /// rule, so every split peels off only the minimum-valued points and
    /// the tree degenerates into a chain — the paper's worst-case series in
    /// Figures 3, 4 and 6.
    #[must_use]
    pub fn chain_load(config: KdConfig, mut points: Vec<(Vec<f64>, P)>) -> Self {
        points.sort_by(|(a, _), (b, _)| {
            a.iter()
                .zip(b.iter())
                .find_map(|(x, y)| x.partial_cmp(y).filter(|o| o.is_ne()))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut tree = KdTree::new(config.with_split_rule(SplitRule::DegenerateMin));
        for (coords, payload) in points {
            tree.insert(&coords, payload);
        }
        tree
    }

    /// Rebuild the tree as a balanced bulk-load of its current contents —
    /// the answer to the paper's "once built, modifying or rebalancing a
    /// Kd-tree is a non-trivial task": rebalancing here is a full rebuild,
    /// linearithmic in the point count. Routing structure is discarded;
    /// points and payloads are preserved.
    pub fn rebalance(&mut self) {
        let points: Vec<(Vec<f64>, P)> =
            self.iter().map(|(c, p)| (c.to_vec(), p.clone())).collect();
        // A rebalanced tree uses the non-degenerate rule even if the
        // original was built for the worst-case experiments.
        let config = if self.config.split_rule == SplitRule::DegenerateMin {
            self.config.with_split_rule(SplitRule::Cycle)
        } else {
            self.config
        };
        *self = KdTree::bulk_load(config, points);
    }

    /// Iterate every stored `(coords, payload)`.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], &P)> {
        self.nodes
            .iter()
            .flat_map(|n| match &n.kind {
                NodeKind::Leaf { bucket } => bucket.as_slice(),
                NodeKind::Routing { .. } => &[],
            })
            .map(|e| (e.coords.as_ref(), &e.payload))
    }
}

/// Sub-tree representation for the parallel bulk-load: workers build
/// linked sub-trees independently, and the flatten pass writes them into
/// the arena in the sequential allocation order.
enum BuildNode<P> {
    Leaf(Vec<Entry<P>>),
    Split {
        split_dim: usize,
        split_val: f64,
        children: Box<(BuildNode<P>, BuildNode<P>)>,
    },
    /// Placeholder for a sub-tree built by a pool worker; the index keys
    /// into the built-task vector during flattening.
    Task(usize),
}

/// Split sequentially for `levels` levels, recording each unfinished
/// sub-tree as a task. Split decisions are exactly `build_recursive`'s.
fn skeleton<P>(
    config: &KdConfig,
    entries: Vec<Entry<P>>,
    depth: u32,
    levels: u32,
    tasks: &mut Vec<(Vec<Entry<P>>, u32)>,
) -> BuildNode<P> {
    if entries.len() <= config.bucket_size {
        return BuildNode::Leaf(entries);
    }
    if levels == 0 {
        tasks.push((entries, depth));
        return BuildNode::Task(tasks.len() - 1);
    }
    let Some((split_dim, split_val)) = choose_split_at(config, &entries, depth) else {
        return BuildNode::Leaf(entries);
    };
    let (left, right): (Vec<_>, Vec<_>) = entries
        .into_iter()
        .partition(|e| e.coords[split_dim] <= split_val);
    BuildNode::Split {
        split_dim,
        split_val,
        children: Box::new((
            skeleton(config, left, depth + 1, levels - 1, tasks),
            skeleton(config, right, depth + 1, levels - 1, tasks),
        )),
    }
}

/// Sequentially build one sub-tree as a linked structure, mirroring
/// `build_recursive`'s decisions exactly.
fn build_subtree<P>(config: &KdConfig, entries: Vec<Entry<P>>, depth: u32) -> BuildNode<P> {
    if entries.len() <= config.bucket_size {
        return BuildNode::Leaf(entries);
    }
    let Some((split_dim, split_val)) = choose_split_at(config, &entries, depth) else {
        return BuildNode::Leaf(entries);
    };
    let (left, right): (Vec<_>, Vec<_>) = entries
        .into_iter()
        .partition(|e| e.coords[split_dim] <= split_val);
    BuildNode::Split {
        split_dim,
        split_val,
        children: Box::new((
            build_subtree(config, left, depth + 1),
            build_subtree(config, right, depth + 1),
        )),
    }
}

/// Pick `(Sr, Sv)` for a bucket under `config`; `None` when no dimension
/// separates the points. Shared by the sequential and parallel builders
/// so both make byte-identical split decisions.
fn choose_split_at<P>(config: &KdConfig, bucket: &[Entry<P>], depth: u32) -> Option<(usize, f64)> {
    let dims = config.dims;
    let preferred = match config.split_rule {
        SplitRule::Cycle | SplitRule::DegenerateMin => depth as usize % dims,
        SplitRule::WidestSpread => widest_dim(bucket, dims),
    };
    let degenerate = config.split_rule == SplitRule::DegenerateMin;
    // Try the preferred dimension first, then the rest.
    for offset in 0..dims {
        let dim = (preferred + offset) % dims;
        let val = if degenerate {
            min_split_value(bucket, dim)
        } else {
            split_value(bucket, dim)
        };
        if let Some(val) = val {
            return Some((dim, val));
        }
    }
    None
}

fn widest_dim<P>(bucket: &[Entry<P>], dims: usize) -> usize {
    let mut best = 0;
    let mut best_spread = f64::NEG_INFINITY;
    for dim in 0..dims {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for e in bucket {
            lo = lo.min(e.coords[dim]);
            hi = hi.max(e.coords[dim]);
        }
        let spread = hi - lo;
        if spread > best_spread {
            best_spread = spread;
            best = dim;
        }
    }
    best
}

/// The smallest coordinate along `dim` — the degenerate split: the left
/// side receives only the minimum-valued points. `None` when all equal.
fn min_split_value<P>(bucket: &[Entry<P>], dim: usize) -> Option<f64> {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for e in bucket {
        min = min.min(e.coords[dim]);
        max = max.max(e.coords[dim]);
    }
    (min < max).then_some(min)
}

/// The median coordinate along `dim`, adjusted so that partitioning on
/// `<= value` leaves both sides non-empty; `None` when all values equal.
fn split_value<P>(bucket: &[Entry<P>], dim: usize) -> Option<f64> {
    let mut values: Vec<f64> = bucket.iter().map(|e| e.coords[dim]).collect();
    values.sort_by(|a, b| a.partial_cmp(b).expect("coordinates are finite"));
    let max = *values.last()?;
    let min = values[0];
    if max == min {
        return None;
    }
    let mid = values[values.len() / 2];
    // `<= mid` must not swallow everything: when the median equals the
    // maximum (duplicate-heavy data), step down to the largest value < max.
    if mid < max {
        Some(mid)
    } else {
        values.iter().rev().find(|&&v| v < max).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize) -> Vec<(Vec<f64>, u32)> {
        (0..n)
            .map(|i| (vec![(i % 10) as f64, (i / 10) as f64], i as u32))
            .collect()
    }

    #[test]
    fn empty_tree() {
        let t: KdTree<u32> = KdTree::new(KdConfig::new(2));
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.node_count(), 1);
    }

    #[test]
    fn insert_grows_len_and_splits() {
        let mut t = KdTree::new(KdConfig::new(2).with_bucket_size(4));
        for (coords, p) in grid(50) {
            t.insert(&coords, p);
        }
        assert_eq!(t.len(), 50);
        assert!(t.node_count() > 1, "bucket overflow must have split");
        assert_eq!(t.iter().count(), 50);
    }

    #[test]
    fn all_leaves_within_capacity_after_splits() {
        let mut t = KdTree::new(KdConfig::new(2).with_bucket_size(4));
        for (coords, p) in grid(200) {
            t.insert(&coords, p);
        }
        for node in &t.nodes {
            if let NodeKind::Leaf { bucket } = &node.kind {
                assert!(bucket.len() <= 4, "leaf holds {}", bucket.len());
            }
        }
    }

    #[test]
    fn identical_points_do_not_split_forever() {
        let mut t = KdTree::new(KdConfig::new(2).with_bucket_size(2));
        for i in 0..20u32 {
            t.insert(&[1.0, 1.0], i);
        }
        assert_eq!(t.len(), 20);
        // A single (oversized) leaf: no split possible.
        assert_eq!(t.node_count(), 1);
    }

    #[test]
    fn duplicate_heavy_data_splits_on_another_dim() {
        let mut t = KdTree::new(
            KdConfig::new(2)
                .with_bucket_size(2)
                .with_split_rule(SplitRule::Cycle),
        );
        // Constant on dim 0 (the Cycle rule's first choice), varying dim 1.
        for i in 0..10u32 {
            t.insert(&[5.0, f64::from(i)], i);
        }
        assert!(t.node_count() > 1);
        assert_eq!(t.iter().count(), 10);
    }

    #[test]
    fn locate_leaf_is_consistent_with_insert() {
        let mut t = KdTree::new(KdConfig::new(2).with_bucket_size(2));
        for (coords, p) in grid(40) {
            t.insert(&coords, p);
        }
        // Every stored point must be found in the leaf locate_leaf returns.
        let stored: Vec<(Vec<f64>, u32)> = t.iter().map(|(c, p)| (c.to_vec(), *p)).collect();
        for (coords, payload) in stored {
            let leaf = t.locate_leaf(&coords);
            match &t.nodes[leaf.index()].kind {
                NodeKind::Leaf { bucket } => {
                    assert!(bucket.iter().any(|e| e.payload == payload));
                }
                NodeKind::Routing { .. } => panic!("locate_leaf returned routing node"),
            }
        }
    }

    #[test]
    fn bulk_load_is_balanced() {
        let t = KdTree::bulk_load(KdConfig::new(2).with_bucket_size(4), grid(256));
        assert_eq!(t.len(), 256);
        let max_depth = t.nodes.iter().map(|n| n.depth).max().unwrap();
        // 256 points / bucket 4 = 64 leaves → ideal depth 6; allow slack
        // for uneven medians.
        assert!(
            max_depth <= 9,
            "depth {max_depth} too large for balanced build"
        );
    }

    #[test]
    fn chain_load_degenerates() {
        let pts: Vec<(Vec<f64>, u32)> = (0..64).map(|i| (vec![i as f64], i as u32)).collect();
        let chain = KdTree::chain_load(KdConfig::new(1).with_bucket_size(4), pts.clone());
        let balanced = KdTree::bulk_load(KdConfig::new(1).with_bucket_size(4), pts);
        let chain_depth = chain.nodes.iter().map(|n| n.depth).max().unwrap();
        let bal_depth = balanced.nodes.iter().map(|n| n.depth).max().unwrap();
        assert!(
            chain_depth >= 2 * bal_depth,
            "chain depth {chain_depth} vs balanced {bal_depth}"
        );
        assert_eq!(chain.len(), 64);
    }

    #[test]
    fn bulk_load_empty_and_small() {
        let t: KdTree<u32> = KdTree::bulk_load(KdConfig::new(3), vec![]);
        assert!(t.is_empty());
        let t = KdTree::bulk_load(KdConfig::new(1), vec![(vec![1.0], 7u32)]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.node_count(), 1);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn wrong_dimensionality_panics() {
        let mut t = KdTree::new(KdConfig::new(2));
        t.insert(&[1.0], 0u32);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_dims_rejected() {
        let _ = KdConfig::new(0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_bucket_rejected() {
        let _ = KdConfig::new(2).with_bucket_size(0);
    }

    #[test]
    fn widest_spread_rule_builds_valid_tree() {
        let mut t = KdTree::new(
            KdConfig::new(2)
                .with_bucket_size(4)
                .with_split_rule(SplitRule::WidestSpread),
        );
        for (coords, p) in grid(100) {
            t.insert(&coords, p);
        }
        assert_eq!(t.iter().count(), 100);
    }

    #[test]
    fn remove_deletes_exact_point() {
        let mut t = KdTree::new(KdConfig::new(2).with_bucket_size(4));
        for (coords, p) in grid(50) {
            t.insert(&coords, p);
        }
        assert!(t.remove(&[3.0, 2.0], &23)); // point 23 = (3, 2)
        assert_eq!(t.len(), 49);
        assert!(!t.remove(&[3.0, 2.0], &23), "already gone");
        assert!(!t.remove(&[3.0, 2.0], &99), "payload mismatch");
        assert!(t.iter().all(|(_, &p)| p != 23));
        // Queries remain exact after deletion.
        let hits = t.knn(&[3.0, 2.0], 1);
        assert!(hits[0].dist > 0.0);
    }

    #[test]
    fn remove_distinguishes_duplicate_coords_by_payload() {
        let mut t = KdTree::new(KdConfig::new(1).with_bucket_size(4));
        t.insert(&[1.0], 1u32);
        t.insert(&[1.0], 2u32);
        assert!(t.remove(&[1.0], &1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.nearest(&[1.0]).unwrap().payload, 2);
    }

    #[test]
    fn rebalance_restores_balance_and_content() {
        let pts: Vec<(Vec<f64>, u32)> = (0..512).map(|i| (vec![i as f64], i as u32)).collect();
        let mut t = KdTree::chain_load(KdConfig::new(1).with_bucket_size(4), pts);
        let deep = t.nodes.iter().map(|n| n.depth).max().unwrap();
        t.rebalance();
        let shallow = t.nodes.iter().map(|n| n.depth).max().unwrap();
        assert!(shallow * 4 < deep, "depth {deep} → {shallow}");
        assert_eq!(t.len(), 512);
        assert_eq!(t.iter().count(), 512);
        // Still exact.
        assert_eq!(t.nearest(&[100.2]).unwrap().payload, 100);
        // And back on the normal split rule.
        assert_eq!(t.config().split_rule(), SplitRule::Cycle);
    }

    #[test]
    fn rebalance_empty_tree_is_noop() {
        let mut t: KdTree<u32> = KdTree::new(KdConfig::new(2));
        t.rebalance();
        assert!(t.is_empty());
    }

    #[test]
    fn bulk_load_par_is_arena_identical_to_sequential() {
        // Varied shapes: grids, duplicate-heavy data, every split rule.
        type Case = (KdConfig, Vec<(Vec<f64>, u32)>);
        let cases: Vec<Case> = vec![
            (KdConfig::new(2).with_bucket_size(4), grid(256)),
            (KdConfig::new(2).with_bucket_size(1), grid(100)),
            (
                KdConfig::new(2)
                    .with_bucket_size(4)
                    .with_split_rule(SplitRule::WidestSpread),
                grid(200),
            ),
            (
                KdConfig::new(1).with_bucket_size(4),
                (0..300).map(|i| (vec![(i % 7) as f64], i as u32)).collect(),
            ),
            (KdConfig::new(3).with_bucket_size(8), Vec::new()),
        ];
        for (config, pts) in cases {
            let seq = KdTree::bulk_load(config, pts.clone());
            for threads in [1usize, 2, 3, 8] {
                let pool = Pool::sequential().with_threads(threads);
                let par = KdTree::bulk_load_par(config, pts.clone(), &pool);
                assert_eq!(par.len(), seq.len());
                assert_eq!(
                    format!("{:?}", par.nodes),
                    format!("{:?}", seq.nodes),
                    "arena differs at threads={threads} for {config:?}"
                );
            }
        }
    }

    #[test]
    fn split_value_handles_duplicates() {
        let entries: Vec<Entry<u32>> = [1.0, 1.0, 1.0, 2.0]
            .iter()
            .map(|&v| Entry {
                coords: vec![v].into(),
                payload: 0,
            })
            .collect();
        // Median (index 2) is 1.0 < max → fine.
        assert_eq!(split_value(&entries, 0), Some(1.0));
        let entries: Vec<Entry<u32>> = [1.0, 2.0, 2.0, 2.0]
            .iter()
            .map(|&v| Entry {
                coords: vec![v].into(),
                payload: 0,
            })
            .collect();
        // Median is the max → must step down to 1.0.
        assert_eq!(split_value(&entries, 0), Some(1.0));
        let entries: Vec<Entry<u32>> = [3.0, 3.0]
            .iter()
            .map(|&v| Entry {
                coords: vec![v].into(),
                payload: 0,
            })
            .collect();
        assert_eq!(split_value(&entries, 0), None);
    }
}
