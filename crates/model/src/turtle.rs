//! Parser and serializer for the paper's Turtle-like tuple syntax.
//!
//! The paper writes resources as
//!
//! ```text
//! ('OBSW001', Fun:accept_cmd, CmdType:start-up)
//! ```
//!
//! This module accepts a line-oriented corpus format built around that
//! notation:
//!
//! ```text
//! @prefix Fun: <http://example.org/fun#> .
//! @standard <http://example.org/std#> .
//! @document REQ-SW-001
//! # a comment
//! ('OBSW001', Fun:acquire_in, InType:pre-launch phase)
//! ('OBSW001', Fun:accept_cmd, CmdType:start-up)
//! ```
//!
//! Term syntax inside a tuple:
//! - `'...'` — a string literal (single quotes; `''` escapes a quote);
//! - bare integers / decimals / `true` / `false` — typed literals;
//! - `Prefix:name` — a concept in vocabulary `Prefix`;
//! - anything else — a concept in the standard vocabulary. Concept names
//!   may contain internal spaces (`InType:pre-launch phase`), as in the
//!   paper's own example.

use std::fmt::Write as _;

use crate::error::ModelError;
use crate::store::TripleStore;
use crate::term::{Literal, LiteralType, Term};
use crate::triple::Triple;

/// Parse a single term. Exposed for tests and tooling.
pub fn parse_term(raw: &str) -> Result<Term, String> {
    let raw = raw.trim();
    if raw.is_empty() {
        return Err("empty term".to_string());
    }
    if let Some(rest) = raw.strip_prefix('\'') {
        let Some(body) = rest.strip_suffix('\'') else {
            return Err(format!("unterminated quoted literal: {raw}"));
        };
        return Ok(Term::Literal(Literal::typed(
            body.replace("''", "'"),
            LiteralType::String,
        )));
    }
    match LiteralType::infer(raw) {
        LiteralType::String => {}
        dtype => return Ok(Term::Literal(Literal::typed(raw, dtype))),
    }
    match raw.split_once(':') {
        Some((prefix, name)) if !prefix.is_empty() && !name.is_empty() => {
            if prefix.contains(char::is_whitespace) {
                Err(format!("prefix may not contain whitespace: {raw}"))
            } else {
                Ok(Term::concept_in(prefix, name.trim()))
            }
        }
        Some(_) => Err(format!("malformed prefixed concept: {raw}")),
        None => Ok(Term::concept(raw)),
    }
}

/// Split the body of a tuple on top-level commas (commas inside quoted
/// literals do not split).
fn split_tuple(body: &str) -> Vec<&str> {
    let mut parts = Vec::with_capacity(3);
    let mut start = 0usize;
    let mut in_quote = false;
    for (i, ch) in body.char_indices() {
        match ch {
            '\'' => in_quote = !in_quote,
            ',' if !in_quote => {
                parts.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&body[start..]);
    parts
}

/// Parse one `(s, p, o)` tuple line into a [`Triple`].
pub fn parse_triple(line: &str) -> Result<Triple, String> {
    let line = line.trim();
    let Some(body) = line.strip_prefix('(').and_then(|s| s.strip_suffix(')')) else {
        return Err(format!("expected '(s, p, o)', got: {line}"));
    };
    let parts = split_tuple(body);
    if parts.len() != 3 {
        return Err(format!("expected 3 terms, got {}: {line}", parts.len()));
    }
    Ok(Triple::new(
        parse_term(parts[0])?,
        parse_term(parts[1])?,
        parse_term(parts[2])?,
    ))
}

/// Parse a whole corpus into `store`. Returns the number of triples read.
///
/// Directives:
/// - `@prefix P: <ns> .` binds a prefix;
/// - `@standard <ns> .` sets the standard vocabulary;
/// - `@document NAME` starts (or resumes) a document; triples before the
///   first directive land in a document called `default`.
pub fn parse_into(store: &mut TripleStore, input: &str) -> Result<usize, ModelError> {
    let mut current_doc = None;
    let mut count = 0usize;
    for (lineno, raw) in input.lines().enumerate() {
        let line = raw.trim();
        let lineno = lineno + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("@prefix") {
            let (prefix, ns) =
                parse_prefix_directive(rest).map_err(|message| ModelError::Parse {
                    line: lineno,
                    message,
                })?;
            store.prefixes_mut().bind(prefix, ns)?;
        } else if let Some(rest) = line.strip_prefix("@standard") {
            let ns = parse_angle_ns(rest).map_err(|message| ModelError::Parse {
                line: lineno,
                message,
            })?;
            store.prefixes_mut().set_standard(ns);
        } else if let Some(rest) = line.strip_prefix("@document") {
            let name = rest.trim();
            if name.is_empty() {
                return Err(ModelError::Parse {
                    line: lineno,
                    message: "@document requires a name".to_string(),
                });
            }
            let id = match store.document_by_name(name) {
                Some(d) => d.id,
                None => store.create_document(name),
            };
            current_doc = Some(id);
        } else {
            let triple = parse_triple(line).map_err(|message| ModelError::Parse {
                line: lineno,
                message,
            })?;
            let doc = match current_doc {
                Some(d) => d,
                None => {
                    let d = store.create_document("default");
                    current_doc = Some(d);
                    d
                }
            };
            store.insert(doc, triple);
            count += 1;
        }
    }
    Ok(count)
}

fn parse_prefix_directive(rest: &str) -> Result<(String, String), String> {
    let rest = rest.trim().trim_end_matches('.').trim_end();
    let (prefix, ns_part) = rest
        .split_once(':')
        .ok_or_else(|| "expected '@prefix P: <ns> .'".to_string())?;
    let ns = parse_angle_ns(ns_part)?;
    let prefix = prefix.trim();
    if prefix.is_empty() {
        return Err("empty prefix".to_string());
    }
    Ok((prefix.to_string(), ns))
}

fn parse_angle_ns(rest: &str) -> Result<String, String> {
    let rest = rest.trim().trim_end_matches('.').trim_end();
    rest.strip_prefix('<')
        .and_then(|s| s.strip_suffix('>'))
        .map(str::to_string)
        .ok_or_else(|| format!("expected '<namespace>', got: {rest}"))
}

/// Render one term in parseable form.
pub fn write_term(out: &mut String, term: &Term) {
    match term {
        Term::Literal(l) if l.dtype == LiteralType::String => {
            out.push('\'');
            out.push_str(&l.value.replace('\'', "''"));
            out.push('\'');
        }
        Term::Literal(l) => out.push_str(&l.value),
        Term::Concept(c) => {
            if let Some(p) = &c.prefix {
                out.push_str(p);
                out.push(':');
            }
            out.push_str(&c.name);
        }
    }
}

/// Render one triple as `(s, p, o)`.
#[must_use]
pub fn write_triple(triple: &Triple) -> String {
    let mut out = String::new();
    out.push('(');
    write_term(&mut out, &triple.subject);
    out.push_str(", ");
    write_term(&mut out, &triple.predicate);
    out.push_str(", ");
    write_term(&mut out, &triple.object);
    out.push(')');
    out
}

/// Serialize an entire store (prefixes, documents, triples) in a form
/// [`parse_into`] accepts back.
#[must_use]
pub fn write_store(store: &TripleStore) -> String {
    let mut out = String::new();
    for (prefix, ns) in store.prefixes().iter() {
        let _ = writeln!(out, "@prefix {prefix}: <{ns}> .");
    }
    if let Some(std_ns) = store.prefixes().resolve(None) {
        let _ = writeln!(out, "@standard <{std_ns}> .");
    }
    for doc in store.documents() {
        let _ = writeln!(out, "@document {}", doc.name);
        for &tid in &doc.triples {
            let triple = store.get(tid).expect("document references interned triple");
            out.push_str(&write_triple(triple));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::LiteralType;

    #[test]
    fn parse_term_variants() {
        assert_eq!(parse_term("'OBSW001'").unwrap(), Term::literal("OBSW001"));
        assert_eq!(
            parse_term("Fun:accept_cmd").unwrap(),
            Term::concept_in("Fun", "accept_cmd")
        );
        assert_eq!(parse_term("thing").unwrap(), Term::concept("thing"));
        assert_eq!(
            parse_term("42").unwrap(),
            Term::Literal(Literal::typed("42", LiteralType::Integer))
        );
        assert_eq!(
            parse_term("3.5").unwrap(),
            Term::Literal(Literal::typed("3.5", LiteralType::Decimal))
        );
        assert_eq!(
            parse_term("true").unwrap(),
            Term::Literal(Literal::typed("true", LiteralType::Boolean))
        );
    }

    #[test]
    fn parse_term_concept_with_spaces() {
        // Straight from the paper: InType:pre-launch phase
        assert_eq!(
            parse_term("InType:pre-launch phase").unwrap(),
            Term::concept_in("InType", "pre-launch phase")
        );
    }

    #[test]
    fn parse_term_errors() {
        assert!(parse_term("").is_err());
        assert!(parse_term("'unterminated").is_err());
        assert!(parse_term(":noprefix").is_err());
        assert!(parse_term("bad prefix:name").is_err());
    }

    #[test]
    fn quoted_literal_with_escaped_quote() {
        let t = parse_term("'it''s'").unwrap();
        assert_eq!(t.lexical(), "it's");
        let mut out = String::new();
        write_term(&mut out, &t);
        assert_eq!(out, "'it''s'");
    }

    #[test]
    fn parse_triple_paper_example() {
        let t = parse_triple("('OBSW001', Fun:accept_cmd, CmdType:start-up)").unwrap();
        assert_eq!(t.subject, Term::literal("OBSW001"));
        assert_eq!(t.predicate, Term::concept_in("Fun", "accept_cmd"));
        assert_eq!(t.object, Term::concept_in("CmdType", "start-up"));
    }

    #[test]
    fn parse_triple_comma_inside_quote() {
        let t = parse_triple("('a,b', p, 'c')").unwrap();
        assert_eq!(t.subject.lexical(), "a,b");
    }

    #[test]
    fn parse_triple_errors() {
        assert!(parse_triple("not a tuple").is_err());
        assert!(parse_triple("(a, b)").is_err());
        assert!(parse_triple("(a, b, c, d)").is_err());
    }

    #[test]
    fn parse_corpus_with_directives() {
        let src = "\
@prefix Fun: <http://example.org/fun#> .
@standard <http://example.org/std#> .
# the paper's running example
@document REQ-SW-001
('OBSW001', Fun:acquire_in, InType:pre-launch phase)
('OBSW001', Fun:accept_cmd, CmdType:start-up)
('OBSW001', Fun:send_msg, MsgType:power amplifier)
";
        let mut store = TripleStore::new();
        let n = parse_into(&mut store, src).unwrap();
        assert_eq!(n, 3);
        assert_eq!(store.len(), 3);
        assert_eq!(
            store.prefixes().resolve(Some("Fun")),
            Some("http://example.org/fun#")
        );
        assert_eq!(
            store.prefixes().resolve(None),
            Some("http://example.org/std#")
        );
        let doc = store.document_by_name("REQ-SW-001").unwrap();
        assert_eq!(doc.len(), 3);
    }

    #[test]
    fn parse_without_document_uses_default() {
        let mut store = TripleStore::new();
        parse_into(&mut store, "('A', p, 'x')\n").unwrap();
        assert!(store.document_by_name("default").is_some());
    }

    #[test]
    fn parse_reports_line_numbers() {
        let mut store = TripleStore::new();
        let err = parse_into(&mut store, "\n\n(bad\n").unwrap_err();
        match err {
            ModelError::Parse { line, .. } => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn resuming_a_document_appends() {
        let src = "\
@document A
('s', p, 'o')
@document B
('s2', p, 'o2')
@document A
('s3', p, 'o3')
";
        let mut store = TripleStore::new();
        parse_into(&mut store, src).unwrap();
        assert_eq!(store.document_by_name("A").unwrap().len(), 2);
        assert_eq!(store.document_by_name("B").unwrap().len(), 1);
    }

    #[test]
    fn store_roundtrip() {
        let src = "\
@prefix Fun: <ns-fun> .
@document R1
('OBSW001', Fun:accept_cmd, CmdType:start-up)
(concept, Fun:send_msg, 42)
";
        let mut store = TripleStore::new();
        parse_into(&mut store, src).unwrap();
        let rendered = write_store(&store);
        let mut store2 = TripleStore::new();
        parse_into(&mut store2, &rendered).unwrap();
        assert_eq!(store.len(), store2.len());
        let triples1: Vec<_> = store.iter().map(|(_, t)| t.clone()).collect();
        let triples2: Vec<_> = store2.iter().map(|(_, t)| t.clone()).collect();
        assert_eq!(triples1, triples2);
    }
}
