//! Prefix → namespace bindings.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::error::ModelError;

/// A table of vocabulary prefixes, mirroring the paper's "the notation
/// `X:x` expresses that the meaning of the concept `x` can be found by using
/// the prefix `X`. If `X` is not specified, we use a standard vocabulary."
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PrefixTable {
    bindings: BTreeMap<Arc<str>, Arc<str>>,
    standard: Option<Arc<str>>,
}

impl PrefixTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        PrefixTable::default()
    }

    /// Bind `prefix` to `namespace`. Rebinding an existing prefix to a
    /// *different* namespace is an error (silent rebinds hide corpus bugs);
    /// binding the same pair twice is a no-op.
    pub fn bind(
        &mut self,
        prefix: impl Into<Arc<str>>,
        namespace: impl Into<Arc<str>>,
    ) -> Result<(), ModelError> {
        let prefix = prefix.into();
        let namespace = namespace.into();
        match self.bindings.get(&prefix) {
            Some(existing) if *existing != namespace => Err(ModelError::PrefixConflict {
                prefix: prefix.to_string(),
                existing: existing.to_string(),
                new: namespace.to_string(),
            }),
            _ => {
                self.bindings.insert(prefix, namespace);
                Ok(())
            }
        }
    }

    /// Set the namespace used for unprefixed concepts.
    pub fn set_standard(&mut self, namespace: impl Into<Arc<str>>) {
        self.standard = Some(namespace.into());
    }

    /// Resolve a prefix; `None` input resolves the standard vocabulary.
    #[must_use]
    pub fn resolve(&self, prefix: Option<&str>) -> Option<&str> {
        match prefix {
            Some(p) => self.bindings.get(p).map(AsRef::as_ref),
            None => self.standard.as_deref(),
        }
    }

    /// Whether `prefix` is bound.
    #[must_use]
    pub fn contains(&self, prefix: &str) -> bool {
        self.bindings.contains_key(prefix)
    }

    /// Iterate bindings in prefix order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.bindings.iter().map(|(k, v)| (k.as_ref(), v.as_ref()))
    }

    /// Number of bound prefixes (excluding the standard vocabulary).
    #[must_use]
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// Whether no prefixes are bound.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }

    /// Merge another table into this one; conflicting bindings error.
    pub fn merge(&mut self, other: &PrefixTable) -> Result<(), ModelError> {
        for (p, ns) in other.iter() {
            self.bind(p, ns)?;
        }
        if let Some(std) = &other.standard {
            if self.standard.is_none() {
                self.standard = Some(std.clone());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_and_resolve() {
        let mut t = PrefixTable::new();
        t.bind("Fun", "http://example.org/fun#").unwrap();
        assert_eq!(t.resolve(Some("Fun")), Some("http://example.org/fun#"));
        assert_eq!(t.resolve(Some("Nope")), None);
        assert!(t.contains("Fun"));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn standard_vocabulary() {
        let mut t = PrefixTable::new();
        assert_eq!(t.resolve(None), None);
        t.set_standard("http://example.org/std#");
        assert_eq!(t.resolve(None), Some("http://example.org/std#"));
    }

    #[test]
    fn rebind_same_is_noop_different_errors() {
        let mut t = PrefixTable::new();
        t.bind("A", "ns1").unwrap();
        t.bind("A", "ns1").unwrap();
        let err = t.bind("A", "ns2").unwrap_err();
        assert!(matches!(err, ModelError::PrefixConflict { .. }));
    }

    #[test]
    fn merge_combines_and_detects_conflicts() {
        let mut a = PrefixTable::new();
        a.bind("A", "ns1").unwrap();
        let mut b = PrefixTable::new();
        b.bind("B", "ns2").unwrap();
        b.set_standard("std");
        a.merge(&b).unwrap();
        assert_eq!(a.len(), 2);
        assert_eq!(a.resolve(None), Some("std"));

        let mut c = PrefixTable::new();
        c.bind("A", "other").unwrap();
        assert!(a.merge(&c).is_err());
    }

    #[test]
    fn iter_is_sorted_by_prefix() {
        let mut t = PrefixTable::new();
        t.bind("Z", "z").unwrap();
        t.bind("A", "a").unwrap();
        let keys: Vec<&str> = t.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["A", "Z"]);
    }
}
