//! Documents: named groups of triples with metadata.

use std::fmt;

use crate::triple::TripleId;

/// Dense identifier of a document inside a [`crate::TripleStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocumentId(pub u32);

impl DocumentId {
    /// The id as a usable index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DocumentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// Optional descriptive metadata for a document.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DocumentMeta {
    /// Source system or corpus the document came from.
    pub source: Option<String>,
    /// Section path within the source (requirement documents are "composed
    /// by a set of sections, each one containing the definition of a
    /// specific requirement").
    pub section: Option<String>,
}

/// A document: an external name plus the triples extracted from it, in
/// extraction order (the paper notes "the order of the triples reflects the
/// temporal sequence of the requirement elements").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    /// The store-assigned id.
    pub id: DocumentId,
    /// External name, e.g. `REQ-SW-001`.
    pub name: String,
    /// Triples in extraction order.
    pub triples: Vec<TripleId>,
    /// Descriptive metadata.
    pub meta: DocumentMeta,
}

impl Document {
    pub(crate) fn new(id: DocumentId, name: impl Into<String>) -> Self {
        Document {
            id,
            name: name.into(),
            triples: Vec::new(),
            meta: DocumentMeta::default(),
        }
    }

    /// Number of triples extracted from this document.
    #[must_use]
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// Whether the document has no triples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_document_is_empty() {
        let d = Document::new(DocumentId(0), "REQ-1");
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        assert_eq!(d.name, "REQ-1");
    }

    #[test]
    fn document_id_display() {
        assert_eq!(DocumentId(3).to_string(), "d3");
        assert_eq!(DocumentId(3).index(), 3);
    }

    #[test]
    fn meta_defaults_to_none() {
        let m = DocumentMeta::default();
        assert!(m.source.is_none());
        assert!(m.section.is_none());
    }
}
