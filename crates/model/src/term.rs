//! Triple elements: concepts and typed literals.

use std::fmt;
use std::sync::Arc;

/// The type tag of a [`Literal`].
///
/// The paper's distance definition (§III-A) requires knowing whether two
/// triple elements are "literals/constants *of the same type*": string
/// distances only apply within one literal type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LiteralType {
    /// Free text / identifiers, e.g. `'OBSW001'`.
    String,
    /// Integer constants.
    Integer,
    /// Decimal constants.
    Decimal,
    /// Boolean constants.
    Boolean,
}

impl LiteralType {
    /// Infer the literal type from a lexical form, the way the Turtle-like
    /// parser does: `true`/`false` → Boolean, pure digits (with optional
    /// sign) → Integer, digits with one dot → Decimal, otherwise String.
    #[must_use]
    pub fn infer(lexical: &str) -> Self {
        if lexical == "true" || lexical == "false" {
            return LiteralType::Boolean;
        }
        let body = lexical.strip_prefix(['+', '-']).unwrap_or(lexical);
        if !body.is_empty() && body.bytes().all(|b| b.is_ascii_digit()) {
            return LiteralType::Integer;
        }
        let mut dots = 0usize;
        let numeric = !body.is_empty()
            && body.bytes().all(|b| {
                if b == b'.' {
                    dots += 1;
                    true
                } else {
                    b.is_ascii_digit()
                }
            });
        if numeric && dots == 1 && !body.starts_with('.') && !body.ends_with('.') {
            return LiteralType::Decimal;
        }
        LiteralType::String
    }
}

impl fmt::Display for LiteralType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LiteralType::String => "string",
            LiteralType::Integer => "integer",
            LiteralType::Decimal => "decimal",
            LiteralType::Boolean => "boolean",
        };
        f.write_str(s)
    }
}

/// A typed constant, e.g. `'OBSW001'` or `42`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Literal {
    /// The lexical form.
    pub value: Arc<str>,
    /// The inferred or declared type.
    pub dtype: LiteralType,
}

impl Literal {
    /// Build a literal, inferring its type from the lexical form.
    #[must_use]
    pub fn new(value: impl Into<Arc<str>>) -> Self {
        let value = value.into();
        let dtype = LiteralType::infer(&value);
        Literal { value, dtype }
    }

    /// Build a literal with an explicit type tag.
    #[must_use]
    pub fn typed(value: impl Into<Arc<str>>, dtype: LiteralType) -> Self {
        Literal {
            value: value.into(),
            dtype,
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.dtype {
            LiteralType::String => write!(f, "'{}'", self.value),
            _ => f.write_str(&self.value),
        }
    }
}

/// A vocabulary concept, written `Prefix:name` in the paper's notation
/// (`Fun:accept_cmd`). A missing prefix means "use a standard vocabulary".
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Concept {
    /// Vocabulary prefix, `None` for the standard vocabulary.
    pub prefix: Option<Arc<str>>,
    /// Local concept name within the vocabulary.
    pub name: Arc<str>,
}

impl Concept {
    /// Concept in the standard (unprefixed) vocabulary.
    #[must_use]
    pub fn new(name: impl Into<Arc<str>>) -> Self {
        Concept {
            prefix: None,
            name: name.into(),
        }
    }

    /// Concept in a named vocabulary.
    #[must_use]
    pub fn in_vocab(prefix: impl Into<Arc<str>>, name: impl Into<Arc<str>>) -> Self {
        Concept {
            prefix: Some(prefix.into()),
            name: name.into(),
        }
    }

    /// The `prefix:name` key used to look the concept up in a taxonomy.
    /// Unprefixed concepts key on the bare name.
    #[must_use]
    pub fn qualified(&self) -> String {
        match &self.prefix {
            Some(p) => format!("{p}:{}", self.name),
            None => self.name.to_string(),
        }
    }
}

impl fmt::Display for Concept {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.prefix {
            Some(p) => write!(f, "{p}:{}", self.name),
            None => f.write_str(&self.name),
        }
    }
}

/// A triple element: either a typed [`Literal`] or a vocabulary [`Concept`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A typed constant.
    Literal(Literal),
    /// A vocabulary concept.
    Concept(Concept),
}

impl Term {
    /// Shorthand for a string-typed literal term.
    #[must_use]
    pub fn literal(value: impl Into<Arc<str>>) -> Self {
        Term::Literal(Literal::new(value))
    }

    /// Shorthand for a concept term in the standard vocabulary.
    #[must_use]
    pub fn concept(name: impl Into<Arc<str>>) -> Self {
        Term::Concept(Concept::new(name))
    }

    /// Shorthand for a concept term in a named vocabulary.
    #[must_use]
    pub fn concept_in(prefix: impl Into<Arc<str>>, name: impl Into<Arc<str>>) -> Self {
        Term::Concept(Concept::in_vocab(prefix, name))
    }

    /// Whether this term is a literal.
    #[must_use]
    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal(_))
    }

    /// Whether this term is a concept.
    #[must_use]
    pub fn is_concept(&self) -> bool {
        matches!(self, Term::Concept(_))
    }

    /// The lexical form without type/prefix decoration, used by string
    /// distances as a fallback for mixed comparisons.
    #[must_use]
    pub fn lexical(&self) -> &str {
        match self {
            Term::Literal(l) => &l.value,
            Term::Concept(c) => &c.name,
        }
    }

    /// The concept inside this term, if any.
    #[must_use]
    pub fn as_concept(&self) -> Option<&Concept> {
        match self {
            Term::Concept(c) => Some(c),
            Term::Literal(_) => None,
        }
    }

    /// The literal inside this term, if any.
    #[must_use]
    pub fn as_literal(&self) -> Option<&Literal> {
        match self {
            Term::Literal(l) => Some(l),
            Term::Concept(_) => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Literal(l) => l.fmt(f),
            Term::Concept(c) => c.fmt(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_type_inference_strings() {
        assert_eq!(LiteralType::infer("OBSW001"), LiteralType::String);
        assert_eq!(LiteralType::infer("start-up"), LiteralType::String);
        assert_eq!(LiteralType::infer(""), LiteralType::String);
        assert_eq!(LiteralType::infer("1.2.3"), LiteralType::String);
        assert_eq!(LiteralType::infer(".5"), LiteralType::String);
        assert_eq!(LiteralType::infer("5."), LiteralType::String);
    }

    #[test]
    fn literal_type_inference_numbers() {
        assert_eq!(LiteralType::infer("42"), LiteralType::Integer);
        assert_eq!(LiteralType::infer("-42"), LiteralType::Integer);
        assert_eq!(LiteralType::infer("+7"), LiteralType::Integer);
        assert_eq!(LiteralType::infer("3.14"), LiteralType::Decimal);
        assert_eq!(LiteralType::infer("-0.5"), LiteralType::Decimal);
    }

    #[test]
    fn literal_type_inference_booleans() {
        assert_eq!(LiteralType::infer("true"), LiteralType::Boolean);
        assert_eq!(LiteralType::infer("false"), LiteralType::Boolean);
        assert_eq!(LiteralType::infer("True"), LiteralType::String);
    }

    #[test]
    fn literal_display_quotes_strings_only() {
        assert_eq!(Literal::new("abc").to_string(), "'abc'");
        assert_eq!(Literal::new("42").to_string(), "42");
        assert_eq!(Literal::new("true").to_string(), "true");
    }

    #[test]
    fn concept_display_and_qualified() {
        let c = Concept::in_vocab("Fun", "accept_cmd");
        assert_eq!(c.to_string(), "Fun:accept_cmd");
        assert_eq!(c.qualified(), "Fun:accept_cmd");
        let bare = Concept::new("thing");
        assert_eq!(bare.to_string(), "thing");
        assert_eq!(bare.qualified(), "thing");
    }

    #[test]
    fn term_accessors() {
        let lit = Term::literal("OBSW001");
        assert!(lit.is_literal());
        assert!(!lit.is_concept());
        assert_eq!(lit.lexical(), "OBSW001");
        assert!(lit.as_literal().is_some());
        assert!(lit.as_concept().is_none());

        let con = Term::concept_in("Fun", "send_msg");
        assert!(con.is_concept());
        assert_eq!(con.lexical(), "send_msg");
        assert!(con.as_concept().is_some());
    }

    #[test]
    fn term_ordering_is_total_and_stable() {
        let mut v = vec![
            Term::concept("b"),
            Term::literal("a"),
            Term::concept_in("X", "a"),
            Term::literal("42"),
        ];
        v.sort();
        v.dedup();
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn typed_literal_overrides_inference() {
        let l = Literal::typed("42", LiteralType::String);
        assert_eq!(l.dtype, LiteralType::String);
    }
}
