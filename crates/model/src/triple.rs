//! `(subject, predicate, object)` statements and wildcard patterns.

use std::fmt;

use crate::term::Term;

/// Dense identifier of a triple inside a [`crate::TripleStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TripleId(pub u32);

impl TripleId {
    /// The id as a usable index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TripleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// The three positions of a triple. The paper projects a triple `tk` on its
/// subject (`tkˢ`), predicate (`tkᵖ`) and object (`tkᵒ`); [`TripleRole`]
/// names those projections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TripleRole {
    /// The subject projection.
    Subject,
    /// The predicate projection.
    Predicate,
    /// The object projection.
    Object,
}

impl TripleRole {
    /// All roles, in subject/predicate/object order.
    pub const ALL: [TripleRole; 3] = [
        TripleRole::Subject,
        TripleRole::Predicate,
        TripleRole::Object,
    ];
}

/// An RDF-style statement relating a subject to an object via a predicate.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    /// The subject (the paper's *Actor*: software component or device).
    pub subject: Term,
    /// The predicate (the paper's unary *function*, e.g. `accept_cmd`).
    pub predicate: Term,
    /// The object (the paper's *Parameter*).
    pub object: Term,
}

impl Triple {
    /// Assemble a triple.
    #[must_use]
    pub fn new(subject: Term, predicate: Term, object: Term) -> Self {
        Triple {
            subject,
            predicate,
            object,
        }
    }

    /// Project the triple on one of its three roles.
    #[must_use]
    pub fn project(&self, role: TripleRole) -> &Term {
        match role {
            TripleRole::Subject => &self.subject,
            TripleRole::Predicate => &self.predicate,
            TripleRole::Object => &self.object,
        }
    }

    /// A copy of this triple with the predicate replaced — how the
    /// case study builds *target* triples (same subject and object, antonym
    /// predicate).
    #[must_use]
    pub fn with_predicate(&self, predicate: Term) -> Self {
        Triple {
            subject: self.subject.clone(),
            predicate,
            object: self.object.clone(),
        }
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.subject, self.predicate, self.object)
    }
}

/// A triple with wildcards: `None` in a position matches any term.
///
/// The paper motivates "various pattern queries" (§I, discussing \[7\]); the
/// store supports them directly for exact matching, while approximate
/// matching goes through the index.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TriplePattern {
    /// Required subject, or `None` for any.
    pub subject: Option<Term>,
    /// Required predicate, or `None` for any.
    pub predicate: Option<Term>,
    /// Required object, or `None` for any.
    pub object: Option<Term>,
}

impl TriplePattern {
    /// The pattern matching every triple.
    #[must_use]
    pub fn any() -> Self {
        TriplePattern::default()
    }

    /// Restrict the subject.
    #[must_use]
    pub fn with_subject(mut self, s: Term) -> Self {
        self.subject = Some(s);
        self
    }

    /// Restrict the predicate.
    #[must_use]
    pub fn with_predicate(mut self, p: Term) -> Self {
        self.predicate = Some(p);
        self
    }

    /// Restrict the object.
    #[must_use]
    pub fn with_object(mut self, o: Term) -> Self {
        self.object = Some(o);
        self
    }

    /// Whether `triple` satisfies every bound position.
    #[must_use]
    pub fn matches(&self, triple: &Triple) -> bool {
        self.subject.as_ref().is_none_or(|s| *s == triple.subject)
            && self
                .predicate
                .as_ref()
                .is_none_or(|p| *p == triple.predicate)
            && self.object.as_ref().is_none_or(|o| *o == triple.object)
    }

    /// Number of bound positions (0–3).
    #[must_use]
    pub fn bound_count(&self) -> usize {
        usize::from(self.subject.is_some())
            + usize::from(self.predicate.is_some())
            + usize::from(self.object.is_some())
    }
}

impl fmt::Display for TriplePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn slot(f: &mut fmt::Formatter<'_>, t: &Option<Term>) -> fmt::Result {
            match t {
                Some(t) => write!(f, "{t}"),
                None => f.write_str("?"),
            }
        }
        f.write_str("(")?;
        slot(f, &self.subject)?;
        f.write_str(", ")?;
        slot(f, &self.predicate)?;
        f.write_str(", ")?;
        slot(f, &self.object)?;
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Triple {
        Triple::new(
            Term::literal("OBSW001"),
            Term::concept_in("Fun", "accept_cmd"),
            Term::concept_in("CmdType", "start-up"),
        )
    }

    #[test]
    fn projections_match_fields() {
        let t = sample();
        assert_eq!(t.project(TripleRole::Subject), &t.subject);
        assert_eq!(t.project(TripleRole::Predicate), &t.predicate);
        assert_eq!(t.project(TripleRole::Object), &t.object);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(
            sample().to_string(),
            "('OBSW001', Fun:accept_cmd, CmdType:start-up)"
        );
    }

    #[test]
    fn with_predicate_builds_target_triple() {
        let t = sample();
        let target = t.with_predicate(Term::concept_in("Fun", "block_cmd"));
        assert_eq!(target.subject, t.subject);
        assert_eq!(target.object, t.object);
        assert_ne!(target.predicate, t.predicate);
    }

    #[test]
    fn pattern_any_matches_everything() {
        assert!(TriplePattern::any().matches(&sample()));
        assert_eq!(TriplePattern::any().bound_count(), 0);
    }

    #[test]
    fn pattern_bound_positions_filter() {
        let t = sample();
        let p = TriplePattern::any().with_subject(Term::literal("OBSW001"));
        assert!(p.matches(&t));
        assert_eq!(p.bound_count(), 1);

        let p = p.with_predicate(Term::concept_in("Fun", "block_cmd"));
        assert!(!p.matches(&t));
        assert_eq!(p.bound_count(), 2);
    }

    #[test]
    fn pattern_full_bound_is_equality() {
        let t = sample();
        let p = TriplePattern {
            subject: Some(t.subject.clone()),
            predicate: Some(t.predicate.clone()),
            object: Some(t.object.clone()),
        };
        assert!(p.matches(&t));
        assert_eq!(p.bound_count(), 3);
        assert!(!p.matches(&t.with_predicate(Term::concept("other"))));
    }

    #[test]
    fn pattern_display_uses_question_marks() {
        let p = TriplePattern::any().with_predicate(Term::concept_in("Fun", "accept_cmd"));
        assert_eq!(p.to_string(), "(?, Fun:accept_cmd, ?)");
    }

    #[test]
    fn triple_id_roundtrip() {
        let id = TripleId(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "t7");
    }
}
