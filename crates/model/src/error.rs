//! Error type for the model substrate.

use std::fmt;

/// Errors produced by the model layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A prefix was rebound to a different namespace.
    PrefixConflict {
        /// The conflicting prefix.
        prefix: String,
        /// Previously bound namespace.
        existing: String,
        /// Newly requested namespace.
        new: String,
    },
    /// Turtle-like input failed to parse.
    Parse {
        /// 1-based line number of the failure.
        line: usize,
        /// Human-readable reason.
        message: String,
    },
    /// A referenced document does not exist.
    UnknownDocument(u32),
    /// A referenced triple does not exist.
    UnknownTriple(u32),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::PrefixConflict {
                prefix,
                existing,
                new,
            } => write!(
                f,
                "prefix '{prefix}' already bound to '{existing}', cannot rebind to '{new}'"
            ),
            ModelError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            ModelError::UnknownDocument(id) => write!(f, "unknown document id {id}"),
            ModelError::UnknownTriple(id) => write!(f, "unknown triple id {id}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_renders_each_variant() {
        let e = ModelError::PrefixConflict {
            prefix: "A".into(),
            existing: "x".into(),
            new: "y".into(),
        };
        assert!(e.to_string().contains("already bound"));
        assert!(ModelError::Parse {
            line: 3,
            message: "bad".into()
        }
        .to_string()
        .contains("line 3"));
        assert!(ModelError::UnknownDocument(5).to_string().contains('5'));
        assert!(ModelError::UnknownTriple(9).to_string().contains('9'));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&ModelError::UnknownDocument(0));
    }
}
