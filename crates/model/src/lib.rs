//! RDF-style data model substrate for SemTree.
//!
//! The SemTree paper assumes "semantics of a document can be effectively
//! expressed by a set of *(subject, predicate, object)* statements as in the
//! RDF model". This crate provides that substrate:
//!
//! - [`Term`]: a triple element — either a [`Concept`] resolvable through a
//!   vocabulary prefix (`Fun:accept_cmd`) or a typed [`Literal`]
//!   (`'OBSW001'`, `42`).
//! - [`Triple`]: an `(subject, predicate, object)` statement, plus
//!   [`TriplePattern`] for wildcard matching.
//! - [`PrefixTable`]: prefix → namespace bindings (the paper's "the meaning
//!   of the concept `x` can be found by using the prefix `X`").
//! - [`Document`] / [`DocumentId`]: a named group of triples with metadata,
//!   modelling a requirements document made of sections.
//! - [`TripleStore`]: an in-memory, interning triple store with
//!   pattern-match iteration and per-document grouping.
//! - [`turtle`]: a parser/serializer for the Turtle-like tuple syntax used
//!   in the paper (`('OBSW001', Fun:accept_cmd, CmdType:start-up)`).
//!
//! # Example
//!
//! ```
//! use semtree_model::{Term, Triple, TripleStore, DocumentId};
//!
//! let mut store = TripleStore::new();
//! let doc = store.create_document("REQ-SW-001");
//! let t = Triple::new(
//!     Term::literal("OBSW001"),
//!     Term::concept_in("Fun", "accept_cmd"),
//!     Term::concept_in("CmdType", "start-up"),
//! );
//! let id = store.insert(doc, t.clone());
//! assert_eq!(store.get(id), Some(&t));
//! assert_eq!(store.len(), 1);
//! ```

mod document;
mod error;
mod prefix;
mod store;
mod term;
mod triple;
pub mod turtle;

pub use document::{Document, DocumentId, DocumentMeta};
pub use error::ModelError;
pub use prefix::PrefixTable;
pub use store::{StoreStats, TripleStore};
pub use term::{Concept, Literal, LiteralType, Term};
pub use triple::{Triple, TripleId, TriplePattern, TripleRole};
