//! In-memory interning triple store with pattern matching.

use std::collections::HashMap;

use crate::document::{Document, DocumentId};
use crate::error::ModelError;
use crate::prefix::PrefixTable;
use crate::triple::{Triple, TripleId, TriplePattern};

/// Aggregate counts over a [`TripleStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Distinct triples interned.
    pub triples: usize,
    /// Documents created.
    pub documents: usize,
    /// Total (document, triple) occurrences — duplicates across documents
    /// count once per document.
    pub occurrences: usize,
}

/// An in-memory triple store.
///
/// Triples are *interned*: inserting the same `(s, p, o)` twice yields the
/// same [`TripleId`], while each insertion still records an occurrence in
/// its document. This mirrors the paper's setting where "a requirement
/// contains more than one sentence and a sentence can include several
/// triples" and identical assertions recur across requirements.
#[derive(Debug, Clone, Default)]
pub struct TripleStore {
    triples: Vec<Triple>,
    interned: HashMap<Triple, TripleId>,
    documents: Vec<Document>,
    /// For each triple, the documents it occurs in (sorted, deduplicated).
    containing: Vec<Vec<DocumentId>>,
    prefixes: PrefixTable,
    occurrences: usize,
}

impl TripleStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        TripleStore::default()
    }

    /// The prefix table attached to this store.
    #[must_use]
    pub fn prefixes(&self) -> &PrefixTable {
        &self.prefixes
    }

    /// Mutable access to the prefix table.
    pub fn prefixes_mut(&mut self) -> &mut PrefixTable {
        &mut self.prefixes
    }

    /// Create a new, empty document.
    pub fn create_document(&mut self, name: impl Into<String>) -> DocumentId {
        let id = DocumentId(u32::try_from(self.documents.len()).expect("document count fits u32"));
        self.documents.push(Document::new(id, name));
        id
    }

    /// Insert a triple as part of `doc`, interning it.
    ///
    /// # Panics
    /// Panics if `doc` was not created by this store.
    pub fn insert(&mut self, doc: DocumentId, triple: Triple) -> TripleId {
        assert!(
            doc.index() < self.documents.len(),
            "document {doc} does not belong to this store"
        );
        let id = match self.interned.get(&triple) {
            Some(&id) => id,
            None => {
                let id =
                    TripleId(u32::try_from(self.triples.len()).expect("triple count fits u32"));
                self.interned.insert(triple.clone(), id);
                self.triples.push(triple);
                self.containing.push(Vec::new());
                id
            }
        };
        self.documents[doc.index()].triples.push(id);
        let docs = &mut self.containing[id.index()];
        if let Err(pos) = docs.binary_search(&doc) {
            docs.insert(pos, doc);
        }
        self.occurrences += 1;
        id
    }

    /// Insert every triple of an iterator into `doc`, returning the ids.
    pub fn insert_all(
        &mut self,
        doc: DocumentId,
        triples: impl IntoIterator<Item = Triple>,
    ) -> Vec<TripleId> {
        triples.into_iter().map(|t| self.insert(doc, t)).collect()
    }

    /// Look a triple up by id.
    #[must_use]
    pub fn get(&self, id: TripleId) -> Option<&Triple> {
        self.triples.get(id.index())
    }

    /// The id of an already-interned triple, if present.
    #[must_use]
    pub fn id_of(&self, triple: &Triple) -> Option<TripleId> {
        self.interned.get(triple).copied()
    }

    /// Look a document up by id.
    #[must_use]
    pub fn document(&self, id: DocumentId) -> Option<&Document> {
        self.documents.get(id.index())
    }

    /// Find a document by its external name (linear scan; names are few).
    #[must_use]
    pub fn document_by_name(&self, name: &str) -> Option<&Document> {
        self.documents.iter().find(|d| d.name == name)
    }

    /// The documents a triple occurs in.
    pub fn documents_of(&self, id: TripleId) -> Result<&[DocumentId], ModelError> {
        self.containing
            .get(id.index())
            .map(Vec::as_slice)
            .ok_or(ModelError::UnknownTriple(id.0))
    }

    /// Iterate all distinct triples with their ids.
    pub fn iter(&self) -> impl Iterator<Item = (TripleId, &Triple)> {
        self.triples
            .iter()
            .enumerate()
            .map(|(i, t)| (TripleId(i as u32), t))
    }

    /// Iterate all documents.
    pub fn documents(&self) -> impl Iterator<Item = &Document> {
        self.documents.iter()
    }

    /// Iterate the distinct triples matching `pattern`.
    pub fn matching<'a>(
        &'a self,
        pattern: &'a TriplePattern,
    ) -> impl Iterator<Item = (TripleId, &'a Triple)> + 'a {
        self.iter().filter(move |(_, t)| pattern.matches(t))
    }

    /// Number of distinct triples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// Whether the store holds no triples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Aggregate statistics.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            triples: self.triples.len(),
            documents: self.documents.len(),
            occurrences: self.occurrences,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(
            Term::literal(s),
            Term::concept_in("Fun", p),
            Term::concept_in("CmdType", o),
        )
    }

    #[test]
    fn insert_interns_duplicates() {
        let mut store = TripleStore::new();
        let d0 = store.create_document("REQ-1");
        let d1 = store.create_document("REQ-2");
        let a = store.insert(d0, t("OBSW001", "accept_cmd", "start-up"));
        let b = store.insert(d1, t("OBSW001", "accept_cmd", "start-up"));
        assert_eq!(a, b);
        assert_eq!(store.len(), 1);
        assert_eq!(store.stats().occurrences, 2);
        assert_eq!(store.documents_of(a).unwrap(), &[d0, d1]);
    }

    #[test]
    fn duplicate_within_same_document_counts_once_per_doc() {
        let mut store = TripleStore::new();
        let d = store.create_document("REQ-1");
        let a = store.insert(d, t("A", "p", "x"));
        store.insert(d, t("A", "p", "x"));
        assert_eq!(store.documents_of(a).unwrap(), &[d]);
        // ...but the document records both occurrences in order.
        assert_eq!(store.document(d).unwrap().len(), 2);
    }

    #[test]
    fn get_and_id_of_roundtrip() {
        let mut store = TripleStore::new();
        let d = store.create_document("REQ-1");
        let triple = t("A", "p", "x");
        let id = store.insert(d, triple.clone());
        assert_eq!(store.get(id), Some(&triple));
        assert_eq!(store.id_of(&triple), Some(id));
        assert_eq!(store.id_of(&t("B", "p", "x")), None);
        assert_eq!(store.get(TripleId(99)), None);
    }

    #[test]
    fn pattern_matching_filters() {
        let mut store = TripleStore::new();
        let d = store.create_document("REQ-1");
        store.insert(d, t("A", "accept_cmd", "x"));
        store.insert(d, t("A", "block_cmd", "x"));
        store.insert(d, t("B", "accept_cmd", "y"));

        let p = TriplePattern::any().with_subject(Term::literal("A"));
        assert_eq!(store.matching(&p).count(), 2);

        let p = p.with_predicate(Term::concept_in("Fun", "block_cmd"));
        assert_eq!(store.matching(&p).count(), 1);
    }

    #[test]
    fn document_lookup_by_name() {
        let mut store = TripleStore::new();
        store.create_document("REQ-1");
        let d2 = store.create_document("REQ-2");
        assert_eq!(store.document_by_name("REQ-2").unwrap().id, d2);
        assert!(store.document_by_name("REQ-9").is_none());
    }

    #[test]
    fn insert_all_preserves_order() {
        let mut store = TripleStore::new();
        let d = store.create_document("REQ-1");
        let ids = store.insert_all(d, vec![t("A", "p", "x"), t("B", "q", "y")]);
        assert_eq!(ids.len(), 2);
        assert_eq!(store.document(d).unwrap().triples, ids);
    }

    #[test]
    #[should_panic(expected = "does not belong")]
    fn insert_into_foreign_document_panics() {
        let mut store = TripleStore::new();
        store.insert(DocumentId(0), t("A", "p", "x"));
    }

    #[test]
    fn documents_of_unknown_triple_errors() {
        let store = TripleStore::new();
        assert!(matches!(
            store.documents_of(TripleId(0)),
            Err(ModelError::UnknownTriple(0))
        ));
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut store = TripleStore::new();
        let d = store.create_document("REQ-1");
        store.insert(d, t("A", "p", "x"));
        store.insert(d, t("B", "q", "y"));
        let ids: Vec<u32> = store.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1]);
    }
}
