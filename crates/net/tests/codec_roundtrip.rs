//! Exhaustive per-variant round-trip coverage for [`NetMsg`].
//!
//! Every wire variant is encoded and decoded back, including
//! zero-payload and maximum-size edges. The `variant_name` match below
//! is deliberately wildcard-free: adding a `NetMsg` variant breaks this
//! file at compile time until the new variant gets its round-trip cases
//! (and `semtree-check` independently verifies each variant name appears
//! here).

use semtree_net::{decode_exact, Encode, NetMsg};

type Msg = NetMsg<Vec<u8>, String>;

/// Compile-time exhaustiveness guard: no wildcard arm, so a new variant
/// fails to build until it is added here AND to `all_cases`.
fn variant_name(msg: &Msg) -> &'static str {
    match msg {
        NetMsg::Hello { .. } => "Hello",
        NetMsg::Welcome { .. } => "Welcome",
        NetMsg::PeerJoined { .. } => "PeerJoined",
        NetMsg::Request { .. } => "Request",
        NetMsg::Response { .. } => "Response",
        NetMsg::SpawnFresh { .. } => "SpawnFresh",
        NetMsg::Spawned { .. } => "Spawned",
        NetMsg::Error { .. } => "Error",
        NetMsg::Shutdown => "Shutdown",
        NetMsg::Rejoin { .. } => "Rejoin",
    }
}

/// A large-but-bounded payload for the max-size edges. Big enough to
/// exercise multi-byte length prefixes and reallocation paths, small
/// enough to keep the suite fast (real frames are capped by
/// `MAX_FRAME_LEN`, far above this).
const BIG: usize = 1 << 20;

/// Typical, zero/minimal, and maximal instances of every variant.
fn all_cases() -> Vec<Msg> {
    vec![
        // Hello: typical, zero, and saturated fields (UNASSIGNED is
        // u32::MAX, so the max edge doubles as the joining-worker form).
        NetMsg::Hello {
            process_index: 3,
            listen_port: 9000,
        },
        NetMsg::Hello {
            process_index: 0,
            listen_port: 0,
        },
        NetMsg::Hello {
            process_index: Msg::UNASSIGNED,
            listen_port: u16::MAX,
        },
        // Welcome: empty peer set + empty config, then a large roster
        // with a BIG config blob.
        NetMsg::Welcome {
            assigned_index: 1,
            peers: Vec::new(),
            config: Vec::new(),
        },
        NetMsg::Welcome {
            assigned_index: u32::MAX,
            peers: (0..512)
                .map(|i| (i, format!("10.0.{}.{}:{}", i / 256, i % 256, 40000 + i)))
                .collect(),
            config: vec![0xAB; BIG],
        },
        // PeerJoined: empty and long addresses.
        NetMsg::PeerJoined {
            index: 2,
            addr: String::new(),
        },
        NetMsg::PeerJoined {
            index: u32::MAX,
            addr: "a".repeat(BIG),
        },
        // Request: zero-payload body and a BIG body.
        NetMsg::Request {
            call_id: 0,
            target: 0,
            body: Vec::new(),
        },
        NetMsg::Request {
            call_id: u64::MAX,
            target: u32::MAX,
            body: (0..BIG).map(|i| i as u8).collect(),
        },
        // Response: empty and BIG string bodies.
        NetMsg::Response {
            call_id: 1,
            body: String::new(),
        },
        NetMsg::Response {
            call_id: u64::MAX,
            body: "x".repeat(BIG),
        },
        // SpawnFresh: the only field at both edges.
        NetMsg::SpawnFresh { call_id: 0 },
        NetMsg::SpawnFresh { call_id: u64::MAX },
        // Spawned.
        NetMsg::Spawned {
            call_id: 7,
            node: (3 << 16) | 12,
        },
        NetMsg::Spawned {
            call_id: u64::MAX,
            node: u32::MAX,
        },
        // Error: empty message, every known code, and a BIG message.
        NetMsg::Error {
            call_id: 0,
            code: 0,
            node: 0,
            message: String::new(),
        },
        NetMsg::Error {
            call_id: 9,
            code: 5,
            node: 0,
            message: "timed out: only 1 of 4 workers joined".into(),
        },
        NetMsg::Error {
            call_id: u64::MAX,
            code: u8::MAX,
            node: u32::MAX,
            message: "e".repeat(BIG),
        },
        // Shutdown: the zero-payload variant.
        NetMsg::Shutdown,
        // Rejoin: no recovered partitions, then a large partition set.
        NetMsg::Rejoin {
            process_index: 1,
            listen_port: 1,
            partitions: Vec::new(),
        },
        NetMsg::Rejoin {
            process_index: u32::MAX,
            listen_port: u16::MAX,
            partitions: (0..100_000).collect(),
        },
    ]
}

fn round_trip(msg: &Msg) -> Msg {
    let bytes = msg.to_bytes();
    assert_eq!(
        bytes.len(),
        msg.encoded_len(),
        "{}: encoded_len must match the bytes actually produced",
        variant_name(msg)
    );
    decode_exact(&bytes).unwrap_or_else(|e| panic!("{}: decode failed: {e}", variant_name(msg)))
}

#[test]
fn every_variant_round_trips_including_edges() {
    let cases = all_cases();
    for msg in &cases {
        let back = round_trip(msg);
        assert_eq!(&back, msg, "{} must round-trip", variant_name(msg));
    }
    // Every variant is represented at least once.
    let mut seen: Vec<&str> = cases.iter().map(variant_name).collect();
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(
        seen,
        vec![
            "Error",
            "Hello",
            "PeerJoined",
            "Rejoin",
            "Request",
            "Response",
            "Shutdown",
            "SpawnFresh",
            "Spawned",
            "Welcome",
        ]
    );
}

#[test]
fn trailing_garbage_is_rejected() {
    let mut bytes = Msg::Shutdown.to_bytes();
    bytes.push(0);
    assert!(decode_exact::<Msg>(&bytes).is_err());
}

#[test]
fn truncation_is_rejected_for_every_variant() {
    for msg in all_cases() {
        let bytes = msg.to_bytes();
        if bytes.len() <= 1 {
            continue; // nothing to truncate meaningfully
        }
        // Chop at a handful of interior offsets (full sweep over BIG
        // payloads would be quadratic for no extra coverage).
        for cut in [1, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode_exact::<Msg>(&bytes[..cut]).is_err(),
                "{} truncated at {cut} must not decode",
                variant_name(&msg)
            );
        }
    }
}
