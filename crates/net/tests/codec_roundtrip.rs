//! Exhaustive per-variant round-trip coverage for [`NetMsg`].
//!
//! Every wire variant is encoded and decoded back, including
//! zero-payload and maximum-size edges. The `variant_name` match below
//! is deliberately wildcard-free: adding a `NetMsg` variant breaks this
//! file at compile time until the new variant gets its round-trip cases
//! (and `semtree-check` independently verifies each variant name appears
//! here).

use semtree_net::{decode_exact, Encode, NetMsg};

type Msg = NetMsg<Vec<u8>, String>;

/// Compile-time exhaustiveness guard: no wildcard arm, so a new variant
/// fails to build until it is added here AND to `all_cases`.
fn variant_name(msg: &Msg) -> &'static str {
    match msg {
        NetMsg::Hello { .. } => "Hello",
        NetMsg::Welcome { .. } => "Welcome",
        NetMsg::PeerJoined { .. } => "PeerJoined",
        NetMsg::Request { .. } => "Request",
        NetMsg::Response { .. } => "Response",
        NetMsg::SpawnFresh { .. } => "SpawnFresh",
        NetMsg::Spawned { .. } => "Spawned",
        NetMsg::Error { .. } => "Error",
        NetMsg::Shutdown => "Shutdown",
        NetMsg::Rejoin { .. } => "Rejoin",
    }
}

/// A large-but-bounded payload for the max-size edges. Big enough to
/// exercise multi-byte length prefixes and reallocation paths, small
/// enough to keep the suite fast (real frames are capped by
/// `MAX_FRAME_LEN`, far above this).
const BIG: usize = 1 << 20;

/// Typical, zero/minimal, and maximal instances of every variant.
fn all_cases() -> Vec<Msg> {
    vec![
        // Hello: typical, zero, and saturated fields (UNASSIGNED is
        // u32::MAX, so the max edge doubles as the joining-worker form).
        NetMsg::Hello {
            process_index: 3,
            listen_port: 9000,
        },
        NetMsg::Hello {
            process_index: 0,
            listen_port: 0,
        },
        NetMsg::Hello {
            process_index: Msg::UNASSIGNED,
            listen_port: u16::MAX,
        },
        // Welcome: empty peer set + empty config, then a large roster
        // with a BIG config blob.
        NetMsg::Welcome {
            assigned_index: 1,
            peers: Vec::new(),
            config: Vec::new(),
        },
        NetMsg::Welcome {
            assigned_index: u32::MAX,
            peers: (0..512)
                .map(|i| (i, format!("10.0.{}.{}:{}", i / 256, i % 256, 40000 + i)))
                .collect(),
            config: vec![0xAB; BIG],
        },
        // PeerJoined: empty and long addresses.
        NetMsg::PeerJoined {
            index: 2,
            addr: String::new(),
        },
        NetMsg::PeerJoined {
            index: u32::MAX,
            addr: "a".repeat(BIG),
        },
        // Request: zero-payload body and a BIG body.
        NetMsg::Request {
            call_id: 0,
            target: 0,
            body: Vec::new(),
        },
        NetMsg::Request {
            call_id: u64::MAX,
            target: u32::MAX,
            body: (0..BIG).map(|i| i as u8).collect(),
        },
        // Response: empty and BIG string bodies.
        NetMsg::Response {
            call_id: 1,
            body: String::new(),
        },
        NetMsg::Response {
            call_id: u64::MAX,
            body: "x".repeat(BIG),
        },
        // SpawnFresh: the only field at both edges.
        NetMsg::SpawnFresh { call_id: 0 },
        NetMsg::SpawnFresh { call_id: u64::MAX },
        // Spawned.
        NetMsg::Spawned {
            call_id: 7,
            node: (3 << 16) | 12,
        },
        NetMsg::Spawned {
            call_id: u64::MAX,
            node: u32::MAX,
        },
        // Error: empty message, every known code, and a BIG message.
        NetMsg::Error {
            call_id: 0,
            code: 0,
            node: 0,
            message: String::new(),
        },
        NetMsg::Error {
            call_id: 9,
            code: 5,
            node: 0,
            message: "timed out: only 1 of 4 workers joined".into(),
        },
        NetMsg::Error {
            call_id: u64::MAX,
            code: u8::MAX,
            node: u32::MAX,
            message: "e".repeat(BIG),
        },
        // Shutdown: the zero-payload variant.
        NetMsg::Shutdown,
        // Rejoin: no recovered partitions, then a large partition set.
        NetMsg::Rejoin {
            process_index: 1,
            listen_port: 1,
            partitions: Vec::new(),
        },
        NetMsg::Rejoin {
            process_index: u32::MAX,
            listen_port: u16::MAX,
            partitions: (0..100_000).collect(),
        },
    ]
}

fn round_trip(msg: &Msg) -> Msg {
    let bytes = msg.to_bytes();
    assert_eq!(
        bytes.len(),
        msg.encoded_len(),
        "{}: encoded_len must match the bytes actually produced",
        variant_name(msg)
    );
    decode_exact(&bytes).unwrap_or_else(|e| panic!("{}: decode failed: {e}", variant_name(msg)))
}

#[test]
fn every_variant_round_trips_including_edges() {
    let cases = all_cases();
    for msg in &cases {
        let back = round_trip(msg);
        assert_eq!(&back, msg, "{} must round-trip", variant_name(msg));
    }
    // Every variant is represented at least once.
    let mut seen: Vec<&str> = cases.iter().map(variant_name).collect();
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(
        seen,
        vec![
            "Error",
            "Hello",
            "PeerJoined",
            "Rejoin",
            "Request",
            "Response",
            "Shutdown",
            "SpawnFresh",
            "Spawned",
            "Welcome",
        ]
    );
}

#[test]
fn trailing_garbage_is_rejected() {
    let mut bytes = Msg::Shutdown.to_bytes();
    bytes.push(0);
    assert!(decode_exact::<Msg>(&bytes).is_err());
}

#[test]
fn truncation_is_rejected_for_every_variant() {
    for msg in all_cases() {
        let bytes = msg.to_bytes();
        if bytes.len() <= 1 {
            continue; // nothing to truncate meaningfully
        }
        // Chop at a handful of interior offsets (full sweep over BIG
        // payloads would be quadratic for no extra coverage).
        for cut in [1, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode_exact::<Msg>(&bytes[..cut]).is_err(),
                "{} truncated at {cut} must not decode",
                variant_name(&msg)
            );
        }
    }
}

/// Codec behaviour under pipelining: v2 (correlated) frames interleaved
/// on one byte stream, delivered through partial reads, with the
/// correlation id surviving exactly.
mod frame_v2_pipelining {
    use std::io::{self, Read};

    use proptest::prelude::*;
    use semtree_net::{
        encode_frame_v2, read_frame, split_frame_v2, write_frame, FRAME_V2, FRAME_V2_HEADER_LEN,
        MAX_FRAME_LEN,
    };

    /// A reader that hands out at most `chunk` bytes per call —
    /// simulates a socket delivering partial reads mid-frame.
    struct Dribble<'a> {
        wire: &'a [u8],
        pos: usize,
        chunk: usize,
    }

    impl Read for Dribble<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let n = buf.len().min(self.chunk).min(self.wire.len() - self.pos);
            buf[..n].copy_from_slice(&self.wire[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn header_is_exactly_nine_bytes() {
        // The v2 header (tag + correlation id) counts toward the frame
        // length, so MAX_FRAME_LEN bounds body + 9, not just the body.
        assert_eq!(FRAME_V2_HEADER_LEN, 9);
        for (corr, body) in [(0u64, &b""[..]), (u64::MAX, &b"payload"[..])] {
            let payload = encode_frame_v2(corr, body);
            assert_eq!(payload.len(), FRAME_V2_HEADER_LEN + body.len());
            assert_eq!(payload[0], FRAME_V2);
        }
    }

    #[test]
    fn interleaved_v1_and_v2_frames_keep_their_identities() {
        // One wire carrying a v1 frame between v2 frames with extreme
        // correlation ids — each frame comes back tagged correctly.
        let mut wire = Vec::new();
        write_frame(&mut wire, &encode_frame_v2(u64::MAX, b"last-id")).unwrap();
        write_frame(&mut wire, b"plain v1 payload").unwrap();
        write_frame(&mut wire, &encode_frame_v2(0, b"zero-id")).unwrap();

        let mut reader = Dribble {
            wire: &wire,
            pos: 0,
            chunk: 3,
        };
        let first = read_frame(&mut reader).unwrap().unwrap();
        assert_eq!(
            split_frame_v2(&first).unwrap(),
            Some((u64::MAX, &b"last-id"[..]))
        );
        let second = read_frame(&mut reader).unwrap().unwrap();
        assert_eq!(split_frame_v2(&second).unwrap(), None, "v1 passes through");
        assert_eq!(second, b"plain v1 payload");
        let third = read_frame(&mut reader).unwrap().unwrap();
        assert_eq!(split_frame_v2(&third).unwrap(), Some((0, &b"zero-id"[..])));
    }

    #[test]
    fn demux_detects_a_correlation_id_mismatch() {
        // A demuxing client holds the set of ids it issued; a reply
        // whose id is not in that set must be detectable (the client
        // then fails the connection rather than mis-delivering).
        let issued: std::collections::HashSet<u64> = [1, 2, 3].into();
        let reply = encode_frame_v2(42, b"stray");
        let (corr, _body) = split_frame_v2(&reply).unwrap().unwrap();
        assert!(
            !issued.contains(&corr),
            "a stray id must not match any issued request"
        );
    }

    #[test]
    fn oversized_v2_frame_is_rejected_before_its_body_arrives() {
        // MAX_FRAME_LEN caps the whole payload including the 9-byte v2
        // header, so the largest legal body is MAX_FRAME_LEN - 9. A
        // prefix claiming one byte more is rejected from the prefix
        // alone — the reader never waits for (or allocates) the body.
        let len = u32::try_from(MAX_FRAME_LEN + 1).unwrap();
        let mut wire = len.to_be_bytes().to_vec();
        wire.push(FRAME_V2); // the body never arrives
        let mut reader: &[u8] = &wire;
        let err = read_frame(&mut reader).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    proptest! {
        /// Any sequence of v2 frames, written on one stream and read
        /// back through arbitrary partial-read chunk sizes, yields the
        /// same (id, body) pairs in order.
        #[test]
        fn pipelined_frames_survive_arbitrary_chunking(
            frames in prop::collection::vec(
                (0u64..u64::MAX, prop::collection::vec(0u8..=255u8, 0..64)),
                1..8,
            ),
            chunk in 1usize..16,
        ) {
            let mut wire = Vec::new();
            for (corr, body) in &frames {
                write_frame(&mut wire, &encode_frame_v2(*corr, body)).unwrap();
            }
            let mut reader = Dribble { wire: &wire, pos: 0, chunk };
            for (corr, body) in &frames {
                let payload = read_frame(&mut reader).unwrap().unwrap();
                let (got_corr, got_body) = split_frame_v2(&payload).unwrap().unwrap();
                prop_assert_eq!(got_corr, *corr);
                prop_assert_eq!(got_body, &body[..]);
            }
            prop_assert!(read_frame(&mut reader).unwrap().is_none(), "wire drained");
        }

        /// The 9-byte header alone round-trips every correlation id;
        /// truncating into the header is always InvalidData, never a
        /// misparse.
        #[test]
        fn header_truncation_never_misparses(corr in 0u64..u64::MAX, cut in 1usize..9) {
            let payload = encode_frame_v2(corr, b"");
            prop_assert_eq!(
                split_frame_v2(&payload).unwrap(),
                Some((corr, &b""[..]))
            );
            let err = split_frame_v2(&payload[..cut]).unwrap_err();
            prop_assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        }
    }
}
