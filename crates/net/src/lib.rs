//! Real network transport for the SemTree cluster — beyond the paper.
//!
//! The paper's cluster is "8 processors … based on MPJ libraries"; the
//! workspace's default stand-in is `semtree-cluster`'s in-process channel
//! fabric (threads as compute nodes). This crate provides the second
//! [`Transport`](semtree_cluster::Transport) implementation: **real OS
//! processes connected over TCP**, so the same partition actors,
//! protocol types, and query algorithms run unchanged in a genuine
//! multi-process deployment.
//!
//! Three layers, all dependency-free (`std::net` + threads):
//!
//! - [`codec`]: a length-computable little-endian binary encoding
//!   ([`Encode`]/[`Decode`]) for protocol types — the byte counts that
//!   `Wire::wire_size` reports in simulation are the *exact* sizes this
//!   codec produces;
//! - [`frame`]: u32-big-endian length-prefixed frames over a byte
//!   stream, plus dial-with-retry;
//! - [`fabric`]: [`NetFabric`], the coordinator/worker membership
//!   protocol, per-connection reader threads, correlation-id request
//!   routing, and cross-process member spawning for build-partition.

mod codec;
mod fabric;
mod frame;
mod mesh;
mod msg;

pub use codec::{decode_exact, Decode, DecodeError, Encode};
pub use fabric::NetFabric;
pub use frame::{
    dial_with_timeout, encode_frame_v2, frame_overhead, read_frame, split_frame_v2, write_frame,
    FRAME_V2, FRAME_V2_HEADER_LEN, MAX_FRAME_LEN,
};
pub use mesh::ConnRegistry;
pub use msg::{decode_error, encode_error, NetMsg};
