//! Length-prefixed framing over a byte stream.
//!
//! Every message travels as a **u32 big-endian length prefix** followed
//! by that many payload bytes (the codec encoding of one `NetMsg`). The
//! prefix is network byte order by convention; payload bytes are the
//! little-endian codec format.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Upper bound on a single frame; anything larger is treated as a
/// corrupted or hostile stream rather than allocated.
pub const MAX_FRAME_LEN: usize = 256 * 1024 * 1024;

/// Write one frame (length prefix + payload) and flush it.
pub fn write_frame(stream: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame exceeds u32 length"))?;
    stream.write_all(&len.to_be_bytes())?;
    stream.write_all(payload)?;
    stream.flush()
}

/// Read one complete frame's payload. `Ok(None)` means the peer closed
/// the stream cleanly at a frame boundary.
pub fn read_frame(stream: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut prefix = [0u8; 4];
    match stream.read_exact(&mut prefix) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds maximum {MAX_FRAME_LEN}"),
        ));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Total on-the-wire size of a frame carrying `payload_len` body bytes.
#[must_use]
pub fn frame_overhead(payload_len: usize) -> usize {
    4 + payload_len
}

/// Connect to `addr`, retrying until `timeout` elapses — covers the
/// race where a worker dials a peer whose listener is still coming up.
pub fn dial_with_timeout(addr: SocketAddr, timeout: Duration) -> io::Result<TcpStream> {
    let deadline = Instant::now() + timeout;
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                stream.set_nodelay(true).ok();
                return Ok(stream);
            }
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        e.kind(),
                        format!("connect to {addr} timed out after {timeout:?}: {e}"),
                    ));
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        write_frame(&mut wire, &[7u8; 300]).unwrap();

        let mut reader: &[u8] = &wire;
        assert_eq!(
            read_frame(&mut reader).unwrap().as_deref(),
            Some(&b"hello"[..])
        );
        assert_eq!(read_frame(&mut reader).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut reader).unwrap().unwrap().len(), 300);
        // Clean close at a frame boundary.
        assert_eq!(read_frame(&mut reader).unwrap(), None);
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        wire.truncate(wire.len() - 2);
        let mut reader: &[u8] = &wire;
        assert!(read_frame(&mut reader).is_err());
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let wire = u32::MAX.to_be_bytes();
        let mut reader: &[u8] = &wire;
        assert!(read_frame(&mut reader).is_err());
    }

    #[test]
    fn overhead_accounts_for_the_prefix() {
        assert_eq!(frame_overhead(0), 4);
        assert_eq!(frame_overhead(100), 104);
    }
}
