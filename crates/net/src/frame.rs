//! Length-prefixed framing over a byte stream.
//!
//! Every message travels as a **u32 big-endian length prefix** followed
//! by that many payload bytes (the codec encoding of one `NetMsg`). The
//! prefix is network byte order by convention; payload bytes are the
//! little-endian codec format.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Upper bound on a single frame; anything larger is treated as a
/// corrupted or hostile stream rather than allocated.
pub const MAX_FRAME_LEN: usize = 256 * 1024 * 1024;

/// Write one frame (length prefix + payload) and flush it.
pub fn write_frame(stream: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame exceeds u32 length"))?;
    stream.write_all(&len.to_be_bytes())?;
    stream.write_all(payload)?;
    stream.flush()
}

/// Read one complete frame's payload. `Ok(None)` means the peer closed
/// the stream cleanly at a frame boundary — EOF anywhere *inside* a
/// frame (even mid-prefix) is an [`io::ErrorKind::UnexpectedEof`] error,
/// never mistaken for a clean close.
pub fn read_frame(stream: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < prefix.len() {
        match stream.read(&mut prefix[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream closed mid-prefix",
                ));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds maximum {MAX_FRAME_LEN}"),
        ));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Total on-the-wire size of a frame carrying `payload_len` body bytes.
#[must_use]
pub fn frame_overhead(payload_len: usize) -> usize {
    4 + payload_len
}

/// Magic first payload byte of a **v2 (pipelined) frame**: the payload
/// is `[0xC2][u64 LE correlation id][body]` instead of a bare body.
///
/// The value is unambiguous against every v1 payload in the protocol:
/// v1 payloads start with a codec enum tag, and no protocol enum has
/// more than a handful of variants — nowhere near `0xC2`.
pub const FRAME_V2: u8 = 0xC2;

/// Payload bytes beyond the body in a v2 frame (magic + correlation id).
pub const FRAME_V2_HEADER_LEN: usize = 9;

/// Build a v2 payload: magic byte, correlation id, body. Framing (the
/// u32 length prefix) is unchanged — pass the result to [`write_frame`],
/// and [`MAX_FRAME_LEN`] applies to the whole payload including this
/// header.
#[must_use]
pub fn encode_frame_v2(corr_id: u64, body: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(FRAME_V2_HEADER_LEN + body.len());
    payload.push(FRAME_V2);
    payload.extend_from_slice(&corr_id.to_le_bytes());
    payload.extend_from_slice(body);
    payload
}

/// Split a frame payload that may be v2. Returns `Ok(Some((corr_id,
/// body)))` for a well-formed v2 payload, `Ok(None)` when the payload is
/// v1 (no magic byte — including the empty payload), and an
/// [`io::ErrorKind::InvalidData`] error when the magic byte is present
/// but the header is truncated.
pub fn split_frame_v2(payload: &[u8]) -> io::Result<Option<(u64, &[u8])>> {
    match payload.first() {
        Some(&FRAME_V2) => {
            if payload.len() < FRAME_V2_HEADER_LEN {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "v2 frame header truncated: {} of {FRAME_V2_HEADER_LEN} bytes",
                        payload.len()
                    ),
                ));
            }
            let mut corr = [0u8; 8];
            corr.copy_from_slice(&payload[1..FRAME_V2_HEADER_LEN]);
            Ok(Some((
                u64::from_le_bytes(corr),
                &payload[FRAME_V2_HEADER_LEN..],
            )))
        }
        _ => Ok(None),
    }
}

/// Connect to `addr`, retrying until `timeout` elapses — covers the
/// race where a worker dials a peer whose listener is still coming up.
///
/// Retries back off exponentially (1ms doubling to a 50ms cap), each
/// sleep clamped to the remaining deadline, so a listener that comes up
/// quickly is dialled within a millisecond or two instead of a fixed
/// 50ms poll.
pub fn dial_with_timeout(addr: SocketAddr, timeout: Duration) -> io::Result<TcpStream> {
    let deadline = Instant::now() + timeout;
    let mut backoff = Duration::from_millis(1);
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                stream.set_nodelay(true).ok();
                return Ok(stream);
            }
            Err(e) => {
                let now = Instant::now();
                if now >= deadline {
                    return Err(io::Error::new(
                        e.kind(),
                        format!("connect to {addr} timed out after {timeout:?}: {e}"),
                    ));
                }
                std::thread::sleep(backoff.min(deadline - now));
                backoff = (backoff * 2).min(Duration::from_millis(50));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        write_frame(&mut wire, &[7u8; 300]).unwrap();

        let mut reader: &[u8] = &wire;
        assert_eq!(
            read_frame(&mut reader).unwrap().as_deref(),
            Some(&b"hello"[..])
        );
        assert_eq!(read_frame(&mut reader).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut reader).unwrap().unwrap().len(), 300);
        // Clean close at a frame boundary.
        assert_eq!(read_frame(&mut reader).unwrap(), None);
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        wire.truncate(wire.len() - 2);
        let mut reader: &[u8] = &wire;
        assert!(read_frame(&mut reader).is_err());
    }

    #[test]
    fn every_truncation_point_is_an_error_not_a_wrong_frame() {
        // Cutting the stream anywhere inside a frame — in the prefix or
        // in the payload — must surface as an error, never as a short or
        // phantom frame.
        let mut wire = Vec::new();
        write_frame(&mut wire, &[0xAB; 32]).unwrap();
        for cut in 1..wire.len() {
            let mut reader: &[u8] = &wire[..cut];
            assert!(
                read_frame(&mut reader).is_err(),
                "truncation at byte {cut} must error"
            );
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let wire = u32::MAX.to_be_bytes();
        let mut reader: &[u8] = &wire;
        assert!(read_frame(&mut reader).is_err());
    }

    #[test]
    fn length_exactly_at_the_maximum_is_accepted() {
        // MAX_FRAME_LEN itself is legal; only strictly larger prefixes
        // are hostile. Don't materialise a 256 MiB buffer — hand the
        // reader the prefix plus a zero reader and expect it to fail on
        // missing payload, *not* on the length check.
        let len = u32::try_from(MAX_FRAME_LEN).unwrap();
        let mut wire = len.to_be_bytes().to_vec();
        wire.extend_from_slice(&[0u8; 8]); // far short of the payload
        let mut reader: &[u8] = &wire;
        let err = read_frame(&mut reader).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn length_one_past_the_maximum_is_rejected_without_allocating() {
        let len = u32::try_from(MAX_FRAME_LEN + 1).unwrap();
        let wire = len.to_be_bytes();
        let mut reader: &[u8] = &wire;
        let err = read_frame(&mut reader).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("exceeds maximum"));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn any_payload_round_trips(payload in prop::collection::vec(0u8..=255u8, 0..2048)) {
                let mut wire = Vec::new();
                write_frame(&mut wire, &payload).unwrap();
                prop_assert_eq!(wire.len(), frame_overhead(payload.len()));
                let mut reader: &[u8] = &wire;
                prop_assert_eq!(read_frame(&mut reader).unwrap(), Some(payload));
                prop_assert_eq!(read_frame(&mut reader).unwrap(), None);
            }

            #[test]
            fn frame_sequences_round_trip_in_order(
                payloads in prop::collection::vec(prop::collection::vec(0u8..=255u8, 0..256), 1..12)
            ) {
                let mut wire = Vec::new();
                for p in &payloads {
                    write_frame(&mut wire, p).unwrap();
                }
                let mut reader: &[u8] = &wire;
                for p in &payloads {
                    prop_assert_eq!(read_frame(&mut reader).unwrap().as_deref(), Some(p.as_slice()));
                }
                prop_assert_eq!(read_frame(&mut reader).unwrap(), None);
            }

            #[test]
            fn truncating_a_frame_anywhere_errors(
                payload in prop::collection::vec(0u8..=255u8, 1..512),
                cut_fraction in 0.0f64..1.0
            ) {
                let mut wire = Vec::new();
                write_frame(&mut wire, &payload).unwrap();
                // Cut strictly inside the frame: [1, len-1].
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let cut = 1 + ((wire.len() - 2) as f64 * cut_fraction) as usize;
                let mut reader: &[u8] = &wire[..cut];
                prop_assert!(read_frame(&mut reader).is_err());
            }
        }
    }

    #[test]
    fn overhead_accounts_for_the_prefix() {
        assert_eq!(frame_overhead(0), 4);
        assert_eq!(frame_overhead(100), 104);
    }

    #[test]
    fn v2_payload_round_trips() {
        let payload = encode_frame_v2(0xDEAD_BEEF_1234_5678, b"body bytes");
        assert_eq!(payload.len(), FRAME_V2_HEADER_LEN + 10);
        let (corr, body) = split_frame_v2(&payload).unwrap().expect("v2");
        assert_eq!(corr, 0xDEAD_BEEF_1234_5678);
        assert_eq!(body, b"body bytes");
    }

    #[test]
    fn v1_payloads_pass_through_split_unscathed() {
        // Every ClientReq/NetMsg tag is tiny — far below 0xC2.
        for first in [0u8, 1, 7, 9] {
            assert_eq!(split_frame_v2(&[first, 1, 2, 3]).unwrap(), None);
        }
        assert_eq!(split_frame_v2(&[]).unwrap(), None);
    }

    #[test]
    fn truncated_v2_header_is_invalid_data() {
        for len in 1..FRAME_V2_HEADER_LEN {
            let mut payload = encode_frame_v2(42, b"x");
            payload.truncate(len);
            let err = split_frame_v2(&payload).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "truncated at {len}");
        }
    }

    #[test]
    fn v2_header_layout_is_stable() {
        // [0xC2][corr u64 LE][body] — the cross-process contract.
        let payload = encode_frame_v2(0x0102_0304_0506_0708, &[0xAA]);
        assert_eq!(
            payload,
            [0xC2, 0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01, 0xAA]
        );
    }
}
