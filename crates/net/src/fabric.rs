//! [`NetFabric`]: the TCP implementation of the cluster [`Transport`].
//!
//! One `NetFabric` per OS process. Process 0 (the **coordinator**)
//! listens for joining **workers**; every process hosts its own nodes on
//! an in-process [`ChannelFabric`] and routes cross-process traffic over
//! framed TCP connections carrying [`NetMsg`] payloads. Workers learn of
//! each other through the coordinator (`Welcome` / `PeerJoined`) and dial
//! peers lazily on first use, forming a mesh only where the partition
//! tree actually crosses process boundaries.
//!
//! Threading model: one accept-loop thread per process, one reader
//! thread per established connection, and one short-lived thread per
//! incoming request (the request blocks on a local node, which may
//! itself call further processes). Node handlers never run on reader
//! threads, so readers always drain and the blocking parent→child call
//! discipline of `semtree-dist` cannot deadlock across processes.

use std::collections::HashMap;
use std::io;
use std::net::{IpAddr, Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Weak};
use std::time::{Duration, Instant};

use semtree_cluster::{
    BoxHandler, ChannelFabric, ClusterError, ClusterMetrics, CompleteFn, ComputeNodeId, CostModel,
    MembershipGate, MetricsSnapshot, NodeFactory, ReplyHandle, ReplySlot, Transport, Wire,
};
use semtree_conc::sync::Mutex;

use crate::codec::{decode_exact, Decode, Encode};
use crate::frame::{dial_with_timeout, frame_overhead, read_frame, write_frame};
use crate::mesh::ConnRegistry;
use crate::msg::{decode_error, encode_error, NetMsg};

/// How long a lazy peer dial keeps retrying before giving up.
const DIAL_TIMEOUT: Duration = Duration::from_secs(10);

enum Pending<Resp> {
    /// An in-flight request awaiting a `Response`.
    Call(ReplySlot<Resp>),
    /// An in-flight remote spawn awaiting a `Spawned`.
    Spawn(mpsc::Sender<Result<ComputeNodeId, ClusterError>>),
}

/// One established connection to a peer process.
struct Conn<Resp> {
    peer: u32,
    writer: Mutex<TcpStream>,
    pending: Mutex<HashMap<u64, Pending<Resp>>>,
}

impl<Resp> Conn<Resp> {
    fn write_payload(&self, payload: &[u8]) -> io::Result<()> {
        write_frame(&mut *self.writer.lock(), payload)
    }

    fn take_pending(&self, call_id: u64) -> Option<Pending<Resp>> {
        self.pending.lock().remove(&call_id)
    }

    /// Fail every in-flight operation (connection lost).
    fn fail_all(&self, err: &ClusterError) {
        let drained: Vec<Pending<Resp>> = {
            let mut pending = self.pending.lock();
            pending.drain().map(|(_, p)| p).collect()
        };
        for p in drained {
            match p {
                Pending::Call(slot) => slot.fill(Err(err.clone())),
                Pending::Spawn(tx) => {
                    let _ = tx.send(Err(err.clone()));
                }
            }
        }
    }
}

/// TCP-backed cluster fabric (see module docs).
pub struct NetFabric<Req, Resp>
where
    Req: Encode + Decode + Wire + Send + 'static,
    Resp: Encode + Decode + Wire + Send + 'static,
{
    local: Arc<ChannelFabric<Req, Resp>>,
    process_index: u32,
    listen_addr: SocketAddr,
    /// Known peer listener addresses by process index (never includes
    /// this process).
    peers: semtree_conc::sync::RwLock<HashMap<u32, SocketAddr>>,
    conns: ConnRegistry<Arc<Conn<Resp>>>,
    next_call_id: AtomicU64,
    /// Coordinator only: the next index handed to a joining worker.
    next_worker_index: AtomicU64,
    /// Round-robin cursor for member-spawn placement.
    spawn_rr: AtomicUsize,
    /// Notified whenever the peer set changes, so
    /// [`wait_for_workers`](Self::wait_for_workers) can block on the
    /// gate instead of polling.
    membership: MembershipGate,
    metrics: Arc<ClusterMetrics>,
    shutting_down: AtomicBool,
    shutdown_tx: mpsc::Sender<()>,
    shutdown_rx: Mutex<Option<mpsc::Receiver<()>>>,
    /// Coordinator only: the opaque config blob shipped in `Welcome`.
    config: Vec<u8>,
    self_weak: Weak<NetFabric<Req, Resp>>,
}

impl<Req, Resp> NetFabric<Req, Resp>
where
    Req: Encode + Decode + Wire + Send + 'static,
    Resp: Encode + Decode + Wire + Send + 'static,
{
    /// Start the coordinator (process 0): bind `listen` and accept
    /// joining workers. `config` is an opaque blob delivered verbatim to
    /// every worker in its `Welcome` (the application's deployment
    /// parameters).
    pub fn coordinator(
        listen: SocketAddr,
        config: Vec<u8>,
        cost: CostModel,
    ) -> io::Result<Arc<Self>> {
        let listener = TcpListener::bind(listen)?;
        let listen_addr = listener.local_addr()?;
        let fabric = Self::build(ChannelFabric::new(cost, 0), 0, listen_addr, config);
        fabric.start_accept_loop(listener)?;
        Ok(fabric)
    }

    /// Join a deployment as a worker: dial the coordinator, receive an
    /// assigned process index plus the coordinator's config blob, and
    /// start accepting mesh connections from sibling workers.
    pub fn join(
        coordinator: SocketAddr,
        cost: CostModel,
        timeout: Duration,
    ) -> io::Result<(Arc<Self>, Vec<u8>)> {
        // Bind the mesh listener first so its port can ride in the Hello.
        let listener = TcpListener::bind((Ipv4Addr::UNSPECIFIED, 0))?;
        let listen_addr = listener.local_addr()?;

        let mut stream = dial_with_timeout(coordinator, timeout)?;
        let hello: NetMsg<Req, Resp> = NetMsg::Hello {
            process_index: NetMsg::<Req, Resp>::UNASSIGNED,
            listen_port: listen_addr.port(),
        };
        write_frame(&mut stream, &hello.to_bytes())?;
        let payload = read_frame(&mut stream)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "coordinator hung up"))?;
        let welcome: NetMsg<Req, Resp> = decode_exact(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let NetMsg::Welcome {
            assigned_index,
            peers,
            config,
        } = welcome
        else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "expected Welcome from coordinator",
            ));
        };

        let fabric = Self::build(
            ChannelFabric::new(cost, assigned_index),
            assigned_index,
            listen_addr,
            Vec::new(),
        );
        {
            let mut map = fabric.peers.write();
            map.insert(0, coordinator);
            for (index, addr) in peers {
                if let Ok(parsed) = addr.parse() {
                    map.insert(index, parsed);
                }
            }
        }
        fabric.register_conn(0, stream)?;
        fabric.start_accept_loop(listener)?;
        Ok((fabric, config))
    }

    /// Rejoin a deployment as a **restarted** worker: dial the
    /// coordinator and ask to resume under the previously assigned
    /// `process_index`, presenting the raw ids of the `partitions`
    /// recovered from local durable state. The coordinator replaces its
    /// stale route and connection for that index and re-announces the
    /// worker to its siblings, so traffic to the old partition ids flows
    /// again once the caller has re-spawned them on the local fabric.
    ///
    /// # Errors
    /// Fails when the coordinator is unreachable or refuses the rejoin
    /// (unknown index, index 0, or a partition owned by another process)
    /// — a refusal surfaces as the coordinator hanging up.
    pub fn rejoin(
        coordinator: SocketAddr,
        cost: CostModel,
        timeout: Duration,
        process_index: u32,
        partitions: &[u32],
    ) -> io::Result<Arc<Self>> {
        let listener = TcpListener::bind((Ipv4Addr::UNSPECIFIED, 0))?;
        let listen_addr = listener.local_addr()?;

        let mut stream = dial_with_timeout(coordinator, timeout)?;
        let rejoin: NetMsg<Req, Resp> = NetMsg::Rejoin {
            process_index,
            listen_port: listen_addr.port(),
            partitions: partitions.to_vec(),
        };
        write_frame(&mut stream, &rejoin.to_bytes())?;
        let payload = read_frame(&mut stream)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "coordinator hung up"))?;
        let welcome: NetMsg<Req, Resp> = decode_exact(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let NetMsg::Welcome {
            assigned_index,
            peers,
            config: _,
        } = welcome
        else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "expected Welcome from coordinator",
            ));
        };
        if assigned_index != process_index {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "asked to rejoin as process {process_index}, coordinator says {assigned_index}"
                ),
            ));
        }

        let fabric = Self::build(
            ChannelFabric::new(cost, process_index),
            process_index,
            listen_addr,
            Vec::new(),
        );
        {
            let mut map = fabric.peers.write();
            map.insert(0, coordinator);
            for (index, addr) in peers {
                if let Ok(parsed) = addr.parse() {
                    map.insert(index, parsed);
                }
            }
        }
        fabric.register_conn(0, stream)?;
        fabric.start_accept_loop(listener)?;
        Ok(fabric)
    }

    fn build(
        local: Arc<ChannelFabric<Req, Resp>>,
        process_index: u32,
        listen_addr: SocketAddr,
        config: Vec<u8>,
    ) -> Arc<Self> {
        let metrics = local.metrics_handle();
        let (shutdown_tx, shutdown_rx) = mpsc::channel();
        let fabric = Arc::new_cyclic(|self_weak: &Weak<NetFabric<Req, Resp>>| NetFabric {
            local,
            process_index,
            listen_addr,
            peers: semtree_conc::sync::RwLock::new(HashMap::new()),
            conns: ConnRegistry::new(),
            next_call_id: AtomicU64::new(1),
            next_worker_index: AtomicU64::new(1),
            spawn_rr: AtomicUsize::new(0),
            membership: MembershipGate::new(),
            metrics,
            shutting_down: AtomicBool::new(false),
            shutdown_tx,
            shutdown_rx: Mutex::new(Some(shutdown_rx)),
            config,
            self_weak: Weak::clone(self_weak),
        });
        // Node-initiated calls must route through this fabric so they can
        // leave the process.
        let router: Weak<dyn Transport<Req, Resp>> = fabric.self_weak.clone();
        fabric.local.set_router(router);
        fabric
    }

    /// The address this process accepts cluster connections on (with the
    /// actual port when bound to port 0).
    #[must_use]
    pub fn listen_addr(&self) -> SocketAddr {
        self.listen_addr
    }

    /// This process's index in the deployment (0 = coordinator).
    #[must_use]
    pub fn process_index(&self) -> u32 {
        self.process_index
    }

    /// Number of known peer processes (coordinator: joined workers).
    #[must_use]
    pub fn peer_count(&self) -> usize {
        self.peers.read().len()
    }

    /// The in-process fabric hosting this process's nodes.
    #[must_use]
    pub fn local_fabric(&self) -> Arc<ChannelFabric<Req, Resp>> {
        Arc::clone(&self.local)
    }

    /// Block until `n` workers have joined, or fail after `timeout`
    /// with a typed [`ClusterError::Timeout`]. Joins wake this
    /// immediately via the membership gate; the predicate loop inside
    /// [`MembershipGate::wait_until`] makes the wait immune to spurious
    /// wakeups, and the deadline is honored exactly rather than at poll
    /// granularity.
    pub fn wait_for_workers(&self, n: usize, timeout: Duration) -> Result<(), ClusterError> {
        let timeout_nanos = u64::try_from(timeout.as_nanos()).unwrap_or(u64::MAX);
        self.membership
            .wait_until(timeout_nanos, || self.peer_count() >= n)
            .map_err(|_elapsed| {
                ClusterError::Timeout(format!(
                    "only {} of {n} workers joined within {timeout:?}",
                    self.peer_count()
                ))
            })
    }

    /// Wake every [`wait_for_workers`](Self::wait_for_workers) after a
    /// peer-set change. Callers must NOT hold the `peers` lock: the
    /// waiter's predicate reads it while holding the gate mutex
    /// (membership ranks below peers in the lock hierarchy).
    fn notify_membership(&self) {
        self.membership.notify();
    }

    /// Block until this process is told to shut down (a `Shutdown` frame
    /// arrives or [`Transport::shutdown`] is called locally). Worker
    /// main loops park here.
    pub fn wait_for_shutdown(&self) {
        let rx = self.shutdown_rx.lock().take();
        if let Some(rx) = rx {
            let _ = rx.recv();
        }
    }

    fn start_accept_loop(self: &Arc<Self>, listener: TcpListener) -> io::Result<()> {
        let weak = Arc::downgrade(self);
        std::thread::Builder::new()
            .name(format!("net-accept-{}", self.process_index))
            .spawn(move || {
                for stream in listener.incoming() {
                    let Some(fabric) = weak.upgrade() else { break };
                    if fabric.shutting_down.load(Ordering::SeqCst) {
                        break;
                    }
                    if let Ok(stream) = stream {
                        fabric.handle_incoming(stream);
                    }
                }
            })?;
        Ok(())
    }

    /// Handshake a fresh inbound connection on its own thread (the first
    /// frame identifies the dialer).
    fn handle_incoming(self: &Arc<Self>, mut stream: TcpStream) {
        let weak = Arc::downgrade(self);
        std::thread::spawn(move || {
            let Ok(Some(payload)) = read_frame(&mut stream) else {
                return;
            };
            let Ok(msg) = decode_exact::<NetMsg<Req, Resp>>(&payload) else {
                return;
            };
            let Some(fabric) = weak.upgrade() else { return };
            let peer_ip = stream
                .peer_addr()
                .map(|a| a.ip())
                .unwrap_or(IpAddr::V4(Ipv4Addr::LOCALHOST));
            match msg {
                NetMsg::Hello {
                    process_index,
                    listen_port,
                } => {
                    let peer_listen = SocketAddr::new(peer_ip, listen_port);
                    if process_index == NetMsg::<Req, Resp>::UNASSIGNED {
                        fabric.admit_worker(stream, peer_listen);
                    } else {
                        // Mesh connection from an already-assigned sibling.
                        fabric.peers.write().insert(process_index, peer_listen);
                        fabric.notify_membership();
                        let _ = fabric.register_conn(process_index, stream);
                    }
                }
                NetMsg::Rejoin {
                    process_index,
                    listen_port,
                    partitions,
                } => {
                    let peer_listen = SocketAddr::new(peer_ip, listen_port);
                    fabric.readmit_worker(stream, peer_listen, process_index, &partitions);
                }
                // Anything else as a first frame is a protocol violation;
                // dropping the socket tells the dialer.
                _ => {}
            }
        });
    }

    /// Coordinator path: assign an index, welcome the worker, tell the
    /// others.
    fn admit_worker(self: &Arc<Self>, stream: TcpStream, peer_listen: SocketAddr) {
        let assigned = self.next_worker_index.fetch_add(1, Ordering::SeqCst) as u32;
        let existing: Vec<(u32, String)> = {
            let peers = self.peers.read();
            peers
                .iter()
                .map(|(&index, addr)| (index, addr.to_string()))
                .collect()
        };
        // Existing workers learn the newcomer's address for lazy dialing.
        let joined: NetMsg<Req, Resp> = NetMsg::PeerJoined {
            index: assigned,
            addr: peer_listen.to_string(),
        };
        let joined_bytes = joined.to_bytes();
        for conn in self.conns.values() {
            let _ = self.write_recorded(&conn, &joined_bytes);
        }
        // Ordering matters twice over. The route and connection must
        // exist before the Welcome goes out (the worker treats Welcome as
        // "joined", and the coordinator may be asked to reach it the
        // moment `join` returns) — and the membership gate must fire only
        // AFTER the Welcome is on the wire: waking waiters earlier lets a
        // sender grab the freshly registered conn's writer first, and the
        // worker's first frame becomes a request instead of its Welcome.
        self.peers.write().insert(assigned, peer_listen);
        let Ok(conn) = self.register_conn(assigned, stream) else {
            return;
        };
        let welcome: NetMsg<Req, Resp> = NetMsg::Welcome {
            assigned_index: assigned,
            peers: existing,
            config: self.config.clone(),
        };
        let _ = self.write_recorded(&conn, &welcome.to_bytes());
        self.notify_membership();
    }

    /// Coordinator path for a **restarted** worker: validate that the
    /// claimed index was really assigned in this deployment and that the
    /// presented partitions belong to it, then swap in the fresh route
    /// and connection and welcome it back under its old index. Invalid
    /// claims just drop the socket.
    fn readmit_worker(
        self: &Arc<Self>,
        stream: TcpStream,
        peer_listen: SocketAddr,
        process_index: u32,
        partitions: &[u32],
    ) {
        if self.process_index != 0
            || process_index == 0
            || u64::from(process_index) >= self.next_worker_index.load(Ordering::SeqCst)
        {
            return;
        }
        if partitions
            .iter()
            .any(|&p| ComputeNodeId(p).process() != process_index)
        {
            return;
        }
        // Drop the dead connection so nothing writes into the old socket;
        // the replacement is registered below under the same index.
        self.conns.remove(process_index);
        let existing: Vec<(u32, String)> = {
            let peers = self.peers.read();
            peers
                .iter()
                .filter(|&(&index, _)| index != process_index)
                .map(|(&index, addr)| (index, addr.to_string()))
                .collect()
        };
        // Siblings replace their stale route with the new listener (their
        // lazily-dialed connection to the old incarnation died with it).
        let joined: NetMsg<Req, Resp> = NetMsg::PeerJoined {
            index: process_index,
            addr: peer_listen.to_string(),
        };
        let joined_bytes = joined.to_bytes();
        for conn in self.conns.values() {
            let _ = self.write_recorded(&conn, &joined_bytes);
        }
        // Same discipline as `admit_worker`: the Welcome must be this
        // socket's first outbound frame, so the gate fires only after it.
        self.peers.write().insert(process_index, peer_listen);
        let Ok(conn) = self.register_conn(process_index, stream) else {
            return;
        };
        let welcome: NetMsg<Req, Resp> = NetMsg::Welcome {
            assigned_index: process_index,
            peers: existing,
            config: self.config.clone(),
        };
        let _ = self.write_recorded(&conn, &welcome.to_bytes());
        self.notify_membership();
    }

    /// Adopt an established socket as the connection to `peer`: start its
    /// reader thread and make it available for sends.
    fn register_conn(
        self: &Arc<Self>,
        peer: u32,
        stream: TcpStream,
    ) -> io::Result<Arc<Conn<Resp>>> {
        stream.set_nodelay(true).ok();
        let reader_stream = stream.try_clone()?;
        let conn = Arc::new(Conn {
            peer,
            writer: Mutex::new(stream),
            pending: Mutex::new(HashMap::new()),
        });
        self.conns.insert(peer, Arc::clone(&conn));
        let weak = Arc::downgrade(self);
        let reader_conn = Arc::clone(&conn);
        std::thread::Builder::new()
            .name(format!("net-reader-{}-from-{peer}", self.process_index))
            .spawn(move || Self::read_loop(&weak, &reader_conn, reader_stream))?;
        Ok(conn)
    }

    fn read_loop(weak: &Weak<Self>, conn: &Arc<Conn<Resp>>, mut stream: TcpStream) {
        while let Ok(Some(payload)) = read_frame(&mut stream) {
            let Some(fabric) = weak.upgrade() else { break };
            fabric
                .metrics
                .record_message(frame_overhead(payload.len()), 0);
            if !fabric.dispatch(conn, &payload) {
                break;
            }
        }
        // Evict this connection so the next send re-dials (a restarted
        // peer listens on a new port) — but only if the map still holds
        // *this* connection, not a replacement registered by a rejoin.
        if let Some(fabric) = weak.upgrade() {
            fabric.conns.evict_if(conn.peer, |c| Arc::ptr_eq(c, conn));
        }
        conn.fail_all(&ClusterError::Net(format!(
            "connection to process {} closed",
            conn.peer
        )));
    }

    /// Handle one inbound frame. Returns `false` when the reader should
    /// stop (corrupt stream or shutdown).
    fn dispatch(self: &Arc<Self>, conn: &Arc<Conn<Resp>>, payload: &[u8]) -> bool {
        let msg: NetMsg<Req, Resp> = match decode_exact(payload) {
            Ok(msg) => msg,
            // A corrupt frame desynchronises the stream; tear it down.
            Err(_) => return false,
        };
        match msg {
            NetMsg::Request {
                call_id,
                target,
                body,
            } => {
                let fabric = Arc::clone(self);
                let conn = Arc::clone(conn);
                // Request handling blocks on a local node (which may call
                // further processes), so it must not occupy the reader.
                std::thread::spawn(move || {
                    let started = Instant::now();
                    let result = fabric
                        .local
                        .send(ComputeNodeId(target), body)
                        .and_then(ReplyHandle::wait);
                    let elapsed = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    fabric.metrics.record_latency(elapsed);
                    let reply: NetMsg<Req, Resp> = match result {
                        Ok(body) => NetMsg::Response { call_id, body },
                        Err(err) => {
                            let (code, node, message) = encode_error(&err);
                            NetMsg::Error {
                                call_id,
                                code,
                                node,
                                message,
                            }
                        }
                    };
                    let _ = fabric.write_recorded_response(&conn, &reply.to_bytes());
                });
            }
            NetMsg::Response { call_id, body } => {
                self.metrics
                    .record_response_bytes(frame_overhead(payload.len()));
                if let Some(Pending::Call(slot)) = conn.take_pending(call_id) {
                    slot.fill(Ok(body));
                }
            }
            NetMsg::SpawnFresh { call_id } => {
                let fabric = Arc::clone(self);
                let conn = Arc::clone(conn);
                std::thread::spawn(move || {
                    // A spawn can arrive moments after this process joined,
                    // before its application code installed the node
                    // factory; wait on the factory gate (condvar, no
                    // polling) rather than failing the coordinator's
                    // build-partition.
                    let _ = fabric.local.wait_for_node_factory(Duration::from_secs(2));
                    let spawned = fabric.local.spawn_member();
                    let reply: NetMsg<Req, Resp> = match spawned {
                        Ok(node) => NetMsg::Spawned {
                            call_id,
                            node: node.0,
                        },
                        Err(err) => {
                            let (code, node, message) = encode_error(&err);
                            NetMsg::Error {
                                call_id,
                                code,
                                node,
                                message,
                            }
                        }
                    };
                    let _ = fabric.write_recorded_response(&conn, &reply.to_bytes());
                });
            }
            NetMsg::Spawned { call_id, node } => {
                self.metrics
                    .record_response_bytes(frame_overhead(payload.len()));
                if let Some(Pending::Spawn(tx)) = conn.take_pending(call_id) {
                    let _ = tx.send(Ok(ComputeNodeId(node)));
                }
            }
            NetMsg::Error {
                call_id,
                code,
                node,
                message,
            } => {
                self.metrics
                    .record_response_bytes(frame_overhead(payload.len()));
                let err = decode_error(code, node, message);
                match conn.take_pending(call_id) {
                    Some(Pending::Call(slot)) => slot.fill(Err(err)),
                    Some(Pending::Spawn(tx)) => {
                        let _ = tx.send(Err(err));
                    }
                    None => {}
                }
            }
            NetMsg::PeerJoined { index, addr } => {
                if let Ok(parsed) = addr.parse() {
                    // A re-announced index means that peer restarted: any
                    // cached connection to its old incarnation is dead.
                    self.conns.remove(index);
                    self.peers.write().insert(index, parsed);
                    self.notify_membership();
                }
            }
            NetMsg::Shutdown => {
                // Only notify: the process's main loop performs the actual
                // teardown by calling `shutdown` itself.
                let _ = self.shutdown_tx.send(());
                return false;
            }
            // Handshake frames are never valid mid-stream.
            NetMsg::Hello { .. } | NetMsg::Welcome { .. } | NetMsg::Rejoin { .. } => return false,
        }
        true
    }

    /// Write one frame, accounting its actual on-the-wire size.
    fn write_recorded(&self, conn: &Conn<Resp>, payload: &[u8]) -> Result<(), ClusterError> {
        self.metrics
            .record_message(frame_overhead(payload.len()), 0);
        conn.write_payload(payload)
            .map_err(|e| ClusterError::Net(format!("write to process {}: {e}", conn.peer)))
    }

    /// [`write_recorded`](Self::write_recorded) for frames answering a
    /// request: also feeds the response-bytes counter.
    fn write_recorded_response(
        &self,
        conn: &Conn<Resp>,
        payload: &[u8],
    ) -> Result<(), ClusterError> {
        self.metrics
            .record_response_bytes(frame_overhead(payload.len()));
        self.write_recorded(conn, payload)
    }

    /// The connection to `peer`, dialing it lazily if needed.
    fn conn_to(self: &Arc<Self>, peer: u32) -> Result<Arc<Conn<Resp>>, ClusterError> {
        if let Some(conn) = self.conns.get(peer) {
            return Ok(conn);
        }
        let addr = *self
            .peers
            .read()
            .get(&peer)
            .ok_or_else(|| ClusterError::Net(format!("no route to process {peer}")))?;
        let mut stream =
            dial_with_timeout(addr, DIAL_TIMEOUT).map_err(|e| ClusterError::Net(e.to_string()))?;
        let hello: NetMsg<Req, Resp> = NetMsg::Hello {
            process_index: self.process_index,
            listen_port: self.listen_addr.port(),
        };
        self.metrics
            .record_message(frame_overhead(hello.to_bytes().len()), 0);
        write_frame(&mut stream, &hello.to_bytes())
            .map_err(|e| ClusterError::Net(e.to_string()))?;
        self.register_conn(peer, stream)
            .map_err(|e| ClusterError::Net(e.to_string()))
    }

    /// Worker process indices eligible for member placement: every known
    /// worker peer, plus this process itself when it is a worker.
    fn placement_candidates(&self) -> Vec<u32> {
        let mut workers: Vec<u32> = self
            .peers
            .read()
            .keys()
            .copied()
            .filter(|&index| index >= 1)
            .collect();
        if self.process_index >= 1 {
            workers.push(self.process_index);
        }
        workers.sort_unstable();
        workers
    }

    fn spawn_on(self: &Arc<Self>, peer: u32) -> Result<ComputeNodeId, ClusterError> {
        let conn = self.conn_to(peer)?;
        let call_id = self.next_call_id.fetch_add(1, Ordering::SeqCst);
        let (tx, rx) = mpsc::channel();
        conn.pending.lock().insert(call_id, Pending::Spawn(tx));
        let msg: NetMsg<Req, Resp> = NetMsg::SpawnFresh { call_id };
        if let Err(err) = self.write_recorded(&conn, &msg.to_bytes()) {
            conn.take_pending(call_id);
            return Err(err);
        }
        rx.recv().unwrap_or_else(|_| {
            Err(ClusterError::Net(format!(
                "process {peer} gone during spawn"
            )))
        })
    }
}

impl<Req, Resp> Transport<Req, Resp> for NetFabric<Req, Resp>
where
    Req: Encode + Decode + Wire + Send + 'static,
    Resp: Encode + Decode + Wire + Send + 'static,
{
    fn send(&self, target: ComputeNodeId, req: Req) -> Result<ReplyHandle<Resp>, ClusterError> {
        if self.shutting_down.load(Ordering::SeqCst) {
            return Err(ClusterError::Net("fabric is shutting down".into()));
        }
        if target.process() == self.process_index {
            return self.local.send(target, req);
        }
        let this = self
            .self_weak
            .upgrade()
            .ok_or_else(|| ClusterError::Net("fabric is shutting down".into()))?;
        let conn = this.conn_to(target.process())?;
        let call_id = self.next_call_id.fetch_add(1, Ordering::SeqCst);
        let (slot, handle) = ReplyHandle::pair(target);
        conn.pending.lock().insert(call_id, Pending::Call(slot));
        let msg: NetMsg<Req, Resp> = NetMsg::Request {
            call_id,
            target: target.0,
            body: req,
        };
        if let Err(err) = self.write_recorded(&conn, &msg.to_bytes()) {
            conn.take_pending(call_id);
            return Err(err);
        }
        Ok(handle)
    }

    /// The pipelined worker hop: the request rides the same persistent
    /// per-peer connection as [`send`](Transport::send), but the
    /// registered pending entry carries a callback slot, so the demux
    /// reader thread completes the caller directly when the correlated
    /// response frame arrives — no executor blocks in between. Failures
    /// (teardown in `fail_all`, a remote error frame, a failed write)
    /// all route through the same slot, preserving exactly-once
    /// completion.
    fn submit(&self, target: ComputeNodeId, req: Req, complete: CompleteFn<Resp>) {
        if self.shutting_down.load(Ordering::SeqCst) {
            complete(Err(ClusterError::Net("fabric is shutting down".into())));
            return;
        }
        if target.process() == self.process_index {
            self.local.submit(target, req, complete);
            return;
        }
        let Some(this) = self.self_weak.upgrade() else {
            complete(Err(ClusterError::Net("fabric is shutting down".into())));
            return;
        };
        let conn = match this.conn_to(target.process()) {
            Ok(conn) => conn,
            Err(err) => {
                complete(Err(err));
                return;
            }
        };
        let call_id = self.next_call_id.fetch_add(1, Ordering::SeqCst);
        let slot = ReplySlot::with_callback(target, complete);
        conn.pending.lock().insert(call_id, Pending::Call(slot));
        let msg: NetMsg<Req, Resp> = NetMsg::Request {
            call_id,
            target: target.0,
            body: req,
        };
        if let Err(err) = self.write_recorded(&conn, &msg.to_bytes()) {
            // The reader will never see a response for a request that
            // never left; surface the write failure ourselves.
            if let Some(Pending::Call(slot)) = conn.take_pending(call_id) {
                slot.fill(Err(err));
            }
        }
    }

    fn spawn_handler(&self, handler: BoxHandler<Req, Resp>) -> Result<ComputeNodeId, ClusterError> {
        self.local.spawn_handler(handler)
    }

    fn spawn_member(&self) -> Result<ComputeNodeId, ClusterError> {
        let candidates = self.placement_candidates();
        if candidates.is_empty() {
            // No workers: everything lives on the coordinator (degenerate
            // single-process deployment).
            return self.local.spawn_member();
        }
        let pick = candidates[self.spawn_rr.fetch_add(1, Ordering::SeqCst) % candidates.len()];
        if pick == self.process_index {
            self.local.spawn_member()
        } else {
            let this = self
                .self_weak
                .upgrade()
                .ok_or_else(|| ClusterError::Net("fabric is shutting down".into()))?;
            this.spawn_on(pick)
        }
    }

    fn set_node_factory(&self, factory: Box<NodeFactory<Req, Resp>>) {
        self.local.set_node_factory(factory);
    }

    fn node_count(&self) -> usize {
        self.local.node_count()
    }

    fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    fn reset_metrics(&self) {
        self.metrics.reset();
    }

    fn record_request_latency(&self, nanos: u64) {
        self.metrics.record_latency(nanos);
    }

    fn shutdown(&self) {
        if self.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // The coordinator owns deployment lifetime: tell every peer.
        if self.process_index == 0 {
            let msg: NetMsg<Req, Resp> = NetMsg::Shutdown;
            let bytes = msg.to_bytes();
            for conn in self.conns.values() {
                let _ = conn.write_payload(&bytes);
            }
        }
        // Dropping connections first closes writer sockets: readers see
        // EOF and fail any in-flight calls, which unblocks local nodes
        // waiting on remote responses so they can be joined below.
        drop(self.conns.clear());
        self.local.shutdown();
        let _ = self.shutdown_tx.send(());
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.listen_addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semtree_cluster::{Cluster, Handler, NodeCtx};

    struct Echo;
    impl Handler for Echo {
        type Req = u64;
        type Resp = u64;
        fn handle(&mut self, _ctx: &NodeCtx<u64, u64>, req: u64) -> u64 {
            req * 2
        }
    }

    fn loopback() -> SocketAddr {
        SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), 0)
    }

    #[test]
    fn coordinator_and_worker_exchange_requests() {
        let coord =
            NetFabric::<u64, u64>::coordinator(loopback(), vec![9, 9], CostModel::zero()).unwrap();
        let (worker, config) =
            NetFabric::<u64, u64>::join(coord.listen_addr(), CostModel::zero(), DIAL_TIMEOUT)
                .unwrap();
        assert_eq!(config, vec![9, 9]);
        assert_eq!(worker.process_index(), 1);

        // A node hosted by the worker, called from the coordinator side.
        let node = worker.spawn_handler(Box::new(Echo)).unwrap();
        assert_eq!(node.process(), 1);
        let cluster: Cluster<Echo> =
            Cluster::from_parts(coord.local_fabric(), Arc::clone(&coord) as _);
        assert_eq!(cluster.call(node, 21), Ok(42));

        // Actual frame bytes were accounted on both sides, and the reply
        // leg also fed the response-bytes counter on each.
        assert!(coord.metrics().bytes > 0);
        assert!(worker.metrics().bytes > 0);
        assert!(coord.metrics().response_bytes > 0);
        assert!(worker.metrics().response_bytes > 0);
        assert!(coord.metrics().response_bytes < coord.metrics().bytes);

        cluster.shutdown();
        worker.wait_for_shutdown();
        worker.shutdown();
    }

    #[test]
    fn wait_for_workers_honors_its_timeout_without_polling_slack() {
        let coord =
            NetFabric::<u64, u64>::coordinator(loopback(), Vec::new(), CostModel::zero()).unwrap();
        let start = Instant::now();
        let err = coord
            .wait_for_workers(1, Duration::from_millis(150))
            .unwrap_err();
        let waited = start.elapsed();
        assert!(matches!(err, ClusterError::Timeout(_)), "{err:?}");
        assert!(
            waited >= Duration::from_millis(150),
            "returned early: {waited:?}"
        );
        assert!(
            waited < Duration::from_secs(2),
            "overshot wildly: {waited:?}"
        );
        coord.shutdown();
    }

    #[test]
    fn restarted_worker_rejoins_under_its_old_index() {
        let coord =
            NetFabric::<u64, u64>::coordinator(loopback(), vec![7], CostModel::zero()).unwrap();
        let (worker, _) =
            NetFabric::<u64, u64>::join(coord.listen_addr(), CostModel::zero(), DIAL_TIMEOUT)
                .unwrap();
        assert_eq!(worker.process_index(), 1);
        let node = worker.spawn_handler(Box::new(Echo)).unwrap();
        assert_eq!(coord.send(node, 2).and_then(ReplyHandle::wait), Ok(4));

        // Crash: sockets close without a goodbye frame.
        drop(worker);

        let revived = NetFabric::<u64, u64>::rejoin(
            coord.listen_addr(),
            CostModel::zero(),
            DIAL_TIMEOUT,
            1,
            &[1 << 16],
        )
        .unwrap();
        assert_eq!(revived.process_index(), 1);
        // The local fabric re-assigns the same id the crashed run had.
        let renode = revived.spawn_handler(Box::new(Echo)).unwrap();
        assert_eq!(renode, node);
        // The coordinator reaches the revived worker over the new socket.
        assert_eq!(coord.send(node, 21).and_then(ReplyHandle::wait), Ok(42));

        coord.shutdown();
        revived.wait_for_shutdown();
        revived.shutdown();
    }

    #[test]
    fn bogus_rejoin_claims_are_refused() {
        let coord =
            NetFabric::<u64, u64>::coordinator(loopback(), Vec::new(), CostModel::zero()).unwrap();
        let (worker, _) =
            NetFabric::<u64, u64>::join(coord.listen_addr(), CostModel::zero(), DIAL_TIMEOUT)
                .unwrap();
        let node = worker.spawn_handler(Box::new(Echo)).unwrap();
        // Index 0 is the coordinator, index 7 was never assigned, and the
        // third claim presents a partition owned by another process.
        for (index, partitions) in [(0u32, vec![]), (7, vec![]), (1, vec![5 << 16])] {
            let err = match NetFabric::<u64, u64>::rejoin(
                coord.listen_addr(),
                CostModel::zero(),
                Duration::from_secs(2),
                index,
                &partitions,
            ) {
                Ok(_) => panic!("claim index={index} partitions={partitions:?} was admitted"),
                Err(e) => e,
            };
            assert_eq!(
                err.kind(),
                io::ErrorKind::UnexpectedEof,
                "claim index={index} partitions={partitions:?} must be hung up on"
            );
        }
        // The refused impostors did not disturb the legitimate worker.
        assert_eq!(coord.send(node, 5).and_then(ReplyHandle::wait), Ok(10));
        coord.shutdown();
        worker.wait_for_shutdown();
        worker.shutdown();
    }

    #[test]
    fn remote_errors_come_back_typed() {
        let coord =
            NetFabric::<u64, u64>::coordinator(loopback(), Vec::new(), CostModel::zero()).unwrap();
        let (worker, _) =
            NetFabric::<u64, u64>::join(coord.listen_addr(), CostModel::zero(), DIAL_TIMEOUT)
                .unwrap();
        // No such node on the worker: the failure crosses the wire typed.
        let ghost = ComputeNodeId::from_parts(1, 7);
        let outcome = coord.send(ghost, 1).and_then(ReplyHandle::wait);
        assert_eq!(outcome, Err(ClusterError::UnknownNode(ghost)));
        coord.shutdown();
        worker.wait_for_shutdown();
        worker.shutdown();
    }

    #[test]
    fn member_spawns_round_robin_across_workers() {
        let coord =
            NetFabric::<u64, u64>::coordinator(loopback(), Vec::new(), CostModel::zero()).unwrap();
        let (w1, _) =
            NetFabric::<u64, u64>::join(coord.listen_addr(), CostModel::zero(), DIAL_TIMEOUT)
                .unwrap();
        let (w2, _) =
            NetFabric::<u64, u64>::join(coord.listen_addr(), CostModel::zero(), DIAL_TIMEOUT)
                .unwrap();
        coord.wait_for_workers(2, DIAL_TIMEOUT).unwrap();
        for fabric in [&coord, &w1, &w2] {
            fabric.set_node_factory(Box::new(|| Box::new(Echo)));
        }
        let spawned: Vec<ComputeNodeId> = (0..4).map(|_| coord.spawn_member().unwrap()).collect();
        let owners: Vec<u32> = spawned.iter().map(|id| id.process()).collect();
        assert_eq!(owners, vec![1, 2, 1, 2], "round-robin over workers only");
        // Every spawned member is reachable from the coordinator.
        for id in spawned {
            assert_eq!(coord.send(id, 3).and_then(ReplyHandle::wait), Ok(6));
        }
        coord.shutdown();
        for worker in [w1, w2] {
            worker.wait_for_shutdown();
            worker.shutdown();
        }
    }

    #[test]
    fn workers_dial_each_other_lazily() {
        let coord =
            NetFabric::<u64, u64>::coordinator(loopback(), Vec::new(), CostModel::zero()).unwrap();
        let (w1, _) =
            NetFabric::<u64, u64>::join(coord.listen_addr(), CostModel::zero(), DIAL_TIMEOUT)
                .unwrap();
        let (w2, _) =
            NetFabric::<u64, u64>::join(coord.listen_addr(), CostModel::zero(), DIAL_TIMEOUT)
                .unwrap();
        coord.wait_for_workers(2, DIAL_TIMEOUT).unwrap();
        let on_w2 = w2.spawn_handler(Box::new(Echo)).unwrap();
        // w1 has never talked to w2; the PeerJoined broadcast lets it
        // dial. Wait on the membership gate instead of sleep-polling.
        w1.wait_for_workers(2, DIAL_TIMEOUT).unwrap();
        assert_eq!(w1.send(on_w2, 8).and_then(ReplyHandle::wait), Ok(16));
        coord.shutdown();
        for worker in [w1, w2] {
            worker.wait_for_shutdown();
            worker.shutdown();
        }
    }
}
