//! The control-plane envelope exchanged between cluster processes.

use semtree_cluster::{ClusterError, ComputeNodeId};

use crate::codec::{Decode, DecodeError, Encode};

/// One frame's payload on an inter-process connection: membership
/// handshake, request/response traffic, remote spawns, and shutdown.
#[derive(Debug, Clone, PartialEq)]
pub enum NetMsg<Req, Resp> {
    /// First frame on every new connection, identifying the dialer.
    /// `process_index` is [`UNASSIGNED`](NetMsg::UNASSIGNED) when the
    /// dialer is a worker joining the coordinator (which then assigns
    /// an index via [`Welcome`](NetMsg::Welcome)); otherwise it is the
    /// dialer's established index (worker↔worker mesh connections).
    Hello {
        /// The dialer's process index, or `UNASSIGNED`.
        process_index: u32,
        /// Port the dialer's own listener accepts mesh connections on.
        listen_port: u16,
    },
    /// Coordinator's reply to a joining worker.
    Welcome {
        /// The index assigned to the joining process (≥ 1).
        assigned_index: u32,
        /// Already-joined peers as `(index, "ip:port")` listener addresses.
        peers: Vec<(u32, String)>,
        /// Opaque application payload — `semtree-dist` ships its encoded
        /// deployment config here so every process builds identical
        /// partition state.
        config: Vec<u8>,
    },
    /// Broadcast to established peers when a new worker joins.
    PeerJoined {
        /// The new worker's index.
        index: u32,
        /// Its listener address as `"ip:port"`.
        addr: String,
    },
    /// A compute-node request routed to the process hosting `target`.
    Request {
        /// Correlates the eventual `Response`/`Error`.
        call_id: u64,
        /// Raw [`ComputeNodeId`] of the destination node.
        target: u32,
        /// The protocol request.
        body: Req,
    },
    /// Successful answer to a `Request`.
    Response {
        /// Correlation id from the request.
        call_id: u64,
        /// The protocol response.
        body: Resp,
    },
    /// Ask the receiving process to create a member node via its
    /// installed node factory (build-partition across processes).
    SpawnFresh {
        /// Correlates the eventual `Spawned`/`Error`.
        call_id: u64,
    },
    /// Successful answer to `SpawnFresh`.
    Spawned {
        /// Correlation id from the spawn request.
        call_id: u64,
        /// Raw global id of the new node.
        node: u32,
    },
    /// Failure answer to a `Request` or `SpawnFresh`.
    Error {
        /// Correlation id from the failed request.
        call_id: u64,
        /// Encoded [`ClusterError`] variant (see `encode_error`).
        code: u8,
        /// Node id for node-scoped errors, else 0.
        node: u32,
        /// Human-readable detail.
        message: String,
    },
    /// Tear the deployment down; receivers stop their local nodes.
    Shutdown,
    /// First frame from a **restarted** worker re-dialling the
    /// coordinator: it already holds an assigned index and recovered
    /// partition state, and asks to resume serving its old routes (the
    /// coordinator answers `Welcome` echoing the old index back).
    Rejoin {
        /// The index this worker held before it crashed (≥ 1).
        process_index: u32,
        /// Port the worker's *new* listener accepts mesh connections on.
        listen_port: u16,
        /// Raw node ids of the partitions the worker recovered.
        partitions: Vec<u32>,
    },
}

impl<Req, Resp> NetMsg<Req, Resp> {
    /// `Hello.process_index` value for a not-yet-assigned worker.
    pub const UNASSIGNED: u32 = u32::MAX;
}

/// Flatten a [`ClusterError`] into `(code, node, message)` for the wire.
#[must_use]
pub fn encode_error(err: &ClusterError) -> (u8, u32, String) {
    match err {
        ClusterError::UnknownNode(id) => (0, id.0, String::new()),
        ClusterError::NodeDied(id) => (1, id.0, String::new()),
        ClusterError::Net(msg) => (2, 0, msg.clone()),
        ClusterError::SpawnFailed(msg) => (3, 0, msg.clone()),
        ClusterError::Remote(msg) => (4, 0, msg.clone()),
        ClusterError::Timeout(msg) => (5, 0, msg.clone()),
    }
}

/// Rebuild a [`ClusterError`] from its wire form. Unknown codes become
/// [`ClusterError::Remote`] so newer peers degrade instead of panicking.
#[must_use]
pub fn decode_error(code: u8, node: u32, message: String) -> ClusterError {
    match code {
        0 => ClusterError::UnknownNode(ComputeNodeId(node)),
        1 => ClusterError::NodeDied(ComputeNodeId(node)),
        2 => ClusterError::Net(message),
        3 => ClusterError::SpawnFailed(message),
        4 => ClusterError::Remote(message),
        5 => ClusterError::Timeout(message),
        other => ClusterError::Remote(format!("unknown error code {other}: {message}")),
    }
}

impl<Req: Encode, Resp: Encode> Encode for NetMsg<Req, Resp> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            NetMsg::Hello {
                process_index,
                listen_port,
            } => {
                out.push(0);
                process_index.encode(out);
                listen_port.encode(out);
            }
            NetMsg::Welcome {
                assigned_index,
                peers,
                config,
            } => {
                out.push(1);
                assigned_index.encode(out);
                peers.encode(out);
                (config.len() as u64).encode(out);
                out.extend_from_slice(config);
            }
            NetMsg::PeerJoined { index, addr } => {
                out.push(2);
                index.encode(out);
                addr.encode(out);
            }
            NetMsg::Request {
                call_id,
                target,
                body,
            } => {
                out.push(3);
                call_id.encode(out);
                target.encode(out);
                body.encode(out);
            }
            NetMsg::Response { call_id, body } => {
                out.push(4);
                call_id.encode(out);
                body.encode(out);
            }
            NetMsg::SpawnFresh { call_id } => {
                out.push(5);
                call_id.encode(out);
            }
            NetMsg::Spawned { call_id, node } => {
                out.push(6);
                call_id.encode(out);
                node.encode(out);
            }
            NetMsg::Error {
                call_id,
                code,
                node,
                message,
            } => {
                out.push(7);
                call_id.encode(out);
                code.encode(out);
                node.encode(out);
                message.encode(out);
            }
            NetMsg::Shutdown => out.push(8),
            NetMsg::Rejoin {
                process_index,
                listen_port,
                partitions,
            } => {
                out.push(9);
                process_index.encode(out);
                listen_port.encode(out);
                partitions.encode(out);
            }
        }
    }
}

impl<Req: Decode, Resp: Decode> Decode for NetMsg<Req, Resp> {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(buf)? {
            0 => Ok(NetMsg::Hello {
                process_index: u32::decode(buf)?,
                listen_port: u16::decode(buf)?,
            }),
            1 => Ok(NetMsg::Welcome {
                assigned_index: u32::decode(buf)?,
                peers: Vec::decode(buf)?,
                config: {
                    let len = usize::decode(buf)?;
                    crate::codec::take(buf, len)?.to_vec()
                },
            }),
            2 => Ok(NetMsg::PeerJoined {
                index: u32::decode(buf)?,
                addr: String::decode(buf)?,
            }),
            3 => Ok(NetMsg::Request {
                call_id: u64::decode(buf)?,
                target: u32::decode(buf)?,
                body: Req::decode(buf)?,
            }),
            4 => Ok(NetMsg::Response {
                call_id: u64::decode(buf)?,
                body: Resp::decode(buf)?,
            }),
            5 => Ok(NetMsg::SpawnFresh {
                call_id: u64::decode(buf)?,
            }),
            6 => Ok(NetMsg::Spawned {
                call_id: u64::decode(buf)?,
                node: u32::decode(buf)?,
            }),
            7 => Ok(NetMsg::Error {
                call_id: u64::decode(buf)?,
                code: u8::decode(buf)?,
                node: u32::decode(buf)?,
                message: String::decode(buf)?,
            }),
            8 => Ok(NetMsg::Shutdown),
            9 => Ok(NetMsg::Rejoin {
                process_index: u32::decode(buf)?,
                listen_port: u16::decode(buf)?,
                partitions: Vec::decode(buf)?,
            }),
            other => Err(DecodeError::new(format!("bad NetMsg tag {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::decode_exact;

    type Msg = NetMsg<u64, String>;

    fn round_trip(msg: Msg) {
        let bytes = msg.to_bytes();
        let back: Msg = decode_exact(&bytes).expect("round trip");
        assert_eq!(back, msg);
    }

    #[test]
    fn all_variants_round_trip() {
        round_trip(NetMsg::Hello {
            process_index: Msg::UNASSIGNED,
            listen_port: 4077,
        });
        round_trip(NetMsg::Welcome {
            assigned_index: 2,
            peers: vec![(1, "127.0.0.1:9000".into())],
            config: vec![1, 2, 3],
        });
        round_trip(NetMsg::PeerJoined {
            index: 3,
            addr: "127.0.0.1:9001".into(),
        });
        round_trip(NetMsg::Request {
            call_id: 99,
            target: (2 << 16) | 5,
            body: 1234,
        });
        round_trip(NetMsg::Response {
            call_id: 99,
            body: "candidates".into(),
        });
        round_trip(NetMsg::SpawnFresh { call_id: 7 });
        round_trip(NetMsg::Spawned {
            call_id: 7,
            node: 1 << 16,
        });
        round_trip(NetMsg::Error {
            call_id: 3,
            code: 0,
            node: 12,
            message: String::new(),
        });
        round_trip(NetMsg::Shutdown);
        round_trip(NetMsg::Rejoin {
            process_index: 2,
            listen_port: 4078,
            partitions: vec![2 << 16, (2 << 16) | 1],
        });
    }

    #[test]
    fn cluster_errors_survive_the_wire() {
        let errors = [
            ClusterError::UnknownNode(ComputeNodeId(9)),
            ClusterError::NodeDied(ComputeNodeId((3 << 16) | 1)),
            ClusterError::Net("connection reset".into()),
            ClusterError::SpawnFailed("process full".into()),
            ClusterError::Remote("handler failure".into()),
            ClusterError::Timeout("membership wait expired".into()),
        ];
        for err in errors {
            let (code, node, message) = encode_error(&err);
            assert_eq!(decode_error(code, node, message), err);
        }
    }

    #[test]
    fn unknown_error_code_degrades_to_remote() {
        match decode_error(200, 0, "future variant".into()) {
            ClusterError::Remote(msg) => assert!(msg.contains("future variant")),
            other => panic!("expected Remote, got {other:?}"),
        }
    }
}
