//! Hand-rolled binary wire codec (no external dependencies).
//!
//! Layout rules, chosen so encoded sizes are trivially computable:
//!
//! - fixed-width integers and floats are **little-endian**, at their
//!   natural width; `usize` travels as `u64`;
//! - `bool` is one byte (0 or 1);
//! - enum values start with a **one-byte variant tag**, then the
//!   variant's fields in declaration order;
//! - sequences (`Vec<T>`, `String`, `Box<[f64]>`) carry a `u64` element
//!   count followed by the elements;
//! - `Option<T>` is a one-byte tag (0 = `None`, 1 = `Some`) followed by
//!   the value when present;
//! - structs and tuples are their fields in order, with no framing.
//!
//! Every protocol type's `Wire::wire_size` must equal the length
//! produced here — `semtree-dist` has a test asserting exactly that, so
//! the simulated cluster's byte accounting and the real TCP fabric's
//! frames can never drift apart.

use std::fmt;

/// Decoding failed: truncated input, bad tag, or malformed payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

impl DecodeError {
    /// A decode error with the given message (for downstream [`Decode`]
    /// implementations).
    pub fn new(msg: impl Into<String>) -> Self {
        DecodeError(msg.into())
    }
}

/// Serialize a value into the wire format.
pub trait Encode {
    /// Append this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Length of the encoding in bytes (default: encode and measure;
    /// protocol types compute it arithmetically via `Wire::wire_size`).
    fn encoded_len(&self) -> usize {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf.len()
    }

    /// The complete encoding as a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf
    }
}

/// Deserialize a value from the wire format. `buf` is advanced past the
/// consumed bytes so fields decode in sequence.
pub trait Decode: Sized {
    /// Read one value from the front of `buf`.
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError>;
}

/// Decode a value that must consume the entire buffer.
pub fn decode_exact<T: Decode>(mut buf: &[u8]) -> Result<T, DecodeError> {
    let value = T::decode(&mut buf)?;
    if buf.is_empty() {
        Ok(value)
    } else {
        Err(DecodeError::new(format!(
            "{} trailing bytes after value",
            buf.len()
        )))
    }
}

pub(crate) fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8], DecodeError> {
    if buf.len() < n {
        return Err(DecodeError::new(format!(
            "need {n} bytes, have {}",
            buf.len()
        )));
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

macro_rules! fixed_width {
    ($($t:ty => $n:expr),*) => {$(
        impl Encode for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn encoded_len(&self) -> usize { $n }
        }
        impl Decode for $t {
            fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
                let bytes = take(buf, $n)?;
                Ok(<$t>::from_le_bytes(bytes.try_into().expect("exact slice")))
            }
        }
    )*};
}
fixed_width!(u8 => 1, u16 => 2, u32 => 4, u64 => 8, i64 => 8, f64 => 8);

impl Encode for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    fn encoded_len(&self) -> usize {
        8
    }
}

impl Decode for usize {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        let v = u64::decode(buf)?;
        usize::try_from(v).map_err(|_| DecodeError::new("u64 does not fit usize"))
    }
}

impl Encode for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl Decode for bool {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(buf)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(DecodeError::new(format!("bad bool byte {other}"))),
        }
    }
}

impl Encode for String {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn encoded_len(&self) -> usize {
        8 + self.len()
    }
}

impl Decode for String {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        let len = usize::decode(buf)?;
        let bytes = take(buf, len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::new("invalid UTF-8 string"))
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for item in self {
            item.encode(out);
        }
    }
    fn encoded_len(&self) -> usize {
        8 + self.iter().map(Encode::encoded_len).sum::<usize>()
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        let len = usize::decode(buf)?;
        // Sanity bound: a non-empty element is ≥1 byte, so `len` beyond
        // the remaining buffer is malformed, not just huge.
        if len > buf.len() && len > 0 {
            return Err(DecodeError::new(format!(
                "sequence length {len} exceeds remaining {} bytes",
                buf.len()
            )));
        }
        let mut items = Vec::with_capacity(len);
        for _ in 0..len {
            items.push(T::decode(buf)?);
        }
        Ok(items)
    }
}

impl Encode for Box<[f64]> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for v in self.iter() {
            v.encode(out);
        }
    }
    fn encoded_len(&self) -> usize {
        8 + 8 * self.len()
    }
}

impl Decode for Box<[f64]> {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        Ok(Vec::<f64>::decode(buf)?.into_boxed_slice())
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn encoded_len(&self) -> usize {
        1 + self.as_ref().map_or(0, Encode::encoded_len)
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(buf)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            other => Err(DecodeError::new(format!("bad option tag {other}"))),
        }
    }
}

macro_rules! tuple_codec {
    ($(($($t:ident / $idx:tt),+))*) => {$(
        impl<$($t: Encode),+> Encode for ($($t,)+) {
            fn encode(&self, out: &mut Vec<u8>) {
                $(self.$idx.encode(out);)+
            }
            fn encoded_len(&self) -> usize {
                0 $(+ self.$idx.encoded_len())+
            }
        }
        impl<$($t: Decode),+> Decode for ($($t,)+) {
            fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
                Ok(($($t::decode(buf)?,)+))
            }
        }
    )*};
}
tuple_codec! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Encode + Decode + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = value.to_bytes();
        assert_eq!(
            bytes.len(),
            value.encoded_len(),
            "encoded_len for {value:?}"
        );
        let back: T = decode_exact(&bytes).expect("round trip");
        assert_eq!(back, value);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(513u16);
        round_trip(70_000u32);
        round_trip(u64::MAX);
        round_trip(-42i64);
        round_trip(3.5f64);
        round_trip(true);
        round_trip(12345usize);
    }

    #[test]
    fn compounds_round_trip() {
        round_trip(String::from("hello wire"));
        round_trip(String::new());
        round_trip(vec![1.0f64, -2.5, f64::MAX]);
        round_trip(Vec::<u64>::new());
        round_trip(Some(7u64));
        round_trip(Option::<u64>::None);
        round_trip((3u32, String::from("x")));
        round_trip(vec![(vec![1.0f64, 2.0], 9u64), (vec![], 0)]);
        round_trip(vec![1.0f64, 2.0].into_boxed_slice());
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let bytes = vec![5u64, 6].to_bytes();
        for cut in 0..bytes.len() {
            assert!(decode_exact::<Vec<u64>>(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = 7u64.to_bytes();
        bytes.push(0);
        assert!(decode_exact::<u64>(&bytes).is_err());
    }

    #[test]
    fn hostile_length_prefix_is_rejected() {
        // A claimed 2^60-element vector must fail fast, not allocate.
        let mut bytes = Vec::new();
        (1u64 << 60).encode(&mut bytes);
        assert!(decode_exact::<Vec<u64>>(&bytes).is_err());
    }

    #[test]
    fn layout_is_stable() {
        // Little-endian, u64 length prefixes, 1-byte option tags: these
        // exact bytes are the cross-process contract.
        assert_eq!(258u16.to_bytes(), [2, 1]);
        assert_eq!(
            String::from("ab").to_bytes(),
            [2, 0, 0, 0, 0, 0, 0, 0, b'a', b'b']
        );
        assert_eq!(Some(1u8).to_bytes(), [1, 1]);
    }
}
