//! [`ConnRegistry`]: the lazy peer-mesh connection table, generic over
//! the concurrency shim so the model checker can explore its
//! connect/accept/evict races.
//!
//! The registry holds at most one live connection per peer index. Three
//! actors mutate it concurrently:
//!
//! - a **dialer** inserting the connection it just established,
//! - an **acceptor** inserting a connection the peer dialed to us,
//! - a dying **reader thread** evicting the connection it was draining.
//!
//! The race that matters: a reader noticing EOF on a *stale* connection
//! must not evict the *replacement* a rejoin just registered. Eviction
//! therefore goes through [`evict_if`](ConnRegistry::evict_if), which
//! re-checks identity under the lock — the model test
//! `mesh_connect_race` proves no interleaving can drop a fresh
//! connection.

use std::collections::HashMap;

use semtree_conc::shim::{Shim, StdShim};

/// One-connection-per-peer table (see module docs).
#[derive(Debug)]
pub struct ConnRegistry<C, S: Shim = StdShim>
where
    C: Clone + Send + 'static,
{
    conns: S::Mutex<HashMap<u32, C>>,
}

impl<C, S: Shim> Default for ConnRegistry<C, S>
where
    C: Clone + Send + 'static,
{
    fn default() -> Self {
        Self::new()
    }
}

impl<C, S: Shim> ConnRegistry<C, S>
where
    C: Clone + Send + 'static,
{
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        ConnRegistry {
            conns: S::mutex(HashMap::new()),
        }
    }

    /// The current connection to `peer`, if any.
    #[must_use]
    pub fn get(&self, peer: u32) -> Option<C> {
        S::lock(&self.conns).get(&peer).cloned()
    }

    /// Install `conn` as the connection to `peer`, replacing (and
    /// returning) any previous one.
    pub fn insert(&self, peer: u32, conn: C) -> Option<C> {
        S::lock(&self.conns).insert(peer, conn)
    }

    /// Drop the connection to `peer` unconditionally (rejoin paths that
    /// know the old incarnation is dead).
    pub fn remove(&self, peer: u32) -> Option<C> {
        S::lock(&self.conns).remove(&peer)
    }

    /// Evict the connection to `peer` **only if** `is_same` says the
    /// registered one is the caller's. The check runs under the lock,
    /// so a replacement registered concurrently can never be evicted by
    /// a reader that was draining its predecessor. Returns whether an
    /// eviction happened.
    pub fn evict_if<F>(&self, peer: u32, is_same: F) -> bool
    where
        F: FnOnce(&C) -> bool,
    {
        let mut conns = S::lock(&self.conns);
        if conns.get(&peer).is_some_and(is_same) {
            conns.remove(&peer);
            true
        } else {
            false
        }
    }

    /// Snapshot of every live connection (broadcast paths).
    #[must_use]
    pub fn values(&self) -> Vec<C> {
        S::lock(&self.conns).values().cloned().collect()
    }

    /// Drop every connection, returning them so the caller can close
    /// sockets outside the lock.
    pub fn clear(&self) -> Vec<C> {
        S::lock(&self.conns).drain().map(|(_, c)| c).collect()
    }

    /// Number of live connections.
    #[must_use]
    pub fn len(&self) -> usize {
        S::lock(&self.conns).len()
    }

    /// Whether the registry holds no connections.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn insert_get_remove() {
        let reg: ConnRegistry<Arc<u32>> = ConnRegistry::new();
        assert!(reg.is_empty());
        assert!(reg.insert(1, Arc::new(10)).is_none());
        assert_eq!(reg.get(1).as_deref(), Some(&10));
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.remove(1).as_deref(), Some(&10));
        assert!(reg.get(1).is_none());
    }

    #[test]
    fn evict_if_spares_a_replacement() {
        let reg: ConnRegistry<Arc<u32>> = ConnRegistry::new();
        let old = Arc::new(1);
        reg.insert(7, Arc::clone(&old));
        let fresh = Arc::new(2);
        reg.insert(7, Arc::clone(&fresh));
        // A reader still holding `old` must not evict `fresh`.
        assert!(!reg.evict_if(7, |c| Arc::ptr_eq(c, &old)));
        assert_eq!(reg.get(7).as_deref(), Some(&2));
        // The owner of `fresh` may evict it.
        assert!(reg.evict_if(7, |c| Arc::ptr_eq(c, &fresh)));
        assert!(reg.get(7).is_none());
    }

    #[test]
    fn clear_returns_everything() {
        let reg: ConnRegistry<Arc<u32>> = ConnRegistry::new();
        reg.insert(1, Arc::new(1));
        reg.insert(2, Arc::new(2));
        let mut drained: Vec<u32> = reg.clear().into_iter().map(|c| *c).collect();
        drained.sort_unstable();
        assert_eq!(drained, vec![1, 2]);
        assert!(reg.is_empty());
    }
}
