//! Wall-clock measurement helpers.

use std::time::{Duration, Instant};

/// Run `f` once and return `(result, elapsed)`.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Run `f` `runs` times and return the median elapsed time (robust against
/// scheduler noise in the distributed experiments).
///
/// # Panics
/// Panics if `runs == 0`.
pub fn median_duration(runs: usize, mut f: impl FnMut()) -> Duration {
    assert!(runs > 0, "at least one run is required");
    let mut times: Vec<Duration> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2]
}

/// Accumulating stopwatch for multi-phase measurements.
#[derive(Debug)]
pub struct Stopwatch {
    started: Option<Instant>,
    total: Duration,
}

impl Stopwatch {
    /// A stopped stopwatch at zero.
    #[must_use]
    pub fn new() -> Self {
        Stopwatch {
            started: None,
            total: Duration::ZERO,
        }
    }

    /// Start (or restart) the current lap.
    pub fn start(&mut self) {
        self.started = Some(Instant::now());
    }

    /// Stop the current lap, adding it to the total.
    pub fn stop(&mut self) {
        if let Some(s) = self.started.take() {
            self.total += s.elapsed();
        }
    }

    /// Accumulated time across completed laps.
    #[must_use]
    pub fn total(&self) -> Duration {
        self.total
    }

    /// Whether a lap is running.
    #[must_use]
    pub fn is_running(&self) -> bool {
        self.started.is_some()
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Stopwatch::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_it_returns_result_and_duration() {
        let (v, d) = time_it(|| {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(v, 42);
        assert!(d >= Duration::from_millis(5));
    }

    #[test]
    fn median_is_robust() {
        let mut calls = 0;
        let d = median_duration(3, || {
            calls += 1;
            std::thread::sleep(Duration::from_millis(2));
        });
        assert_eq!(calls, 3);
        assert!(d >= Duration::from_millis(2));
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_runs_panics() {
        median_duration(0, || {});
    }

    #[test]
    fn stopwatch_accumulates() {
        let mut sw = Stopwatch::new();
        assert!(!sw.is_running());
        sw.start();
        assert!(sw.is_running());
        std::thread::sleep(Duration::from_millis(3));
        sw.stop();
        let t1 = sw.total();
        assert!(t1 >= Duration::from_millis(3));
        sw.start();
        std::thread::sleep(Duration::from_millis(3));
        sw.stop();
        assert!(sw.total() > t1);
    }

    #[test]
    fn stop_without_start_is_noop() {
        let mut sw = Stopwatch::default();
        sw.stop();
        assert_eq!(sw.total(), Duration::ZERO);
    }
}
