//! Terminal line plots for experiment tables.
//!
//! The paper's results are *figures*; the `repro` binary renders each
//! series table as an ASCII chart so the curve shapes are visible without
//! external tooling.

use crate::series::ExperimentTable;

const GLYPHS: &[char] = &['*', 'o', '+', 'x', '#', '@', '%', '&'];

/// Render a table as a fixed-size ASCII plot (linear axes). Each series
/// gets one glyph; overlapping points show the later series' glyph.
#[must_use]
pub fn ascii_plot(table: &ExperimentTable, width: usize, height: usize) -> String {
    let width = width.max(16);
    let height = height.max(6);
    let xs = table.x_values();
    let mut ys: Vec<f64> = Vec::new();
    for s in &table.series {
        ys.extend(s.points.iter().map(|&(_, y)| y));
    }
    if xs.is_empty() || ys.is_empty() {
        return format!("{} — no data\n", table.title);
    }
    let (x_min, x_max) = (xs[0], *xs.last().expect("non-empty"));
    let y_min = ys.iter().copied().fold(f64::INFINITY, f64::min);
    let y_max = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let x_span = (x_max - x_min).max(f64::EPSILON);
    let y_span = (y_max - y_min).max(f64::EPSILON);

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in table.series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in &s.points {
            let col = (((x - x_min) / x_span) * (width - 1) as f64).round() as usize;
            let row = (((y - y_min) / y_span) * (height - 1) as f64).round() as usize;
            grid[height - 1 - row][col.min(width - 1)] = glyph;
        }
    }

    let mut out = String::new();
    out.push_str(&format!("{} ({})\n", table.title, table.y_label));
    out.push_str(&format!("{y_max:>12.4} ┤"));
    out.push_str(&grid[0].iter().collect::<String>());
    out.push('\n');
    for row in &grid[1..height - 1] {
        out.push_str("             │");
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str(&format!("{y_min:>12.4} ┤"));
    out.push_str(&grid[height - 1].iter().collect::<String>());
    out.push('\n');
    out.push_str("             └");
    out.push_str(&"─".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "              {:<10}{:>w$}\n",
        format_num(x_min),
        format_num(x_max),
        w = width.saturating_sub(10)
    ));
    for (si, s) in table.series.iter().enumerate() {
        out.push_str(&format!("  {} {}\n", GLYPHS[si % GLYPHS.len()], s.name));
    }
    out
}

fn format_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use crate::series::Series;

    use super::*;

    fn table() -> ExperimentTable {
        let mut t = ExperimentTable::new("Demo", "n", "s");
        let mut a = Series::new("up");
        let mut b = Series::new("down");
        for i in 0..10 {
            a.push(f64::from(i), f64::from(i));
            b.push(f64::from(i), f64::from(9 - i));
        }
        t.add_series(a);
        t.add_series(b);
        t
    }

    #[test]
    fn plot_contains_axes_glyphs_and_legend() {
        let p = ascii_plot(&table(), 40, 12);
        assert!(p.contains("Demo (s)"));
        assert!(p.contains('*'));
        assert!(p.contains('o'));
        assert!(p.contains("* up"));
        assert!(p.contains("o down"));
        assert!(p.contains('└'));
    }

    #[test]
    fn rising_series_puts_last_point_top_right() {
        let t = {
            let mut t = ExperimentTable::new("Rise", "n", "s");
            let mut a = Series::new("a");
            a.push(0.0, 0.0);
            a.push(1.0, 1.0);
            t.add_series(a);
            t
        };
        let p = ascii_plot(&t, 20, 8);
        let lines: Vec<&str> = p.lines().collect();
        // First grid row (top) must contain the glyph at the far right.
        assert!(lines[1].trim_end().ends_with('*'), "{p}");
    }

    #[test]
    fn empty_table_degrades_gracefully() {
        let t = ExperimentTable::new("Empty", "x", "y");
        let p = ascii_plot(&t, 30, 8);
        assert!(p.contains("no data"));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let mut t = ExperimentTable::new("Flat", "x", "y");
        let mut s = Series::new("flat");
        s.push(1.0, 5.0);
        s.push(2.0, 5.0);
        t.add_series(s);
        let p = ascii_plot(&t, 30, 8);
        assert!(p.contains('*'));
    }
}
