//! Evaluation harness: retrieval metrics, timing, and experiment tables.
//!
//! The paper evaluates SemTree on **efficiency** (running-time curves,
//! Figures 3–7) and **effectiveness** (average Precision/Recall over 100
//! k-NN queries, Figure 8, with `P = |T∩T*|/|T|` and `R = |T∩T*|/|T*|`).
//! This crate provides those computations plus the series/table plumbing
//! every `repro` binary prints with.

mod bootstrap;
mod metrics;
mod plot;
mod series;
mod timing;

pub use bootstrap::{bootstrap_mean_ci, ConfidenceInterval};
pub use metrics::{average_pr, f1_score, precision, recall, PrPoint};
pub use plot::ascii_plot;
pub use series::{ExperimentTable, Series};
pub use timing::{median_duration, time_it, Stopwatch};
