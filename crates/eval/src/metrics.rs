//! Precision, Recall and F1 over retrieved/relevant sets.

use std::collections::HashSet;
use std::hash::Hash;

/// `P = |T ∩ T*| / |T|` — the paper's Precision, where `T` is the set
/// returned by the k-NN query and `T*` the expected (ground-truth) set.
/// Defined as 1 when nothing was retrieved and nothing was expected,
/// 0 when something was retrieved against an empty truth.
#[must_use]
pub fn precision<T: Eq + Hash>(retrieved: &[T], relevant: &[T]) -> f64 {
    if retrieved.is_empty() {
        return if relevant.is_empty() { 1.0 } else { 0.0 };
    }
    let rel: HashSet<&T> = relevant.iter().collect();
    let hit = retrieved.iter().filter(|t| rel.contains(t)).count();
    hit as f64 / retrieved.len() as f64
}

/// `R = |T ∩ T*| / |T*|` — the paper's Recall. Defined as 1 when the
/// ground-truth set is empty.
#[must_use]
pub fn recall<T: Eq + Hash>(retrieved: &[T], relevant: &[T]) -> f64 {
    if relevant.is_empty() {
        return 1.0;
    }
    let ret: HashSet<&T> = retrieved.iter().collect();
    let hit = relevant.iter().filter(|t| ret.contains(t)).count();
    hit as f64 / relevant.len() as f64
}

/// Harmonic mean of precision and recall (0 when both are 0).
#[must_use]
pub fn f1_score(p: f64, r: f64) -> f64 {
    if p + r <= 0.0 {
        0.0
    } else {
        2.0 * p * r / (p + r)
    }
}

/// One averaged effectiveness point: the paper's Figure 8 plots these as a
/// function of `K`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrPoint {
    /// The `K` of the k-NN queries.
    pub k: usize,
    /// Precision averaged over the query set.
    pub precision: f64,
    /// Recall averaged over the query set.
    pub recall: f64,
}

impl PrPoint {
    /// F1 of the averaged P and R.
    #[must_use]
    pub fn f1(&self) -> f64 {
        f1_score(self.precision, self.recall)
    }
}

/// Average per-query `(retrieved, relevant)` pairs into one [`PrPoint`]
/// ("Figure 8 shows the *average* Precision and Recall values for the 100
/// query cases").
#[must_use]
pub fn average_pr<T: Eq + Hash>(k: usize, cases: &[(Vec<T>, Vec<T>)]) -> PrPoint {
    if cases.is_empty() {
        return PrPoint {
            k,
            precision: 0.0,
            recall: 0.0,
        };
    }
    let mut p_sum = 0.0;
    let mut r_sum = 0.0;
    for (retrieved, relevant) in cases {
        p_sum += precision(retrieved, relevant);
        r_sum += recall(retrieved, relevant);
    }
    let n = cases.len() as f64;
    PrPoint {
        k,
        precision: p_sum / n,
        recall: r_sum / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_basic() {
        assert_eq!(precision(&[1, 2, 3, 4], &[2, 4, 9]), 0.5);
        assert_eq!(precision(&[1, 2], &[1, 2]), 1.0);
        assert_eq!(precision(&[1, 2], &[9]), 0.0);
    }

    #[test]
    fn recall_basic() {
        assert_eq!(recall(&[1, 2, 3, 4], &[2, 4, 9, 10]), 0.5);
        assert_eq!(recall(&[1], &[1]), 1.0);
        assert_eq!(recall::<u32>(&[], &[1, 2]), 0.0);
    }

    #[test]
    fn empty_set_conventions() {
        assert_eq!(precision::<u32>(&[], &[]), 1.0);
        assert_eq!(precision::<u32>(&[], &[1]), 0.0);
        assert_eq!(recall::<u32>(&[], &[]), 1.0);
        assert_eq!(recall::<u32>(&[1], &[]), 1.0);
    }

    #[test]
    fn f1_values() {
        assert_eq!(f1_score(0.0, 0.0), 0.0);
        assert!((f1_score(1.0, 1.0) - 1.0).abs() < 1e-12);
        assert!((f1_score(0.5, 1.0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn k_grows_precision_falls_recall_rises() {
        // The Figure 8 shape in miniature: truth = {1,2}; retrieved grows
        // with K.
        let truth = vec![1, 2];
        let at = |k: usize| {
            let retrieved: Vec<u32> = (1..=k as u32).collect();
            (precision(&retrieved, &truth), recall(&retrieved, &truth))
        };
        let (p1, r1) = at(1);
        let (p4, r4) = at(4);
        assert!(p1 > p4, "precision falls: {p1} vs {p4}");
        assert!(r4 > r1, "recall rises: {r4} vs {r1}");
    }

    #[test]
    fn average_pr_over_cases() {
        let cases = vec![
            (vec![1, 2], vec![1]), // P=0.5, R=1
            (vec![3], vec![3, 4]), // P=1,   R=0.5
        ];
        let pt = average_pr(2, &cases);
        assert!((pt.precision - 0.75).abs() < 1e-12);
        assert!((pt.recall - 0.75).abs() < 1e-12);
        assert_eq!(pt.k, 2);
        assert!(pt.f1() > 0.7);
    }

    #[test]
    fn average_pr_empty() {
        let pt = average_pr::<u32>(3, &[]);
        assert_eq!(pt.precision, 0.0);
        assert_eq!(pt.recall, 0.0);
    }
}
