//! Percentile-bootstrap confidence intervals.
//!
//! The paper reports *average* Precision/Recall over 100 queries with no
//! variance estimate; the bootstrap quantifies how stable those averages
//! are (resample the 100 per-query values with replacement, recompute the
//! mean, take the percentile interval).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A two-sided confidence interval around a sample mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// The plain sample mean.
    pub mean: f64,
    /// Lower percentile bound.
    pub lo: f64,
    /// Upper percentile bound.
    pub hi: f64,
}

impl ConfidenceInterval {
    /// Half-width of the interval.
    #[must_use]
    pub fn half_width(&self) -> f64 {
        (self.hi - self.lo) / 2.0
    }
}

/// Percentile bootstrap CI for the mean of `samples`.
///
/// `confidence` is the two-sided level (e.g. 0.95); `iterations` resamples
/// are drawn deterministically from `seed`. Returns a degenerate interval
/// for fewer than two samples.
///
/// # Panics
/// Panics if `iterations == 0` or `confidence` is outside `(0, 1)`.
#[must_use]
pub fn bootstrap_mean_ci(
    samples: &[f64],
    iterations: usize,
    confidence: f64,
    seed: u64,
) -> ConfidenceInterval {
    assert!(iterations > 0, "at least one bootstrap iteration");
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0, 1)"
    );
    if samples.is_empty() {
        return ConfidenceInterval {
            mean: 0.0,
            lo: 0.0,
            hi: 0.0,
        };
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    if samples.len() < 2 {
        return ConfidenceInterval {
            mean,
            lo: mean,
            hi: mean,
        };
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut means = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        let sum: f64 = (0..samples.len())
            .map(|_| samples[rng.random_range(0..samples.len())])
            .sum();
        means.push(sum / samples.len() as f64);
    }
    means.sort_by(|a, b| a.partial_cmp(b).expect("finite means"));
    let alpha = (1.0 - confidence) / 2.0;
    let idx = |q: f64| -> usize {
        ((q * (means.len() - 1) as f64).round() as usize).min(means.len() - 1)
    };
    ConfidenceInterval {
        mean,
        lo: means[idx(alpha)],
        hi: means[idx(1.0 - alpha)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_brackets_the_mean() {
        let samples: Vec<f64> = (0..100).map(|i| f64::from(i % 10)).collect();
        let ci = bootstrap_mean_ci(&samples, 500, 0.95, 7);
        assert!(ci.lo <= ci.mean && ci.mean <= ci.hi);
        assert!((ci.mean - 4.5).abs() < 1e-12);
        assert!(ci.half_width() > 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let samples: Vec<f64> = (0..50).map(f64::from).collect();
        let a = bootstrap_mean_ci(&samples, 200, 0.9, 3);
        let b = bootstrap_mean_ci(&samples, 200, 0.9, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn tighter_with_more_samples() {
        let narrow: Vec<f64> = (0..400).map(|i| f64::from(i % 10)).collect();
        let wide: Vec<f64> = (0..20).map(|i| f64::from(i % 10)).collect();
        let ci_n = bootstrap_mean_ci(&narrow, 500, 0.95, 11);
        let ci_w = bootstrap_mean_ci(&wide, 500, 0.95, 11);
        assert!(ci_n.half_width() < ci_w.half_width());
    }

    #[test]
    fn constant_samples_collapse() {
        let ci = bootstrap_mean_ci(&[0.5; 30], 100, 0.95, 1);
        assert_eq!(ci.lo, 0.5);
        assert_eq!(ci.hi, 0.5);
    }

    #[test]
    fn degenerate_inputs() {
        let ci = bootstrap_mean_ci(&[], 10, 0.95, 0);
        assert_eq!(ci.mean, 0.0);
        let ci = bootstrap_mean_ci(&[3.0], 10, 0.95, 0);
        assert_eq!(
            ci,
            ConfidenceInterval {
                mean: 3.0,
                lo: 3.0,
                hi: 3.0
            }
        );
    }

    #[test]
    #[should_panic(expected = "confidence")]
    fn bad_confidence_panics() {
        let _ = bootstrap_mean_ci(&[1.0, 2.0], 10, 1.5, 0);
    }
}
