//! Experiment series and table rendering (markdown / CSV).

use std::fmt::Write as _;

/// One named data series: `(x, y)` points, e.g. "3 partitions" over
/// (number of points, seconds).
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// `(x, y)` points in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// An empty series.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The y value at a given x, if present.
    #[must_use]
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (px - x).abs() < 1e-9)
            .map(|&(_, y)| y)
    }
}

/// A figure-shaped experiment result: one x axis, several series — printed
/// as the rows the paper's plots are drawn from.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentTable {
    /// Table caption (e.g. `Fig. 3: Index Building Time`).
    pub title: String,
    /// X-axis label (e.g. `points`).
    pub x_label: String,
    /// Y-axis unit label (e.g. `seconds`).
    pub y_label: String,
    /// The series (legend entries).
    pub series: Vec<Series>,
}

impl ExperimentTable {
    /// An empty table.
    #[must_use]
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        ExperimentTable {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Add a series.
    pub fn add_series(&mut self, series: Series) {
        self.series.push(series);
    }

    /// The sorted union of x values across series.
    #[must_use]
    pub fn x_values(&self) -> Vec<f64> {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(x, _)| x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite x values"));
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        xs
    }

    /// Render as a GitHub-flavoured markdown table.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {} ({})", self.title, self.y_label);
        let _ = write!(out, "| {} |", self.x_label);
        for s in &self.series {
            let _ = write!(out, " {} |", s.name);
        }
        out.push('\n');
        let _ = write!(out, "|---|");
        for _ in &self.series {
            let _ = write!(out, "---|");
        }
        out.push('\n');
        for x in self.x_values() {
            let _ = write!(out, "| {} |", format_num(x));
            for s in &self.series {
                match s.y_at(x) {
                    Some(y) => {
                        let _ = write!(out, " {} |", format_num(y));
                    }
                    None => {
                        let _ = write!(out, " – |");
                    }
                }
            }
            out.push('\n');
        }
        out
    }

    /// Render as CSV (`x, series1, series2, …`).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}", self.x_label);
        for s in &self.series {
            let _ = write!(out, ",{}", s.name);
        }
        out.push('\n');
        for x in self.x_values() {
            let _ = write!(out, "{}", format_num(x));
            for s in &self.series {
                match s.y_at(x) {
                    Some(y) => {
                        let _ = write!(out, ",{}", format_num(y));
                    }
                    None => out.push(','),
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Compact numeric formatting: integers print bare, small values keep
/// six significant digits.
fn format_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v:.6}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> ExperimentTable {
        let mut t = ExperimentTable::new("Fig. X: Demo", "points", "seconds");
        let mut a = Series::new("balanced");
        a.push(1000.0, 0.5);
        a.push(2000.0, 1.0);
        let mut b = Series::new("chain");
        b.push(1000.0, 2.0);
        t.add_series(a);
        t.add_series(b);
        t
    }

    #[test]
    fn x_values_union_sorted() {
        assert_eq!(table().x_values(), vec![1000.0, 2000.0]);
    }

    #[test]
    fn markdown_renders_all_cells() {
        let md = table().to_markdown();
        assert!(md.contains("### Fig. X: Demo (seconds)"));
        assert!(md.contains("| points | balanced | chain |"));
        assert!(md.contains("| 1000 | 0.500000 | 2 |"));
        assert!(md.contains("| 2000 | 1 | – |"), "{md}");
    }

    #[test]
    fn csv_renders() {
        let csv = table().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "points,balanced,chain");
        assert_eq!(lines[1], "1000,0.500000,2");
        assert_eq!(lines[2], "2000,1,");
    }

    #[test]
    fn y_at_lookup() {
        let t = table();
        assert_eq!(t.series[0].y_at(1000.0), Some(0.5));
        assert_eq!(t.series[1].y_at(2000.0), None);
    }

    #[test]
    fn empty_table_renders_headers() {
        let t = ExperimentTable::new("T", "x", "y");
        assert!(t.to_markdown().contains("### T (y)"));
        assert_eq!(t.x_values(), Vec::<f64>::new());
    }
}
