//! Ground truth: the formal inconsistency rule, plus a noisy human-panel
//! model.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use semtree_model::{Term, Triple, TripleId};

use crate::generator::Corpus;

/// Applies the paper's §II definition exactly: two triples are inconsistent
/// iff (i) same subject, (ii) same object, (iii) antinomic predicates. This
/// replaces the (proprietary) CIRA annotator ground truth with the formal
/// rule those annotators were applying — see DESIGN.md §2.
pub struct GroundTruthOracle<'a> {
    corpus: &'a Corpus,
    /// `(subject, object)` → triple ids sharing that frame.
    by_frame: HashMap<(Term, Term), Vec<TripleId>>,
}

impl<'a> GroundTruthOracle<'a> {
    /// Index a corpus.
    #[must_use]
    pub fn new(corpus: &'a Corpus) -> Self {
        let mut by_frame: HashMap<(Term, Term), Vec<TripleId>> = HashMap::new();
        for (id, t) in corpus.store.iter() {
            by_frame
                .entry((t.subject.clone(), t.object.clone()))
                .or_default()
                .push(id);
        }
        GroundTruthOracle { corpus, by_frame }
    }

    /// Every triple inconsistent with `id`, in id order.
    #[must_use]
    pub fn inconsistent_with(&self, id: TripleId) -> Vec<TripleId> {
        let Some(triple) = self.corpus.store.get(id) else {
            return Vec::new();
        };
        self.inconsistent_with_triple(triple)
    }

    /// Every stored triple inconsistent with an arbitrary triple (which
    /// need not itself be stored).
    #[must_use]
    pub fn inconsistent_with_triple(&self, triple: &Triple) -> Vec<TripleId> {
        let key = (triple.subject.clone(), triple.object.clone());
        let antinomies = self.corpus.domain.antinomies();
        let pred = triple.predicate.lexical();
        self.by_frame
            .get(&key)
            .map(|candidates| {
                candidates
                    .iter()
                    .copied()
                    .filter(|&cid| {
                        let other = self.corpus.store.get(cid).expect("indexed id");
                        antinomies.are_antonyms(pred, other.predicate.lexical())
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// The *target (query) triple* of the evaluation: "subject and object of
    /// the selected triple and as predicate an antinomic term". `None` when
    /// the predicate has no antonym.
    #[must_use]
    pub fn target_triple(&self, id: TripleId) -> Option<Triple> {
        let triple = self.corpus.store.get(id)?;
        let antonym = self
            .corpus
            .domain
            .antinomies()
            .canonical_antonym(triple.predicate.lexical())?;
        Some(triple.with_predicate(Term::concept_in("Fun", antonym)))
    }

    /// All unordered inconsistent pairs `(a, b)` with `a < b`.
    #[must_use]
    pub fn all_pairs(&self) -> Vec<(TripleId, TripleId)> {
        let mut out = Vec::new();
        for ids in self.by_frame.values() {
            for (i, &a) in ids.iter().enumerate() {
                for &b in &ids[i + 1..] {
                    let ta = self.corpus.store.get(a).expect("indexed id");
                    let tb = self.corpus.store.get(b).expect("indexed id");
                    if self
                        .corpus
                        .domain
                        .antinomies()
                        .are_antonyms(ta.predicate.lexical(), tb.predicate.lexical())
                    {
                        out.push(if a < b { (a, b) } else { (b, a) });
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// A panel of imperfect annotators (the paper used "5 persons working at
/// CIRA Institute"). Each annotator starts from the formal ground truth,
/// *misses* each true inconsistency with `miss_rate` and *adds* a spurious
/// same-subject triple with `false_positive_rate`; the panel answer is the
/// majority vote.
#[derive(Debug, Clone)]
pub struct AnnotatorPanel {
    /// Panel size (the paper's 5).
    pub annotators: usize,
    /// Probability an annotator overlooks a true inconsistency.
    pub miss_rate: f64,
    /// Probability an annotator flags one extra spurious triple.
    pub false_positive_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AnnotatorPanel {
    fn default() -> Self {
        AnnotatorPanel {
            annotators: 5,
            miss_rate: 0.1,
            false_positive_rate: 0.05,
            seed: 0xA77,
        }
    }
}

impl AnnotatorPanel {
    /// A perfectly accurate panel (equals the oracle).
    #[must_use]
    pub fn perfect() -> Self {
        AnnotatorPanel {
            annotators: 5,
            miss_rate: 0.0,
            false_positive_rate: 0.0,
            seed: 0,
        }
    }

    /// Majority-vote annotation for the triple `id`.
    #[must_use]
    pub fn annotate(&self, oracle: &GroundTruthOracle<'_>, id: TripleId) -> Vec<TripleId> {
        let truth = oracle.inconsistent_with(id);
        let store_len = oracle.corpus.store.len();
        let mut votes: HashMap<TripleId, usize> = HashMap::new();
        let mut rng = StdRng::seed_from_u64(self.seed ^ u64::from(id.0));
        for _ in 0..self.annotators {
            for &t in &truth {
                if !rng.random_bool(self.miss_rate) {
                    *votes.entry(t).or_default() += 1;
                }
            }
            if store_len > 0 && rng.random_bool(self.false_positive_rate) {
                let spurious = TripleId(rng.random_range(0..store_len) as u32);
                if spurious != id {
                    *votes.entry(spurious).or_default() += 1;
                }
            }
        }
        let majority = self.annotators / 2 + 1;
        let mut out: Vec<TripleId> = votes
            .into_iter()
            .filter(|&(_, v)| v >= majority)
            .map(|(t, _)| t)
            .collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::generator::{CorpusGenerator, GenConfig};

    use super::*;

    fn corpus() -> Corpus {
        CorpusGenerator::new(GenConfig::small()).generate()
    }

    #[test]
    fn oracle_finds_every_seeded_inconsistency() {
        let c = corpus();
        let oracle = GroundTruthOracle::new(&c);
        assert!(!c.seeded_inconsistencies.is_empty());
        for &(a, b) in &c.seeded_inconsistencies {
            assert!(oracle.inconsistent_with(a).contains(&b), "{a} vs {b}");
            assert!(oracle.inconsistent_with(b).contains(&a), "symmetry");
        }
    }

    #[test]
    fn oracle_relation_is_symmetric_and_irreflexive() {
        let c = corpus();
        let oracle = GroundTruthOracle::new(&c);
        for (id, _) in c.store.iter().take(200) {
            let inc = oracle.inconsistent_with(id);
            assert!(!inc.contains(&id), "irreflexive");
            for other in inc {
                assert!(
                    oracle.inconsistent_with(other).contains(&id),
                    "symmetric ({id}, {other})"
                );
            }
        }
    }

    #[test]
    fn all_pairs_cover_seeded_and_are_deduplicated() {
        let c = corpus();
        let oracle = GroundTruthOracle::new(&c);
        let pairs = oracle.all_pairs();
        let mut sorted = pairs.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), pairs.len());
        for &(a, b) in &c.seeded_inconsistencies {
            let key = if a < b { (a, b) } else { (b, a) };
            assert!(pairs.contains(&key));
        }
    }

    #[test]
    fn target_triple_swaps_predicate_only() {
        let c = corpus();
        let oracle = GroundTruthOracle::new(&c);
        let (anchor, _) = c.seeded_inconsistencies[0];
        let original = c.store.get(anchor).unwrap();
        let target = oracle.target_triple(anchor).expect("anchor has an antonym");
        assert_eq!(target.subject, original.subject);
        assert_eq!(target.object, original.object);
        assert!(c
            .domain
            .antinomies()
            .are_antonyms(target.predicate.lexical(), original.predicate.lexical()));
    }

    #[test]
    fn querying_with_target_triple_finds_the_contradictions() {
        // The heart of the case study: the target triple's inconsistency
        // set (computed on the *selected* triple) matches what the formal
        // rule returns for the antinomic query.
        let c = corpus();
        let oracle = GroundTruthOracle::new(&c);
        let (anchor, conflict) = c.seeded_inconsistencies[0];
        let target = oracle.target_triple(anchor).unwrap();
        // Triples matching the target's frame under antinomy of the target
        // predicate include the anchor itself; the conflicting triple is in
        // the anchor's set.
        assert!(oracle.inconsistent_with(anchor).contains(&conflict));
        let of_target = oracle.inconsistent_with_triple(&target);
        assert!(of_target.contains(&anchor));
    }

    #[test]
    fn unknown_triple_yields_empty() {
        let c = corpus();
        let oracle = GroundTruthOracle::new(&c);
        assert!(oracle.inconsistent_with(TripleId(u32::MAX)).is_empty());
    }

    #[test]
    fn perfect_panel_equals_oracle() {
        let c = corpus();
        let oracle = GroundTruthOracle::new(&c);
        let panel = AnnotatorPanel::perfect();
        for &(a, _) in c.seeded_inconsistencies.iter().take(10) {
            assert_eq!(panel.annotate(&oracle, a), oracle.inconsistent_with(a));
        }
    }

    #[test]
    fn noisy_panel_is_deterministic_and_mostly_right() {
        let c = corpus();
        let oracle = GroundTruthOracle::new(&c);
        let panel = AnnotatorPanel::default();
        let (a, _) = c.seeded_inconsistencies[0];
        let v1 = panel.annotate(&oracle, a);
        let v2 = panel.annotate(&oracle, a);
        assert_eq!(v1, v2, "deterministic per seed");
        // With miss_rate 0.1 and majority vote, true findings survive.
        let truth = oracle.inconsistent_with(a);
        let kept = truth.iter().filter(|t| v1.contains(t)).count();
        assert!(kept * 2 >= truth.len(), "majority keeps most truth");
    }

    #[test]
    fn all_miss_panel_returns_nothing() {
        let c = corpus();
        let oracle = GroundTruthOracle::new(&c);
        let panel = AnnotatorPanel {
            annotators: 5,
            miss_rate: 1.0,
            false_positive_rate: 0.0,
            seed: 1,
        };
        let (a, _) = c.seeded_inconsistencies[0];
        assert!(panel.annotate(&oracle, a).is_empty());
    }
}
