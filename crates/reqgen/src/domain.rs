//! The on-board-software domain vocabulary.

use std::sync::Arc;

use semtree_vocab::{AntinomyTable, Taxonomy};

/// Requirement function classes and their verbs. Each entry is
/// `(category, verb, class_noun, predicate, object_prefix)`; the predicate
/// is `verb_classabbrev` exactly as `semtree-nlp` derives it from prose.
const FUNCTIONS: &[(&str, &str, &str, &str, &str)] = &[
    (
        "command_handling",
        "accept",
        "command",
        "accept_cmd",
        "CmdType",
    ),
    (
        "command_handling",
        "reject",
        "command",
        "reject_cmd",
        "CmdType",
    ),
    (
        "command_handling",
        "block",
        "command",
        "block_cmd",
        "CmdType",
    ),
    (
        "command_handling",
        "allow",
        "command",
        "allow_cmd",
        "CmdType",
    ),
    ("messaging", "send", "message", "send_msg", "MsgType"),
    ("messaging", "receive", "message", "receive_msg", "MsgType"),
    ("messaging", "discard", "message", "discard_msg", "MsgType"),
    ("acquisition", "acquire", "input", "acquire_in", "InType"),
    ("acquisition", "release", "input", "release_in", "InType"),
    ("actuation", "enable", "output", "enable_out", "OutType"),
    ("actuation", "disable", "output", "disable_out", "OutType"),
    ("mode_control", "start", "mode", "start_mode", "ModeType"),
    ("mode_control", "stop", "mode", "stop_mode", "ModeType"),
    (
        "monitoring",
        "monitor",
        "parameter",
        "monitor_par",
        "ParType",
    ),
    ("monitoring", "verify", "parameter", "verify_par", "ParType"),
    ("monitoring", "check", "parameter", "check_par", "ParType"),
];

/// Antinomic predicate pairs — the "ad-hoc requirements vocabulary" used to
/// build target triples and define inconsistency.
const ANTINOMIES: &[(&str, &str)] = &[
    ("accept_cmd", "block_cmd"),
    ("accept_cmd", "reject_cmd"),
    ("allow_cmd", "block_cmd"),
    ("allow_cmd", "reject_cmd"),
    ("send_msg", "discard_msg"),
    ("acquire_in", "release_in"),
    ("enable_out", "disable_out"),
    ("start_mode", "stop_mode"),
];

/// Per-class parameter values (the objects of the triples). Multi-word
/// parameters mirror the paper's `pre-launch phase` / `power amplifier`.
const PARAMETERS: &[(&str, &[&str])] = &[
    (
        "CmdType",
        &[
            "start-up",
            "shut-down",
            "reset",
            "reboot",
            "standby",
            "self-test",
            "safe-mode entry",
            "payload activation",
            "antenna deployment",
            "orbit correction",
        ],
    ),
    (
        "MsgType",
        &[
            "power amplifier",
            "heartbeat",
            "telemetry frame",
            "housekeeping report",
            "error log",
            "time sync",
            "navigation fix",
            "thermal status",
        ],
    ),
    (
        "InType",
        &[
            "pre-launch phase",
            "sensor data",
            "gyroscope reading",
            "star tracker frame",
            "sun sensor level",
            "ground uplink",
            "battery telemetry",
        ],
    ),
    (
        "OutType",
        &[
            "heater",
            "reaction wheel",
            "thruster valve",
            "beacon transmitter",
            "payload camera",
            "solar array drive",
        ],
    ),
    (
        "ModeType",
        &[
            "nominal operation",
            "safe hold",
            "orbit insertion",
            "eclipse survival",
            "detumbling",
            "science collection",
        ],
    ),
    (
        "ParType",
        &[
            "battery voltage",
            "bus current",
            "tank pressure",
            "board temperature",
            "link margin",
            "memory usage",
        ],
    ),
];

/// The complete domain vocabulary: actor names, the `Fun` taxonomy with its
/// antinomies, and one parameter taxonomy per object class.
#[derive(Debug, Clone)]
pub struct DomainVocabulary {
    actors: Vec<String>,
    fun: Arc<Taxonomy>,
    parameters: Vec<(String, Arc<Taxonomy>)>,
    antinomies: AntinomyTable,
}

impl DomainVocabulary {
    /// Build the vocabulary with `actor_count` actor identifiers
    /// (`OBSW001`, `OBSW002`, …, with PSU/TCU families mixed in).
    ///
    /// # Panics
    /// Panics if `actor_count == 0`.
    #[must_use]
    pub fn new(actor_count: usize) -> Self {
        assert!(actor_count > 0, "at least one actor is required");
        let families = ["OBSW", "PSU", "TCU", "AOCS", "COMM"];
        let actors = (0..actor_count)
            .map(|i| {
                format!(
                    "{}{:03}",
                    families[i % families.len()],
                    i / families.len() + 1
                )
            })
            .collect();

        let mut fun_builder = Taxonomy::builder("Fun");
        let mut categories: Vec<&str> = Vec::new();
        for (cat, ..) in FUNCTIONS {
            if !categories.contains(cat) {
                categories.push(cat);
                fun_builder.add(*cat, &[]);
            }
        }
        for (cat, _, _, predicate, _) in FUNCTIONS {
            fun_builder.add(*predicate, &[cat]);
        }
        let fun = Arc::new(
            fun_builder
                .build()
                .expect("static Fun taxonomy is well-formed"),
        );

        let parameters = PARAMETERS
            .iter()
            .map(|(prefix, values)| {
                let mut b = Taxonomy::builder(*prefix);
                for v in *values {
                    b.add(*v, &[]);
                }
                (
                    (*prefix).to_string(),
                    Arc::new(b.build().expect("static parameter taxonomy is well-formed")),
                )
            })
            .collect();

        let mut antinomies = AntinomyTable::new();
        for (a, b) in ANTINOMIES {
            antinomies.declare(*a, *b);
        }

        DomainVocabulary {
            actors,
            fun,
            parameters,
            antinomies,
        }
    }

    /// Actor identifiers.
    #[must_use]
    pub fn actors(&self) -> &[String] {
        &self.actors
    }

    /// The `Fun` predicate taxonomy.
    #[must_use]
    pub fn fun_taxonomy(&self) -> &Arc<Taxonomy> {
        &self.fun
    }

    /// `(prefix, taxonomy)` for each parameter class.
    #[must_use]
    pub fn parameter_taxonomies(&self) -> &[(String, Arc<Taxonomy>)] {
        &self.parameters
    }

    /// The antinomy table over `Fun` predicates.
    #[must_use]
    pub fn antinomies(&self) -> &AntinomyTable {
        &self.antinomies
    }

    /// The function lexicon rows:
    /// `(category, verb, class_noun, predicate, object_prefix)`.
    #[must_use]
    pub fn functions(
        &self,
    ) -> &'static [(
        &'static str,
        &'static str,
        &'static str,
        &'static str,
        &'static str,
    )] {
        FUNCTIONS
    }

    /// Parameter values for an object-class prefix.
    #[must_use]
    pub fn parameters_of(&self, prefix: &str) -> &'static [&'static str] {
        PARAMETERS
            .iter()
            .find(|(p, _)| *p == prefix)
            .map(|(_, v)| *v)
            .unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use semtree_vocab::similarity::{Similarity, SimilarityMeasure};

    use super::*;

    #[test]
    fn actor_names_are_unique_and_shaped() {
        let v = DomainVocabulary::new(25);
        assert_eq!(v.actors().len(), 25);
        let mut dedup = v.actors().to_vec();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 25);
        assert!(v.actors().iter().any(|a| a.starts_with("OBSW")));
        assert!(v.actors().iter().any(|a| a.starts_with("PSU")));
    }

    #[test]
    fn fun_taxonomy_contains_every_predicate() {
        let v = DomainVocabulary::new(1);
        for (_, _, _, predicate, _) in v.functions() {
            assert!(
                v.fun_taxonomy().id_of(predicate).is_some(),
                "{predicate} missing from Fun taxonomy"
            );
        }
    }

    #[test]
    fn antinomic_predicates_are_close_in_the_taxonomy() {
        // The property Fig 8 relies on: the antonym predicate is
        // semantically *near* the original (same category), so the target
        // triple's k-NN ring contains the real inconsistencies.
        let v = DomainVocabulary::new(1);
        let wp = SimilarityMeasure::WuPalmer;
        for (a, b) in v.antinomies().iter_pairs() {
            // Antinomic predicates are siblings (same category): WP gives
            // 2·2/(3+3) = 2/3 in this two-level taxonomy, versus 1/3 for
            // cross-category pairs.
            let sim = wp.similarity(v.fun_taxonomy(), a, b).unwrap();
            assert!(sim > 0.6, "({a},{b}) similarity {sim}");
            let cross = wp
                .similarity(v.fun_taxonomy(), "accept_cmd", "send_msg")
                .unwrap();
            assert!(sim > cross, "sibling pair must beat cross-category");
        }
    }

    #[test]
    fn every_antinomy_member_is_a_known_predicate() {
        let v = DomainVocabulary::new(1);
        for (a, b) in v.antinomies().iter_pairs() {
            assert!(v.fun_taxonomy().id_of(a).is_some(), "{a}");
            assert!(v.fun_taxonomy().id_of(b).is_some(), "{b}");
        }
    }

    #[test]
    fn parameter_taxonomies_cover_all_prefixes() {
        let v = DomainVocabulary::new(1);
        let prefixes: Vec<&str> = v
            .parameter_taxonomies()
            .iter()
            .map(|(p, _)| p.as_str())
            .collect();
        for (_, _, _, _, prefix) in v.functions() {
            assert!(prefixes.contains(prefix), "{prefix} missing");
        }
        assert!(!v.parameters_of("CmdType").is_empty());
        assert!(v.parameters_of("Nope").is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one actor")]
    fn zero_actors_panics() {
        let _ = DomainVocabulary::new(0);
    }
}
