//! Synthetic requirements corpus — the stand-in for the paper's dataset.
//!
//! The paper evaluates on "several hundreds of documents [about on-board
//! software systems] from which about 100,000 triples were extracted",
//! property of CIRA, with ground truth produced by five CIRA software
//! engineers. Neither the documents nor the annotations are public, so this
//! crate generates the closest synthetic equivalent (see DESIGN.md §2):
//!
//! - [`DomainVocabulary`]: the "ad-hoc requirements vocabulary" — a `Fun`
//!   taxonomy of unary requirement functions with an antinomy table
//!   (`accept_cmd` ↔ `block_cmd`, …) plus per-class parameter taxonomies
//!   (`CmdType`, `MsgType`, `InType`, …), all shaped after the paper's own
//!   examples;
//! - [`CorpusGenerator`]: seeds documents of multi-sentence requirements
//!   (in both prose and triple form — the prose parses back through
//!   `semtree-nlp`), and *injects inconsistencies* at a configurable rate:
//!   a later requirement re-asserts an earlier one's subject and object
//!   under an antinomic predicate;
//! - [`GroundTruthOracle`]: applies the paper's formal inconsistency rule
//!   (same subject ∧ same object ∧ antinomic predicates) to produce exact
//!   ground truth, and [`AnnotatorPanel`] adds the human-annotator noise
//!   model (per-annotator miss/false-positive rates, majority vote of 5).
//!
//! # Example
//!
//! ```
//! use semtree_reqgen::{CorpusGenerator, GenConfig, GroundTruthOracle};
//!
//! let corpus = CorpusGenerator::new(GenConfig::small().with_seed(7)).generate();
//! assert!(corpus.store.len() > 100);
//! let oracle = GroundTruthOracle::new(&corpus);
//! // Every seeded inconsistency is found by the formal rule.
//! for (a, b) in &corpus.seeded_inconsistencies {
//!     assert!(oracle.inconsistent_with(*a).contains(b));
//! }
//! ```

mod domain;
mod generator;
mod oracle;

pub use domain::DomainVocabulary;
pub use generator::{Corpus, CorpusGenerator, GenConfig, Requirement};
pub use oracle::{AnnotatorPanel, GroundTruthOracle};
