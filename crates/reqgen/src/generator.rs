//! Corpus generation with seeded inconsistencies.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use semtree_model::{DocumentId, Term, Triple, TripleId, TripleStore};

use crate::domain::DomainVocabulary;

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Number of documents.
    pub documents: usize,
    /// Requirements per document, inclusive range.
    pub requirements_per_doc: (usize, usize),
    /// Sentences (→ triples) per requirement, inclusive range ("a
    /// requirement contains more than one sentence and a sentence can
    /// include several triples").
    pub sentences_per_requirement: (usize, usize),
    /// Probability that a requirement additionally contradicts an earlier
    /// triple (same subject/object, antinomic predicate).
    pub inconsistency_rate: f64,
    /// Probability of an extra free-prose sentence the NLP must skip.
    pub noise_sentence_rate: f64,
    /// Probability a statement is rendered in the passive voice
    /// ("The start-up command shall be accepted by OBSW001").
    pub passive_rate: f64,
    /// Probability a statement opens with a scoped condition clause
    /// ("When in safe hold, …") the NLP must strip.
    pub condition_rate: f64,
    /// Number of distinct actors.
    pub actor_count: usize,
    /// RNG seed (generation is fully deterministic per seed).
    pub seed: u64,
}

impl GenConfig {
    /// A small corpus for tests and examples (~500–800 triples).
    #[must_use]
    pub fn small() -> Self {
        GenConfig {
            documents: 20,
            requirements_per_doc: (3, 6),
            sentences_per_requirement: (2, 5),
            inconsistency_rate: 0.3,
            noise_sentence_rate: 0.2,
            passive_rate: 0.15,
            condition_rate: 0.1,
            actor_count: 12,
            seed: 0xC0FFEE,
        }
    }

    /// A medium corpus (~10k triples) for experiment shake-out runs.
    #[must_use]
    pub fn medium() -> Self {
        GenConfig {
            documents: 120,
            requirements_per_doc: (8, 14),
            sentences_per_requirement: (5, 9),
            inconsistency_rate: 0.25,
            noise_sentence_rate: 0.15,
            passive_rate: 0.15,
            condition_rate: 0.1,
            actor_count: 40,
            seed: 0xC0FFEE,
        }
    }

    /// The paper's scale: "several hundreds of documents from which about
    /// 100,000 triples were extracted".
    #[must_use]
    pub fn paper_scale() -> Self {
        GenConfig {
            documents: 400,
            requirements_per_doc: (20, 30),
            sentences_per_requirement: (8, 12),
            inconsistency_rate: 0.25,
            noise_sentence_rate: 0.1,
            passive_rate: 0.15,
            condition_rate: 0.1,
            actor_count: 120,
            seed: 0xC0FFEE,
        }
    }

    /// Override the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the document count.
    #[must_use]
    pub fn with_documents(mut self, documents: usize) -> Self {
        self.documents = documents;
        self
    }

    /// Override the inconsistency rate.
    #[must_use]
    pub fn with_inconsistency_rate(mut self, rate: f64) -> Self {
        self.inconsistency_rate = rate.clamp(0.0, 1.0);
        self
    }
}

/// One generated requirement: its prose and the triples it asserts.
#[derive(Debug, Clone)]
pub struct Requirement {
    /// Requirement identifier, e.g. `REQ-004-02`.
    pub id: String,
    /// The document it belongs to.
    pub doc: DocumentId,
    /// The natural-language text (parseable by `semtree-nlp`, with
    /// occasional free-prose noise).
    pub text: String,
    /// The asserted triples, in sentence order.
    pub triples: Vec<TripleId>,
}

/// A generated corpus.
#[derive(Debug)]
pub struct Corpus {
    /// All triples, interned per document.
    pub store: TripleStore,
    /// The requirements, in generation order.
    pub requirements: Vec<Requirement>,
    /// Ground-truth seeded contradictions `(earlier, contradicting)`.
    pub seeded_inconsistencies: Vec<(TripleId, TripleId)>,
    /// The domain vocabulary used.
    pub domain: DomainVocabulary,
}

impl Corpus {
    /// All distinct triples in id order (the index build set).
    #[must_use]
    pub fn triples(&self) -> Vec<Triple> {
        self.store.iter().map(|(_, t)| t.clone()).collect()
    }
}

/// Deterministic corpus generator.
#[derive(Debug, Clone)]
pub struct CorpusGenerator {
    config: GenConfig,
}

impl CorpusGenerator {
    /// Create a generator.
    #[must_use]
    pub fn new(config: GenConfig) -> Self {
        CorpusGenerator { config }
    }

    /// Generate the corpus.
    #[must_use]
    pub fn generate(&self) -> Corpus {
        let cfg = &self.config;
        let domain = DomainVocabulary::new(cfg.actor_count);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut store = TripleStore::new();
        store
            .prefixes_mut()
            .bind("Fun", "urn:semtree:fun")
            .expect("fresh prefix table");
        for (prefix, _) in domain.parameter_taxonomies() {
            store
                .prefixes_mut()
                .bind(
                    prefix.clone(),
                    format!("urn:semtree:{}", prefix.to_lowercase()),
                )
                .expect("fresh prefix table");
        }

        let mut requirements = Vec::new();
        let mut seeded = Vec::new();
        // Triples eligible as contradiction anchors: their predicate has an
        // antonym. Stored as (id, triple, verb_row_index).
        let mut anchors: Vec<(TripleId, Triple)> = Vec::new();

        for d in 0..cfg.documents {
            let doc = store.create_document(format!("DOC-{:03}", d + 1));
            let n_reqs = rng.random_range(cfg.requirements_per_doc.0..=cfg.requirements_per_doc.1);
            for r in 0..n_reqs {
                let n_sents = rng.random_range(
                    cfg.sentences_per_requirement.0..=cfg.sentences_per_requirement.1,
                );
                let mut text = String::new();
                let mut triple_ids = Vec::new();

                for _ in 0..n_sents {
                    let passive = rng.random_bool(cfg.passive_rate);
                    let (sentence, triple) = self.random_statement(&domain, &mut rng, passive);
                    if rng.random_bool(cfg.condition_rate) {
                        const CONDITIONS: [&str; 3] = [
                            "When in safe hold, ",
                            "During nominal operation, ",
                            "After the separation event, ",
                        ];
                        text.push_str(CONDITIONS[rng.random_range(0..CONDITIONS.len())]);
                        // Lower-case the article so the clause reads naturally.
                        let mut rest = sentence.clone();
                        if let Some(stripped) = rest.strip_prefix("The ") {
                            rest = format!("the {stripped}");
                        }
                        text.push_str(&rest);
                    } else {
                        text.push_str(&sentence);
                    }
                    text.push(' ');
                    let id = store.insert(doc, triple.clone());
                    triple_ids.push(id);
                    if domain
                        .antinomies()
                        .canonical_antonym(predicate_name(&triple))
                        .is_some()
                    {
                        anchors.push((id, triple));
                    }
                }

                // Contradiction injection.
                if !anchors.is_empty() && rng.random_bool(cfg.inconsistency_rate) {
                    let (anchor_id, anchor) = anchors[rng.random_range(0..anchors.len())].clone();
                    let pred = predicate_name(&anchor);
                    if let Some(antonym) = domain.antinomies().canonical_antonym(pred) {
                        let conflicting = anchor.with_predicate(Term::concept_in("Fun", antonym));
                        let sentence = self.statement_prose(&domain, &conflicting, false);
                        text.push_str(&sentence);
                        text.push(' ');
                        let id = store.insert(doc, conflicting);
                        triple_ids.push(id);
                        if anchor_id != id {
                            seeded.push((anchor_id, id));
                        }
                    }
                }

                // Free-prose noise the NLP must skip.
                if rng.random_bool(cfg.noise_sentence_rate) {
                    text.push_str("This behaviour is critical during nominal operation. ");
                }

                requirements.push(Requirement {
                    id: format!("REQ-{:03}-{:02}", d + 1, r + 1),
                    doc,
                    text: text.trim_end().to_string(),
                    triples: triple_ids,
                });
            }
        }

        Corpus {
            store,
            requirements,
            seeded_inconsistencies: seeded,
            domain,
        }
    }

    /// One random requirement statement: prose + the triple it asserts.
    fn random_statement(
        &self,
        domain: &DomainVocabulary,
        rng: &mut StdRng,
        passive: bool,
    ) -> (String, Triple) {
        let functions = domain.functions();
        let (_, _, _, predicate, obj_prefix) = functions[rng.random_range(0..functions.len())];
        let actor = &domain.actors()[rng.random_range(0..domain.actors().len())];
        let params = domain.parameters_of(obj_prefix);
        let param = params[rng.random_range(0..params.len())];
        let triple = Triple::new(
            Term::literal(actor.clone()),
            Term::concept_in("Fun", predicate),
            Term::concept_in(obj_prefix, param),
        );
        (self.statement_prose(domain, &triple, passive), triple)
    }

    /// Render a triple back into the controlled grammar (the inverse of the
    /// `semtree-nlp` extractor).
    fn statement_prose(&self, domain: &DomainVocabulary, triple: &Triple, passive: bool) -> String {
        let predicate = predicate_name(triple);
        let row = domain
            .functions()
            .iter()
            .find(|(_, _, _, p, _)| *p == predicate)
            .expect("generated predicates come from the lexicon");
        let (_, verb, class_noun, _, _) = row;
        if passive {
            format!(
                "The {} {} shall be {} by the {}.",
                triple.object.lexical(),
                class_noun,
                past_participle(verb),
                triple.subject.lexical(),
            )
        } else {
            format!(
                "The {} shall {} the {} {}.",
                triple.subject.lexical(),
                verb,
                triple.object.lexical(),
                class_noun
            )
        }
    }
}

/// The regular past participle of a lexicon verb ("accept" → "accepted",
/// "enable" → "enabled", "stop" → "stopped").
fn past_participle(verb: &str) -> String {
    if verb.ends_with('e') {
        format!("{verb}d")
    } else if verb == "stop" {
        "stopped".to_string()
    } else {
        format!("{verb}ed")
    }
}

fn predicate_name(triple: &Triple) -> &str {
    triple.predicate.lexical()
}

#[cfg(test)]
mod tests {
    use semtree_nlp::SvoExtractor;

    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = CorpusGenerator::new(GenConfig::small().with_seed(42)).generate();
        let b = CorpusGenerator::new(GenConfig::small().with_seed(42)).generate();
        assert_eq!(a.store.len(), b.store.len());
        assert_eq!(a.seeded_inconsistencies, b.seeded_inconsistencies);
        assert_eq!(a.requirements.len(), b.requirements.len());
        let c = CorpusGenerator::new(GenConfig::small().with_seed(43)).generate();
        assert_ne!(
            a.requirements.first().map(|r| r.text.clone()),
            c.requirements.first().map(|r| r.text.clone())
        );
    }

    #[test]
    fn sizes_respect_configuration() {
        let cfg = GenConfig::small();
        let corpus = CorpusGenerator::new(cfg.clone()).generate();
        assert_eq!(corpus.store.stats().documents, cfg.documents);
        for req in &corpus.requirements {
            // Sentence count within range (+1 possible injected conflict).
            assert!(req.triples.len() >= cfg.sentences_per_requirement.0);
            assert!(req.triples.len() <= cfg.sentences_per_requirement.1 + 1);
        }
    }

    #[test]
    fn seeded_inconsistencies_satisfy_the_formal_rule() {
        let corpus = CorpusGenerator::new(GenConfig::small()).generate();
        assert!(!corpus.seeded_inconsistencies.is_empty());
        for &(a, b) in &corpus.seeded_inconsistencies {
            let ta = corpus.store.get(a).unwrap();
            let tb = corpus.store.get(b).unwrap();
            assert_eq!(ta.subject, tb.subject, "same subject");
            assert_eq!(ta.object, tb.object, "same object");
            assert!(
                corpus
                    .domain
                    .antinomies()
                    .are_antonyms(ta.predicate.lexical(), tb.predicate.lexical()),
                "{} vs {}",
                ta.predicate,
                tb.predicate
            );
        }
    }

    #[test]
    fn prose_roundtrips_through_the_nlp_extractor() {
        let corpus = CorpusGenerator::new(GenConfig::small()).generate();
        let extractor = SvoExtractor::requirements();
        for req in corpus.requirements.iter().take(50) {
            let extracted = extractor.extract(&req.text);
            let stored: Vec<Triple> = req
                .triples
                .iter()
                .map(|&id| corpus.store.get(id).unwrap().clone())
                .collect();
            assert_eq!(
                extracted, stored,
                "requirement {} text: {}",
                req.id, req.text
            );
        }
    }

    #[test]
    fn zero_inconsistency_rate_seeds_nothing() {
        let corpus =
            CorpusGenerator::new(GenConfig::small().with_inconsistency_rate(0.0)).generate();
        assert!(corpus.seeded_inconsistencies.is_empty());
    }

    #[test]
    fn triples_are_well_formed() {
        let corpus = CorpusGenerator::new(GenConfig::small()).generate();
        for t in corpus.triples() {
            assert!(t.subject.is_literal());
            let p = t.predicate.as_concept().expect("predicate is a concept");
            assert_eq!(p.prefix.as_deref(), Some("Fun"));
            assert!(corpus.domain.fun_taxonomy().id_of(&p.name).is_some());
            let o = t.object.as_concept().expect("object is a concept");
            assert!(o.prefix.is_some());
        }
    }

    #[test]
    fn medium_scale_generates_plausible_volume() {
        let corpus = CorpusGenerator::new(GenConfig::medium()).generate();
        let occurrences = corpus.store.stats().occurrences;
        assert!(
            (5_000..30_000).contains(&occurrences),
            "occurrences {occurrences}"
        );
    }
}
