//! Command implementations. Each returns its human-readable report so the
//! logic is testable without capturing stdout.

use std::fmt::Write as _;

use semtree_core::persist::{load_index_str, save_index_string};
use semtree_core::{CostModel, InconsistencyFinder, SemTree};
use semtree_model::{turtle, TripleStore};
use semtree_reqgen::{CorpusGenerator, DomainVocabulary, GenConfig};

use crate::args::{usage, Command, ParsedArgs};
use crate::registry::standard_distance;

/// Execute a parsed command line; returns the report to print.
pub fn run(parsed: &ParsedArgs) -> Result<String, String> {
    match parsed.command {
        Command::Help => Ok(usage().to_string()),
        Command::Generate => generate(parsed),
        Command::Index => index(parsed),
        Command::Query => query(parsed),
        Command::Audit => audit(parsed),
        Command::Stats => stats(parsed),
        Command::Serve => crate::net::serve(parsed),
        Command::Worker => crate::net::worker(parsed),
        Command::NetQuery => crate::net::net_query(parsed),
        Command::Loadgen => crate::net::loadgen(parsed),
        Command::Recover => crate::net::recover(parsed),
    }
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn write(path: &str, data: &str) -> Result<(), String> {
    std::fs::write(path, data).map_err(|e| format!("cannot write {path}: {e}"))
}

fn generate(parsed: &ParsedArgs) -> Result<String, String> {
    let out = parsed.require("out")?;
    let documents = parsed.get_usize("documents", 40)?;
    let seed = parsed.get_u64("seed", 42)?;
    let config = GenConfig::small().with_documents(documents).with_seed(seed);
    let corpus = CorpusGenerator::new(config).generate();
    write(out, &turtle::write_store(&corpus.store))?;
    let s = corpus.store.stats();
    Ok(format!(
        "wrote {out}: {} documents, {} distinct triples ({} occurrences), {} seeded inconsistencies\n",
        s.documents,
        s.triples,
        s.occurrences,
        corpus.seeded_inconsistencies.len()
    ))
}

fn build_index_from_corpus(parsed: &ParsedArgs, corpus_text: &str) -> Result<SemTree, String> {
    let dims = parsed.get_usize("dims", 6)?;
    let bucket = parsed.get_usize("bucket", 32)?;
    let partitions = parsed.get_usize("partitions", 1)?;
    if partitions == 2 {
        return Err("--partitions must be 1 or ≥ 3".to_string());
    }
    let mut store = TripleStore::new();
    turtle::parse_into(&mut store, corpus_text).map_err(|e| e.to_string())?;

    let mut builder = SemTree::builder()
        .dimensions(dims)
        .bucket_size(bucket)
        .partitions(partitions);
    builder.add_store(&store);
    builder
        .build_with_distance(standard_distance())
        .map_err(|e| e.to_string())
}

fn index(parsed: &ParsedArgs) -> Result<String, String> {
    let corpus_path = parsed.require("corpus")?;
    let out = parsed.require("out")?;
    let index = build_index_from_corpus(parsed, &read(corpus_path)?)?;
    let saved = save_index_string(&index);
    write(out, &saved)?;
    let report = format!(
        "indexed {} triples in R^{} ({} partitions); saved to {out} ({} bytes)\n",
        index.len(),
        index.dimensions(),
        index.partitions(),
        saved.len()
    );
    index.shutdown();
    Ok(report)
}

fn load(parsed: &ParsedArgs) -> Result<SemTree, String> {
    let path = parsed.require("index")?;
    load_index_str(&read(path)?, standard_distance(), CostModel::zero()).map_err(|e| e.to_string())
}

fn query(parsed: &ParsedArgs) -> Result<String, String> {
    let triple_text = parsed.require("triple")?;
    let k = parsed.get_usize("k", 5)?;
    let query = turtle::parse_triple(triple_text)?;
    let index = load(parsed)?;
    let mut out = format!("{k}-NN around {query}:\n");
    for hit in index.knn(&query, k) {
        let _ = writeln!(out, "  d={:.4}  {}", hit.embedded_distance, hit.triple);
    }
    index.shutdown();
    Ok(out)
}

fn audit(parsed: &ParsedArgs) -> Result<String, String> {
    let corpus_path = parsed.require("corpus")?;
    let k = parsed.get_usize("k", 10)?;
    let corpus_text = read(corpus_path)?;
    let index = build_index_from_corpus(parsed, &corpus_text)?;

    let domain = DomainVocabulary::new(8);
    let finder = InconsistencyFinder::new(&index, domain.antinomies().clone());
    let pairs = finder.sweep(k);

    let mut out = format!(
        "audited {} triples: {} inconsistent pairs (k = {k})\n",
        index.len(),
        pairs.len()
    );
    for &(a, b) in pairs.iter().take(20) {
        let _ = writeln!(
            out,
            "  {}  ⇔  {}",
            index.triple(a).expect("live id"),
            index.triple(b).expect("live id")
        );
    }
    if pairs.len() > 20 {
        let _ = writeln!(out, "  … and {} more", pairs.len() - 20);
    }
    index.shutdown();
    Ok(out)
}

fn stats(parsed: &ParsedArgs) -> Result<String, String> {
    let index = load(parsed)?;
    let stats = index.tree_stats();
    let mut out = format!(
        "{} triples in R^{}, {} partitions ({} routing-only)\n",
        index.len(),
        index.dimensions(),
        stats.partition_count(),
        stats.routing_only()
    );
    for (pid, p) in &stats.partitions {
        let _ = writeln!(
            out,
            "  partition {pid}: {} points, {} leaves, {} routing nodes ({} edge), links → {:?}",
            p.points, p.leaves, p.routing, p.edge_nodes, p.remote_children
        );
    }
    index.shutdown();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use crate::args::parse_args;

    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_string()).collect()
    }

    fn run_line(args: &[&str]) -> Result<String, String> {
        run(&parse_args(&v(args)).map_err(|e| e.to_string())?)
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("semtree-cli-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn help_prints_usage() {
        let out = run_line(&["help"]).unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn end_to_end_generate_index_query_stats_audit() {
        let corpus = tmp("e2e-corpus.ttl");
        let index = tmp("e2e-index.semtree");

        let out = run_line(&[
            "generate",
            "--out",
            &corpus,
            "--documents",
            "8",
            "--seed",
            "3",
        ])
        .unwrap();
        assert!(out.contains("8 documents"), "{out}");

        let out = run_line(&[
            "index",
            "--corpus",
            &corpus,
            "--out",
            &index,
            "--dims",
            "4",
            "--partitions",
            "3",
        ])
        .unwrap();
        assert!(out.contains("3 partitions"), "{out}");

        let out = run_line(&["stats", "--index", &index]).unwrap();
        assert!(out.contains("partition 0:"), "{out}");

        // Query with a triple that certainly exists: read it from the file.
        let corpus_text = std::fs::read_to_string(&corpus).unwrap();
        let line = corpus_text
            .lines()
            .find(|l| l.starts_with('('))
            .expect("corpus has triples");
        let out = run_line(&["query", "--index", &index, "--triple", line, "-k", "3"]).unwrap();
        assert!(
            out.contains("d=0.0000"),
            "the exact match ranks first: {out}"
        );

        let out = run_line(&["audit", "--corpus", &corpus, "-k", "8"]).unwrap();
        assert!(out.contains("inconsistent pairs"), "{out}");
    }

    #[test]
    fn missing_files_and_options_error_cleanly() {
        assert!(
            run_line(&["index", "--corpus", "/nonexistent", "--out", "/tmp/x"])
                .unwrap_err()
                .contains("cannot read")
        );
        assert!(run_line(&["query", "--index", "/nonexistent"])
            .unwrap_err()
            .contains("missing required option --triple"));
        assert!(run_line(&["generate"]).unwrap_err().contains("--out"));
    }

    #[test]
    fn two_partitions_rejected() {
        let corpus = tmp("p2-corpus.ttl");
        run_line(&["generate", "--out", &corpus, "--documents", "4"]).unwrap();
        let err = run_line(&[
            "index",
            "--corpus",
            &corpus,
            "--out",
            &tmp("p2.idx"),
            "--partitions",
            "2",
        ])
        .unwrap_err();
        assert!(err.contains("1 or ≥ 3"), "{err}");
    }
}
