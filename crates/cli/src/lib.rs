//! The `semtree` command-line tool: generate requirement corpora, build
//! and persist indexes, query them, and audit for inconsistencies.
//!
//! ```text
//! semtree generate --documents 40 --seed 7 --out corpus.ttl
//! semtree index    --corpus corpus.ttl --out index.semtree --dims 6 --partitions 3
//! semtree query    --index index.semtree --triple "('OBSW001', Fun:accept_cmd, CmdType:start-up)" -k 5
//! semtree audit    --corpus corpus.ttl -k 10
//! semtree stats    --index index.semtree
//! ```
//!
//! Vocabularies are the on-board-software domain set (`Fun`, `CmdType`, …
//! plus the standard mini taxonomy); indexes saved by this tool must be
//! loaded with the same tool (or the same registry) — see
//! `semtree_core::persist`.

mod args;
mod commands;
mod net;
mod registry;

pub use args::{parse_args, Command, ParsedArgs};
pub use commands::run;
pub use net::demo_sample;
pub use registry::standard_distance;
