//! The CLI's standard vocabulary wiring.

use std::sync::Arc;

use semtree_core::{TripleDistance, VocabularyRegistry, Weights};
use semtree_reqgen::DomainVocabulary;
use semtree_vocab::wordnet;

/// The Eq. 1 distance every CLI command uses: the on-board-software domain
/// vocabularies (`Fun` + parameter classes) plus the standard mini
/// taxonomy, under uniform weights. Indexes saved by the CLI must be
/// loaded under the same distance; pinning it here guarantees that.
#[must_use]
pub fn standard_distance() -> TripleDistance {
    let domain = DomainVocabulary::new(8); // taxonomies are actor-independent
    let mut reg = VocabularyRegistry::new();
    reg.register_standard(Arc::new(wordnet::mini_taxonomy()));
    reg.register("Fun", Arc::clone(domain.fun_taxonomy()));
    for (prefix, tax) in domain.parameter_taxonomies() {
        reg.register(prefix.clone(), Arc::clone(tax));
    }
    TripleDistance::new(Weights::default(), Arc::new(reg))
}

#[cfg(test)]
mod tests {
    use semtree_core::{Term, Triple};

    use super::*;

    #[test]
    fn distance_is_usable_and_deterministic() {
        let d1 = standard_distance();
        let d2 = standard_distance();
        let a = Triple::new(
            Term::literal("OBSW001"),
            Term::concept_in("Fun", "accept_cmd"),
            Term::concept_in("CmdType", "start-up"),
        );
        let b = a.with_predicate(Term::concept_in("Fun", "block_cmd"));
        assert!(d1.distance(&a, &b) > 0.0);
        assert_eq!(d1.distance(&a, &b), d2.distance(&a, &b));
    }
}
