//! Dependency-free command-line parsing.

use std::collections::HashMap;
use std::fmt;

/// The selected subcommand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `semtree generate` — synthesize a corpus to a Turtle-like file.
    Generate,
    /// `semtree index` — build an index from a corpus and save it.
    Index,
    /// `semtree query` — load an index and run a k-NN query.
    Query,
    /// `semtree audit` — inconsistency sweep over a corpus.
    Audit,
    /// `semtree stats` — partition statistics of a saved index.
    Stats,
    /// `semtree serve` — host a multi-process deployment's coordinator.
    Serve,
    /// `semtree worker` — join a deployment and host partitions.
    Worker,
    /// `semtree net-query` — query a running `serve` process over TCP.
    NetQuery,
    /// `semtree loadgen` — pipelined load generator against a `serve`
    /// process, reporting QPS and latency quantiles.
    Loadgen,
    /// `semtree recover` — inspect and replay a write-ahead log offline.
    Recover,
    /// `semtree help`.
    Help,
}

/// Parsed command line: the subcommand plus `--key value` options.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedArgs {
    /// The subcommand.
    pub command: Command,
    /// `--key value` pairs (keys without the leading dashes).
    pub options: HashMap<String, String>,
}

/// Parsing failures, rendered to the user as usage errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgsError {
    /// No subcommand given.
    NoCommand,
    /// Unknown subcommand.
    UnknownCommand(String),
    /// An option flag without a value.
    MissingValue(String),
    /// A stray positional argument.
    Unexpected(String),
}

impl fmt::Display for ArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgsError::NoCommand => f.write_str("no command given (try 'semtree help')"),
            ArgsError::UnknownCommand(c) => write!(f, "unknown command '{c}' (try 'semtree help')"),
            ArgsError::MissingValue(k) => write!(f, "option --{k} requires a value"),
            ArgsError::Unexpected(a) => write!(f, "unexpected argument '{a}'"),
        }
    }
}

impl std::error::Error for ArgsError {}

/// Whether `--key` is a valueless boolean flag for this command. Every
/// other option takes a value; flags are enumerated per command so the
/// same name can be a flag here and a valued option elsewhere (`recover
/// --json` toggles JSON output, `loadgen --json FILE` names a file).
fn is_flag(command: &Command, key: &str) -> bool {
    match command {
        Command::Recover => matches!(key, "stats" | "json"),
        Command::Loadgen => key == "sweep",
        _ => false,
    }
}

/// Parse an argument vector (without the program name).
pub fn parse_args(args: &[String]) -> Result<ParsedArgs, ArgsError> {
    let mut iter = args.iter();
    let command = match iter.next().map(String::as_str) {
        None => return Err(ArgsError::NoCommand),
        Some("generate") => Command::Generate,
        Some("index") => Command::Index,
        Some("query") => Command::Query,
        Some("audit") => Command::Audit,
        Some("stats") => Command::Stats,
        Some("serve") => Command::Serve,
        Some("worker") => Command::Worker,
        Some("net-query") => Command::NetQuery,
        Some("loadgen") => Command::Loadgen,
        Some("recover") => Command::Recover,
        Some("help" | "--help" | "-h") => Command::Help,
        Some(other) => return Err(ArgsError::UnknownCommand(other.to_string())),
    };
    let mut options = HashMap::new();
    while let Some(arg) = iter.next() {
        let key = if let Some(k) = arg.strip_prefix("--") {
            k
        } else if let Some(k) = arg.strip_prefix('-') {
            // Short aliases: -k etc.
            k
        } else {
            return Err(ArgsError::Unexpected(arg.clone()));
        };
        if is_flag(&command, key) {
            options.insert(key.to_string(), "true".to_string());
            continue;
        }
        let value = iter
            .next()
            .ok_or_else(|| ArgsError::MissingValue(key.to_string()))?;
        options.insert(key.to_string(), value.clone());
    }
    Ok(ParsedArgs { command, options })
}

impl ParsedArgs {
    /// A string option.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Whether a boolean flag was given.
    #[must_use]
    pub fn flag(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }

    /// A required string option, with a usage error otherwise.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    /// A numeric option with a default.
    pub fn get_usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|e| format!("invalid --{key} value '{v}': {e}")),
        }
    }

    /// A u64 option with a default.
    pub fn get_u64(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|e| format!("invalid --{key} value '{v}': {e}")),
        }
    }
}

/// The help text.
#[must_use]
pub fn usage() -> &'static str {
    "semtree — semantic triple index (SemTree, ICDE Workshops 2015)

USAGE:
    semtree <command> [--option value]...

COMMANDS:
    generate   synthesize a requirements corpus
                 --out FILE        output Turtle-like corpus (required)
                 --documents N     document count            [default 40]
                 --seed S          RNG seed                  [default 42]
    index      build an index from a corpus and save it
                 --corpus FILE     input corpus              (required)
                 --out FILE        output index file         (required)
                 --dims K          FastMap dimensions        [default 6]
                 --bucket B        KD-tree bucket size       [default 32]
                 --partitions M    1 or ≥3 partitions        [default 1]
    query      k-NN search against a saved index
                 --index FILE      saved index               (required)
                 --triple T        query triple, e.g. \"('A', Fun:accept_cmd, CmdType:start-up)\"
                 -k N              neighbours                [default 5]
    audit      inconsistency sweep over a corpus
                 --corpus FILE     input corpus              (required)
                 -k N              neighbourhood size        [default 10]
    stats      partition statistics of a saved index
                 --index FILE      saved index               (required)
    serve      host a multi-process deployment's coordinator (TCP)
                 --cluster-port P  worker-join port          [default 0 = ephemeral]
                 --client-port P   query port                [default 0 = ephemeral]
                 --workers N       workers to wait for       [default 2]
                 --partitions M    1 or ≥3 partitions        [default 3]
                 --dims K          point dimensionality      [default 2]
                 --bucket B        KD-tree bucket size       [default 32]
                 --capacity C      max points per partition  [default unlimited]
                 --sample N        fan-out sample size       [default 256]
                 --seed S          fan-out sample seed       [default 42]
                 --wal-dir DIR     write-ahead log directory (durability on)
                 --serve-workers N reactor executor threads  [default 4]
                 --serve-queue N   global in-flight bound    [default 1024]
                 --serve-depth N   per-connection pipeline   [default 64]
                 --serve-reactors N reactor shards           [default 0 = cores/2]
                 --serve-poller P  epoll | epoll-edge | poll [default epoll on linux]
    worker     join a deployment and host partitions until shutdown
                 --join ADDR       the coordinator's cluster-addr (required)
                 --wal-dir DIR     write-ahead log directory; a worker
                                   restarted with the same DIR recovers its
                                   partitions and rejoins under its old routes
    net-query  one operation against a running serve process
                 --addr ADDR       the coordinator's client-addr (required)
                 --op OP           insert | knn | range | stats |
                                   verify | metrics | shutdown [default stats]
                 --point X,Y,...   query/insert point
                 --payload N       insert payload            [default 0]
                 -k N              neighbours                [default 5]
                 --radius D        range radius
    loadgen    pipelined load generator against a running serve process
                 --addr ADDR       the coordinator's client-addr (required)
                 --op OP           knn | knn-batch           [default knn]
                 --connections C   concurrent connections    [default 1]
                 --depth D         in-flight per connection  [default 8]
                 --requests N      total requests            [default 1000]
                 -k N              neighbours per query      [default 5]
                 --batch B         points per knn-batch      [default 8]
                 --dims K          query dimensionality      [default 2]
                 --preload N       points inserted first     [default 0]
                 --seed S          query stream seed         [default 42]
                 --label L         name in the JSON record   [default loadgen]
                 --json FILE       append the run to a JSON array file
                 --sweep           run the connection sweep C ∈ {1,8,64,256}
                                   at --depth instead of one --connections cell
    recover    inspect and replay a write-ahead log offline (read-only)
                 --wal-dir DIR     write-ahead log directory (required)
                 --stats           per-partition snapshot compression:
                                   on-disk vs decoded bytes and the ratio
                 --json            machine-readable report on stdout
                                   (implies --stats)
    help       this text
"
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn parses_command_and_options() {
        let p = parse_args(&v(&[
            "index", "--corpus", "c.ttl", "--out", "i.idx", "-k", "5",
        ]))
        .unwrap();
        assert_eq!(p.command, Command::Index);
        assert_eq!(p.get("corpus"), Some("c.ttl"));
        assert_eq!(p.get("out"), Some("i.idx"));
        assert_eq!(p.get("k"), Some("5"));
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(parse_args(&v(&[])).unwrap_err(), ArgsError::NoCommand);
        assert!(matches!(
            parse_args(&v(&["frobnicate"])).unwrap_err(),
            ArgsError::UnknownCommand(_)
        ));
        assert!(matches!(
            parse_args(&v(&["query", "--index"])).unwrap_err(),
            ArgsError::MissingValue(_)
        ));
        assert!(matches!(
            parse_args(&v(&["query", "stray"])).unwrap_err(),
            ArgsError::Unexpected(_)
        ));
    }

    #[test]
    fn recover_flags_take_no_value() {
        let p = parse_args(&v(&["recover", "--wal-dir", "d", "--stats", "--json"])).unwrap();
        assert_eq!(p.command, Command::Recover);
        assert_eq!(p.get("wal-dir"), Some("d"));
        assert!(p.flag("stats") && p.flag("json"));
        assert!(!p.flag("quiet"));
        // The same name stays a valued option for other commands.
        assert!(matches!(
            parse_args(&v(&["loadgen", "--json"])).unwrap_err(),
            ArgsError::MissingValue(_)
        ));
        let p = parse_args(&v(&["loadgen", "--json", "out.json"])).unwrap();
        assert_eq!(p.get("json"), Some("out.json"));
    }

    #[test]
    fn help_aliases() {
        for alias in ["help", "--help", "-h"] {
            assert_eq!(parse_args(&v(&[alias])).unwrap().command, Command::Help);
        }
    }

    #[test]
    fn typed_getters() {
        let p = parse_args(&v(&["generate", "--documents", "7"])).unwrap();
        assert_eq!(p.get_usize("documents", 40).unwrap(), 7);
        assert_eq!(p.get_usize("missing", 40).unwrap(), 40);
        assert!(p.require("out").is_err());
        let bad = parse_args(&v(&["generate", "--documents", "x"])).unwrap();
        assert!(bad.get_usize("documents", 1).is_err());
    }

    #[test]
    fn usage_mentions_every_command() {
        for c in [
            "generate",
            "index",
            "query",
            "audit",
            "stats",
            "serve",
            "worker",
            "net-query",
            "loadgen",
            "recover",
        ] {
            assert!(usage().contains(c), "{c}");
        }
    }
}
