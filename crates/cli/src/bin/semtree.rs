//! The `semtree` binary entry point.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match semtree_cli::parse_args(&args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match semtree_cli::run(&parsed) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
