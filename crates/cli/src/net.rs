//! Multi-process deployment commands: `serve`, `worker`, `net-query`.
//!
//! These run the distributed tree over real TCP (`semtree-net`) on raw
//! vector points — the transport demo, separate from the semantic
//! `index`/`query` pipeline. A deployment is one `serve` process plus
//! `--workers` many `worker` processes; `net-query` is the client.
//!
//! `serve` prints two machine-readable lines before blocking:
//!
//! ```text
//! cluster-addr: 127.0.0.1:40001   (workers join here)
//! client-addr: 127.0.0.1:40002    (net-query connects here)
//! ```

use std::collections::VecDeque;
use std::io::{self, Write as _};
use std::net::{Ipv4Addr, SocketAddr, TcpListener};
use std::path::Path;
use std::time::{Duration, Instant};

use semtree_cluster::{CostModel, LatencyHistogram, LatencySnapshot};
use semtree_dist::{
    build_tree, build_tree_durable, inspect_wal, join_cluster, join_cluster_durable,
    serve_clients_with, serve_cluster, CapacityPolicy, ClientMetrics, ClientResp, DistConfig,
    NetClient, PendingReply, PipelinedClient, PollerBackend, ServeOptions,
};

use crate::args::ParsedArgs;

/// Deterministic sample used to choose the fan-out splits: `n` points in
/// `[0, 100)^dims` from a splitmix64 stream. Exposed so a client process
/// can reconstruct the exact reference tree the server built.
#[must_use]
pub fn demo_sample(dims: usize, n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    (0..n)
        .map(|_| {
            (0..dims)
                .map(|_| (next() >> 11) as f64 / (1u64 << 53) as f64 * 100.0)
                .collect()
        })
        .collect()
}

fn parse_addr(text: &str) -> Result<SocketAddr, String> {
    text.parse()
        .map_err(|e| format!("invalid address '{text}': {e}"))
}

fn parse_point(text: &str) -> Result<Vec<f64>, String> {
    text.split(',')
        .map(|c| {
            c.trim()
                .parse()
                .map_err(|e| format!("invalid coordinate '{c}': {e}"))
        })
        .collect()
}

/// Parse a semicolon-separated list of comma-separated points:
/// `"1,2;3,4"` → `[[1.0, 2.0], [3.0, 4.0]]`.
fn parse_points(text: &str) -> Result<Vec<Vec<f64>>, String> {
    text.split(';').map(parse_point).collect()
}

fn parse_config(parsed: &ParsedArgs) -> Result<DistConfig, String> {
    let dims = parsed.get_usize("dims", 2)?;
    let bucket = parsed.get_usize("bucket", 32)?;
    let partitions = parsed.get_usize("partitions", 3)?;
    let max_partitions = parsed.get_usize("max-partitions", partitions.max(64))?;
    let mut config = DistConfig::new(dims)
        .with_bucket_size(bucket)
        .with_max_partitions(max_partitions);
    if let Some(cap) = parsed.get("capacity") {
        let cap: usize = cap
            .parse()
            .map_err(|e| format!("invalid --capacity value '{cap}': {e}"))?;
        config = config.with_capacity(CapacityPolicy::MaxPoints(cap));
    }
    Ok(config)
}

/// `semtree serve`: host the coordinator — root partition, worker
/// membership, and the client query port. Blocks until a client sends
/// a shutdown request, then tears the whole deployment down.
pub fn serve(parsed: &ParsedArgs) -> Result<String, String> {
    let cluster_port = parsed.get_usize("cluster-port", 0)? as u16;
    let client_port = parsed.get_usize("client-port", 0)? as u16;
    let workers = parsed.get_usize("workers", 2)?;
    let partitions = parsed.get_usize("partitions", 3)?;
    let sample_size = parsed.get_usize("sample", 256)?;
    let seed = parsed.get_u64("seed", 42)?;
    let timeout = Duration::from_secs(parsed.get_u64("timeout", 30)?);
    let config = parse_config(parsed)?;

    let fabric = serve_cluster(
        SocketAddr::from((Ipv4Addr::LOCALHOST, cluster_port)),
        &config,
        CostModel::zero(),
    )
    .map_err(|e| e.to_string())?;
    println!("cluster-addr: {}", fabric.listen_addr());
    let _ = std::io::stdout().flush();

    fabric
        .wait_for_workers(workers, timeout)
        .map_err(|e| e.to_string())?;
    println!("workers-joined: {workers}");

    let sample = demo_sample(config.dims(), sample_size, seed);
    let tree = match parsed.get("wal-dir") {
        Some(dir) => build_tree_durable(
            &fabric,
            config,
            CostModel::zero(),
            partitions,
            &sample,
            Path::new(dir),
        )
        .map_err(|e| e.to_string())?,
        None => build_tree(&fabric, config, CostModel::zero(), partitions, &sample)
            .map_err(|e| e.to_string())?,
    };

    let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, client_port))
        .map_err(|e| format!("cannot bind client port: {e}"))?;
    println!(
        "client-addr: {}",
        listener.local_addr().map_err(|e| e.to_string())?
    );
    let _ = std::io::stdout().flush();

    let defaults = ServeOptions::default();
    let mut options = ServeOptions::default()
        .with_executors(parsed.get_usize("serve-workers", defaults.executors)?)
        .with_global_depth(parsed.get_usize("serve-queue", defaults.global_depth)?)
        .with_per_conn_depth(parsed.get_usize("serve-depth", defaults.per_conn_depth)?)
        .with_reactors(parsed.get_usize("serve-reactors", defaults.reactors)?);
    if let Some(name) = parsed.get("serve-poller") {
        options = options.with_backend(PollerBackend::parse(name)?);
    }
    serve_clients_with(&listener, &tree, &options).map_err(|e| e.to_string())?;
    let inserted = tree.len();
    tree.shutdown();
    Ok(format!(
        "served {partitions} partitions across {workers} workers; \
         {inserted} points inserted; shut down\n"
    ))
}

/// `semtree worker`: join a deployment and host partitions until the
/// coordinator shuts down.
pub fn worker(parsed: &ParsedArgs) -> Result<String, String> {
    let addr = parse_addr(parsed.require("join")?)?;
    let timeout = Duration::from_secs(parsed.get_u64("timeout", 30)?);
    let handle = match parsed.get("wal-dir") {
        Some(dir) => join_cluster_durable(addr, CostModel::zero(), timeout, Path::new(dir))
            .map_err(|e| e.to_string())?,
        None => join_cluster(addr, CostModel::zero(), timeout).map_err(|e| e.to_string())?,
    };
    println!(
        "worker: process {} listening on {}",
        handle.process_index(),
        handle.listen_addr()
    );
    let recovered = handle.recovered_partitions();
    if !recovered.is_empty() {
        // Machine-readable: restart orchestration waits for this line
        // before resuming the workload.
        println!(
            "recovered-partitions: {}",
            recovered
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(",")
        );
    }
    let _ = std::io::stdout().flush();
    handle.run_until_shutdown();
    Ok("worker: shut down\n".to_string())
}

/// Human name of a snapshot payload format byte.
fn format_name(format: u8) -> &'static str {
    match format {
        0 => "verbatim",
        1 => "columnar",
        _ => "unknown",
    }
}

/// `semtree recover`: offline, read-only inspect-and-replay of a WAL
/// directory — verifies every checksum and reports what a restarted
/// worker would recover. `--stats` adds per-partition snapshot
/// compression (on-disk vs decoded bytes); `--json` emits the whole
/// report machine-readably instead.
pub fn recover(parsed: &ParsedArgs) -> Result<String, String> {
    let dir = parsed.require("wal-dir")?;
    let inspection = inspect_wal(Path::new(dir))?;
    if parsed.flag("json") {
        return Ok(recover_json(&inspection));
    }
    let mut out = inspection.report.to_string();
    out.push_str(&format!(
        "replayed: {} partitions\n",
        inspection.partitions.len()
    ));
    for (pid, p) in &inspection.partitions {
        out.push_str(&format!(
            "  partition {pid}: {} points, {} leaves, {} routing nodes ({} edge), links → {:?}\n",
            p.points, p.leaves, p.routing, p.edge_nodes, p.remote_children
        ));
    }
    if parsed.flag("stats") {
        out.push_str("snapshot compression:\n");
        if inspection.compression.is_empty() {
            out.push_str("  (no snapshots)\n");
        }
        for c in &inspection.compression {
            out.push_str(&format!(
                "  partition {}: {} ({} bytes on disk, {} decoded, ratio {:.2}x)\n",
                c.partition,
                format_name(c.format),
                c.stored_bytes,
                c.decoded_bytes,
                c.ratio()
            ));
        }
    }
    Ok(out)
}

/// The `recover --json` report: the inspection as one JSON document.
fn recover_json(inspection: &semtree_dist::WalInspection) -> String {
    let report = &inspection.report;
    let partitions: Vec<String> = inspection
        .partitions
        .iter()
        .map(|(pid, p)| {
            let links: Vec<String> = p.remote_children.iter().map(ToString::to_string).collect();
            format!(
                "{{\"partition\": {pid}, \"points\": {}, \"leaves\": {}, \"routing\": {}, \
                 \"edge_nodes\": {}, \"remote_children\": [{}]}}",
                p.points,
                p.leaves,
                p.routing,
                p.edge_nodes,
                links.join(", ")
            )
        })
        .collect();
    let compression: Vec<String> = inspection
        .compression
        .iter()
        .map(|c| {
            format!(
                "{{\"partition\": {}, \"format\": \"{}\", \"stored_bytes\": {}, \
                 \"decoded_bytes\": {}, \"ratio\": {:.4}}}",
                c.partition,
                format_name(c.format),
                c.stored_bytes,
                c.decoded_bytes,
                c.ratio()
            )
        })
        .collect();
    format!(
        "{{\n  \"segments\": {},\n  \"segment_disk_bytes\": {},\n  \
         \"snapshot_disk_bytes\": {},\n  \"records\": {},\n  \"live_records\": {},\n  \
         \"partitions\": [{}],\n  \"snapshots\": [{}]\n}}\n",
        report.segments,
        report.segment_disk_bytes,
        report.snapshot_disk_bytes,
        report.records,
        report.live_records,
        partitions.join(", "),
        compression.join(", ")
    )
}

/// `semtree net-query`: one operation against a `serve` process.
pub fn net_query(parsed: &ParsedArgs) -> Result<String, String> {
    let addr = parse_addr(parsed.require("addr")?)?;
    let timeout = Duration::from_secs(parsed.get_u64("timeout", 10)?);
    let mut client = NetClient::connect(addr, timeout).map_err(|e| e.to_string())?;
    let op = parsed.get("op").unwrap_or("stats");
    match op {
        "insert" => {
            let point = parse_point(parsed.require("point")?)?;
            let payload = parsed.get_u64("payload", 0)?;
            client.insert(&point, payload).map_err(|e| e.to_string())?;
            Ok(format!("inserted {point:?} (payload {payload})\n"))
        }
        "knn" => {
            let point = parse_point(parsed.require("point")?)?;
            let k = parsed.get_usize("k", 5)?;
            let hits = client.knn(&point, k).map_err(|e| e.to_string())?;
            let mut out = format!("{k}-NN around {point:?}:\n");
            for (dist, payload) in hits {
                out.push_str(&format!("  d={dist:.4}  payload={payload}\n"));
            }
            Ok(out)
        }
        "knn-batch" => {
            let points = parse_points(parsed.require("points")?)?;
            let k = parsed.get_usize("k", 5)?;
            let batches = client.knn_batch(&points, k).map_err(|e| e.to_string())?;
            let mut out = format!("{k}-NN batch of {} queries:\n", points.len());
            for (point, hits) in points.iter().zip(batches) {
                out.push_str(&format!("query {point:?}:\n"));
                for (dist, payload) in hits {
                    out.push_str(&format!("  d={dist:.4}  payload={payload}\n"));
                }
            }
            Ok(out)
        }
        "range" => {
            let point = parse_point(parsed.require("point")?)?;
            let radius: f64 = {
                let r = parsed.require("radius")?;
                r.parse()
                    .map_err(|e| format!("invalid --radius value '{r}': {e}"))?
            };
            let hits = client.range(&point, radius).map_err(|e| e.to_string())?;
            let mut out = format!("range {radius} around {point:?}: {} hits\n", hits.len());
            for (dist, payload) in hits {
                out.push_str(&format!("  d={dist:.4}  payload={payload}\n"));
            }
            Ok(out)
        }
        "stats" => {
            let stats = client.stats().map_err(|e| e.to_string())?;
            let mut out = format!("{} partitions:\n", stats.len());
            for (pid, p) in stats {
                out.push_str(&format!(
                    "  partition {pid}: {} points, {} leaves, {} routing nodes ({} edge), links → {:?}\n",
                    p.points, p.leaves, p.routing, p.edge_nodes, p.remote_children
                ));
            }
            Ok(out)
        }
        "verify" => {
            let violations = client.verify().map_err(|e| e.to_string())?;
            if violations.is_empty() {
                Ok("healthy\n".to_string())
            } else {
                Ok(violations
                    .into_iter()
                    .map(|v| format!("violation: {v}\n"))
                    .collect())
            }
        }
        "metrics" => {
            let m = client.metrics().map_err(|e| e.to_string())?;
            let histogram = m
                .read_retries
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(" ");
            let shards = m.reactor_shards.min(m.shard_served.len() as u64) as usize;
            let per_shard = |counts: &[u64]| {
                counts[..shards]
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(" ")
            };
            Ok(format!(
                "messages: {}\nbytes: {}\nresponse-bytes: {}\nspawned-nodes: {}\n\
                 latency-count: {}\np50-us: {:.1}\np99-us: {:.1}\np999-us: {:.1}\n\
                 reads-retried: {}\nread-retry-histogram: {histogram}\n\
                 reactor-shards: {}\nshard-served: {}\nshard-shed: {}\n",
                m.messages,
                m.bytes,
                m.response_bytes,
                m.spawned_nodes,
                m.latency_count,
                m.p50_nanos as f64 / 1000.0,
                m.p99_nanos as f64 / 1000.0,
                m.p999_nanos as f64 / 1000.0,
                m.reads_retried,
                m.reactor_shards,
                per_shard(&m.shard_served),
                per_shard(&m.shard_shed),
            ))
        }
        "shutdown" => {
            client.shutdown().map_err(|e| e.to_string())?;
            Ok("deployment shut down\n".to_string())
        }
        other => Err(format!(
            "unknown --op '{other}' (insert, knn, knn-batch, range, stats, verify, metrics, \
             shutdown)"
        )),
    }
}

/// One connection thread's tally.
#[derive(Default)]
struct ConnReport {
    completed: u64,
    shed: u64,
    errors: u64,
    latency: LatencySnapshot,
}

/// Settle one in-flight reply into the tally. Only successful answers
/// count toward throughput and latency; sheds and failures are tallied
/// separately.
fn settle(
    started: Instant,
    outcome: io::Result<ClientResp>,
    hist: &LatencyHistogram,
    report: &mut ConnReport,
) {
    match outcome {
        Ok(ClientResp::Overloaded) => report.shed += 1,
        Ok(ClientResp::Error(_)) | Err(_) => report.errors += 1,
        Ok(_) => {
            report.completed += 1;
            let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            hist.record(nanos);
        }
    }
}

/// Settle every reply in `window` that has already arrived, in arrival
/// order rather than submission order. Returns how many were settled.
/// The server completes out of order, so FIFO settling would leave
/// finished replies occupying window slots — and the pipeline stalled —
/// while the oldest request is still running.
fn harvest_ready(
    window: &mut VecDeque<(Instant, PendingReply)>,
    hist: &LatencyHistogram,
    report: &mut ConnReport,
) -> usize {
    let mut settled = 0;
    let mut i = 0;
    while i < window.len() {
        match window[i].1.try_take() {
            Some(outcome) => {
                let Some((started, _)) = window.remove(i) else {
                    break;
                };
                settle(started, outcome, hist, report);
                settled += 1;
            }
            None => i += 1,
        }
    }
    settled
}

/// Drive `count` requests through one pipelined connection, keeping at
/// most `depth` in flight.
#[allow(clippy::too_many_arguments)]
fn drive_connection(
    addr: SocketAddr,
    timeout: Duration,
    op: &str,
    count: usize,
    depth: usize,
    k: usize,
    batch: usize,
    pool: &[Vec<f64>],
) -> Result<ConnReport, String> {
    let mut client = PipelinedClient::connect(addr, timeout).map_err(|e| e.to_string())?;
    let hist = LatencyHistogram::new_in();
    let mut report = ConnReport::default();
    let mut window: VecDeque<(Instant, PendingReply)> = VecDeque::new();
    for i in 0..count {
        while window.len() >= depth {
            // Prefer replies that already arrived; only when none are
            // ready does the thread block on the oldest one.
            if harvest_ready(&mut window, &hist, &mut report) > 0 {
                continue;
            }
            let Some((started, pending)) = window.pop_front() else {
                break;
            };
            settle(
                started,
                pending.wait_timeout(Duration::from_secs(30)),
                &hist,
                &mut report,
            );
        }
        let point = &pool[i % pool.len()];
        let started = Instant::now();
        let submitted = if op == "knn-batch" {
            let points: Vec<Vec<f64>> = (0..batch)
                .map(|j| pool[(i + j) % pool.len()].clone())
                .collect();
            client.knn_batch(&points, k)
        } else {
            client.knn(point, k)
        };
        match submitted {
            Ok(pending) => window.push_back((started, pending)),
            Err(e) => return Err(format!("submit failed after {i} requests: {e}")),
        }
    }
    for (started, pending) in window {
        settle(
            started,
            pending.wait_timeout(Duration::from_secs(30)),
            &hist,
            &mut report,
        );
    }
    report.latency = hist.snapshot();
    Ok(report)
}

/// Append one record to a JSON array file, creating it if needed. The
/// file stays valid JSON after every append.
fn append_json_record(path: &str, record: &str) -> Result<(), String> {
    let fresh = format!("[\n  {record}\n]\n");
    let content = match std::fs::read_to_string(path) {
        Err(_) => fresh,
        Ok(text) if text.trim().is_empty() => fresh,
        Ok(text) => {
            let head = text
                .trim_end()
                .strip_suffix(']')
                .ok_or_else(|| format!("{path} is not a JSON array"))?
                .trim_end()
                .to_string();
            if head.ends_with('[') {
                format!("{head}\n  {record}\n]\n")
            } else {
                format!("{head},\n  {record}\n]\n")
            }
        }
    };
    std::fs::write(path, content).map_err(|e| format!("cannot write {path}: {e}"))
}

/// One loadgen cell (a fixed connections × depth combination), fully
/// measured: the merged client-side tally, wall time, and the server's
/// per-reactor-shard served/shed deltas over the run.
struct CellResult {
    total: ConnReport,
    elapsed: Duration,
    reactor_shards: u64,
    shard_served: Vec<u64>,
    shard_shed: Vec<u64>,
}

/// Fetch a metrics snapshot for shard-delta accounting. Best-effort:
/// an older server without the Metrics op degrades to zeroed shards.
fn shard_snapshot(addr: SocketAddr, timeout: Duration) -> ClientMetrics {
    NetClient::connect(addr, timeout)
        .and_then(|mut c| c.metrics())
        .unwrap_or_default()
}

/// Run C connections × D in-flight requests each against `addr`,
/// bracketed by server metrics snapshots so the record attributes the
/// traffic to the reactor shards that handled it.
#[allow(clippy::too_many_arguments)]
fn run_cell(
    addr: SocketAddr,
    timeout: Duration,
    op: &str,
    connections: usize,
    depth: usize,
    requests: usize,
    k: usize,
    batch: usize,
    pool: &[Vec<f64>],
) -> Result<CellResult, String> {
    let before = shard_snapshot(addr, timeout);
    let started = Instant::now();
    let reports: Vec<Result<ConnReport, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|c| {
                let count = requests / connections + usize::from(c < requests % connections);
                scope.spawn(move || {
                    drive_connection(addr, timeout, op, count, depth, k, batch, pool)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(result) => result,
                Err(_) => Err("connection thread panicked".to_string()),
            })
            .collect()
    });
    let elapsed = started.elapsed();
    let after = shard_snapshot(addr, timeout);

    let mut total = ConnReport::default();
    for report in reports {
        let report = report?;
        total.completed += report.completed;
        total.shed += report.shed;
        total.errors += report.errors;
        total.latency.merge(&report.latency);
    }
    let shards = after.reactor_shards.min(after.shard_served.len() as u64) as usize;
    let delta = |a: &[u64], b: &[u64]| -> Vec<u64> {
        (0..shards).map(|s| a[s].saturating_sub(b[s])).collect()
    };
    Ok(CellResult {
        total,
        elapsed,
        reactor_shards: after.reactor_shards,
        shard_served: delta(&after.shard_served, &before.shard_served),
        shard_shed: delta(&after.shard_shed, &before.shard_shed),
    })
}

/// Render one u64 slice as a JSON array.
fn json_u64s(values: &[u64]) -> String {
    let items: Vec<String> = values.iter().map(ToString::to_string).collect();
    format!("[{}]", items.join(", "))
}

/// `semtree loadgen`: sustained pipelined load against a running
/// `serve` process — C connections × D in-flight requests each —
/// reporting throughput, client-observed latency quantiles, and the
/// server's per-reactor-shard served/shed attribution. `--sweep` runs
/// the connection-count curve C ∈ {1, 8, 64, 256} at the given depth
/// instead of a single cell.
pub fn loadgen(parsed: &ParsedArgs) -> Result<String, String> {
    let addr = parse_addr(parsed.require("addr")?)?;
    let timeout = Duration::from_secs(parsed.get_u64("timeout", 10)?);
    let depth = parsed.get_usize("depth", 8)?.max(1);
    let requests = parsed.get_usize("requests", 1000)?;
    let k = parsed.get_usize("k", 5)?;
    let batch = parsed.get_usize("batch", 8)?.max(1);
    let dims = parsed.get_usize("dims", 2)?;
    let preload = parsed.get_usize("preload", 0)?;
    let seed = parsed.get_u64("seed", 42)?;
    let label = parsed.get("label").unwrap_or("loadgen").to_string();
    let op = parsed.get("op").unwrap_or("knn").to_string();
    if op != "knn" && op != "knn-batch" {
        return Err(format!("unknown --op '{op}' (knn, knn-batch)"));
    }
    let sweep = parsed.flag("sweep");
    let connection_counts: Vec<usize> = if sweep {
        vec![1, 8, 64, 256]
    } else {
        vec![parsed.get_usize("connections", 1)?.max(1)]
    };

    if preload > 0 {
        let mut client = NetClient::connect(addr, timeout).map_err(|e| e.to_string())?;
        for (i, point) in demo_sample(dims, preload, seed ^ 0x5EED).iter().enumerate() {
            client
                .insert(point, i as u64)
                .map_err(|e| format!("preload insert {i} failed: {e}"))?;
        }
    }

    let pool = demo_sample(dims, 256, seed);
    let mut out = String::new();
    for connections in connection_counts {
        let cell = run_cell(
            addr,
            timeout,
            &op,
            connections,
            depth,
            requests,
            k,
            batch,
            &pool,
        )?;
        let qps = cell.total.completed as f64 / cell.elapsed.as_secs_f64().max(1e-9);
        let p50_us = cell.total.latency.p50_nanos() as f64 / 1000.0;
        let p99_us = cell.total.latency.p99_nanos() as f64 / 1000.0;
        let p999_us = cell.total.latency.p999_nanos() as f64 / 1000.0;
        let shard_qps: Vec<u64> = cell
            .shard_served
            .iter()
            .map(|&served| (served as f64 / cell.elapsed.as_secs_f64().max(1e-9)) as u64)
            .collect();

        if let Some(path) = parsed.get("json") {
            let record = format!(
                "{{\"name\": \"{label}\", \"op\": \"{op}\", \"connections\": {connections}, \
                 \"depth\": {depth}, \"requests\": {requests}, \"qps\": {qps:.1}, \
                 \"p50_us\": {p50_us:.1}, \"p99_us\": {p99_us:.1}, \"p999_us\": {p999_us:.1}, \
                 \"shed\": {}, \"errors\": {}, \"reactor_shards\": {}, \
                 \"shard_qps\": {}, \"shard_served\": {}, \"shard_shed\": {}}}",
                cell.total.shed,
                cell.total.errors,
                cell.reactor_shards,
                json_u64s(&shard_qps),
                json_u64s(&cell.shard_served),
                json_u64s(&cell.shard_shed),
            );
            append_json_record(path, &record)?;
        }

        out.push_str(&format!(
            "op: {op}\nconnections: {connections}\ndepth: {depth}\nrequests: {requests}\n\
             completed: {}\nqps: {qps:.1}\np50-us: {p50_us:.1}\np99-us: {p99_us:.1}\n\
             p999-us: {p999_us:.1}\nshed: {}\nerrors: {}\nreactor-shards: {}\n\
             shard-served: {:?}\nshard-shed: {:?}\n",
            cell.total.completed,
            cell.total.shed,
            cell.total.errors,
            cell.reactor_shards,
            cell.shard_served,
            cell.shard_shed,
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_sample_is_deterministic_and_in_range() {
        let a = demo_sample(3, 50, 7);
        let b = demo_sample(3, 50, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        for p in &a {
            assert_eq!(p.len(), 3);
            for &c in p {
                assert!((0.0..100.0).contains(&c));
            }
        }
        assert_ne!(demo_sample(3, 50, 8), a, "seed changes the sample");
    }

    #[test]
    fn point_and_addr_parsing() {
        assert_eq!(parse_point("1.0, 2.5,3").unwrap(), vec![1.0, 2.5, 3.0]);
        assert!(parse_point("1.0,x").is_err());
        assert!(parse_addr("127.0.0.1:9000").is_ok());
        assert!(parse_addr("not-an-addr").is_err());
    }

    #[test]
    fn recover_reports_compression_stats_and_json() {
        use semtree_dist::{build_local_durable, Query, QueryOutcome, WalOptions};

        let dir =
            std::env::temp_dir().join(format!("semtree-cli-recover-stats-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = DistConfig::new(2).with_bucket_size(8);
        let options = WalOptions::default().with_snapshot_every(64);
        let tree = build_local_durable(config, CostModel::zero(), 1, &[], &dir, options)
            .expect("durable tree");
        for i in 0..400u64 {
            // A palette-heavy workload, so the snapshot compresses well.
            tree.query(Query::insert(
                &[(i % 5) as f64 * 0.25, (i % 7) as f64 * 0.5],
                i,
            ))
            .and_then(QueryOutcome::inserted)
            .expect("insert");
        }
        tree.shutdown();

        let run = |args: &[&str]| {
            let parsed =
                crate::args::parse_args(&args.iter().map(|s| (*s).to_string()).collect::<Vec<_>>())
                    .expect("parse");
            recover(&parsed).expect("recover")
        };
        let wal_dir = dir.to_string_lossy().into_owned();

        let plain = run(&["recover", "--wal-dir", &wal_dir]);
        assert!(plain.contains("replayed: 1 partitions"), "{plain}");
        assert!(!plain.contains("snapshot compression"), "{plain}");

        let stats = run(&["recover", "--wal-dir", &wal_dir, "--stats"]);
        assert!(stats.contains("snapshot compression:"), "{stats}");
        assert!(stats.contains("columnar"), "{stats}");
        assert!(stats.contains("ratio"), "{stats}");

        let json = run(&["recover", "--wal-dir", &wal_dir, "--json"]);
        assert!(json.contains("\"snapshots\": [{\"partition\": 0"), "{json}");
        assert!(json.contains("\"format\": \"columnar\""), "{json}");
        assert!(json.contains("\"ratio\": "), "{json}");
        // Stays a JSON document: balanced braces, no trailing garbage.
        assert!(json.trim_end().starts_with('{') && json.trim_end().ends_with('}'));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn points_parsing() {
        assert_eq!(
            parse_points("1,2; 3,4").unwrap(),
            vec![vec![1.0, 2.0], vec![3.0, 4.0]]
        );
        assert_eq!(parse_points("5.5,6").unwrap(), vec![vec![5.5, 6.0]]);
        assert!(parse_points("1,2;bad").is_err());
    }
}
