//! Multi-process deployment commands: `serve`, `worker`, `net-query`.
//!
//! These run the distributed tree over real TCP (`semtree-net`) on raw
//! vector points — the transport demo, separate from the semantic
//! `index`/`query` pipeline. A deployment is one `serve` process plus
//! `--workers` many `worker` processes; `net-query` is the client.
//!
//! `serve` prints two machine-readable lines before blocking:
//!
//! ```text
//! cluster-addr: 127.0.0.1:40001   (workers join here)
//! client-addr: 127.0.0.1:40002    (net-query connects here)
//! ```

use std::io::Write as _;
use std::net::{Ipv4Addr, SocketAddr, TcpListener};
use std::path::Path;
use std::time::Duration;

use semtree_cluster::CostModel;
use semtree_dist::{
    build_tree, build_tree_durable, inspect_wal, join_cluster, join_cluster_durable, serve_clients,
    serve_cluster, CapacityPolicy, DistConfig, NetClient,
};

use crate::args::ParsedArgs;

/// Deterministic sample used to choose the fan-out splits: `n` points in
/// `[0, 100)^dims` from a splitmix64 stream. Exposed so a client process
/// can reconstruct the exact reference tree the server built.
#[must_use]
pub fn demo_sample(dims: usize, n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    (0..n)
        .map(|_| {
            (0..dims)
                .map(|_| (next() >> 11) as f64 / (1u64 << 53) as f64 * 100.0)
                .collect()
        })
        .collect()
}

fn parse_addr(text: &str) -> Result<SocketAddr, String> {
    text.parse()
        .map_err(|e| format!("invalid address '{text}': {e}"))
}

fn parse_point(text: &str) -> Result<Vec<f64>, String> {
    text.split(',')
        .map(|c| {
            c.trim()
                .parse()
                .map_err(|e| format!("invalid coordinate '{c}': {e}"))
        })
        .collect()
}

/// Parse a semicolon-separated list of comma-separated points:
/// `"1,2;3,4"` → `[[1.0, 2.0], [3.0, 4.0]]`.
fn parse_points(text: &str) -> Result<Vec<Vec<f64>>, String> {
    text.split(';').map(parse_point).collect()
}

fn parse_config(parsed: &ParsedArgs) -> Result<DistConfig, String> {
    let dims = parsed.get_usize("dims", 2)?;
    let bucket = parsed.get_usize("bucket", 32)?;
    let partitions = parsed.get_usize("partitions", 3)?;
    let max_partitions = parsed.get_usize("max-partitions", partitions.max(64))?;
    let mut config = DistConfig::new(dims)
        .with_bucket_size(bucket)
        .with_max_partitions(max_partitions);
    if let Some(cap) = parsed.get("capacity") {
        let cap: usize = cap
            .parse()
            .map_err(|e| format!("invalid --capacity value '{cap}': {e}"))?;
        config = config.with_capacity(CapacityPolicy::MaxPoints(cap));
    }
    Ok(config)
}

/// `semtree serve`: host the coordinator — root partition, worker
/// membership, and the client query port. Blocks until a client sends
/// a shutdown request, then tears the whole deployment down.
pub fn serve(parsed: &ParsedArgs) -> Result<String, String> {
    let cluster_port = parsed.get_usize("cluster-port", 0)? as u16;
    let client_port = parsed.get_usize("client-port", 0)? as u16;
    let workers = parsed.get_usize("workers", 2)?;
    let partitions = parsed.get_usize("partitions", 3)?;
    let sample_size = parsed.get_usize("sample", 256)?;
    let seed = parsed.get_u64("seed", 42)?;
    let timeout = Duration::from_secs(parsed.get_u64("timeout", 30)?);
    let config = parse_config(parsed)?;

    let fabric = serve_cluster(
        SocketAddr::from((Ipv4Addr::LOCALHOST, cluster_port)),
        &config,
        CostModel::zero(),
    )
    .map_err(|e| e.to_string())?;
    println!("cluster-addr: {}", fabric.listen_addr());
    let _ = std::io::stdout().flush();

    fabric
        .wait_for_workers(workers, timeout)
        .map_err(|e| e.to_string())?;
    println!("workers-joined: {workers}");

    let sample = demo_sample(config.dims(), sample_size, seed);
    let tree = match parsed.get("wal-dir") {
        Some(dir) => build_tree_durable(
            &fabric,
            config,
            CostModel::zero(),
            partitions,
            &sample,
            Path::new(dir),
        )
        .map_err(|e| e.to_string())?,
        None => build_tree(&fabric, config, CostModel::zero(), partitions, &sample)
            .map_err(|e| e.to_string())?,
    };

    let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, client_port))
        .map_err(|e| format!("cannot bind client port: {e}"))?;
    println!(
        "client-addr: {}",
        listener.local_addr().map_err(|e| e.to_string())?
    );
    let _ = std::io::stdout().flush();

    serve_clients(&listener, &tree).map_err(|e| e.to_string())?;
    let inserted = tree.len();
    tree.shutdown();
    Ok(format!(
        "served {partitions} partitions across {workers} workers; \
         {inserted} points inserted; shut down\n"
    ))
}

/// `semtree worker`: join a deployment and host partitions until the
/// coordinator shuts down.
pub fn worker(parsed: &ParsedArgs) -> Result<String, String> {
    let addr = parse_addr(parsed.require("join")?)?;
    let timeout = Duration::from_secs(parsed.get_u64("timeout", 30)?);
    let handle = match parsed.get("wal-dir") {
        Some(dir) => join_cluster_durable(addr, CostModel::zero(), timeout, Path::new(dir))
            .map_err(|e| e.to_string())?,
        None => join_cluster(addr, CostModel::zero(), timeout).map_err(|e| e.to_string())?,
    };
    println!(
        "worker: process {} listening on {}",
        handle.process_index(),
        handle.listen_addr()
    );
    let recovered = handle.recovered_partitions();
    if !recovered.is_empty() {
        // Machine-readable: restart orchestration waits for this line
        // before resuming the workload.
        println!(
            "recovered-partitions: {}",
            recovered
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(",")
        );
    }
    let _ = std::io::stdout().flush();
    handle.run_until_shutdown();
    Ok("worker: shut down\n".to_string())
}

/// `semtree recover`: offline, read-only inspect-and-replay of a WAL
/// directory — verifies every checksum and reports what a restarted
/// worker would recover.
pub fn recover(parsed: &ParsedArgs) -> Result<String, String> {
    let dir = parsed.require("wal-dir")?;
    let inspection = inspect_wal(Path::new(dir))?;
    let mut out = inspection.report.to_string();
    out.push_str(&format!(
        "replayed: {} partitions\n",
        inspection.partitions.len()
    ));
    for (pid, p) in &inspection.partitions {
        out.push_str(&format!(
            "  partition {pid}: {} points, {} leaves, {} routing nodes ({} edge), links → {:?}\n",
            p.points, p.leaves, p.routing, p.edge_nodes, p.remote_children
        ));
    }
    Ok(out)
}

/// `semtree net-query`: one operation against a `serve` process.
pub fn net_query(parsed: &ParsedArgs) -> Result<String, String> {
    let addr = parse_addr(parsed.require("addr")?)?;
    let timeout = Duration::from_secs(parsed.get_u64("timeout", 10)?);
    let mut client = NetClient::connect(addr, timeout).map_err(|e| e.to_string())?;
    let op = parsed.get("op").unwrap_or("stats");
    match op {
        "insert" => {
            let point = parse_point(parsed.require("point")?)?;
            let payload = parsed.get_u64("payload", 0)?;
            client.insert(&point, payload).map_err(|e| e.to_string())?;
            Ok(format!("inserted {point:?} (payload {payload})\n"))
        }
        "knn" => {
            let point = parse_point(parsed.require("point")?)?;
            let k = parsed.get_usize("k", 5)?;
            let hits = client.knn(&point, k).map_err(|e| e.to_string())?;
            let mut out = format!("{k}-NN around {point:?}:\n");
            for (dist, payload) in hits {
                out.push_str(&format!("  d={dist:.4}  payload={payload}\n"));
            }
            Ok(out)
        }
        "knn-batch" => {
            let points = parse_points(parsed.require("points")?)?;
            let k = parsed.get_usize("k", 5)?;
            let batches = client.knn_batch(&points, k).map_err(|e| e.to_string())?;
            let mut out = format!("{k}-NN batch of {} queries:\n", points.len());
            for (point, hits) in points.iter().zip(batches) {
                out.push_str(&format!("query {point:?}:\n"));
                for (dist, payload) in hits {
                    out.push_str(&format!("  d={dist:.4}  payload={payload}\n"));
                }
            }
            Ok(out)
        }
        "range" => {
            let point = parse_point(parsed.require("point")?)?;
            let radius: f64 = {
                let r = parsed.require("radius")?;
                r.parse()
                    .map_err(|e| format!("invalid --radius value '{r}': {e}"))?
            };
            let hits = client.range(&point, radius).map_err(|e| e.to_string())?;
            let mut out = format!("range {radius} around {point:?}: {} hits\n", hits.len());
            for (dist, payload) in hits {
                out.push_str(&format!("  d={dist:.4}  payload={payload}\n"));
            }
            Ok(out)
        }
        "stats" => {
            let stats = client.stats().map_err(|e| e.to_string())?;
            let mut out = format!("{} partitions:\n", stats.len());
            for (pid, p) in stats {
                out.push_str(&format!(
                    "  partition {pid}: {} points, {} leaves, {} routing nodes ({} edge), links → {:?}\n",
                    p.points, p.leaves, p.routing, p.edge_nodes, p.remote_children
                ));
            }
            Ok(out)
        }
        "verify" => {
            let violations = client.verify().map_err(|e| e.to_string())?;
            if violations.is_empty() {
                Ok("healthy\n".to_string())
            } else {
                Ok(violations
                    .into_iter()
                    .map(|v| format!("violation: {v}\n"))
                    .collect())
            }
        }
        "metrics" => {
            let (messages, bytes, response_bytes, spawned) =
                client.metrics().map_err(|e| e.to_string())?;
            Ok(format!(
                "messages: {messages}\nbytes: {bytes}\nresponse-bytes: {response_bytes}\n\
                 spawned-nodes: {spawned}\n"
            ))
        }
        "shutdown" => {
            client.shutdown().map_err(|e| e.to_string())?;
            Ok("deployment shut down\n".to_string())
        }
        other => Err(format!(
            "unknown --op '{other}' (insert, knn, knn-batch, range, stats, verify, metrics, \
             shutdown)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_sample_is_deterministic_and_in_range() {
        let a = demo_sample(3, 50, 7);
        let b = demo_sample(3, 50, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        for p in &a {
            assert_eq!(p.len(), 3);
            for &c in p {
                assert!((0.0..100.0).contains(&c));
            }
        }
        assert_ne!(demo_sample(3, 50, 8), a, "seed changes the sample");
    }

    #[test]
    fn point_and_addr_parsing() {
        assert_eq!(parse_point("1.0, 2.5,3").unwrap(), vec![1.0, 2.5, 3.0]);
        assert!(parse_point("1.0,x").is_err());
        assert!(parse_addr("127.0.0.1:9000").is_ok());
        assert!(parse_addr("not-an-addr").is_err());
    }

    #[test]
    fn points_parsing() {
        assert_eq!(
            parse_points("1,2; 3,4").unwrap(),
            vec![vec![1.0, 2.0], vec![3.0, 4.0]]
        );
        assert_eq!(parse_points("5.5,6").unwrap(), vec![vec![5.5, 6.0]]);
        assert!(parse_points("1,2;bad").is_err());
    }
}
