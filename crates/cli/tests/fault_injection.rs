//! The durability headline: `kill -9` a worker process mid-workload,
//! restart it against the same `--wal-dir`, and require the recovered
//! cluster's k-NN answers to be **byte-identical** to an uncrashed
//! in-process reference over the same insertion history.

use std::io::{BufRead, BufReader, Lines};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::{Duration, Instant};

use semtree_cli::demo_sample;
use semtree_cluster::CostModel;
use semtree_dist::{CapacityPolicy, DistConfig, DistSemTree, NetClient};

const DIMS: usize = 2;
const BUCKET: usize = 8;
const PARTITIONS: usize = 3;
const SAMPLE_SIZE: usize = 64;
const SEED: u64 = 11;
const CAPACITY: usize = 70;

/// Kills the spawned processes when the test panics mid-way.
struct Reaper(Vec<Child>);

impl Drop for Reaper {
    fn drop(&mut self) {
        for child in &mut self.0 {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

fn spawn(args: &[&str]) -> (Child, Lines<BufReader<ChildStdout>>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_semtree"))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn semtree");
    let stdout = child.stdout.take().expect("piped stdout");
    (child, BufReader::new(stdout).lines())
}

fn expect_line(lines: &mut Lines<BufReader<ChildStdout>>, prefix: &str) -> String {
    for line in lines {
        let line = line.expect("child stdout");
        if let Some(rest) = line.strip_prefix(prefix) {
            return rest.trim().to_string();
        }
    }
    panic!("child exited before printing '{prefix}'");
}

/// WAL location: `SEMTREE_FAULT_WAL_DIR` when set (CI uploads it as an
/// artifact on failure), a per-process temp dir otherwise.
fn wal_dir() -> PathBuf {
    match std::env::var_os("SEMTREE_FAULT_WAL_DIR") {
        Some(dir) => PathBuf::from(dir),
        None => std::env::temp_dir().join(format!("semtree-fault-wal-{}", std::process::id())),
    }
}

#[test]
fn sigkilled_worker_recovers_and_serves_identical_results() {
    let wal = wal_dir();
    let _ = std::fs::remove_dir_all(&wal);
    let wal_arg = wal.to_string_lossy().into_owned();

    let (serve, mut serve_lines) = spawn(&[
        "serve",
        "--workers",
        "1",
        "--partitions",
        &PARTITIONS.to_string(),
        "--dims",
        &DIMS.to_string(),
        "--bucket",
        &BUCKET.to_string(),
        "--capacity",
        &CAPACITY.to_string(),
        "--sample",
        &SAMPLE_SIZE.to_string(),
        "--seed",
        &SEED.to_string(),
    ]);
    let mut reaper = Reaper(vec![serve]);

    let cluster_addr = expect_line(&mut serve_lines, "cluster-addr:");
    let (worker, mut worker_lines) =
        spawn(&["worker", "--join", &cluster_addr, "--wal-dir", &wal_arg]);
    reaper.0.push(worker);
    expect_line(&mut worker_lines, "worker: process");
    std::thread::spawn(move || for _ in worker_lines.by_ref() {});

    let client_addr: SocketAddr = expect_line(&mut serve_lines, "client-addr:")
        .parse()
        .expect("client address");
    std::thread::spawn(move || for _ in serve_lines.by_ref() {});

    // The uncrashed reference: same config, fan-out sample, and insertion
    // order — the recovered cluster must match it bit for bit.
    let config = DistConfig::new(DIMS)
        .with_bucket_size(BUCKET)
        .with_max_partitions(PARTITIONS.max(64))
        .with_capacity(CapacityPolicy::MaxPoints(CAPACITY));
    let sample = demo_sample(DIMS, SAMPLE_SIZE, SEED);
    let reference = DistSemTree::with_fanout(config, CostModel::zero(), PARTITIONS, &sample);

    let mut client = NetClient::connect(client_addr, Duration::from_secs(10)).expect("connect");
    let points: Vec<(Vec<f64>, u64)> = demo_sample(DIMS, 260, SEED ^ 0xfau64)
        .into_iter()
        .zip(0..)
        .collect();
    let (batch1, batch2) = points.split_at(160);

    for (point, payload) in batch1 {
        client.insert(point, *payload).expect("pre-crash insert");
        reference.insert(point, *payload);
    }

    // SIGKILL the worker at a quiescent point: every acknowledged insert
    // is already in its WAL, and nothing is in flight.
    let worker = &mut reaper.0[1];
    worker.kill().expect("SIGKILL worker");
    worker.wait().expect("reap worker");

    // Restart it against the same WAL directory. It must replay its
    // partitions and rejoin under its old process index and routes.
    let (revived, mut revived_lines) =
        spawn(&["worker", "--join", &cluster_addr, "--wal-dir", &wal_arg]);
    reaper.0.push(revived);
    let recovered = expect_line(&mut revived_lines, "recovered-partitions:");
    assert!(
        !recovered.is_empty(),
        "restarted worker must report recovered partitions"
    );
    std::thread::spawn(move || for _ in revived_lines.by_ref() {});

    // The coordinator evicts its dead connection during the rejoin
    // handshake; retry the first post-restart insert until the revived
    // routes answer.
    let deadline = Instant::now() + Duration::from_secs(20);
    let (first_point, first_payload) = &batch2[0];
    loop {
        match client.insert(first_point, *first_payload) {
            Ok(()) => break,
            Err(e) => {
                assert!(Instant::now() < deadline, "insert never recovered: {e}");
                std::thread::sleep(Duration::from_millis(100));
                client = NetClient::connect(client_addr, Duration::from_secs(10))
                    .expect("reconnect client");
            }
        }
    }
    reference.insert(first_point, *first_payload);
    for (point, payload) in &batch2[1..] {
        client.insert(point, *payload).expect("post-crash insert");
        reference.insert(point, *payload);
    }

    // Byte-identical k-NN across the crash: exact f64 distances, exact
    // payloads, exact order.
    for (query, _) in points.iter().step_by(17) {
        let got = client.knn(query, 9).expect("net knn");
        let want: Vec<(f64, u64)> = reference
            .knn(query, 9)
            .into_iter()
            .map(|n| (n.dist, n.payload))
            .collect();
        assert_eq!(got, want, "knn around {query:?}");
    }

    let stats = client.stats().expect("net stats");
    assert_eq!(
        stats.iter().map(|(_, p)| p.points).sum::<usize>(),
        points.len(),
        "no acknowledged point may be lost across the crash"
    );
    assert_eq!(client.verify().expect("net verify"), Vec::<String>::new());

    // The offline inspector agrees with what the live recovery rebuilt.
    let report = Command::new(env!("CARGO_BIN_EXE_semtree"))
        .args(["recover", "--wal-dir", &wal_arg])
        .output()
        .expect("run semtree recover");
    assert!(
        report.status.success(),
        "recover exited with {}",
        report.status
    );
    let report = String::from_utf8_lossy(&report.stdout);
    assert!(report.contains("process-index: 1"), "{report}");
    assert!(report.contains("replayed:"), "{report}");

    client.shutdown().expect("net shutdown");
    // Child 1 is the SIGKILLed worker (already reaped); the coordinator
    // and the revived worker must exit cleanly.
    for child in &mut reaper.0 {
        let _ = child.wait();
    }
    reaper.0.clear();
    reference.shutdown();
    let _ = std::fs::remove_dir_all(&wal);
}
