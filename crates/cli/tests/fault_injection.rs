//! The durability headline: `kill -9` a worker process mid-workload,
//! restart it against the same `--wal-dir`, and require the recovered
//! cluster's k-NN answers to be **byte-identical** to an uncrashed
//! in-process reference over the same insertion history.

use std::io::{BufRead, BufReader, Lines};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::{Duration, Instant};

use semtree_cli::demo_sample;
use semtree_cluster::CostModel;
use semtree_dist::{
    CapacityPolicy, ClientResp, DistConfig, DistSemTree, NetClient, PipelinedClient, Query,
    QueryOutcome,
};

fn ref_insert(tree: &DistSemTree, point: &[f64], payload: u64) {
    tree.query(Query::insert(point, payload))
        .and_then(QueryOutcome::inserted)
        .expect("reference insert");
}

fn ref_knn_pairs(tree: &DistSemTree, query: &[f64], k: usize) -> Vec<(f64, u64)> {
    tree.query(Query::knn(query, k))
        .and_then(QueryOutcome::neighbors)
        .expect("reference knn")
        .into_iter()
        .map(|n| (n.dist, n.payload))
        .collect()
}

const DIMS: usize = 2;
const BUCKET: usize = 8;
const PARTITIONS: usize = 3;
const SAMPLE_SIZE: usize = 64;
const SEED: u64 = 11;
const CAPACITY: usize = 70;

/// Kills the spawned processes when the test panics mid-way.
struct Reaper(Vec<Child>);

impl Drop for Reaper {
    fn drop(&mut self) {
        for child in &mut self.0 {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

fn spawn(args: &[&str]) -> (Child, Lines<BufReader<ChildStdout>>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_semtree"))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn semtree");
    let stdout = child.stdout.take().expect("piped stdout");
    (child, BufReader::new(stdout).lines())
}

fn expect_line(lines: &mut Lines<BufReader<ChildStdout>>, prefix: &str) -> String {
    for line in lines {
        let line = line.expect("child stdout");
        if let Some(rest) = line.strip_prefix(prefix) {
            return rest.trim().to_string();
        }
    }
    panic!("child exited before printing '{prefix}'");
}

/// WAL location: `SEMTREE_FAULT_WAL_DIR` when set (CI uploads it as an
/// artifact on failure), a per-process temp dir otherwise. Each test
/// gets its own `label` subdirectory so concurrently running tests
/// never clean up each other's WALs.
fn wal_dir(label: &str) -> PathBuf {
    let base = match std::env::var_os("SEMTREE_FAULT_WAL_DIR") {
        Some(dir) => PathBuf::from(dir),
        None => std::env::temp_dir().join(format!("semtree-fault-wal-{}", std::process::id())),
    };
    base.join(label)
}

#[test]
fn sigkilled_worker_recovers_and_serves_identical_results() {
    let wal = wal_dir("sigkill");
    let _ = std::fs::remove_dir_all(&wal);
    let wal_arg = wal.to_string_lossy().into_owned();

    let (serve, mut serve_lines) = spawn(&[
        "serve",
        "--workers",
        "1",
        "--partitions",
        &PARTITIONS.to_string(),
        "--dims",
        &DIMS.to_string(),
        "--bucket",
        &BUCKET.to_string(),
        "--capacity",
        &CAPACITY.to_string(),
        "--sample",
        &SAMPLE_SIZE.to_string(),
        "--seed",
        &SEED.to_string(),
    ]);
    let mut reaper = Reaper(vec![serve]);

    let cluster_addr = expect_line(&mut serve_lines, "cluster-addr:");
    let (worker, mut worker_lines) =
        spawn(&["worker", "--join", &cluster_addr, "--wal-dir", &wal_arg]);
    reaper.0.push(worker);
    expect_line(&mut worker_lines, "worker: process");
    std::thread::spawn(move || for _ in worker_lines.by_ref() {});

    let client_addr: SocketAddr = expect_line(&mut serve_lines, "client-addr:")
        .parse()
        .expect("client address");
    std::thread::spawn(move || for _ in serve_lines.by_ref() {});

    // The uncrashed reference: same config, fan-out sample, and insertion
    // order — the recovered cluster must match it bit for bit.
    let config = DistConfig::new(DIMS)
        .with_bucket_size(BUCKET)
        .with_max_partitions(PARTITIONS.max(64))
        .with_capacity(CapacityPolicy::MaxPoints(CAPACITY));
    let sample = demo_sample(DIMS, SAMPLE_SIZE, SEED);
    let reference = DistSemTree::with_fanout(config, CostModel::zero(), PARTITIONS, &sample);

    let mut client = NetClient::connect(client_addr, Duration::from_secs(10)).expect("connect");
    let points: Vec<(Vec<f64>, u64)> = demo_sample(DIMS, 260, SEED ^ 0xfau64)
        .into_iter()
        .zip(0..)
        .collect();
    let (batch1, batch2) = points.split_at(160);

    for (point, payload) in batch1 {
        client.insert(point, *payload).expect("pre-crash insert");
        ref_insert(&reference, point, *payload);
    }

    // SIGKILL the worker at a quiescent point: every acknowledged insert
    // is already in its WAL, and nothing is in flight.
    let worker = &mut reaper.0[1];
    worker.kill().expect("SIGKILL worker");
    worker.wait().expect("reap worker");

    // Restart it against the same WAL directory. It must replay its
    // partitions and rejoin under its old process index and routes.
    let (revived, mut revived_lines) =
        spawn(&["worker", "--join", &cluster_addr, "--wal-dir", &wal_arg]);
    reaper.0.push(revived);
    let recovered = expect_line(&mut revived_lines, "recovered-partitions:");
    assert!(
        !recovered.is_empty(),
        "restarted worker must report recovered partitions"
    );
    std::thread::spawn(move || for _ in revived_lines.by_ref() {});

    // The coordinator evicts its dead connection during the rejoin
    // handshake; retry the first post-restart insert until the revived
    // routes answer.
    let deadline = Instant::now() + Duration::from_secs(20);
    let (first_point, first_payload) = &batch2[0];
    loop {
        match client.insert(first_point, *first_payload) {
            Ok(()) => break,
            Err(e) => {
                assert!(Instant::now() < deadline, "insert never recovered: {e}");
                std::thread::sleep(Duration::from_millis(100));
                client = NetClient::connect(client_addr, Duration::from_secs(10))
                    .expect("reconnect client");
            }
        }
    }
    ref_insert(&reference, first_point, *first_payload);
    for (point, payload) in &batch2[1..] {
        client.insert(point, *payload).expect("post-crash insert");
        ref_insert(&reference, point, *payload);
    }

    // Byte-identical k-NN across the crash: exact f64 distances, exact
    // payloads, exact order.
    for (query, _) in points.iter().step_by(17) {
        let got = client.knn(query, 9).expect("net knn");
        let want = ref_knn_pairs(&reference, query, 9);
        assert_eq!(got, want, "knn around {query:?}");
    }

    let stats = client.stats().expect("net stats");
    assert_eq!(
        stats.iter().map(|(_, p)| p.points).sum::<usize>(),
        points.len(),
        "no acknowledged point may be lost across the crash"
    );
    assert_eq!(client.verify().expect("net verify"), Vec::<String>::new());

    // The offline inspector agrees with what the live recovery rebuilt.
    let report = Command::new(env!("CARGO_BIN_EXE_semtree"))
        .args(["recover", "--wal-dir", &wal_arg])
        .output()
        .expect("run semtree recover");
    assert!(
        report.status.success(),
        "recover exited with {}",
        report.status
    );
    let report = String::from_utf8_lossy(&report.stdout);
    assert!(report.contains("process-index: 1"), "{report}");
    assert!(report.contains("replayed:"), "{report}");

    client.shutdown().expect("net shutdown");
    // Child 1 is the SIGKILLed worker (already reaped); the coordinator
    // and the revived worker must exit cleanly.
    for child in &mut reaper.0 {
        let _ = child.wait();
    }
    reaper.0.clear();
    reference.shutdown();
    let _ = std::fs::remove_dir_all(&wal);
}

/// SIGKILL a worker while a pipelined client has a window of requests
/// in flight: every outstanding reply must resolve as a typed answer or
/// error (never a hang), and after the worker rejoins from its WAL the
/// same pipelined connection must produce byte-identical k-NN results.
#[test]
fn sigkill_with_pipelined_requests_in_flight_yields_typed_errors_then_recovers() {
    let wal = wal_dir("pipelined");
    let _ = std::fs::remove_dir_all(&wal);
    let wal_arg = wal.to_string_lossy().into_owned();

    let (serve, mut serve_lines) = spawn(&[
        "serve",
        "--workers",
        "1",
        "--partitions",
        &PARTITIONS.to_string(),
        "--dims",
        &DIMS.to_string(),
        "--bucket",
        &BUCKET.to_string(),
        "--capacity",
        &CAPACITY.to_string(),
        "--sample",
        &SAMPLE_SIZE.to_string(),
        "--seed",
        &SEED.to_string(),
    ]);
    let mut reaper = Reaper(vec![serve]);

    let cluster_addr = expect_line(&mut serve_lines, "cluster-addr:");
    let (worker, mut worker_lines) =
        spawn(&["worker", "--join", &cluster_addr, "--wal-dir", &wal_arg]);
    reaper.0.push(worker);
    expect_line(&mut worker_lines, "worker: process");
    std::thread::spawn(move || for _ in worker_lines.by_ref() {});

    let client_addr: SocketAddr = expect_line(&mut serve_lines, "client-addr:")
        .parse()
        .expect("client address");
    std::thread::spawn(move || for _ in serve_lines.by_ref() {});

    let config = DistConfig::new(DIMS)
        .with_bucket_size(BUCKET)
        .with_max_partitions(PARTITIONS.max(64))
        .with_capacity(CapacityPolicy::MaxPoints(CAPACITY));
    let sample = demo_sample(DIMS, SAMPLE_SIZE, SEED);
    let reference = DistSemTree::with_fanout(config, CostModel::zero(), PARTITIONS, &sample);

    let mut seeder = NetClient::connect(client_addr, Duration::from_secs(10)).expect("connect");
    let points: Vec<(Vec<f64>, u64)> = demo_sample(DIMS, 160, SEED ^ 0xb0u64)
        .into_iter()
        .zip(0..)
        .collect();
    for (point, payload) in &points {
        seeder.insert(point, *payload).expect("seed insert");
        ref_insert(&reference, point, *payload);
    }

    let queries = demo_sample(DIMS, 24, SEED ^ 0xc1u64);
    let expected: Vec<Vec<(f64, u64)>> = queries
        .iter()
        .map(|q| ref_knn_pairs(&reference, q, 9))
        .collect();

    // Fill the pipeline, then SIGKILL the worker with the window still
    // in flight. Eight requests is enough depth to prove typed-error
    // delivery; each one routed to the dead worker can cost an executor
    // a full dial timeout, so a deeper window only slows the test.
    let mut pipelined =
        PipelinedClient::connect(client_addr, Duration::from_secs(10)).expect("pipelined connect");
    let in_flight = 8;
    let pending: Vec<_> = queries
        .iter()
        .take(in_flight)
        .map(|q| pipelined.knn(q, 9).expect("submit"))
        .collect();
    let worker = &mut reaper.0[1];
    worker.kill().expect("SIGKILL worker");
    worker.wait().expect("reap worker");

    // Every in-flight request resolves — as its answer (raced ahead of
    // the kill) or a typed error — within the deadline. No hangs, no
    // mis-correlated replies.
    for (i, reply) in pending.into_iter().enumerate() {
        match reply.wait_timeout(Duration::from_secs(30)) {
            Ok(ClientResp::Neighbors(got)) => {
                assert_eq!(got, expected[i], "a reply answered someone else's query");
            }
            Ok(ClientResp::Error(_)) | Err(_) => {}
            Ok(other) => panic!("query {i}: unexpected reply {other:?}"),
        }
    }

    // Revive the worker from its WAL; it must rejoin under its old
    // routes.
    let (revived, mut revived_lines) =
        spawn(&["worker", "--join", &cluster_addr, "--wal-dir", &wal_arg]);
    reaper.0.push(revived);
    let recovered = expect_line(&mut revived_lines, "recovered-partitions:");
    assert!(
        !recovered.is_empty(),
        "revived worker must recover from WAL"
    );
    std::thread::spawn(move || for _ in revived_lines.by_ref() {});

    // Poll over a fresh pipelined connection until the revived routes
    // answer again (each failed probe can burn a full dial timeout, so
    // the deadline is generous).
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut pipelined = loop {
        let mut candidate = PipelinedClient::connect(client_addr, Duration::from_secs(10))
            .expect("pipelined reconnect");
        let probe = candidate
            .knn(&queries[0], 9)
            .and_then(|p| p.wait_timeout(Duration::from_secs(10)));
        match probe {
            Ok(ClientResp::Neighbors(got)) if got == expected[0] => break candidate,
            outcome => {
                assert!(
                    Instant::now() < deadline,
                    "pipelined knn never recovered: {outcome:?}"
                );
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    };

    // Byte-identical answers across the crash, over one pipelined
    // window.
    let replies: Vec<_> = queries
        .iter()
        .map(|q| pipelined.knn(q, 9).expect("post-recovery submit"))
        .collect();
    for (i, reply) in replies.into_iter().enumerate() {
        let got = reply.wait_neighbors().expect("post-recovery reply");
        assert_eq!(got, expected[i], "knn around {:?}", queries[i]);
    }
    drop(pipelined);

    seeder.shutdown().expect("net shutdown");
    for child in &mut reaper.0 {
        let _ = child.wait();
    }
    reaper.0.clear();
    reference.shutdown();
    let _ = std::fs::remove_dir_all(&wal);
}
