//! The real thing: one coordinator and two worker **OS processes**
//! connected over loopback TCP, serving a 3-partition distributed tree
//! whose results must be byte-identical to an in-process reference.

use std::io::{BufRead, BufReader, Lines};
use std::net::SocketAddr;
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::Duration;

use semtree_cli::demo_sample;
use semtree_cluster::CostModel;
use semtree_dist::{DistConfig, DistSemTree, NetClient, Query, QueryOutcome};

fn ref_insert(tree: &DistSemTree, point: &[f64], payload: u64) {
    tree.query(Query::insert(point, payload))
        .and_then(QueryOutcome::inserted)
        .expect("reference insert");
}

fn ref_pairs(tree: &DistSemTree, query: Query) -> Vec<(f64, u64)> {
    tree.query(query)
        .and_then(QueryOutcome::neighbors)
        .expect("reference query")
        .into_iter()
        .map(|n| (n.dist, n.payload))
        .collect()
}

const DIMS: usize = 2;
const BUCKET: usize = 8;
const PARTITIONS: usize = 3;
const SAMPLE_SIZE: usize = 64;
const SEED: u64 = 9;

/// Kills the spawned processes when the test panics mid-way.
struct Reaper(Vec<Child>);

impl Drop for Reaper {
    fn drop(&mut self) {
        for child in &mut self.0 {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

fn spawn(args: &[&str]) -> (Child, Lines<BufReader<ChildStdout>>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_semtree"))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn semtree");
    let stdout = child.stdout.take().expect("piped stdout");
    (child, BufReader::new(stdout).lines())
}

fn expect_line(lines: &mut Lines<BufReader<ChildStdout>>, prefix: &str) -> String {
    for line in lines {
        let line = line.expect("child stdout");
        if let Some(rest) = line.strip_prefix(prefix) {
            return rest.trim().to_string();
        }
    }
    panic!("child exited before printing '{prefix}'");
}

fn test_points(n: usize) -> Vec<(Vec<f64>, u64)> {
    demo_sample(DIMS, n, SEED ^ 0xdead_beef)
        .into_iter()
        .zip(0..)
        .collect()
}

#[test]
fn coordinator_and_two_worker_processes_serve_identical_results() {
    let (serve, mut serve_lines) = spawn(&[
        "serve",
        "--workers",
        "2",
        "--partitions",
        &PARTITIONS.to_string(),
        "--dims",
        &DIMS.to_string(),
        "--bucket",
        &BUCKET.to_string(),
        "--sample",
        &SAMPLE_SIZE.to_string(),
        "--seed",
        &SEED.to_string(),
    ]);
    let mut reaper = Reaper(vec![serve]);

    let cluster_addr = expect_line(&mut serve_lines, "cluster-addr:");
    for _ in 0..2 {
        let (worker, mut worker_lines) = spawn(&["worker", "--join", &cluster_addr]);
        reaper.0.push(worker);
        let banner = expect_line(&mut worker_lines, "worker: process");
        // Keep draining in the background so the worker never blocks on a
        // full stdout pipe.
        std::thread::spawn(move || for _ in worker_lines.by_ref() {});
        assert!(!banner.is_empty());
    }
    let client_addr: SocketAddr = expect_line(&mut serve_lines, "client-addr:")
        .parse()
        .expect("client address");
    std::thread::spawn(move || for _ in serve_lines.by_ref() {});

    // The in-process reference: same config, same fan-out sample, same
    // insertion order — everything downstream must match bit for bit.
    let config = DistConfig::new(DIMS).with_bucket_size(BUCKET);
    let sample = demo_sample(DIMS, SAMPLE_SIZE, SEED);
    let reference = DistSemTree::with_fanout(config, CostModel::zero(), PARTITIONS, &sample);

    let mut client = NetClient::connect(client_addr, Duration::from_secs(10)).expect("connect");
    let points = test_points(200);
    for (point, payload) in &points {
        client.insert(point, *payload).expect("net insert");
        ref_insert(&reference, point, *payload);
    }

    for (query, _) in points.iter().step_by(23) {
        let got = client.knn(query, 7).expect("net knn");
        let want = ref_pairs(&reference, Query::knn(query, 7));
        assert_eq!(got, want, "knn around {query:?}");

        let got = client.range(query, 15.0).expect("net range");
        let want = ref_pairs(&reference, Query::range(query, 15.0));
        assert_eq!(got, want, "range around {query:?}");
    }

    let stats = client.stats().expect("net stats");
    assert_eq!(stats.len(), PARTITIONS);
    assert_eq!(
        stats.iter().map(|(_, p)| p.points).sum::<usize>(),
        points.len()
    );
    // The root partition lives on the coordinator (process 0); the data
    // partitions live on the two worker processes.
    let processes: std::collections::BTreeSet<u32> =
        stats.iter().map(|&(pid, _)| pid >> 16).collect();
    assert_eq!(
        processes.into_iter().collect::<Vec<_>>(),
        vec![0, 1, 2],
        "partitions must span all three OS processes"
    );

    assert_eq!(client.verify().expect("net verify"), Vec::<String>::new());

    let metrics = client.metrics().expect("net metrics");
    let (messages, bytes) = (metrics.messages, metrics.bytes);
    assert!(messages > 0);
    assert!(
        bytes > messages * 4,
        "byte count must reflect actual encoded frames, got {bytes} over {messages} messages"
    );
    assert!(
        metrics.response_bytes > 0,
        "the k-NN answers must have been metered on the way back"
    );
    assert!(
        metrics.latency_count > 0,
        "served requests must land in the latency histogram"
    );
    assert!(metrics.p99_nanos >= metrics.p50_nanos);

    client.shutdown().expect("net shutdown");
    for child in &mut reaper.0 {
        let status = child.wait().expect("child exit");
        assert!(status.success(), "child exited with {status}");
    }
    reaper.0.clear();
    reference.shutdown();
}
