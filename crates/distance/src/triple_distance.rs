//! Eq. 1: the weighted triple distance.

use std::sync::Arc;

use semtree_model::Triple;

use crate::registry::VocabularyRegistry;
use crate::term_distance::TermDistanceConfig;
use crate::weights::Weights;

/// The paper's semantic distance between two triples.
///
/// Cheap to clone (the registry is shared behind an `Arc`), `Send + Sync`,
/// and usable directly as the distance oracle of the FastMap embedding.
#[derive(Debug, Clone)]
pub struct TripleDistance {
    weights: Weights,
    terms: TermDistanceConfig,
    registry: Arc<VocabularyRegistry>,
}

impl TripleDistance {
    /// Build with default element-distance configuration.
    #[must_use]
    pub fn new(weights: Weights, registry: Arc<VocabularyRegistry>) -> Self {
        TripleDistance {
            weights,
            terms: TermDistanceConfig::default(),
            registry,
        }
    }

    /// Build with an explicit element-distance configuration.
    #[must_use]
    pub fn with_config(
        weights: Weights,
        terms: TermDistanceConfig,
        registry: Arc<VocabularyRegistry>,
    ) -> Self {
        TripleDistance {
            weights,
            terms,
            registry,
        }
    }

    /// The weight set in use.
    #[must_use]
    pub fn weights(&self) -> Weights {
        self.weights
    }

    /// The element-distance configuration in use.
    #[must_use]
    pub fn term_config(&self) -> &TermDistanceConfig {
        &self.terms
    }

    /// The vocabulary registry in use.
    #[must_use]
    pub fn registry(&self) -> &Arc<VocabularyRegistry> {
        &self.registry
    }

    /// `d(ti, tj)` per Eq. 1, in `[0, 1]`.
    #[must_use]
    pub fn distance(&self, a: &Triple, b: &Triple) -> f64 {
        let ds = self.terms.distance(&self.registry, &a.subject, &b.subject);
        let dp = self
            .terms
            .distance(&self.registry, &a.predicate, &b.predicate);
        let dobj = self.terms.distance(&self.registry, &a.object, &b.object);
        self.weights.combine(ds, dp, dobj)
    }
}

#[cfg(test)]
mod tests {
    use semtree_model::Term;
    use semtree_vocab::wordnet;

    use super::*;

    fn dist() -> TripleDistance {
        let mut reg = VocabularyRegistry::new();
        reg.register_standard(Arc::new(wordnet::mini_taxonomy()));
        TripleDistance::new(Weights::default(), Arc::new(reg))
    }

    fn t(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Term::literal(s), Term::concept(p), Term::concept(o))
    }

    #[test]
    fn identity_is_zero() {
        let d = dist();
        let a = t("OBSW001", "accept", "start");
        assert_eq!(d.distance(&a, &a), 0.0);
    }

    #[test]
    fn symmetric() {
        let d = dist();
        let a = t("OBSW001", "accept", "start");
        let b = t("OBSW002", "send", "message");
        assert!((d.distance(&a, &b) - d.distance(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn bounded_by_unit_interval() {
        let d = dist();
        let a = t("OBSW001", "accept", "start");
        let b = t("completely-different", "antenna", "telemetry_frame");
        let v = d.distance(&a, &b);
        assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    fn paper_motivating_example_ranks_antinomy_near() {
        // (OBSW001, accept_cmd, start-up) should be semantically close to
        // (OBSW001, block_cmd, start-up) — "the result set … contains all
        // the triples semantically close to the target one" — and far from
        // an unrelated triple.
        let d = dist();
        let req = t("OBSW001", "accept", "start");
        let target = t("OBSW001", "block", "start");
        let unrelated = t("PSU42", "monitor", "telemetry_frame");
        assert!(d.distance(&req, &target) < d.distance(&req, &unrelated));
    }

    #[test]
    fn predicate_weight_controls_predicate_sensitivity() {
        let mut reg = VocabularyRegistry::new();
        reg.register_standard(Arc::new(wordnet::mini_taxonomy()));
        let reg = Arc::new(reg);
        let uniform = TripleDistance::new(Weights::default(), Arc::clone(&reg));
        let heavy = TripleDistance::new(Weights::predicate_heavy(), reg);

        let a = t("OBSW001", "accept", "start");
        let b = t("OBSW001", "antenna", "start"); // only predicate differs
        assert!(heavy.distance(&a, &b) > uniform.distance(&a, &b));
    }

    #[test]
    fn subject_only_difference_scales_with_alpha() {
        let d = dist();
        let a = t("OBSW001", "accept", "start");
        let b = t("OBSW009", "accept", "start");
        // Only the subject differs: distance = α · ds.
        let expected = d.weights().alpha() * (1.0 / 7.0);
        assert!((d.distance(&a, &b) - expected).abs() < 1e-12);
    }

    #[test]
    fn clone_shares_registry() {
        let d = dist();
        let d2 = d.clone();
        assert!(Arc::ptr_eq(d.registry(), d2.registry()));
    }
}
