//! The α/β/γ weight set of Eq. 1.

use std::fmt;

const EPS: f64 = 1e-9;

/// Weights `(α, β, γ)` for the subject, predicate and object sub-distances.
/// Invariants (validated at construction): each weight is non-negative and
/// they sum to 1, exactly as the paper requires (`α+β+γ = 1`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weights {
    alpha: f64,
    beta: f64,
    gamma: f64,
}

/// Weight-validation failures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightsError {
    /// A weight was negative or non-finite.
    Invalid(f64),
    /// The weights do not sum to 1.
    BadSum(f64),
}

impl fmt::Display for WeightsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WeightsError::Invalid(w) => write!(f, "weight {w} is negative or non-finite"),
            WeightsError::BadSum(s) => write!(f, "weights sum to {s}, expected 1"),
        }
    }
}

impl std::error::Error for WeightsError {}

impl Weights {
    /// Validated construction.
    pub fn new(alpha: f64, beta: f64, gamma: f64) -> Result<Self, WeightsError> {
        for w in [alpha, beta, gamma] {
            if !w.is_finite() || w < 0.0 {
                return Err(WeightsError::Invalid(w));
            }
        }
        let sum = alpha + beta + gamma;
        if (sum - 1.0).abs() > EPS {
            return Err(WeightsError::BadSum(sum));
        }
        Ok(Weights { alpha, beta, gamma })
    }

    /// Build from arbitrary non-negative magnitudes, normalising to sum 1.
    pub fn normalised(alpha: f64, beta: f64, gamma: f64) -> Result<Self, WeightsError> {
        for w in [alpha, beta, gamma] {
            if !w.is_finite() || w < 0.0 {
                return Err(WeightsError::Invalid(w));
            }
        }
        let sum = alpha + beta + gamma;
        if sum <= EPS {
            return Err(WeightsError::BadSum(sum));
        }
        Ok(Weights {
            alpha: alpha / sum,
            beta: beta / sum,
            gamma: gamma / sum,
        })
    }

    /// Subject weight α.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Predicate weight β.
    #[must_use]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Object weight γ.
    #[must_use]
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// A predicate-leaning preset (α=0.25, β=0.5, γ=0.25) — useful for the
    /// inconsistency case study where the predicate carries the antinomy.
    #[must_use]
    pub fn predicate_heavy() -> Self {
        Weights {
            alpha: 0.25,
            beta: 0.5,
            gamma: 0.25,
        }
    }

    /// Combine the three sub-distances.
    #[must_use]
    pub fn combine(&self, ds: f64, dp: f64, dobj: f64) -> f64 {
        self.alpha * ds + self.beta * dp + self.gamma * dobj
    }
}

impl Default for Weights {
    /// Uniform weights (1/3 each).
    fn default() -> Self {
        Weights {
            alpha: 1.0 / 3.0,
            beta: 1.0 / 3.0,
            gamma: 1.0 / 3.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn valid_construction() {
        let w = Weights::new(0.2, 0.5, 0.3).unwrap();
        assert_eq!(w.alpha(), 0.2);
        assert_eq!(w.beta(), 0.5);
        assert_eq!(w.gamma(), 0.3);
    }

    #[test]
    fn bad_sum_rejected() {
        assert!(matches!(
            Weights::new(0.2, 0.2, 0.2),
            Err(WeightsError::BadSum(_))
        ));
    }

    #[test]
    fn negative_and_nan_rejected() {
        assert!(matches!(
            Weights::new(-0.1, 0.6, 0.5),
            Err(WeightsError::Invalid(_))
        ));
        assert!(matches!(
            Weights::new(f64::NAN, 0.5, 0.5),
            Err(WeightsError::Invalid(_))
        ));
        assert!(Weights::normalised(f64::INFINITY, 1.0, 1.0).is_err());
    }

    #[test]
    fn normalised_scales() {
        let w = Weights::normalised(1.0, 2.0, 1.0).unwrap();
        assert!((w.alpha() - 0.25).abs() < 1e-12);
        assert!((w.beta() - 0.5).abs() < 1e-12);
        assert!(Weights::normalised(0.0, 0.0, 0.0).is_err());
    }

    #[test]
    fn default_is_uniform() {
        let w = Weights::default();
        assert!((w.alpha() + w.beta() + w.gamma() - 1.0).abs() < 1e-12);
        assert!((w.alpha() - w.beta()).abs() < 1e-12);
    }

    #[test]
    fn combine_is_convex() {
        let w = Weights::predicate_heavy();
        assert_eq!(w.combine(0.0, 0.0, 0.0), 0.0);
        assert!((w.combine(1.0, 1.0, 1.0) - 1.0).abs() < 1e-12);
        assert!((w.combine(0.0, 1.0, 0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn errors_display() {
        assert!(WeightsError::Invalid(-1.0).to_string().contains("negative"));
        assert!(WeightsError::BadSum(0.6).to_string().contains("0.6"));
    }

    proptest! {
        #[test]
        fn normalised_always_sums_to_one(a in 0.01f64..10.0, b in 0.01f64..10.0, c in 0.01f64..10.0) {
            let w = Weights::normalised(a, b, c).unwrap();
            prop_assert!((w.alpha() + w.beta() + w.gamma() - 1.0).abs() < 1e-9);
        }

        #[test]
        fn combine_stays_in_unit_interval(
            a in 0.01f64..10.0, b in 0.01f64..10.0, c in 0.01f64..10.0,
            x in 0.0f64..=1.0, y in 0.0f64..=1.0, z in 0.0f64..=1.0,
        ) {
            let w = Weights::normalised(a, b, c).unwrap();
            let d = w.combine(x, y, z);
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&d));
        }
    }
}
