//! Prefix-keyed registry of taxonomies.

use std::collections::HashMap;
use std::sync::Arc;

use semtree_vocab::Taxonomy;

/// Maps vocabulary prefixes to taxonomies, mirroring the paper's "domain
/// specific and/or general vocabularies": `Fun:x` is resolved in the
/// taxonomy registered for `Fun`, while unprefixed concepts resolve in the
/// *standard* taxonomy.
#[derive(Debug, Clone, Default)]
pub struct VocabularyRegistry {
    by_prefix: HashMap<String, Arc<Taxonomy>>,
    standard: Option<Arc<Taxonomy>>,
}

impl VocabularyRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        VocabularyRegistry::default()
    }

    /// Register a taxonomy for a prefix (replacing any previous one).
    pub fn register(&mut self, prefix: impl Into<String>, taxonomy: Arc<Taxonomy>) {
        self.by_prefix.insert(prefix.into(), taxonomy);
    }

    /// Register the standard (unprefixed) taxonomy.
    pub fn register_standard(&mut self, taxonomy: Arc<Taxonomy>) {
        self.standard = Some(taxonomy);
    }

    /// Resolve a prefix (`None` → standard taxonomy).
    #[must_use]
    pub fn resolve(&self, prefix: Option<&str>) -> Option<&Arc<Taxonomy>> {
        match prefix {
            Some(p) => self.by_prefix.get(p),
            None => self.standard.as_ref(),
        }
    }

    /// Number of prefixed taxonomies registered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.by_prefix.len()
    }

    /// Whether nothing (not even a standard taxonomy) is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.by_prefix.is_empty() && self.standard.is_none()
    }

    /// Iterate registered prefixes.
    pub fn prefixes(&self) -> impl Iterator<Item = &str> {
        self.by_prefix.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tax(name: &str) -> Arc<Taxonomy> {
        let mut b = Taxonomy::builder(name);
        b.add("a", &[]);
        Arc::new(b.build().unwrap())
    }

    #[test]
    fn register_and_resolve() {
        let mut r = VocabularyRegistry::new();
        assert!(r.is_empty());
        r.register("Fun", tax("Fun"));
        assert_eq!(r.resolve(Some("Fun")).unwrap().name(), "Fun");
        assert!(r.resolve(Some("Ghost")).is_none());
        assert!(r.resolve(None).is_none());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn standard_taxonomy() {
        let mut r = VocabularyRegistry::new();
        r.register_standard(tax("std"));
        assert_eq!(r.resolve(None).unwrap().name(), "std");
        assert!(!r.is_empty());
        assert_eq!(r.len(), 0); // standard does not count as a prefix
    }

    #[test]
    fn reregistering_replaces() {
        let mut r = VocabularyRegistry::new();
        r.register("X", tax("first"));
        r.register("X", tax("second"));
        assert_eq!(r.resolve(Some("X")).unwrap().name(), "second");
    }

    #[test]
    fn prefixes_iterates() {
        let mut r = VocabularyRegistry::new();
        r.register("A", tax("A"));
        r.register("B", tax("B"));
        let mut ps: Vec<&str> = r.prefixes().collect();
        ps.sort_unstable();
        assert_eq!(ps, vec!["A", "B"]);
    }
}
