//! The paper's semantic distance between triples (Eq. 1):
//!
//! ```text
//! d(ti, tj) = α·ds(tiˢ, tjˢ) + β·dp(tiᵖ, tjᵖ) + γ·do(tiᵒ, tjᵒ),   α+β+γ = 1
//! ```
//!
//! Sub-distances dispatch per §III-A:
//! - both elements literals of the same type → a string distance
//!   ([`semtree_vocab::strings::StringMeasure`], Levenshtein by default);
//! - both elements concepts → a taxonomy similarity
//!   ([`semtree_vocab::similarity::SimilarityMeasure`], Wu & Palmer by
//!   default), resolved through a [`VocabularyRegistry`] keyed by the
//!   concept's prefix;
//! - anything else (mixed kinds, different literal types, different
//!   vocabularies) → a configurable *mixed penalty*, 1.0 by default.
//!
//! All sub-distances land in `[0, 1]`, and the weights are validated to sum
//! to 1, so the triple distance is itself in `[0, 1]` — a property the
//! FastMap embedding and the experiments rely on and the test-suite checks
//! by property testing.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use semtree_model::{Term, Triple};
//! use semtree_vocab::wordnet;
//! use semtree_distance::{TripleDistance, VocabularyRegistry, Weights};
//!
//! let mut reg = VocabularyRegistry::new();
//! reg.register_standard(Arc::new(wordnet::mini_taxonomy()));
//! let dist = TripleDistance::new(Weights::default(), Arc::new(reg));
//!
//! let a = Triple::new(Term::literal("OBSW001"), Term::concept("accept"), Term::concept("start"));
//! let b = Triple::new(Term::literal("OBSW001"), Term::concept("block"),  Term::concept("start"));
//! let c = Triple::new(Term::literal("PSU9"),    Term::concept("send"),   Term::concept("message"));
//!
//! assert_eq!(dist.distance(&a, &a), 0.0);
//! assert!(dist.distance(&a, &b) < dist.distance(&a, &c));
//! ```

mod cache;
mod matrix;
mod registry;
mod term_distance;
mod triple_distance;
mod weights;

pub use cache::MemoizedDistance;
pub use matrix::DistanceMatrix;
pub use registry::VocabularyRegistry;
pub use term_distance::TermDistanceConfig;
pub use triple_distance::TripleDistance;
pub use weights::{Weights, WeightsError};
