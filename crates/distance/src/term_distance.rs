//! Sub-distance between two triple elements (§III-A's two "main cases").

use semtree_model::Term;
use semtree_vocab::similarity::{Similarity, SimilarityMeasure};
use semtree_vocab::strings::StringMeasure;

use crate::registry::VocabularyRegistry;

/// Configuration of the element-level distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TermDistanceConfig {
    /// Taxonomy measure used when both elements are concepts of the same
    /// vocabulary (paper default: Wu & Palmer).
    pub semantic: SimilarityMeasure,
    /// String measure used when both elements are literals of the same type
    /// (paper default: Levenshtein).
    pub string: StringMeasure,
    /// Distance charged when the two elements are not comparable: mixed
    /// kinds (literal vs concept), literals of different types, or concepts
    /// from different vocabularies. The paper leaves this case open; 1.0
    /// (maximally distant) is the conservative default.
    pub mixed_penalty: f64,
    /// When a concept is missing from its taxonomy, fall back to the string
    /// measure on the concept names instead of the mixed penalty. Keeps
    /// out-of-vocabulary concepts comparable (useful with noisy NLP output).
    pub string_fallback: bool,
}

impl Default for TermDistanceConfig {
    fn default() -> Self {
        TermDistanceConfig {
            semantic: SimilarityMeasure::WuPalmer,
            string: StringMeasure::Levenshtein,
            mixed_penalty: 1.0,
            string_fallback: true,
        }
    }
}

impl TermDistanceConfig {
    /// Distance in `[0, 1]` between two triple elements.
    #[must_use]
    pub fn distance(&self, registry: &VocabularyRegistry, a: &Term, b: &Term) -> f64 {
        match (a, b) {
            (Term::Literal(la), Term::Literal(lb)) => {
                if la.dtype == lb.dtype {
                    self.string.distance(&la.value, &lb.value)
                } else {
                    self.mixed_penalty
                }
            }
            (Term::Concept(ca), Term::Concept(cb)) => {
                if ca.prefix != cb.prefix {
                    return self.mixed_penalty;
                }
                let Some(tax) = registry.resolve(ca.prefix.as_deref()) else {
                    return self.fallback(&ca.name, &cb.name);
                };
                match (tax.id_of(&ca.name), tax.id_of(&cb.name)) {
                    (Some(ia), Some(ib)) => 1.0 - self.semantic.similarity_ids(tax, ia, ib),
                    _ => self.fallback(&ca.name, &cb.name),
                }
            }
            _ => self.mixed_penalty,
        }
    }

    fn fallback(&self, a: &str, b: &str) -> f64 {
        if self.string_fallback {
            self.string.distance(a, b)
        } else {
            self.mixed_penalty
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use semtree_model::{Literal, LiteralType};
    use semtree_vocab::wordnet;

    use super::*;

    fn registry() -> VocabularyRegistry {
        let mut r = VocabularyRegistry::new();
        r.register_standard(Arc::new(wordnet::mini_taxonomy()));
        r.register("Fun", Arc::new(wordnet::mini_taxonomy()));
        r
    }

    #[test]
    fn literal_same_type_uses_string_measure() {
        let cfg = TermDistanceConfig::default();
        let r = registry();
        let d = cfg.distance(&r, &Term::literal("OBSW001"), &Term::literal("OBSW002"));
        assert!((d - 1.0 / 7.0).abs() < 1e-12); // one edit over max length 7
        assert_eq!(
            cfg.distance(&r, &Term::literal("x"), &Term::literal("x")),
            0.0
        );
    }

    #[test]
    fn literal_different_type_is_mixed() {
        let cfg = TermDistanceConfig::default();
        let r = registry();
        let a = Term::Literal(Literal::typed("42", LiteralType::Integer));
        let b = Term::Literal(Literal::typed("42", LiteralType::String));
        assert_eq!(cfg.distance(&r, &a, &b), cfg.mixed_penalty);
    }

    #[test]
    fn concepts_same_vocab_use_taxonomy() {
        let cfg = TermDistanceConfig::default();
        let r = registry();
        let near = cfg.distance(&r, &Term::concept("accept"), &Term::concept("reject"));
        let far = cfg.distance(&r, &Term::concept("accept"), &Term::concept("antenna"));
        assert!(near < far);
        assert_eq!(
            cfg.distance(&r, &Term::concept("accept"), &Term::concept("accept")),
            0.0
        );
    }

    #[test]
    fn concepts_different_vocab_are_mixed() {
        let cfg = TermDistanceConfig::default();
        let r = registry();
        let d = cfg.distance(
            &r,
            &Term::concept_in("Fun", "accept"),
            &Term::concept("accept"),
        );
        assert_eq!(d, cfg.mixed_penalty);
    }

    #[test]
    fn unknown_concept_falls_back_to_string() {
        let cfg = TermDistanceConfig::default();
        let r = registry();
        let d = cfg.distance(&r, &Term::concept("acceptx"), &Term::concept("accepty"));
        assert!(
            d < 1.0,
            "string fallback should see the near-identical names"
        );

        let strict = TermDistanceConfig {
            string_fallback: false,
            ..cfg
        };
        assert_eq!(
            strict.distance(&r, &Term::concept("acceptx"), &Term::concept("accepty")),
            1.0
        );
    }

    #[test]
    fn unregistered_vocabulary_falls_back() {
        let cfg = TermDistanceConfig::default();
        let r = registry();
        let d = cfg.distance(
            &r,
            &Term::concept_in("Ghost", "same"),
            &Term::concept_in("Ghost", "same"),
        );
        assert_eq!(d, 0.0); // identical names under string fallback
    }

    #[test]
    fn mixed_kind_is_penalised() {
        let cfg = TermDistanceConfig::default();
        let r = registry();
        assert_eq!(
            cfg.distance(&r, &Term::literal("accept"), &Term::concept("accept")),
            cfg.mixed_penalty
        );
    }

    #[test]
    fn distance_is_symmetric_across_kinds() {
        let cfg = TermDistanceConfig::default();
        let r = registry();
        let terms = [
            Term::literal("OBSW001"),
            Term::concept("accept"),
            Term::concept_in("Fun", "send"),
            Term::Literal(Literal::typed("5", LiteralType::Integer)),
        ];
        for a in &terms {
            for b in &terms {
                let d1 = cfg.distance(&r, a, b);
                let d2 = cfg.distance(&r, b, a);
                assert!((d1 - d2).abs() < 1e-12, "asymmetric for {a} / {b}");
            }
        }
    }
}
