//! Condensed pairwise distance matrices.

use semtree_model::Triple;

use crate::triple_distance::TripleDistance;

/// A symmetric pairwise distance matrix stored in condensed (upper-triangle)
/// form: `n·(n−1)/2` entries for `n` objects. Used by the experiments to
/// pick range-query radii from distance quantiles and to measure embedding
/// stress.
#[derive(Debug, Clone)]
pub struct DistanceMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DistanceMatrix {
    /// Compute the full matrix for a set of triples.
    #[must_use]
    pub fn compute(dist: &TripleDistance, triples: &[Triple]) -> Self {
        let n = triples.len();
        let mut data = Vec::with_capacity(n * n.saturating_sub(1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                data.push(dist.distance(&triples[i], &triples[j]));
            }
        }
        DistanceMatrix { n, data }
    }

    /// Build from a generic pairwise function over indices.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(n * n.saturating_sub(1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                data.push(f(i, j));
            }
        }
        DistanceMatrix { n, data }
    }

    /// Number of objects.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix covers fewer than two objects.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n < 2
    }

    /// Distance between objects `i` and `j` (0 on the diagonal).
    ///
    /// # Panics
    /// Panics if `i` or `j` is out of range.
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of range");
        if i == j {
            return 0.0;
        }
        let (lo, hi) = if i < j { (i, j) } else { (j, i) };
        // Condensed index of (lo, hi): entries for rows < lo, then offset.
        let idx = lo * self.n - lo * (lo + 1) / 2 + (hi - lo - 1);
        self.data[idx]
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) of the off-diagonal distances, by the
    /// nearest-rank method. Returns `None` for fewer than two objects.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.data.is_empty() {
            return None;
        }
        let mut sorted = self.data.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("distances are finite"));
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Some(sorted[rank - 1])
    }

    /// Mean off-diagonal distance (`None` for fewer than two objects).
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.data.is_empty() {
            None
        } else {
            Some(self.data.iter().sum::<f64>() / self.data.len() as f64)
        }
    }

    /// Largest off-diagonal distance (`None` for fewer than two objects).
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        self.data.iter().copied().reduce(f64::max)
    }

    /// Iterate `(i, j, d)` over the upper triangle.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        let n = self.n;
        (0..n)
            .flat_map(move |i| ((i + 1)..n).map(move |j| (i, j)))
            .zip(self.data.iter().copied())
            .map(|((i, j), d)| (i, j, d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_points(points: &[f64]) -> DistanceMatrix {
        DistanceMatrix::from_fn(points.len(), |i, j| (points[i] - points[j]).abs())
    }

    #[test]
    fn get_matches_source_function() {
        let pts = [0.0, 1.0, 3.0, 7.0];
        let m = from_points(&pts);
        assert_eq!(m.len(), 4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(m.get(i, j), (pts[i] - pts[j]).abs(), "({i},{j})");
            }
        }
    }

    #[test]
    fn diagonal_is_zero_and_symmetric() {
        let m = from_points(&[2.0, 5.0, 9.0]);
        for i in 0..3 {
            assert_eq!(m.get(i, i), 0.0);
            for j in 0..3 {
                assert_eq!(m.get(i, j), m.get(j, i));
            }
        }
    }

    #[test]
    fn quantile_nearest_rank() {
        let m = from_points(&[0.0, 1.0, 2.0]); // distances 1, 2, 1
        assert_eq!(m.quantile(0.0), Some(1.0));
        assert_eq!(m.quantile(0.5), Some(1.0));
        assert_eq!(m.quantile(1.0), Some(2.0));
    }

    #[test]
    fn mean_and_max() {
        let m = from_points(&[0.0, 1.0, 2.0]);
        assert!((m.mean().unwrap() - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.max(), Some(2.0));
    }

    #[test]
    fn empty_and_singleton() {
        let m = from_points(&[]);
        assert!(m.is_empty());
        assert_eq!(m.quantile(0.5), None);
        assert_eq!(m.mean(), None);
        let m1 = from_points(&[4.0]);
        assert!(m1.is_empty());
        assert_eq!(m1.get(0, 0), 0.0);
    }

    #[test]
    fn iter_covers_upper_triangle() {
        let m = from_points(&[0.0, 1.0, 3.0]);
        let got: Vec<_> = m.iter().collect();
        assert_eq!(got, vec![(0, 1, 1.0), (0, 2, 3.0), (1, 2, 2.0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let _ = from_points(&[0.0, 1.0]).get(0, 5);
    }
}
