//! Memoization wrapper for index-keyed distance oracles.

use semtree_conc::sync::Mutex;
use std::collections::HashMap;

/// Memoizes a symmetric `f(i, j)` distance over object indices.
///
/// FastMap queries the same pairs repeatedly (every pivot pair is touched
/// once per dimension per object); memoizing the semantic distance — whose
/// taxonomy walks are far more expensive than a hash lookup — is the
/// standard trick and is thread-safe here (`Mutex`-guarded map, suitable
/// for the moderate cardinalities of pivot-pair reuse).
pub struct MemoizedDistance<F> {
    inner: F,
    cache: Mutex<HashMap<(u32, u32), f64>>,
}

impl<F: Fn(usize, usize) -> f64> MemoizedDistance<F> {
    /// Wrap a symmetric distance function.
    pub fn new(inner: F) -> Self {
        MemoizedDistance {
            inner,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// The distance, computed at most once per unordered pair.
    pub fn distance(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 0.0;
        }
        let key = if i < j {
            (i as u32, j as u32)
        } else {
            (j as u32, i as u32)
        };
        if let Some(&d) = self.cache.lock().get(&key) {
            return d;
        }
        let d = (self.inner)(i, j);
        self.cache.lock().insert(key, d);
        d
    }

    /// Number of cached pairs.
    pub fn cached_pairs(&self) -> usize {
        self.cache.lock().len()
    }

    /// Drop all cached entries.
    pub fn clear(&self) {
        self.cache.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    use super::*;

    #[test]
    fn computes_each_pair_once() {
        let calls = AtomicUsize::new(0);
        let m = MemoizedDistance::new(|i, j| {
            calls.fetch_add(1, Ordering::Relaxed);
            (i as f64 - j as f64).abs()
        });
        assert_eq!(m.distance(1, 4), 3.0);
        assert_eq!(m.distance(4, 1), 3.0); // symmetric key
        assert_eq!(m.distance(1, 4), 3.0);
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(m.cached_pairs(), 1);
    }

    #[test]
    fn identity_short_circuits() {
        let calls = AtomicUsize::new(0);
        let m = MemoizedDistance::new(|_, _| {
            calls.fetch_add(1, Ordering::Relaxed);
            1.0
        });
        assert_eq!(m.distance(3, 3), 0.0);
        assert_eq!(calls.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn clear_resets() {
        let m = MemoizedDistance::new(|i, j| (i + j) as f64);
        m.distance(0, 1);
        assert_eq!(m.cached_pairs(), 1);
        m.clear();
        assert_eq!(m.cached_pairs(), 0);
    }

    #[test]
    fn is_sync_when_inner_is() {
        fn assert_sync<T: Sync>(_: &T) {}
        let m = MemoizedDistance::new(|i, j| (i + j) as f64);
        assert_sync(&m);
    }
}
