//! Memoization wrapper for index-keyed distance oracles.

use std::collections::HashMap;

use semtree_conc::shim::{Shim, StdShim};

/// Shard count exponent the standard constructor uses: 2^4 = 16 shards,
/// enough that a pool of workers rarely collides on one lock.
const DEFAULT_SHARD_BITS: u32 = 4;

/// Largest supported shard exponent (2^16 shards).
const MAX_SHARD_BITS: u32 = 16;

/// splitmix64 over the packed pair — cheap, well-mixed shard selection.
fn pair_hash(key: (u32, u32)) -> u64 {
    let mut z = ((u64::from(key.0) << 32) | u64::from(key.1)).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One shard: an ordered pair of point indices → their distance.
type ShardMap = HashMap<(u32, u32), f64>;

/// Memoizes a symmetric `f(i, j)` distance over object indices.
///
/// FastMap queries the same pairs repeatedly (every pivot pair is touched
/// once per dimension per object); memoizing the semantic distance — whose
/// taxonomy walks are far more expensive than a hash lookup — is the
/// standard trick. The cache is **lock-sharded**: 2^s independent
/// `Mutex<HashMap>` shards keyed by a hash of the unordered pair, so the
/// parallel embedding workers in `semtree-par` don't serialize on one
/// global lock. Two workers racing on the same uncached pair may both
/// compute it — the oracle is pure, so the duplicate insert is the same
/// value and the race is benign.
///
/// The type is generic over the `semtree-conc` [`Shim`] (production code
/// uses the [`StdShim`] default via [`MemoizedDistance::new`]) so the
/// shard protocol is explored under the model checker in
/// `crates/conc/tests/models.rs`.
pub struct MemoizedDistance<F, S: Shim = StdShim> {
    inner: F,
    shards: Vec<S::Mutex<ShardMap>>,
    mask: u64,
}

impl<F: Fn(usize, usize) -> f64> MemoizedDistance<F, StdShim> {
    /// Wrap a symmetric distance function with the default shard count.
    pub fn new(inner: F) -> Self {
        Self::with_shard_bits(inner, DEFAULT_SHARD_BITS)
    }

    /// Wrap a symmetric distance function with `2^shard_bits` shards.
    pub fn with_shard_bits(inner: F, shard_bits: u32) -> Self {
        Self::new_in(inner, shard_bits)
    }
}

impl<F: Fn(usize, usize) -> f64, S: Shim> MemoizedDistance<F, S> {
    /// Shim-generic constructor: `2^shard_bits` shards under `S`'s
    /// mutexes. Production callers use [`MemoizedDistance::new`]; the
    /// model tests instantiate with `ModelShim` here.
    pub fn new_in(inner: F, shard_bits: u32) -> Self {
        let count = 1usize << shard_bits.min(MAX_SHARD_BITS);
        MemoizedDistance {
            inner,
            shards: (0..count).map(|_| S::mutex(HashMap::new())).collect(),
            mask: count as u64 - 1,
        }
    }

    /// The distance, computed at most once per unordered pair (modulo
    /// the benign same-value race described on the type).
    pub fn distance(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 0.0;
        }
        let key = if i < j {
            (i as u32, j as u32)
        } else {
            (j as u32, i as u32)
        };
        let idx = (pair_hash(key) & self.mask) as usize;
        if let Some(&d) = S::lock(&self.shards[idx]).get(&key) {
            return d;
        }
        let d = (self.inner)(i, j);
        S::lock(&self.shards[idx]).insert(key, d);
        d
    }

    /// Number of cached pairs across all shards.
    pub fn cached_pairs(&self) -> usize {
        self.shards.iter().map(|s| S::lock(s).len()).sum()
    }

    /// Number of shards the cache was built with.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Drop all cached entries.
    pub fn clear(&self) {
        for shard in &self.shards {
            S::lock(shard).clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    use super::*;

    #[test]
    fn computes_each_pair_once() {
        let calls = AtomicUsize::new(0);
        let m = MemoizedDistance::new(|i, j| {
            calls.fetch_add(1, Ordering::Relaxed);
            (i as f64 - j as f64).abs()
        });
        assert_eq!(m.distance(1, 4), 3.0);
        assert_eq!(m.distance(4, 1), 3.0); // symmetric key
        assert_eq!(m.distance(1, 4), 3.0);
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(m.cached_pairs(), 1);
    }

    #[test]
    fn identity_short_circuits() {
        let calls = AtomicUsize::new(0);
        let m = MemoizedDistance::new(|_, _| {
            calls.fetch_add(1, Ordering::Relaxed);
            1.0
        });
        assert_eq!(m.distance(3, 3), 0.0);
        assert_eq!(calls.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn clear_resets() {
        let m = MemoizedDistance::new(|i, j| (i + j) as f64);
        m.distance(0, 1);
        assert_eq!(m.cached_pairs(), 1);
        m.clear();
        assert_eq!(m.cached_pairs(), 0);
    }

    #[test]
    fn is_sync_when_inner_is() {
        fn assert_sync<T: Sync>(_: &T) {}
        let m = MemoizedDistance::new(|i, j| (i + j) as f64);
        assert_sync(&m);
    }

    #[test]
    fn shards_partition_the_key_space() {
        let m = MemoizedDistance::with_shard_bits(|i, j| (i * 31 + j) as f64, 3);
        assert_eq!(m.shard_count(), 8);
        for i in 0..40 {
            for j in (i + 1)..40 {
                m.distance(i, j);
            }
        }
        // Every pair is cached exactly once, wherever it hashed to.
        assert_eq!(m.cached_pairs(), 40 * 39 / 2);
        // And reads return the memoized values.
        assert_eq!(m.distance(7, 11), (7 * 31 + 11) as f64);
        assert_eq!(m.distance(11, 7), (7 * 31 + 11) as f64);
    }

    #[test]
    fn shard_bits_zero_degenerates_to_one_lock() {
        let m = MemoizedDistance::with_shard_bits(|i, j| (i + j) as f64, 0);
        assert_eq!(m.shard_count(), 1);
        assert_eq!(m.distance(2, 5), 7.0);
        assert_eq!(m.cached_pairs(), 1);
    }

    #[test]
    fn concurrent_readers_agree() {
        use std::sync::Arc;
        let m = Arc::new(MemoizedDistance::new(|i: usize, j: usize| {
            (i.min(j) as f64) * 1000.0 + i.max(j) as f64
        }));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let m = Arc::clone(&m);
                scope.spawn(move || {
                    for i in 0..30 {
                        for j in 0..30 {
                            let expect = if i == j {
                                0.0
                            } else {
                                (i.min(j) as f64) * 1000.0 + i.max(j) as f64
                            };
                            assert_eq!(m.distance(i, j), expect, "thread {t}");
                        }
                    }
                });
            }
        });
        assert_eq!(m.cached_pairs(), 30 * 29 / 2);
    }
}
