//! The pluggable fabric boundary: node identity, wire accounting, typed
//! errors, reply handles, and the [`Transport`] trait that both the
//! in-process channel fabric and `semtree-net`'s TCP fabric implement.

use std::fmt;
use std::sync::mpsc;

use crate::metrics::MetricsSnapshot;

/// Bits of a [`ComputeNodeId`] reserved for the per-process node index.
///
/// Node ids are globally unique across a deployment: the high bits carry
/// the owning *process index* (0 = coordinator) and the low
/// `PROCESS_STRIDE_BITS` bits the node's slot within that process. The
/// single-process fabric uses process 0, so ids count 0, 1, 2, … exactly
/// as they did before the fabric became pluggable.
pub const PROCESS_STRIDE_BITS: u32 = 16;

/// Identifier of a compute node, unique across every process of a
/// deployment (see [`PROCESS_STRIDE_BITS`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ComputeNodeId(pub u32);

impl ComputeNodeId {
    /// Compose an id from an owning process index and a local slot.
    #[must_use]
    pub fn from_parts(process: u32, local_index: u32) -> Self {
        assert!(
            process < (1 << (32 - PROCESS_STRIDE_BITS)),
            "process index {process} out of range"
        );
        assert!(
            local_index < (1 << PROCESS_STRIDE_BITS),
            "local node index {local_index} out of range"
        );
        ComputeNodeId((process << PROCESS_STRIDE_BITS) | local_index)
    }

    /// Index of the process hosting this node (0 = coordinator).
    #[must_use]
    pub fn process(self) -> u32 {
        self.0 >> PROCESS_STRIDE_BITS
    }

    /// The node's slot within its owning process.
    #[must_use]
    pub fn local_index(self) -> usize {
        (self.0 & ((1 << PROCESS_STRIDE_BITS) - 1)) as usize
    }

    /// The raw id as a usable index (kept for single-process callers).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Exact encoded payload size in bytes, used for byte accounting and the
/// per-byte component of the cost model. For protocol types this must
/// match the length of the `semtree-net` binary encoding of the value
/// (frame length prefix excluded); the default (0 bytes) still counts
/// messages, just not volume.
pub trait Wire {
    /// Encoded size in bytes.
    fn wire_size(&self) -> usize {
        0
    }
}

impl Wire for () {}
impl Wire for u64 {
    fn wire_size(&self) -> usize {
        8
    }
}
impl Wire for Vec<f64> {
    // u64 length prefix + fixed 8-byte elements.
    fn wire_size(&self) -> usize {
        8 + 8 * self.len()
    }
}
impl Wire for String {
    // u64 length prefix + UTF-8 bytes.
    fn wire_size(&self) -> usize {
        8 + self.len()
    }
}

/// Why a cluster operation failed. Carried across process boundaries by
/// `semtree-net`, so query paths degrade to errors instead of panics when
/// a partition is unknown, shut down, or unreachable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// The target node id is not (or no longer) registered.
    UnknownNode(ComputeNodeId),
    /// The target node existed but its thread is gone (panicked or
    /// shut down) before answering.
    NodeDied(ComputeNodeId),
    /// A network-level failure: connect, frame I/O, or decode.
    Net(String),
    /// A new member node could not be created.
    SpawnFailed(String),
    /// The remote process reported a failure while handling the request.
    Remote(String),
    /// A bounded wait (e.g. for workers to join) expired before its
    /// condition held.
    Timeout(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::UnknownNode(id) => write!(f, "unknown compute node {id:?}"),
            ClusterError::NodeDied(id) => write!(f, "compute node {id:?} died before answering"),
            ClusterError::Net(msg) => write!(f, "network transport error: {msg}"),
            ClusterError::SpawnFailed(msg) => write!(f, "could not spawn compute node: {msg}"),
            ClusterError::Remote(msg) => write!(f, "remote handler error: {msg}"),
            ClusterError::Timeout(msg) => write!(f, "timed out: {msg}"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// The response side of one in-flight request.
///
/// Produced by [`Transport::send`]; [`wait`](ReplyHandle::wait) blocks
/// until the responder fills the matching [`ReplySlot`]. Holding several
/// handles before waiting is how fan-out travels in parallel.
pub struct ReplyHandle<Resp> {
    rx: mpsc::Receiver<Result<Resp, ClusterError>>,
    target: ComputeNodeId,
}

/// Called exactly once with the outcome of a submitted request — the
/// pipelined alternative to blocking on a [`ReplyHandle`]. Runs on
/// whatever thread fills the slot (a node thread, a transport's demux
/// reader), so it must be quick and must not block on the transport.
pub type CompleteFn<Resp> = Box<dyn FnOnce(Result<Resp, ClusterError>) + Send>;

/// Where a [`ReplySlot`]'s outcome goes.
enum ReplySink<Resp> {
    /// A waiting [`ReplyHandle`] (synchronous callers).
    Channel(mpsc::Sender<Result<Resp, ClusterError>>),
    /// A completion callback (pipelined callers, [`Transport::submit`]).
    Callback(CompleteFn<Resp>),
}

/// The responder side of one in-flight request.
pub struct ReplySlot<Resp> {
    sink: Option<ReplySink<Resp>>,
    target: ComputeNodeId,
}

impl<Resp> ReplyHandle<Resp> {
    /// A connected slot/handle pair for a request addressed to `target`.
    #[must_use]
    pub fn pair(target: ComputeNodeId) -> (ReplySlot<Resp>, Self) {
        let (tx, rx) = mpsc::channel();
        (
            ReplySlot {
                sink: Some(ReplySink::Channel(tx)),
                target,
            },
            ReplyHandle { rx, target },
        )
    }

    /// Block until the response (or a typed failure) arrives. A dropped
    /// [`ReplySlot`] — responder thread gone, connection torn down —
    /// surfaces as [`ClusterError::NodeDied`].
    pub fn wait(self) -> Result<Resp, ClusterError> {
        self.rx
            .recv()
            .unwrap_or_else(|_| Err(ClusterError::NodeDied(self.target)))
    }
}

impl<Resp> ReplySlot<Resp> {
    /// A slot whose outcome is delivered by invoking `complete` instead
    /// of waking a waiting handle. The callback is guaranteed to run
    /// exactly once: on [`fill`](ReplySlot::fill), or — if the slot is
    /// dropped unfilled (responder gone, connection torn down) — on drop
    /// with [`ClusterError::NodeDied`].
    #[must_use]
    pub fn with_callback(target: ComputeNodeId, complete: CompleteFn<Resp>) -> Self {
        ReplySlot {
            sink: Some(ReplySink::Callback(complete)),
            target,
        }
    }

    /// Deliver the outcome. A receiver that gave up waiting is not an
    /// error.
    pub fn fill(mut self, outcome: Result<Resp, ClusterError>) {
        match self.sink.take() {
            Some(ReplySink::Channel(tx)) => {
                let _ = tx.send(outcome);
            }
            Some(ReplySink::Callback(complete)) => complete(outcome),
            None => {}
        }
    }
}

impl<Resp> Drop for ReplySlot<Resp> {
    fn drop(&mut self) {
        // An unfilled callback still gets its exactly-once completion;
        // channel sinks already signal death to the handle by hangup.
        if let Some(ReplySink::Callback(complete)) = self.sink.take() {
            complete(Err(ClusterError::NodeDied(self.target)));
        }
    }
}

/// Object-safe form of [`Handler`](crate::Handler): what a transport
/// actually runs on a node thread. Blanket-implemented for every
/// `Handler`, so callers keep writing plain handlers.
pub trait DynHandler<Req, Resp>: Send {
    /// Process one request to completion.
    fn handle_dyn(&mut self, ctx: &crate::NodeCtx<Req, Resp>, req: Req) -> Resp;
}

/// A boxed, type-erased node handler.
pub type BoxHandler<Req, Resp> = Box<dyn DynHandler<Req, Resp> + 'static>;

/// Builds the handler for a dynamically created member node
/// ([`Transport::spawn_member`]). Every process of a deployment installs
/// the same factory, which is what lets a remote process materialise a
/// fresh partition without shipping code or state.
pub type NodeFactory<Req, Resp> = dyn Fn() -> BoxHandler<Req, Resp> + Send + Sync + 'static;

/// A cluster fabric: routes requests to compute nodes and creates new
/// ones. Implemented by the in-process channel fabric (the default, and
/// the paper-faithful simulation) and by `semtree-net`'s TCP fabric
/// (real multi-process deployment). Object-safe so running systems can
/// hold `Arc<dyn Transport<_, _>>`.
pub trait Transport<Req, Resp>: Send + Sync {
    /// Dispatch `req` to `target`, returning a handle to await the
    /// response. Sending is non-blocking; the transit cost (simulated
    /// or real) is paid on the responder's side.
    fn send(&self, target: ComputeNodeId, req: Req) -> Result<ReplyHandle<Resp>, ClusterError>;

    /// Dispatch `req` to `target` and deliver the outcome by invoking
    /// `complete` — exactly once — instead of handing back a handle to
    /// block on. Pipelining transports run the callback from the thread
    /// that finishes the request (a node thread, a demux reader), so a
    /// submitting executor is free the moment this returns. The default
    /// degrades to send-and-wait for transports without a pipelined
    /// path, preserving exactly-once completion.
    fn submit(&self, target: ComputeNodeId, req: Req, complete: CompleteFn<Resp>) {
        match self.send(target, req) {
            Ok(handle) => complete(handle.wait()),
            Err(e) => complete(Err(e)),
        }
    }

    /// Start a node running `handler` in *this* process.
    fn spawn_handler(&self, handler: BoxHandler<Req, Resp>) -> Result<ComputeNodeId, ClusterError>;

    /// Create a new member node somewhere in the deployment using the
    /// installed node factory — on a remote process when the transport
    /// spans several (build-partition's "allocate a fresh partition").
    fn spawn_member(&self) -> Result<ComputeNodeId, ClusterError>;

    /// Install the factory used by [`spawn_member`](Transport::spawn_member).
    fn set_node_factory(&self, factory: Box<NodeFactory<Req, Resp>>);

    /// Number of live compute nodes hosted by *this* process.
    fn node_count(&self) -> usize;

    /// Current metrics snapshot (messages, bytes, spawns, delay).
    fn metrics(&self) -> MetricsSnapshot;

    /// Reset metrics counters (between experiment phases).
    fn reset_metrics(&self);

    /// Account one served client request that took `nanos` nanoseconds
    /// end to end, feeding the latency histogram in
    /// [`MetricsSnapshot::latency`](crate::MetricsSnapshot). Default is
    /// a no-op for transports without a metrics sink.
    fn record_request_latency(&self, nanos: u64) {
        let _ = nanos;
    }

    /// Stop every locally hosted node and release transport resources.
    fn shutdown(&self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trips_through_parts() {
        let id = ComputeNodeId::from_parts(3, 17);
        assert_eq!(id.process(), 3);
        assert_eq!(id.local_index(), 17);
        assert_eq!(id.0, (3 << PROCESS_STRIDE_BITS) | 17);
        // Single-process ids keep counting from zero.
        assert_eq!(ComputeNodeId::from_parts(0, 5), ComputeNodeId(5));
    }

    #[test]
    fn reply_pair_delivers_and_maps_drop_to_node_died() {
        let target = ComputeNodeId(9);
        let (slot, handle) = ReplyHandle::<u64>::pair(target);
        slot.fill(Ok(77));
        assert_eq!(handle.wait(), Ok(77));

        let (slot, handle) = ReplyHandle::<u64>::pair(target);
        drop(slot);
        assert_eq!(handle.wait(), Err(ClusterError::NodeDied(target)));
    }

    #[test]
    fn callback_slot_runs_exactly_once_on_fill() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let hits = Arc::new(AtomicU64::new(0));
        let sink = Arc::clone(&hits);
        let slot = ReplySlot::<u64>::with_callback(
            ComputeNodeId(3),
            Box::new(move |out| {
                assert_eq!(out, Ok(5));
                sink.fetch_add(1, Ordering::Relaxed);
            }),
        );
        slot.fill(Ok(5)); // drop after fill must NOT re-run the callback
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn callback_slot_dropped_unfilled_reports_node_died() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let target = ComputeNodeId(9);
        let hits = Arc::new(AtomicU64::new(0));
        let sink = Arc::clone(&hits);
        let slot = ReplySlot::<u64>::with_callback(
            target,
            Box::new(move |out| {
                assert_eq!(out, Err(ClusterError::NodeDied(target)));
                sink.fetch_add(1, Ordering::Relaxed);
            }),
        );
        drop(slot);
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn errors_display_their_cause() {
        let msg = ClusterError::UnknownNode(ComputeNodeId(4)).to_string();
        assert!(msg.contains("unknown"), "{msg}");
        assert!(ClusterError::Net("refused".into())
            .to_string()
            .contains("refused"));
    }

    #[test]
    fn wire_sizes_match_codec_layout() {
        assert_eq!(7u64.wire_size(), 8);
        assert_eq!(vec![1.0f64, 2.0].wire_size(), 8 + 16);
        assert_eq!(String::from("abc").wire_size(), 8 + 3);
        assert_eq!(().wire_size(), 0);
    }
}
