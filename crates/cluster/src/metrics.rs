//! Message and byte accounting.
//!
//! The counters are generic over the concurrency shim
//! ([`semtree_conc::shim::Shim`]) so the model checker can explore
//! concurrent `record_*` / `snapshot` interleavings exhaustively;
//! production code uses the [`ClusterMetrics`] alias over real atomics.

use std::sync::Arc;

use semtree_conc::shim::{Shim, StdShim};

/// Shared, thread-safe counters over a [`crate::Cluster`]'s lifetime,
/// generic over the concurrency shim.
#[derive(Debug)]
pub struct ClusterMetricsG<S: Shim = StdShim> {
    messages: S::AtomicU64,
    bytes: S::AtomicU64,
    response_bytes: S::AtomicU64,
    spawned_nodes: S::AtomicU64,
    simulated_delay_nanos: S::AtomicU64,
}

/// The production metrics type: real relaxed atomics.
pub type ClusterMetrics = ClusterMetricsG<StdShim>;

impl<S: Shim> Default for ClusterMetricsG<S> {
    fn default() -> Self {
        Self::new_in()
    }
}

/// A point-in-time copy of [`ClusterMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Requests delivered between nodes (responses are not double-counted).
    pub messages: u64,
    /// Total payload bytes carried by those requests.
    pub bytes: u64,
    /// Total payload bytes carried by the responses coming back.
    pub response_bytes: u64,
    /// Compute nodes spawned.
    pub spawned_nodes: u64,
    /// Total injected interconnect delay, in nanoseconds.
    pub simulated_delay_nanos: u64,
}

impl ClusterMetrics {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(ClusterMetrics::default())
    }
}

impl<S: Shim> ClusterMetricsG<S> {
    /// Fresh zeroed counters under shim `S` (model tests construct
    /// these inside an execution; production uses
    /// [`ClusterMetrics::default`]).
    #[must_use]
    pub fn new_in() -> Self {
        ClusterMetricsG {
            messages: S::atomic_u64(0),
            bytes: S::atomic_u64(0),
            response_bytes: S::atomic_u64(0),
            spawned_nodes: S::atomic_u64(0),
            simulated_delay_nanos: S::atomic_u64(0),
        }
    }

    /// Account one delivered message of `bytes` payload (transports —
    /// in-process and network — call this for every message they carry).
    pub fn record_message(&self, bytes: usize, delay_nanos: u64) {
        S::fetch_add(&self.messages, 1);
        S::fetch_add(&self.bytes, bytes as u64);
        S::fetch_add(&self.simulated_delay_nanos, delay_nanos);
    }

    /// Account the payload bytes of one response travelling back to its
    /// caller. Responses are not counted as messages — `messages` stays
    /// the request count — so this is a pure byte-volume counter.
    pub fn record_response_bytes(&self, bytes: usize) {
        S::fetch_add(&self.response_bytes, bytes as u64);
    }

    /// Account one spawned compute node. Public so model tests can
    /// drive it; production callers live in this crate and
    /// `semtree-net`.
    pub fn record_spawn(&self) {
        S::fetch_add(&self.spawned_nodes, 1);
    }

    /// Requests delivered so far.
    #[must_use]
    pub fn messages(&self) -> u64 {
        S::load(&self.messages)
    }

    /// Payload bytes carried so far.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        S::load(&self.bytes)
    }

    /// Response payload bytes carried so far.
    #[must_use]
    pub fn response_bytes(&self) -> u64 {
        S::load(&self.response_bytes)
    }

    /// Nodes spawned so far.
    #[must_use]
    pub fn spawned_nodes(&self) -> u64 {
        S::load(&self.spawned_nodes)
    }

    /// Copy all counters.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            messages: S::load(&self.messages),
            bytes: S::load(&self.bytes),
            response_bytes: S::load(&self.response_bytes),
            spawned_nodes: S::load(&self.spawned_nodes),
            simulated_delay_nanos: S::load(&self.simulated_delay_nanos),
        }
    }

    /// Reset every counter to zero (between experiment runs).
    pub fn reset(&self) {
        S::store(&self.messages, 0);
        S::store(&self.bytes, 0);
        S::store(&self.response_bytes, 0);
        S::store(&self.spawned_nodes, 0);
        S::store(&self.simulated_delay_nanos, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = ClusterMetrics::new();
        m.record_message(100, 5);
        m.record_message(50, 10);
        m.record_response_bytes(30);
        m.record_spawn();
        let s = m.snapshot();
        assert_eq!(s.messages, 2);
        assert_eq!(s.bytes, 150);
        assert_eq!(s.response_bytes, 30);
        assert_eq!(s.spawned_nodes, 1);
        assert_eq!(s.simulated_delay_nanos, 15);
    }

    #[test]
    fn response_bytes_do_not_count_as_messages() {
        let m = ClusterMetrics::new();
        m.record_response_bytes(64);
        assert_eq!(m.messages(), 0);
        assert_eq!(m.bytes(), 0);
        assert_eq!(m.response_bytes(), 64);
    }

    #[test]
    fn reset_zeroes_everything() {
        let m = ClusterMetrics::new();
        m.record_message(1, 1);
        m.record_response_bytes(2);
        m.record_spawn();
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn accessors_match_snapshot() {
        let m = ClusterMetrics::new();
        m.record_message(7, 0);
        assert_eq!(m.messages(), 1);
        assert_eq!(m.bytes(), 7);
        assert_eq!(m.spawned_nodes(), 0);
    }
}
