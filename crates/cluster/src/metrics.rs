//! Message and byte accounting.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, thread-safe counters over a [`crate::Cluster`]'s lifetime.
#[derive(Debug, Default)]
pub struct ClusterMetrics {
    messages: AtomicU64,
    bytes: AtomicU64,
    response_bytes: AtomicU64,
    spawned_nodes: AtomicU64,
    simulated_delay_nanos: AtomicU64,
}

/// A point-in-time copy of [`ClusterMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Requests delivered between nodes (responses are not double-counted).
    pub messages: u64,
    /// Total payload bytes carried by those requests.
    pub bytes: u64,
    /// Total payload bytes carried by the responses coming back.
    pub response_bytes: u64,
    /// Compute nodes spawned.
    pub spawned_nodes: u64,
    /// Total injected interconnect delay, in nanoseconds.
    pub simulated_delay_nanos: u64,
}

impl ClusterMetrics {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(ClusterMetrics::default())
    }

    /// Account one delivered message of `bytes` payload (transports —
    /// in-process and network — call this for every message they carry).
    pub fn record_message(&self, bytes: usize, delay_nanos: u64) {
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        self.simulated_delay_nanos
            .fetch_add(delay_nanos, Ordering::Relaxed);
    }

    /// Account the payload bytes of one response travelling back to its
    /// caller. Responses are not counted as messages — `messages` stays
    /// the request count — so this is a pure byte-volume counter.
    pub fn record_response_bytes(&self, bytes: usize) {
        self.response_bytes
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_spawn(&self) {
        self.spawned_nodes.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests delivered so far.
    #[must_use]
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Payload bytes carried so far.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Response payload bytes carried so far.
    #[must_use]
    pub fn response_bytes(&self) -> u64 {
        self.response_bytes.load(Ordering::Relaxed)
    }

    /// Nodes spawned so far.
    #[must_use]
    pub fn spawned_nodes(&self) -> u64 {
        self.spawned_nodes.load(Ordering::Relaxed)
    }

    /// Copy all counters.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            messages: self.messages.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            response_bytes: self.response_bytes.load(Ordering::Relaxed),
            spawned_nodes: self.spawned_nodes.load(Ordering::Relaxed),
            simulated_delay_nanos: self.simulated_delay_nanos.load(Ordering::Relaxed),
        }
    }

    /// Reset every counter to zero (between experiment runs).
    pub fn reset(&self) {
        self.messages.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
        self.response_bytes.store(0, Ordering::Relaxed);
        self.spawned_nodes.store(0, Ordering::Relaxed);
        self.simulated_delay_nanos.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = ClusterMetrics::new();
        m.record_message(100, 5);
        m.record_message(50, 10);
        m.record_response_bytes(30);
        m.record_spawn();
        let s = m.snapshot();
        assert_eq!(s.messages, 2);
        assert_eq!(s.bytes, 150);
        assert_eq!(s.response_bytes, 30);
        assert_eq!(s.spawned_nodes, 1);
        assert_eq!(s.simulated_delay_nanos, 15);
    }

    #[test]
    fn response_bytes_do_not_count_as_messages() {
        let m = ClusterMetrics::new();
        m.record_response_bytes(64);
        assert_eq!(m.messages(), 0);
        assert_eq!(m.bytes(), 0);
        assert_eq!(m.response_bytes(), 64);
    }

    #[test]
    fn reset_zeroes_everything() {
        let m = ClusterMetrics::new();
        m.record_message(1, 1);
        m.record_response_bytes(2);
        m.record_spawn();
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn accessors_match_snapshot() {
        let m = ClusterMetrics::new();
        m.record_message(7, 0);
        assert_eq!(m.messages(), 1);
        assert_eq!(m.bytes(), 7);
        assert_eq!(m.spawned_nodes(), 0);
    }
}
