//! Message and byte accounting.
//!
//! The counters are generic over the concurrency shim
//! ([`semtree_conc::shim::Shim`]) so the model checker can explore
//! concurrent `record_*` / `snapshot` interleavings exhaustively;
//! production code uses the [`ClusterMetrics`] alias over real atomics.

use std::fmt;
use std::sync::Arc;

use semtree_conc::shim::{Shim, StdShim};

/// Number of fixed log-spaced buckets in a [`LatencyHistogramG`].
///
/// Indices 0–15 are exact nanosecond values; from 16 on, every power of
/// two is split into 4 sub-buckets (±12.5% resolution), which covers the
/// full `u64` nanosecond range in exactly 256 buckets.
pub const LATENCY_BUCKETS: usize = 256;

/// Bucket index for a latency of `nanos` nanoseconds.
#[must_use]
pub fn latency_bucket_index(nanos: u64) -> usize {
    if nanos < 16 {
        nanos as usize
    } else {
        let msb = 63 - nanos.leading_zeros() as usize;
        let sub = ((nanos >> (msb - 2)) & 3) as usize;
        16 + (msb - 4) * 4 + sub
    }
}

/// Lower bound (in nanoseconds) of bucket `index` — the value reported
/// for every sample that landed in it, so quantiles are conservative
/// (never over-report).
#[must_use]
pub fn latency_bucket_floor(index: usize) -> u64 {
    if index < 16 {
        index as u64
    } else {
        let msb = 4 + (index - 16) / 4;
        let sub = ((index - 16) % 4) as u64;
        (1u64 << msb) + sub * (1u64 << (msb - 2))
    }
}

/// Lock-free per-request latency histogram with fixed log-spaced
/// buckets, generic over the concurrency shim so the model checker can
/// drive it. Recording is one relaxed `fetch_add`; snapshots copy the
/// bucket array without stopping writers.
pub struct LatencyHistogramG<S: Shim = StdShim> {
    buckets: [S::AtomicU64; LATENCY_BUCKETS],
}

/// The production latency histogram: real relaxed atomics.
pub type LatencyHistogram = LatencyHistogramG<StdShim>;

impl<S: Shim> fmt::Debug for LatencyHistogramG<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.snapshot().fmt(f)
    }
}

impl<S: Shim> Default for LatencyHistogramG<S> {
    fn default() -> Self {
        Self::new_in()
    }
}

impl<S: Shim> LatencyHistogramG<S> {
    /// Fresh zeroed histogram under shim `S`.
    #[must_use]
    pub fn new_in() -> Self {
        LatencyHistogramG {
            buckets: std::array::from_fn(|_| S::atomic_u64(0)),
        }
    }

    /// Account one request that took `nanos` nanoseconds.
    pub fn record(&self, nanos: u64) {
        S::fetch_add(&self.buckets[latency_bucket_index(nanos)], 1);
    }

    /// Copy the bucket counts. Concurrent recording may land a sample
    /// between bucket reads; each sample is either fully in or fully out
    /// of the snapshot (single increment), never torn.
    #[must_use]
    pub fn snapshot(&self) -> LatencySnapshot {
        let buckets: [u64; LATENCY_BUCKETS] = std::array::from_fn(|i| S::load(&self.buckets[i]));
        LatencySnapshot {
            count: buckets.iter().sum(),
            buckets,
        }
    }

    /// Zero every bucket (between experiment phases).
    pub fn reset(&self) {
        for b in &self.buckets {
            S::store(b, 0);
        }
    }
}

/// A point-in-time copy of a [`LatencyHistogramG`].
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct LatencySnapshot {
    /// Total samples recorded.
    pub count: u64,
    /// Per-bucket sample counts (see [`latency_bucket_floor`] for the
    /// value each bucket represents).
    pub buckets: [u64; LATENCY_BUCKETS],
}

impl Default for LatencySnapshot {
    fn default() -> Self {
        LatencySnapshot {
            count: 0,
            buckets: [0; LATENCY_BUCKETS],
        }
    }
}

impl fmt::Debug for LatencySnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LatencySnapshot")
            .field("count", &self.count)
            .field("p50_nanos", &self.p50_nanos())
            .field("p99_nanos", &self.p99_nanos())
            .field("p999_nanos", &self.p999_nanos())
            .finish()
    }
}

impl LatencySnapshot {
    /// The latency (bucket lower bound, nanoseconds) at quantile `q` in
    /// `[0, 1]`: the smallest bucket such that at least `ceil(q * count)`
    /// samples are at or below it. Zero when no samples were recorded.
    #[must_use]
    pub fn quantile_nanos(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
        #[allow(clippy::cast_possible_truncation)]
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return latency_bucket_floor(i);
            }
        }
        latency_bucket_floor(LATENCY_BUCKETS - 1)
    }

    /// Median request latency in nanoseconds.
    #[must_use]
    pub fn p50_nanos(&self) -> u64 {
        self.quantile_nanos(0.50)
    }

    /// 99th-percentile request latency in nanoseconds.
    #[must_use]
    pub fn p99_nanos(&self) -> u64 {
        self.quantile_nanos(0.99)
    }

    /// 99.9th-percentile request latency in nanoseconds.
    #[must_use]
    pub fn p999_nanos(&self) -> u64 {
        self.quantile_nanos(0.999)
    }

    /// Merge another snapshot into this one (for aggregating
    /// per-connection histograms in load generators).
    pub fn merge(&mut self, other: &LatencySnapshot) {
        self.count += other.count;
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
    }
}

/// Number of buckets in the optimistic-read retry histogram: exact
/// counts 0–3, then power-of-two ranges 4–7, 8–15, 16–31, and 32+.
pub const READ_RETRY_BUCKETS: usize = 8;

/// Width of the per-reactor-shard counter arrays: the most reactor
/// shards one server will ever run (`semtree-reactor` clamps its shard
/// count to this).
pub const MAX_REACTOR_SHARDS: usize = 32;

/// Bucket index for an optimistic read that retried `retries` times.
#[must_use]
pub fn read_retry_bucket_index(retries: u64) -> usize {
    match retries {
        0..=3 => retries as usize,
        4..=7 => 4,
        8..=15 => 5,
        16..=31 => 6,
        _ => 7,
    }
}

/// Shared, thread-safe counters over a [`crate::Cluster`]'s lifetime,
/// generic over the concurrency shim.
#[derive(Debug)]
pub struct ClusterMetricsG<S: Shim = StdShim> {
    messages: S::AtomicU64,
    bytes: S::AtomicU64,
    response_bytes: S::AtomicU64,
    spawned_nodes: S::AtomicU64,
    simulated_delay_nanos: S::AtomicU64,
    request_latency: LatencyHistogramG<S>,
    /// Total writer-race retries across all optimistic reads.
    reads_retried: S::AtomicU64,
    /// Optimistic reads by retry count (see [`read_retry_bucket_index`]).
    read_retries: [S::AtomicU64; READ_RETRY_BUCKETS],
    /// Reactor shards actually serving (0 when no reactor is attached).
    reactor_shards: S::AtomicU64,
    /// Requests completed, by owning reactor shard.
    shard_served: [S::AtomicU64; MAX_REACTOR_SHARDS],
    /// Requests shed at admission, by owning reactor shard.
    shard_shed: [S::AtomicU64; MAX_REACTOR_SHARDS],
}

/// The production metrics type: real relaxed atomics.
pub type ClusterMetrics = ClusterMetricsG<StdShim>;

impl<S: Shim> Default for ClusterMetricsG<S> {
    fn default() -> Self {
        Self::new_in()
    }
}

/// A point-in-time copy of [`ClusterMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Requests delivered between nodes (responses are not double-counted).
    pub messages: u64,
    /// Total payload bytes carried by those requests.
    pub bytes: u64,
    /// Total payload bytes carried by the responses coming back.
    pub response_bytes: u64,
    /// Compute nodes spawned.
    pub spawned_nodes: u64,
    /// Total injected interconnect delay, in nanoseconds.
    pub simulated_delay_nanos: u64,
    /// Per-request serving latency distribution.
    pub latency: LatencySnapshot,
    /// Total writer-race retries across all optimistic reads.
    pub reads_retried: u64,
    /// Optimistic reads bucketed by how often each retried
    /// (see [`read_retry_bucket_index`]).
    pub read_retries: [u64; READ_RETRY_BUCKETS],
    /// Reactor shards serving (0 when no reactor is attached); only the
    /// first `reactor_shards` entries of the shard arrays are live.
    pub reactor_shards: u64,
    /// Requests completed, by owning reactor shard.
    pub shard_served: [u64; MAX_REACTOR_SHARDS],
    /// Requests shed at admission, by owning reactor shard.
    pub shard_shed: [u64; MAX_REACTOR_SHARDS],
}

impl ClusterMetrics {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(ClusterMetrics::default())
    }
}

impl<S: Shim> ClusterMetricsG<S> {
    /// Fresh zeroed counters under shim `S` (model tests construct
    /// these inside an execution; production uses
    /// [`ClusterMetrics::default`]).
    #[must_use]
    pub fn new_in() -> Self {
        ClusterMetricsG {
            messages: S::atomic_u64(0),
            bytes: S::atomic_u64(0),
            response_bytes: S::atomic_u64(0),
            spawned_nodes: S::atomic_u64(0),
            simulated_delay_nanos: S::atomic_u64(0),
            request_latency: LatencyHistogramG::new_in(),
            reads_retried: S::atomic_u64(0),
            read_retries: std::array::from_fn(|_| S::atomic_u64(0)),
            reactor_shards: S::atomic_u64(0),
            shard_served: std::array::from_fn(|_| S::atomic_u64(0)),
            shard_shed: std::array::from_fn(|_| S::atomic_u64(0)),
        }
    }

    /// Account one delivered message of `bytes` payload (transports —
    /// in-process and network — call this for every message they carry).
    pub fn record_message(&self, bytes: usize, delay_nanos: u64) {
        S::fetch_add(&self.messages, 1);
        S::fetch_add(&self.bytes, bytes as u64);
        S::fetch_add(&self.simulated_delay_nanos, delay_nanos);
    }

    /// Account the payload bytes of one response travelling back to its
    /// caller. Responses are not counted as messages — `messages` stays
    /// the request count — so this is a pure byte-volume counter.
    pub fn record_response_bytes(&self, bytes: usize) {
        S::fetch_add(&self.response_bytes, bytes as u64);
    }

    /// Account one spawned compute node. Public so model tests can
    /// drive it; production callers live in this crate and
    /// `semtree-net`.
    pub fn record_spawn(&self) {
        S::fetch_add(&self.spawned_nodes, 1);
    }

    /// Account one served request that took `nanos` nanoseconds end to
    /// end (dispatch to reply). Both the thread-per-connection fabric
    /// and the event-driven reactor feed this histogram.
    pub fn record_latency(&self, nanos: u64) {
        self.request_latency.record(nanos);
    }

    /// Account one completed optimistic (seqlock) read that validated
    /// after `retries` writer races. Zero-retry reads land in bucket 0,
    /// so the histogram's sum is the total optimistic read count.
    pub fn record_read_retries(&self, retries: u64) {
        S::fetch_add(&self.reads_retried, retries);
        S::fetch_add(&self.read_retries[read_retry_bucket_index(retries)], 1);
    }

    /// Declare how many reactor shards are serving (the reactor calls
    /// this once at startup; counts past [`MAX_REACTOR_SHARDS`] clamp).
    pub fn set_reactor_shards(&self, shards: usize) {
        S::store(&self.reactor_shards, shards.min(MAX_REACTOR_SHARDS) as u64);
    }

    /// Account one request completed by reactor shard `shard`.
    pub fn record_shard_served(&self, shard: usize) {
        if shard < MAX_REACTOR_SHARDS {
            S::fetch_add(&self.shard_served[shard], 1);
        }
    }

    /// Account one request shed at admission by reactor shard `shard`.
    pub fn record_shard_shed(&self, shard: usize) {
        if shard < MAX_REACTOR_SHARDS {
            S::fetch_add(&self.shard_shed[shard], 1);
        }
    }

    /// Total writer-race retries so far.
    #[must_use]
    pub fn reads_retried(&self) -> u64 {
        S::load(&self.reads_retried)
    }

    /// Requests delivered so far.
    #[must_use]
    pub fn messages(&self) -> u64 {
        S::load(&self.messages)
    }

    /// Payload bytes carried so far.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        S::load(&self.bytes)
    }

    /// Response payload bytes carried so far.
    #[must_use]
    pub fn response_bytes(&self) -> u64 {
        S::load(&self.response_bytes)
    }

    /// Nodes spawned so far.
    #[must_use]
    pub fn spawned_nodes(&self) -> u64 {
        S::load(&self.spawned_nodes)
    }

    /// Copy all counters.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            messages: S::load(&self.messages),
            bytes: S::load(&self.bytes),
            response_bytes: S::load(&self.response_bytes),
            spawned_nodes: S::load(&self.spawned_nodes),
            simulated_delay_nanos: S::load(&self.simulated_delay_nanos),
            latency: self.request_latency.snapshot(),
            reads_retried: S::load(&self.reads_retried),
            read_retries: std::array::from_fn(|i| S::load(&self.read_retries[i])),
            reactor_shards: S::load(&self.reactor_shards),
            shard_served: std::array::from_fn(|i| S::load(&self.shard_served[i])),
            shard_shed: std::array::from_fn(|i| S::load(&self.shard_shed[i])),
        }
    }

    /// Reset every counter to zero (between experiment runs).
    pub fn reset(&self) {
        S::store(&self.messages, 0);
        S::store(&self.bytes, 0);
        S::store(&self.response_bytes, 0);
        S::store(&self.spawned_nodes, 0);
        S::store(&self.simulated_delay_nanos, 0);
        self.request_latency.reset();
        S::store(&self.reads_retried, 0);
        for b in &self.read_retries {
            S::store(b, 0);
        }
        // The shard count survives a reset: it describes topology, not
        // traffic, and experiment phases reset between measurements.
        for b in &self.shard_served {
            S::store(b, 0);
        }
        for b in &self.shard_shed {
            S::store(b, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = ClusterMetrics::new();
        m.record_message(100, 5);
        m.record_message(50, 10);
        m.record_response_bytes(30);
        m.record_spawn();
        let s = m.snapshot();
        assert_eq!(s.messages, 2);
        assert_eq!(s.bytes, 150);
        assert_eq!(s.response_bytes, 30);
        assert_eq!(s.spawned_nodes, 1);
        assert_eq!(s.simulated_delay_nanos, 15);
    }

    #[test]
    fn response_bytes_do_not_count_as_messages() {
        let m = ClusterMetrics::new();
        m.record_response_bytes(64);
        assert_eq!(m.messages(), 0);
        assert_eq!(m.bytes(), 0);
        assert_eq!(m.response_bytes(), 64);
    }

    #[test]
    fn reset_zeroes_everything() {
        let m = ClusterMetrics::new();
        m.record_message(1, 1);
        m.record_response_bytes(2);
        m.record_spawn();
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn accessors_match_snapshot() {
        let m = ClusterMetrics::new();
        m.record_message(7, 0);
        assert_eq!(m.messages(), 1);
        assert_eq!(m.bytes(), 7);
        assert_eq!(m.spawned_nodes(), 0);
    }

    #[test]
    fn bucket_index_is_monotone_and_covers_u64() {
        // Exact buckets below 16.
        for n in 0..16u64 {
            assert_eq!(latency_bucket_index(n), n as usize);
        }
        // Monotone over exponentially spaced probes, max index is 255.
        let mut last = 0;
        for shift in 0..64 {
            for off in [0u64, 1] {
                let n = (1u64 << shift).saturating_add(off);
                let idx = latency_bucket_index(n);
                assert!(idx >= last, "bucket index regressed at {n}");
                assert!(idx < LATENCY_BUCKETS);
                last = idx;
            }
        }
        assert_eq!(latency_bucket_index(u64::MAX), LATENCY_BUCKETS - 1);
    }

    #[test]
    fn bucket_floor_inverts_index() {
        for idx in 0..LATENCY_BUCKETS {
            let floor = latency_bucket_floor(idx);
            assert_eq!(
                latency_bucket_index(floor),
                idx,
                "floor {floor} of bucket {idx} maps back"
            );
        }
    }

    #[test]
    fn quantiles_are_conservative_lower_bounds() {
        let h = LatencyHistogram::default();
        // 99 fast samples at 1µs, one slow at ~1ms.
        for _ in 0..99 {
            h.record(1_000);
        }
        h.record(1_000_000);
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        let p50 = s.p50_nanos();
        assert!((875..=1_000).contains(&p50), "p50 {p50}");
        // p99 rank = 99 of 100 — still in the fast bucket.
        assert!(s.p99_nanos() <= 1_000);
        // p999 rank = 100 — the slow sample, within bucket resolution.
        let p999 = s.p999_nanos();
        assert!(
            (875_000..=1_000_000).contains(&p999),
            "p999 {p999} should be within 12.5% below 1ms"
        );
    }

    #[test]
    fn empty_histogram_reports_zero_quantiles() {
        let s = LatencySnapshot::default();
        assert_eq!(s.p50_nanos(), 0);
        assert_eq!(s.p999_nanos(), 0);
    }

    #[test]
    fn merge_accumulates_counts() {
        let a = LatencyHistogram::default();
        let b = LatencyHistogram::default();
        a.record(10);
        b.record(10);
        b.record(1 << 20);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count, 3);
        assert_eq!(merged.buckets[latency_bucket_index(10)], 2);
    }

    #[test]
    fn read_retry_buckets_are_exact_then_ranged() {
        assert_eq!(read_retry_bucket_index(0), 0);
        assert_eq!(read_retry_bucket_index(3), 3);
        assert_eq!(read_retry_bucket_index(4), 4);
        assert_eq!(read_retry_bucket_index(7), 4);
        assert_eq!(read_retry_bucket_index(8), 5);
        assert_eq!(read_retry_bucket_index(31), 6);
        assert_eq!(read_retry_bucket_index(32), 7);
        assert_eq!(read_retry_bucket_index(u64::MAX), 7);
    }

    #[test]
    fn read_retries_accumulate_and_reset() {
        let m = ClusterMetrics::new();
        m.record_read_retries(0);
        m.record_read_retries(2);
        m.record_read_retries(5);
        let s = m.snapshot();
        assert_eq!(s.reads_retried, 7);
        assert_eq!(s.read_retries.iter().sum::<u64>(), 3, "one entry per read");
        assert_eq!(s.read_retries[0], 1);
        assert_eq!(s.read_retries[2], 1);
        assert_eq!(s.read_retries[4], 1);
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn shard_counters_accumulate_and_reset_keeps_topology() {
        let m = ClusterMetrics::new();
        m.set_reactor_shards(3);
        m.record_shard_served(0);
        m.record_shard_served(2);
        m.record_shard_shed(1);
        m.record_shard_served(MAX_REACTOR_SHARDS); // out of range: ignored
        let s = m.snapshot();
        assert_eq!(s.reactor_shards, 3);
        assert_eq!(s.shard_served[0], 1);
        assert_eq!(s.shard_served[2], 1);
        assert_eq!(s.shard_served.iter().sum::<u64>(), 2);
        assert_eq!(s.shard_shed[1], 1);
        m.reset();
        let s = m.snapshot();
        assert_eq!(s.reactor_shards, 3, "shard count describes topology");
        assert_eq!(s.shard_served, [0; MAX_REACTOR_SHARDS]);
        assert_eq!(s.shard_shed, [0; MAX_REACTOR_SHARDS]);
    }

    #[test]
    fn metrics_snapshot_carries_latency() {
        let m = ClusterMetrics::new();
        m.record_latency(500);
        let s = m.snapshot();
        assert_eq!(s.latency.count, 1);
        m.reset();
        assert_eq!(m.snapshot().latency.count, 0);
    }
}
