//! Simulated distributed runtime — the stand-in for the paper's cluster.
//!
//! The paper runs SemTree on "a cluster having 8 processors with 8 GB RAM
//! (compute nodes)" and moves between partitions "by a proper communication
//! protocol (in our implementation based on MPJ libraries)". This crate
//! reproduces that execution model in-process:
//!
//! - a [`Cluster`] owns a set of **compute nodes**, each a dedicated OS
//!   thread processing one request at a time (like a single-threaded MPJ
//!   rank);
//! - nodes exchange **typed request/response messages** over channels; a
//!   handler can [`NodeCtx::call`] another node (blocking, like a
//!   synchronous MPI send/recv pair) or [`NodeCtx::call_many`] several in
//!   parallel (the paper's "the navigation is performed in a parallel
//!   way" at partition borders);
//! - a [`CostModel`] optionally injects per-message latency and per-byte
//!   transfer delay so the interconnect cost is tunable, and
//!   [`ClusterMetrics`] account every message and byte either way;
//! - handlers can spawn **new compute nodes at runtime**
//!   ([`NodeCtx::spawn`]), which is how the build-partition algorithm
//!   creates partitions on demand.
//!
//! Requests in SemTree always flow *down* the partition tree and responses
//! back *up*, so the blocking-call model cannot deadlock (see
//! `semtree-dist`).
//!
//! # Example
//!
//! ```
//! use semtree_cluster::{Cluster, CostModel, Handler, NodeCtx, Wire};
//!
//! struct Doubler;
//! impl Handler for Doubler {
//!     type Req = u64;
//!     type Resp = u64;
//!     fn handle(&mut self, _ctx: &NodeCtx<u64, u64>, req: u64) -> u64 { req * 2 }
//! }
//!
//! let cluster = Cluster::new(CostModel::zero());
//! let node = cluster.spawn(Doubler);
//! assert_eq!(cluster.call(node, 21), 42);
//! assert_eq!(cluster.metrics().messages, 2); // request + response
//! cluster.shutdown();
//! ```

mod cost;
mod metrics;
mod runtime;

pub use cost::CostModel;
pub use metrics::{ClusterMetrics, MetricsSnapshot};
pub use runtime::{Cluster, ComputeNodeId, Handler, NodeCtx, Wire};
