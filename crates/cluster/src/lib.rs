//! Distributed runtime for SemTree — pluggable cluster fabric.
//!
//! The paper runs SemTree on "a cluster having 8 processors with 8 GB RAM
//! (compute nodes)" and moves between partitions "by a proper communication
//! protocol (in our implementation based on MPJ libraries)". This crate
//! reproduces that execution model behind a pluggable [`Transport`]:
//!
//! - a [`Cluster`] owns a set of **compute nodes**, each a dedicated OS
//!   thread processing one request at a time (like a single-threaded MPJ
//!   rank);
//! - nodes exchange **typed request/response messages**; a handler can
//!   [`NodeCtx::call`] another node (blocking, like a synchronous MPI
//!   send/recv pair) or [`NodeCtx::call_many`] several in parallel (the
//!   paper's "the navigation is performed in a parallel way" at partition
//!   borders);
//! - the default backend is the in-process [`ChannelFabric`]: channels
//!   between threads, with a [`CostModel`] optionally injecting
//!   per-message latency and per-byte transfer delay, and
//!   [`ClusterMetrics`] accounting every message and byte either way;
//! - `semtree-net` provides a second backend over real TCP sockets, so
//!   the same partition actors run unchanged across OS processes;
//! - handlers can create **new compute nodes at runtime**
//!   ([`NodeCtx::spawn_member`]), which is how the build-partition
//!   algorithm creates partitions on demand — on a remote process when a
//!   network transport is routing.
//!
//! Requests in SemTree always flow *down* the partition tree and responses
//! back *up*, so the blocking-call model cannot deadlock (see
//! `semtree-dist`). Failures — unknown or shut-down nodes, dead peers,
//! network errors — surface as typed [`ClusterError`]s rather than
//! panics.
//!
//! # Example
//!
//! ```
//! use semtree_cluster::{Cluster, CostModel, Handler, NodeCtx, Wire};
//!
//! struct Doubler;
//! impl Handler for Doubler {
//!     type Req = u64;
//!     type Resp = u64;
//!     fn handle(&mut self, _ctx: &NodeCtx<u64, u64>, req: u64) -> u64 { req * 2 }
//! }
//!
//! let cluster = Cluster::new(CostModel::zero());
//! let node = cluster.spawn(Doubler);
//! assert_eq!(cluster.call(node, 21), Ok(42));
//! assert_eq!(cluster.metrics().messages, 2); // request + response
//! cluster.shutdown();
//! ```

mod cost;
mod gate;
mod metrics;
mod runtime;
mod transport;

pub use cost::CostModel;
pub use gate::{GateElapsed, MembershipGate};
pub use metrics::{
    latency_bucket_floor, latency_bucket_index, read_retry_bucket_index, ClusterMetrics,
    ClusterMetricsG, LatencyHistogram, LatencyHistogramG, LatencySnapshot, MetricsSnapshot,
    LATENCY_BUCKETS, MAX_REACTOR_SHARDS, READ_RETRY_BUCKETS,
};
pub use runtime::{ChannelFabric, Cluster, Handler, NodeCtx};
pub use transport::{
    BoxHandler, ClusterError, CompleteFn, ComputeNodeId, DynHandler, NodeFactory, ReplyHandle,
    ReplySlot, Transport, Wire, PROCESS_STRIDE_BITS,
};
