//! [`MembershipGate`]: a generation-counting Condvar gate with a
//! deadline, generic over the concurrency shim so the model checker can
//! exhaustively explore its handshake.
//!
//! The gate replaces ad-hoc `Mutex<u64>` + `Condvar` pairs. Its one
//! invariant is *no lost wakeup*: [`notify`](MembershipGate::notify)
//! bumps the generation **under the gate mutex**, and
//! [`wait_until`](MembershipGate::wait_until) re-checks its predicate
//! under that same mutex before every park — so a membership change can
//! never slip between the predicate check and the wait. Spurious
//! wakeups are harmless (the predicate loop re-checks) and a worker
//! that never arrives surfaces as a typed [`GateElapsed`] instead of a
//! hang.

use semtree_conc::shim::{Shim, StdShim};

/// A bounded wait on the gate expired before its predicate held.
///
/// Carries how long the waiter actually waited, so callers can build a
/// precise timeout error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateElapsed {
    /// Nanoseconds between entering the wait and giving up.
    pub waited_nanos: u64,
}

/// Generation-counting rendezvous point (see module docs).
#[derive(Debug)]
pub struct MembershipGate<S: Shim = StdShim> {
    generation: S::Mutex<u64>,
    cv: S::Condvar,
}

impl<S: Shim> Default for MembershipGate<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Shim> MembershipGate<S> {
    /// A fresh gate at generation zero.
    #[must_use]
    pub fn new() -> Self {
        MembershipGate {
            generation: S::mutex(0),
            cv: S::condvar(),
        }
    }

    /// Announce a membership change: bump the generation (under the
    /// mutex — this ordering is what makes wakeups impossible to lose)
    /// and wake every waiter.
    pub fn notify(&self) {
        *S::lock(&self.generation) += 1;
        S::notify_all(&self.cv);
    }

    /// Current generation (diagnostics only).
    #[must_use]
    pub fn generation(&self) -> u64 {
        *S::lock(&self.generation)
    }

    /// Block until `ready()` returns `true` or `timeout_nanos` elapse.
    ///
    /// The predicate runs with the gate mutex held, once on entry and
    /// once after every wakeup (notified, timed out, or spurious), so
    /// it must be cheap and must not touch the gate itself. Any lock it
    /// takes must rank *above* the gate in the workspace lock
    /// hierarchy.
    ///
    /// # Errors
    /// Returns [`GateElapsed`] when the deadline passes while the
    /// predicate still fails; the predicate's final state was checked
    /// at (or after) the deadline, so a `Err` is a definitive timeout,
    /// not a race.
    pub fn wait_until<P>(&self, timeout_nanos: u64, mut ready: P) -> Result<(), GateElapsed>
    where
        P: FnMut() -> bool,
    {
        let start = S::now_nanos();
        let deadline = start.saturating_add(timeout_nanos);
        let mut generation = S::lock(&self.generation);
        loop {
            if ready() {
                return Ok(());
            }
            let now = S::now_nanos();
            if now >= deadline {
                return Err(GateElapsed {
                    waited_nanos: now.saturating_sub(start),
                });
            }
            let (guard, _timed_out) =
                S::wait_timeout(&self.cv, generation, &self.generation, deadline - now);
            generation = guard;
            // A timed-out wakeup still re-checks the predicate: the
            // notification may have raced the expiry, and the predicate
            // is the single source of truth.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn wait_returns_once_the_predicate_holds() {
        let gate = Arc::new(MembershipGate::<StdShim>::new());
        let count = Arc::new(AtomicUsize::new(0));
        let (g2, c2) = (Arc::clone(&gate), Arc::clone(&count));
        let joiner = std::thread::spawn(move || {
            for _ in 0..3 {
                c2.fetch_add(1, Ordering::SeqCst);
                g2.notify();
            }
        });
        let result = gate.wait_until(u64::from(u32::MAX) * 1_000, || {
            count.load(Ordering::SeqCst) >= 3
        });
        assert_eq!(result, Ok(()));
        joiner.join().unwrap();
    }

    #[test]
    fn wait_times_out_with_the_elapsed_duration() {
        let gate = MembershipGate::<StdShim>::new();
        let err = gate
            .wait_until(2_000_000, || false)
            .expect_err("predicate never holds");
        assert!(err.waited_nanos >= 2_000_000);
    }

    #[test]
    fn predicate_already_true_returns_immediately() {
        let gate = MembershipGate::<StdShim>::new();
        assert_eq!(gate.wait_until(0, || true), Ok(()));
    }

    #[test]
    fn generation_counts_notifies() {
        let gate = MembershipGate::<StdShim>::new();
        assert_eq!(gate.generation(), 0);
        gate.notify();
        gate.notify();
        assert_eq!(gate.generation(), 2);
    }
}
