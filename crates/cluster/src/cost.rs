//! Interconnect cost model.

use std::time::Duration;

/// Simulated network costs charged per message.
///
/// With [`CostModel::zero`] the only inter-node cost is the real channel
/// and thread-wakeup overhead (a fast local interconnect); non-zero models
/// make the sender *actually wait*, so measured wall-clock times include
/// the simulated network exactly like the paper's MPJ cluster included its
/// real one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CostModel {
    /// Fixed one-way latency per message.
    pub latency: Duration,
    /// Additional delay per KiB of payload.
    pub per_kib: Duration,
}

impl CostModel {
    /// No simulated delay (pure channel overhead).
    #[must_use]
    pub fn zero() -> Self {
        CostModel::default()
    }

    /// A LAN-like model: 50 µs latency, ~1 GiB/s (1 µs per KiB).
    #[must_use]
    pub fn lan() -> Self {
        CostModel {
            latency: Duration::from_micros(50),
            per_kib: Duration::from_micros(1),
        }
    }

    /// The delay charged for a message of `bytes` payload.
    #[must_use]
    pub fn delay_for(&self, bytes: usize) -> Duration {
        let kib = bytes.div_ceil(1024) as u32;
        self.latency + self.per_kib * kib
    }

    /// Whether this model injects any delay at all.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.latency.is_zero() && self.per_kib.is_zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_model_charges_nothing() {
        let m = CostModel::zero();
        assert!(m.is_zero());
        assert_eq!(m.delay_for(10_000), Duration::ZERO);
    }

    #[test]
    fn delay_scales_with_size() {
        let m = CostModel {
            latency: Duration::from_micros(10),
            per_kib: Duration::from_micros(2),
        };
        assert_eq!(m.delay_for(0), Duration::from_micros(10));
        assert_eq!(m.delay_for(1), Duration::from_micros(12));
        assert_eq!(m.delay_for(1024), Duration::from_micros(12));
        assert_eq!(m.delay_for(1025), Duration::from_micros(14));
        assert!(!m.is_zero());
    }

    #[test]
    fn lan_preset_is_plausible() {
        let m = CostModel::lan();
        assert!(m.delay_for(0) >= Duration::from_micros(50));
        assert!(m.delay_for(1 << 20) <= Duration::from_millis(2));
    }
}
