//! Compute nodes, the message fabric, and blocking calls.

use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};

use crate::cost::CostModel;
use crate::metrics::{ClusterMetrics, MetricsSnapshot};

/// Identifier of a compute node within one [`Cluster`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ComputeNodeId(pub u32);

impl ComputeNodeId {
    /// The id as a usable index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Approximate on-the-wire payload size, used for byte accounting and the
/// per-byte component of the [`CostModel`]. Implement it on protocol types;
/// the default (0 bytes) still counts messages, just not volume.
pub trait Wire {
    /// Serialized size estimate in bytes.
    fn wire_size(&self) -> usize {
        0
    }
}

impl Wire for () {}
impl Wire for u64 {
    fn wire_size(&self) -> usize {
        8
    }
}
impl Wire for Vec<f64> {
    fn wire_size(&self) -> usize {
        8 * self.len()
    }
}
impl Wire for String {
    fn wire_size(&self) -> usize {
        self.len()
    }
}

/// A compute node's request handler: single-threaded, owns its state, may
/// call other nodes or spawn new ones through the [`NodeCtx`].
pub trait Handler: Send + 'static {
    /// Request message type.
    type Req: Wire + Send + 'static;
    /// Response message type.
    type Resp: Wire + Send + 'static;

    /// Process one request to completion.
    fn handle(&mut self, ctx: &NodeCtx<Self::Req, Self::Resp>, req: Self::Req) -> Self::Resp;
}

struct Envelope<Req, Resp> {
    req: Req,
    reply: Sender<Resp>,
}

/// Shared interconnect: node registry + metrics + cost model.
struct Fabric<Req, Resp> {
    nodes: RwLock<Vec<Sender<Envelope<Req, Resp>>>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    metrics: Arc<ClusterMetrics>,
    cost: CostModel,
}

impl<Req: Wire + Send + 'static, Resp: Wire + Send + 'static> Fabric<Req, Resp> {
    /// Record a message; the transit delay is *not* slept here — it is
    /// slept on the receiving side (`deliver_delay`), so that fan-out
    /// messages travel concurrently like non-blocking MPI sends.
    fn record(&self, bytes: usize) -> std::time::Duration {
        let delay = self.cost.delay_for(bytes);
        self.metrics.record_message(bytes, delay.as_nanos() as u64);
        delay
    }

    fn send(&self, target: ComputeNodeId, req: Req) -> Receiver<Resp> {
        let sender = {
            let nodes = self.nodes.read();
            nodes
                .get(target.index())
                .unwrap_or_else(|| panic!("unknown compute node {target:?}"))
                .clone()
        };
        self.record(req.wire_size());
        let (reply_tx, reply_rx) = unbounded();
        sender
            .send(Envelope {
                req,
                reply: reply_tx,
            })
            .expect("target compute node is alive");
        reply_rx
    }

    fn receive(&self, rx: &Receiver<Resp>) -> Resp {
        // The responder already slept the response's transit delay before
        // replying; nothing further to charge here.
        rx.recv().expect("compute node answered before exiting")
    }

    fn call(&self, target: ComputeNodeId, req: Req) -> Resp {
        let rx = self.send(target, req);
        self.receive(&rx)
    }
}

/// The capabilities a handler has while processing a request: identify
/// itself, call other nodes (blocking), fan out in parallel, and spawn new
/// compute nodes.
pub struct NodeCtx<Req, Resp> {
    id: ComputeNodeId,
    fabric: Arc<Fabric<Req, Resp>>,
}

impl<Req: Wire + Send + 'static, Resp: Wire + Send + 'static> NodeCtx<Req, Resp> {
    /// This node's id.
    #[must_use]
    pub fn node_id(&self) -> ComputeNodeId {
        self.id
    }

    /// Synchronous request to another node (MPI-style send + recv).
    ///
    /// SemTree request flows are strictly parent → child in the partition
    /// tree, so blocking here cannot deadlock.
    pub fn call(&self, target: ComputeNodeId, req: Req) -> Resp {
        assert_ne!(
            target, self.id,
            "a node must not call itself (would deadlock)"
        );
        self.fabric.call(target, req)
    }

    /// Fan a set of requests out and wait for every response ("the
    /// navigation is performed in a parallel way"): all targets process
    /// concurrently on their own threads.
    pub fn call_many(&self, calls: Vec<(ComputeNodeId, Req)>) -> Vec<Resp> {
        let receivers: Vec<Receiver<Resp>> = calls
            .into_iter()
            .map(|(target, req)| {
                assert_ne!(target, self.id, "a node must not call itself");
                self.fabric.send(target, req)
            })
            .collect();
        receivers.iter().map(|rx| self.fabric.receive(rx)).collect()
    }

    /// Spawn a new compute node at runtime (build-partition support).
    pub fn spawn<H>(&self, handler: H) -> ComputeNodeId
    where
        H: Handler<Req = Req, Resp = Resp>,
    {
        spawn_node(&self.fabric, handler)
    }
}

fn spawn_node<Req, Resp, H>(fabric: &Arc<Fabric<Req, Resp>>, mut handler: H) -> ComputeNodeId
where
    Req: Wire + Send + 'static,
    Resp: Wire + Send + 'static,
    H: Handler<Req = Req, Resp = Resp>,
{
    let (tx, rx) = unbounded::<Envelope<Req, Resp>>();
    let id = {
        let mut nodes = fabric.nodes.write();
        let id = ComputeNodeId(u32::try_from(nodes.len()).expect("node count fits u32"));
        nodes.push(tx);
        id
    };
    fabric.metrics.record_spawn();
    let ctx = NodeCtx {
        id,
        fabric: Arc::clone(fabric),
    };
    let handle = std::thread::Builder::new()
        .name(format!("compute-node-{}", id.0))
        .spawn(move || {
            while let Ok(env) = rx.recv() {
                // Sleep the request's transit delay on arrival: this is
                // where the simulated interconnect latency materialises,
                // and concurrent senders overlap their delays.
                let in_delay = ctx.fabric.cost.delay_for(env.req.wire_size());
                if !in_delay.is_zero() {
                    std::thread::sleep(in_delay);
                }
                let resp = handler.handle(&ctx, env.req);
                // The response's transit delay is paid before it is handed
                // back, again on this thread so parallel responders overlap.
                let out_delay = ctx.fabric.record(resp.wire_size());
                if !out_delay.is_zero() {
                    std::thread::sleep(out_delay);
                }
                // A client that gave up waiting is not an error.
                let _ = env.reply.send(resp);
            }
        })
        .expect("spawning a compute node thread succeeds");
    fabric.handles.lock().push(handle);
    id
}

/// A set of simulated compute nodes connected by a message fabric.
pub struct Cluster<H: Handler> {
    fabric: Arc<Fabric<H::Req, H::Resp>>,
}

impl<H: Handler> Cluster<H> {
    /// Create an empty cluster with the given interconnect cost model.
    #[must_use]
    pub fn new(cost: CostModel) -> Self {
        Cluster {
            fabric: Arc::new(Fabric {
                nodes: RwLock::new(Vec::new()),
                handles: Mutex::new(Vec::new()),
                metrics: ClusterMetrics::new(),
                cost,
            }),
        }
    }

    /// Start a compute node running `handler`; returns its id.
    pub fn spawn(&self, handler: H) -> ComputeNodeId {
        spawn_node(&self.fabric, handler)
    }

    /// Blocking request from outside the cluster (the "client").
    pub fn call(&self, target: ComputeNodeId, req: H::Req) -> H::Resp {
        self.fabric.call(target, req)
    }

    /// Number of live compute nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.fabric.nodes.read().len()
    }

    /// Current metrics snapshot.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        self.fabric.metrics.snapshot()
    }

    /// Reset metrics counters (between experiment phases).
    pub fn reset_metrics(&self) {
        self.fabric.metrics.reset();
    }

    /// Stop every node and join its thread.
    pub fn shutdown(self) {
        // Dropping the senders ends each node's receive loop...
        self.fabric.nodes.write().clear();
        // ...then join. (Node threads hold the fabric Arc but never their
        // own JoinHandle, so joining here cannot self-deadlock.)
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.fabric.handles.lock());
        for h in handles {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use std::time::{Duration, Instant};

    use super::*;

    struct Echo;
    impl Handler for Echo {
        type Req = u64;
        type Resp = u64;
        fn handle(&mut self, _ctx: &NodeCtx<u64, u64>, req: u64) -> u64 {
            req
        }
    }

    #[test]
    fn echo_roundtrip() {
        let cluster = Cluster::new(CostModel::zero());
        let node = cluster.spawn(Echo);
        assert_eq!(cluster.call(node, 7), 7);
        assert_eq!(cluster.node_count(), 1);
        cluster.shutdown();
    }

    #[test]
    fn metrics_count_request_and_response() {
        let cluster = Cluster::new(CostModel::zero());
        let node = cluster.spawn(Echo);
        cluster.call(node, 1);
        let m = cluster.metrics();
        assert_eq!(m.messages, 2); // request + response
        assert_eq!(m.bytes, 16);
        assert_eq!(m.spawned_nodes, 1);
        cluster.reset_metrics();
        assert_eq!(cluster.metrics().messages, 0);
        cluster.shutdown();
    }

    /// Forwards any request to the next node (if any), adding 1 per hop.
    struct Chain {
        next: Option<ComputeNodeId>,
    }
    impl Handler for Chain {
        type Req = u64;
        type Resp = u64;
        fn handle(&mut self, ctx: &NodeCtx<u64, u64>, req: u64) -> u64 {
            match self.next {
                Some(next) => ctx.call(next, req + 1),
                None => req,
            }
        }
    }

    #[test]
    fn nodes_call_each_other_down_a_chain() {
        let cluster = Cluster::new(CostModel::zero());
        let tail = cluster.spawn(Chain { next: None });
        let mid = cluster.spawn(Chain { next: Some(tail) });
        let head = cluster.spawn(Chain { next: Some(mid) });
        assert_eq!(cluster.call(head, 0), 2); // two hops increment twice
        assert_eq!(cluster.metrics().messages, 6); // 3 calls × (req+resp)
        cluster.shutdown();
    }

    struct Sleeper;
    impl Handler for Sleeper {
        type Req = u64;
        type Resp = u64;
        fn handle(&mut self, _ctx: &NodeCtx<u64, u64>, req: u64) -> u64 {
            std::thread::sleep(Duration::from_millis(60));
            req
        }
    }

    /// Fans out to two sleepers in parallel.
    struct FanOut {
        a: ComputeNodeId,
        b: ComputeNodeId,
    }
    impl Handler for FanOut {
        type Req = u64;
        type Resp = u64;
        fn handle(&mut self, ctx: &NodeCtx<u64, u64>, req: u64) -> u64 {
            ctx.call_many(vec![(self.a, req), (self.b, req)])
                .into_iter()
                .sum()
        }
    }

    #[test]
    fn call_many_runs_targets_in_parallel() {
        // This needs distinct handler types per node: wrap in one enum-free
        // cluster by spawning Sleeper-compatible handlers. Handler is a
        // trait, so all nodes share Req/Resp but can differ in type — the
        // cluster is typed by ONE handler type H, so express the mix with
        // a single enum handler instead.
        enum Mixed {
            Sleep(Sleeper),
            Fan(FanOut),
        }
        impl Handler for Mixed {
            type Req = u64;
            type Resp = u64;
            fn handle(&mut self, ctx: &NodeCtx<u64, u64>, req: u64) -> u64 {
                match self {
                    Mixed::Sleep(s) => s.handle(ctx, req),
                    Mixed::Fan(f) => f.handle(ctx, req),
                }
            }
        }
        let cluster: Cluster<Mixed> = Cluster::new(CostModel::zero());
        let a = cluster.spawn(Mixed::Sleep(Sleeper));
        let b = cluster.spawn(Mixed::Sleep(Sleeper));
        let fan = cluster.spawn(Mixed::Fan(FanOut { a, b }));
        let start = Instant::now();
        assert_eq!(cluster.call(fan, 5), 10);
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_millis(115),
            "parallel fan-out took {elapsed:?} (sequential would be ≥120ms)"
        );
        cluster.shutdown();
    }

    /// Spawns a child node on demand, then forwards to it.
    struct Spawner {
        child: Option<ComputeNodeId>,
    }
    impl Handler for Spawner {
        type Req = u64;
        type Resp = u64;
        fn handle(&mut self, ctx: &NodeCtx<u64, u64>, req: u64) -> u64 {
            if req == 0 {
                let child = ctx.spawn(Spawner { child: None });
                self.child = Some(child);
                child.0.into()
            } else {
                ctx.call(self.child.expect("child spawned first"), 0)
            }
        }
    }

    #[test]
    fn handlers_spawn_nodes_at_runtime() {
        let cluster = Cluster::new(CostModel::zero());
        let root = cluster.spawn(Spawner { child: None });
        assert_eq!(cluster.node_count(), 1);
        let child_id = cluster.call(root, 0);
        assert_eq!(cluster.node_count(), 2);
        assert_eq!(child_id, 1);
        // The dynamically spawned child is reachable through the parent.
        let grandchild = cluster.call(root, 1);
        assert_eq!(grandchild, 2);
        assert_eq!(cluster.node_count(), 3);
        cluster.shutdown();
    }

    #[test]
    fn cost_model_injects_measurable_delay() {
        let cluster = Cluster::new(CostModel {
            latency: Duration::from_millis(10),
            per_kib: Duration::ZERO,
        });
        let node = cluster.spawn(Echo);
        let start = Instant::now();
        cluster.call(node, 1);
        assert!(start.elapsed() >= Duration::from_millis(20)); // req + resp
        let m = cluster.metrics();
        assert!(m.simulated_delay_nanos >= 20_000_000);
        cluster.shutdown();
    }

    #[test]
    #[should_panic(expected = "unknown compute node")]
    fn calling_unknown_node_panics() {
        let cluster: Cluster<Echo> = Cluster::new(CostModel::zero());
        let _ = cluster.call(ComputeNodeId(5), 1);
    }

    #[test]
    fn shutdown_joins_all_threads() {
        let cluster = Cluster::new(CostModel::zero());
        for _ in 0..8 {
            cluster.spawn(Echo);
        }
        cluster.shutdown(); // must not hang
    }
}
