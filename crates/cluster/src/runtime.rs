//! Compute nodes, the in-process channel fabric, and blocking calls.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;

use semtree_conc::sync::{Mutex, RwLock};

use crate::cost::CostModel;
use crate::gate::MembershipGate;
use crate::metrics::{ClusterMetrics, MetricsSnapshot};
use crate::transport::{
    BoxHandler, ClusterError, CompleteFn, ComputeNodeId, NodeFactory, ReplyHandle, ReplySlot,
    Transport, Wire, PROCESS_STRIDE_BITS,
};

/// A compute node's request handler: single-threaded, owns its state, may
/// call other nodes or spawn new ones through the [`NodeCtx`].
pub trait Handler: Send + 'static {
    /// Request message type.
    type Req: Wire + Send + 'static;
    /// Response message type.
    type Resp: Wire + Send + 'static;

    /// Process one request to completion.
    fn handle(&mut self, ctx: &NodeCtx<Self::Req, Self::Resp>, req: Self::Req) -> Self::Resp;
}

impl<H: Handler> crate::transport::DynHandler<H::Req, H::Resp> for H {
    fn handle_dyn(&mut self, ctx: &NodeCtx<H::Req, H::Resp>, req: H::Req) -> H::Resp {
        self.handle(ctx, req)
    }
}

struct Envelope<Req, Resp> {
    req: Req,
    reply: crate::transport::ReplySlot<Resp>,
}

/// A live node's inbox sender; `None` once the node has shut down.
type NodeSlot<Req, Resp> = Option<Sender<Envelope<Req, Resp>>>;

/// The in-process fabric: compute nodes as threads exchanging typed
/// messages over channels, with simulated interconnect cost. This is the
/// paper-faithful simulation backend and the default [`Transport`]; the
/// TCP backend in `semtree-net` composes one of these per process for
/// its locally hosted nodes.
pub struct ChannelFabric<Req, Resp> {
    /// Index of the process this fabric represents (0 when standalone).
    process_index: u32,
    /// Local node slots; a `None` slot is a node that has shut down.
    nodes: RwLock<Vec<NodeSlot<Req, Resp>>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    metrics: Arc<ClusterMetrics>,
    cost: CostModel,
    /// The composite transport node calls route through. Empty (or dead)
    /// means "route through this fabric itself" — the standalone case.
    /// `semtree-net` points this at its TCP fabric so a node's call to a
    /// remote partition leaves the process.
    router: RwLock<Weak<dyn Transport<Req, Resp>>>,
    factory: RwLock<Option<Arc<NodeFactory<Req, Resp>>>>,
    /// Flipped (and `factory_gate` notified) once a node factory is
    /// installed, so spawn retries can wait on a condvar instead of
    /// polling. The gate predicate reads only this atomic — never the
    /// `factory` lock — keeping the lock order acyclic.
    factory_installed: AtomicBool,
    factory_gate: MembershipGate,
    self_weak: Weak<ChannelFabric<Req, Resp>>,
}

impl<Req: Wire + Send + 'static, Resp: Wire + Send + 'static> ChannelFabric<Req, Resp> {
    /// An empty fabric for one process of a deployment.
    #[must_use]
    pub fn new(cost: CostModel, process_index: u32) -> Arc<Self> {
        Arc::new_cyclic(|self_weak| ChannelFabric {
            process_index,
            nodes: RwLock::new(Vec::new()),
            handles: Mutex::new(Vec::new()),
            metrics: ClusterMetrics::new(),
            cost,
            router: RwLock::new(
                Weak::<ChannelFabric<Req, Resp>>::new() as Weak<dyn Transport<Req, Resp>>
            ),
            factory: RwLock::new(None),
            factory_installed: AtomicBool::new(false),
            factory_gate: MembershipGate::new(),
            self_weak: Weak::clone(self_weak),
        })
    }

    /// Block until a node factory has been installed via
    /// [`Transport::set_node_factory`], or `timeout` elapses. Returns
    /// `true` when a factory is available. Remote spawn handlers use
    /// this to ride out the startup race where a `SpawnFresh` frame
    /// arrives before the worker finishes installing its factory —
    /// without sleep-polling.
    #[must_use]
    pub fn wait_for_node_factory(&self, timeout: std::time::Duration) -> bool {
        if self.factory_installed.load(Ordering::Acquire) {
            return true;
        }
        let timeout_nanos = u64::try_from(timeout.as_nanos()).unwrap_or(u64::MAX);
        self.factory_gate
            .wait_until(timeout_nanos, || {
                self.factory_installed.load(Ordering::Acquire)
            })
            .is_ok()
    }

    /// Route node-initiated traffic through `router` instead of this
    /// fabric alone (set by a composite transport wrapping this one).
    pub fn set_router(&self, router: Weak<dyn Transport<Req, Resp>>) {
        *self.router.write() = router;
    }

    /// The transport node calls go through: the installed router if it is
    /// alive, otherwise this fabric itself.
    fn route(&self) -> Result<Arc<dyn Transport<Req, Resp>>, ClusterError> {
        if let Some(router) = self.router.read().upgrade() {
            return Ok(router);
        }
        self.self_weak
            .upgrade()
            .map(|fabric| fabric as Arc<dyn Transport<Req, Resp>>)
            .ok_or_else(|| ClusterError::Net("channel fabric shut down".into()))
    }

    /// The metrics sink, shared so a composite transport accounts its
    /// network frames into the same counters.
    #[must_use]
    pub fn metrics_handle(&self) -> Arc<ClusterMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Index of the process this fabric represents.
    #[must_use]
    pub fn process_index(&self) -> u32 {
        self.process_index
    }

    /// The installed node factory, if any.
    fn factory(&self) -> Result<Arc<NodeFactory<Req, Resp>>, ClusterError> {
        self.factory
            .read()
            .clone()
            .ok_or_else(|| ClusterError::SpawnFailed("no node factory installed".into()))
    }

    /// Record a message; the transit delay is *not* slept here — it is
    /// slept on the receiving side, so that fan-out messages travel
    /// concurrently like non-blocking MPI sends.
    fn record(&self, bytes: usize) -> std::time::Duration {
        let delay = self.cost.delay_for(bytes);
        self.metrics.record_message(bytes, delay.as_nanos() as u64);
        delay
    }

    fn spawn_boxed(
        &self,
        mut handler: BoxHandler<Req, Resp>,
    ) -> Result<ComputeNodeId, ClusterError> {
        let (tx, rx) = channel::<Envelope<Req, Resp>>();
        let id = {
            let mut nodes = self.nodes.write();
            if nodes.len() >= 1 << PROCESS_STRIDE_BITS {
                return Err(ClusterError::SpawnFailed(format!(
                    "process {} is full ({} nodes)",
                    self.process_index,
                    nodes.len()
                )));
            }
            let id = ComputeNodeId::from_parts(self.process_index, nodes.len() as u32);
            nodes.push(Some(tx));
            id
        };
        self.metrics.record_spawn();
        let fabric = self.self_weak.upgrade().ok_or_else(|| {
            ClusterError::SpawnFailed("channel fabric shut down mid-spawn".into())
        })?;
        let ctx = NodeCtx { id, fabric };
        let handle = std::thread::Builder::new()
            .name(format!("compute-node-{}", id.0))
            .spawn(move || {
                while let Ok(env) = rx.recv() {
                    // Sleep the request's transit delay on arrival: this is
                    // where the simulated interconnect latency materialises,
                    // and concurrent senders overlap their delays.
                    let in_delay = ctx.fabric.cost.delay_for(env.req.wire_size());
                    if !in_delay.is_zero() {
                        std::thread::sleep(in_delay);
                    }
                    let resp = handler.handle_dyn(&ctx, env.req);
                    // The response's transit delay is paid before it is handed
                    // back, again on this thread so parallel responders overlap.
                    let resp_size = resp.wire_size();
                    let out_delay = ctx.fabric.record(resp_size);
                    ctx.fabric.metrics.record_response_bytes(resp_size);
                    if !out_delay.is_zero() {
                        std::thread::sleep(out_delay);
                    }
                    env.reply.fill(Ok(resp));
                }
            })
            .map_err(|e| ClusterError::SpawnFailed(e.to_string()))?;
        self.handles.lock().push(handle);
        Ok(id)
    }
}

impl<Req: Wire + Send + 'static, Resp: Wire + Send + 'static> Transport<Req, Resp>
    for ChannelFabric<Req, Resp>
{
    fn send(&self, target: ComputeNodeId, req: Req) -> Result<ReplyHandle<Resp>, ClusterError> {
        if target.process() != self.process_index {
            // A remote id can only reach a bare channel fabric when no
            // composite transport is routing — i.e. the node is unknown
            // by construction.
            return Err(ClusterError::UnknownNode(target));
        }
        let sender = {
            let nodes = self.nodes.read();
            match nodes.get(target.local_index()) {
                Some(Some(tx)) => tx.clone(),
                // Never existed, or existed and was shut down.
                _ => return Err(ClusterError::UnknownNode(target)),
            }
        };
        self.record(req.wire_size());
        let (slot, handle) = ReplyHandle::pair(target);
        sender
            .send(Envelope { req, reply: slot })
            .map_err(|_| ClusterError::NodeDied(target))?;
        Ok(handle)
    }

    fn submit(&self, target: ComputeNodeId, req: Req, complete: CompleteFn<Resp>) {
        if target.process() != self.process_index {
            complete(Err(ClusterError::UnknownNode(target)));
            return;
        }
        let sender = {
            let nodes = self.nodes.read();
            match nodes.get(target.local_index()) {
                Some(Some(tx)) => tx.clone(),
                _ => {
                    complete(Err(ClusterError::UnknownNode(target)));
                    return;
                }
            }
        };
        self.record(req.wire_size());
        let slot = ReplySlot::with_callback(target, complete);
        // On send failure the unfilled slot inside the rejected envelope
        // drops, which runs the callback with `NodeDied` — exactly once
        // either way. The node thread otherwise fills it (invoking the
        // callback there) when the response is ready, so the submitter
        // never blocks on this request.
        let _ = sender.send(Envelope { req, reply: slot });
    }

    fn spawn_handler(&self, handler: BoxHandler<Req, Resp>) -> Result<ComputeNodeId, ClusterError> {
        self.spawn_boxed(handler)
    }

    fn spawn_member(&self) -> Result<ComputeNodeId, ClusterError> {
        let factory = self.factory()?;
        self.spawn_boxed(factory())
    }

    fn set_node_factory(&self, factory: Box<NodeFactory<Req, Resp>>) {
        *self.factory.write() = Some(Arc::from(factory));
        self.factory_installed.store(true, Ordering::Release);
        self.factory_gate.notify();
    }

    fn record_request_latency(&self, nanos: u64) {
        self.metrics.record_latency(nanos);
    }

    fn node_count(&self) -> usize {
        self.nodes
            .read()
            .iter()
            .filter(|slot| slot.is_some())
            .count()
    }

    fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    fn reset_metrics(&self) {
        self.metrics.reset();
    }

    fn shutdown(&self) {
        // Dropping the senders ends each node's receive loop...
        for slot in self.nodes.write().iter_mut() {
            *slot = None;
        }
        // ...then join. (Node threads hold the fabric Arc but never their
        // own JoinHandle, so joining here cannot self-deadlock.)
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.handles.lock());
        for h in handles {
            let _ = h.join();
        }
    }
}

/// The capabilities a handler has while processing a request: identify
/// itself, call other nodes (blocking), fan out in parallel, and create
/// new compute nodes.
pub struct NodeCtx<Req, Resp> {
    id: ComputeNodeId,
    fabric: Arc<ChannelFabric<Req, Resp>>,
}

impl<Req: Wire + Send + 'static, Resp: Wire + Send + 'static> NodeCtx<Req, Resp> {
    /// This node's id.
    #[must_use]
    pub fn node_id(&self) -> ComputeNodeId {
        self.id
    }

    /// Synchronous request to another node (MPI-style send + recv),
    /// possibly in another process when a network transport is routing.
    ///
    /// SemTree request flows are strictly parent → child in the partition
    /// tree, so blocking here cannot deadlock.
    pub fn call(&self, target: ComputeNodeId, req: Req) -> Result<Resp, ClusterError> {
        assert_ne!(
            target, self.id,
            "a node must not call itself (would deadlock)"
        );
        self.fabric.route()?.send(target, req)?.wait()
    }

    /// Fan a set of requests out and wait for every response ("the
    /// navigation is performed in a parallel way"): all targets process
    /// concurrently. The first failure wins; remaining responses are
    /// discarded.
    pub fn call_many(&self, calls: Vec<(ComputeNodeId, Req)>) -> Result<Vec<Resp>, ClusterError> {
        let route = self.fabric.route()?;
        let handles = calls
            .into_iter()
            .map(|(target, req)| {
                assert_ne!(target, self.id, "a node must not call itself");
                route.send(target, req)
            })
            .collect::<Result<Vec<_>, _>>()?;
        handles.into_iter().map(ReplyHandle::wait).collect()
    }

    /// Start a node running `handler` in this process (tests and
    /// special-purpose roots; partitions use
    /// [`spawn_member`](NodeCtx::spawn_member)).
    pub fn spawn<H>(&self, handler: H) -> ComputeNodeId
    where
        H: Handler<Req = Req, Resp = Resp>,
    {
        self.fabric
            .spawn_boxed(Box::new(handler))
            .expect("spawning a compute node thread succeeds")
    }

    /// Create a new member node via the installed factory, placed by the
    /// routing transport — on another process under `semtree-net`.
    pub fn spawn_member(&self) -> Result<ComputeNodeId, ClusterError> {
        self.fabric.route()?.spawn_member()
    }
}

/// A set of compute nodes connected by a message fabric.
///
/// Typed by one [`Handler`] implementation `H`; backed by a pluggable
/// [`Transport`] — the in-process channel fabric by default.
pub struct Cluster<H: Handler> {
    local: Arc<ChannelFabric<H::Req, H::Resp>>,
    transport: Arc<dyn Transport<H::Req, H::Resp>>,
}

impl<H: Handler> Cluster<H> {
    /// Create an empty single-process cluster with the given simulated
    /// interconnect cost model.
    #[must_use]
    pub fn new(cost: CostModel) -> Self {
        let local = ChannelFabric::new(cost, 0);
        let transport: Arc<dyn Transport<H::Req, H::Resp>> = Arc::clone(&local) as _;
        Cluster { local, transport }
    }

    /// Wrap an existing fabric pair: `local` hosts this process's nodes,
    /// `transport` routes the deployment (they are the same object for a
    /// single-process cluster; `semtree-net` passes its TCP fabric).
    #[must_use]
    pub fn from_parts(
        local: Arc<ChannelFabric<H::Req, H::Resp>>,
        transport: Arc<dyn Transport<H::Req, H::Resp>>,
    ) -> Self {
        Cluster { local, transport }
    }

    /// Start a compute node running `handler` in this process.
    pub fn spawn(&self, handler: H) -> ComputeNodeId {
        self.local
            .spawn_boxed(Box::new(handler))
            .expect("spawning a compute node thread succeeds")
    }

    /// Create a member node via the installed node factory, placed by the
    /// transport (possibly on a remote process).
    pub fn spawn_member(&self) -> Result<ComputeNodeId, ClusterError> {
        self.transport.spawn_member()
    }

    /// Install the factory used for member spawns.
    pub fn set_node_factory(&self, factory: Box<NodeFactory<H::Req, H::Resp>>) {
        self.transport.set_node_factory(factory);
    }

    /// Blocking request from outside the cluster (the "client").
    pub fn call(&self, target: ComputeNodeId, req: H::Req) -> Result<H::Resp, ClusterError> {
        self.transport.send(target, req)?.wait()
    }

    /// Pipelined request from outside the cluster: `complete` runs
    /// exactly once with the outcome, on the thread that finishes the
    /// request, and the caller is free immediately (see
    /// [`Transport::submit`]).
    pub fn submit(&self, target: ComputeNodeId, req: H::Req, complete: CompleteFn<H::Resp>) {
        self.transport.submit(target, req, complete);
    }

    /// Number of compute nodes hosted by this process.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.transport.node_count()
    }

    /// Current metrics snapshot.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        self.transport.metrics()
    }

    /// Reset metrics counters (between experiment phases).
    pub fn reset_metrics(&self) {
        self.transport.reset_metrics();
    }

    /// Account one served client request (`nanos` end-to-end) into the
    /// transport's latency histogram.
    pub fn record_request_latency(&self, nanos: u64) {
        self.transport.record_request_latency(nanos);
    }

    /// The shared metrics sink. The local fabric's counters are the
    /// deployment's counters: composite transports (`semtree-net`)
    /// account into the same `Arc`, and serving fabrics record request
    /// latency through it.
    #[must_use]
    pub fn metrics_handle(&self) -> Arc<ClusterMetrics> {
        self.local.metrics_handle()
    }

    /// The transport this cluster routes through.
    #[must_use]
    pub fn transport(&self) -> Arc<dyn Transport<H::Req, H::Resp>> {
        Arc::clone(&self.transport)
    }

    /// Stop every node and join its thread.
    pub fn shutdown(self) {
        self.transport.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use std::time::{Duration, Instant};

    use super::*;

    struct Echo;
    impl Handler for Echo {
        type Req = u64;
        type Resp = u64;
        fn handle(&mut self, _ctx: &NodeCtx<u64, u64>, req: u64) -> u64 {
            req
        }
    }

    #[test]
    fn echo_roundtrip() {
        let cluster = Cluster::new(CostModel::zero());
        let node = cluster.spawn(Echo);
        assert_eq!(cluster.call(node, 7), Ok(7));
        assert_eq!(cluster.node_count(), 1);
        cluster.shutdown();
    }

    #[test]
    fn submit_completes_through_the_callback_without_blocking() {
        let cluster = Cluster::new(CostModel::zero());
        let node = cluster.spawn(Echo);
        let (tx, rx) = channel();
        cluster.submit(node, 9, Box::new(move |out| tx.send(out).unwrap()));
        assert_eq!(rx.recv().unwrap(), Ok(9));
        // Routing failures also arrive through the callback, never a panic.
        let (tx, rx) = channel();
        cluster.submit(
            ComputeNodeId(77),
            1,
            Box::new(move |out| tx.send(out).unwrap()),
        );
        assert_eq!(
            rx.recv().unwrap(),
            Err(ClusterError::UnknownNode(ComputeNodeId(77)))
        );
        cluster.shutdown();
    }

    #[test]
    fn metrics_count_request_and_response() {
        let cluster = Cluster::new(CostModel::zero());
        let node = cluster.spawn(Echo);
        cluster.call(node, 1).unwrap();
        let m = cluster.metrics();
        assert_eq!(m.messages, 2); // request + response
        assert_eq!(m.bytes, 16);
        assert_eq!(m.response_bytes, 8); // the echoed u64 coming back
        assert_eq!(m.spawned_nodes, 1);
        cluster.reset_metrics();
        assert_eq!(cluster.metrics().messages, 0);
        cluster.shutdown();
    }

    /// Forwards any request to the next node (if any), adding 1 per hop.
    struct Chain {
        next: Option<ComputeNodeId>,
    }
    impl Handler for Chain {
        type Req = u64;
        type Resp = u64;
        fn handle(&mut self, ctx: &NodeCtx<u64, u64>, req: u64) -> u64 {
            match self.next {
                Some(next) => ctx.call(next, req + 1).expect("chain hop"),
                None => req,
            }
        }
    }

    #[test]
    fn nodes_call_each_other_down_a_chain() {
        let cluster = Cluster::new(CostModel::zero());
        let tail = cluster.spawn(Chain { next: None });
        let mid = cluster.spawn(Chain { next: Some(tail) });
        let head = cluster.spawn(Chain { next: Some(mid) });
        assert_eq!(cluster.call(head, 0), Ok(2)); // two hops increment twice
        assert_eq!(cluster.metrics().messages, 6); // 3 calls × (req+resp)
        cluster.shutdown();
    }

    struct Sleeper;
    impl Handler for Sleeper {
        type Req = u64;
        type Resp = u64;
        fn handle(&mut self, _ctx: &NodeCtx<u64, u64>, req: u64) -> u64 {
            std::thread::sleep(Duration::from_millis(60));
            req
        }
    }

    /// Fans out to two sleepers in parallel.
    struct FanOut {
        a: ComputeNodeId,
        b: ComputeNodeId,
    }
    impl Handler for FanOut {
        type Req = u64;
        type Resp = u64;
        fn handle(&mut self, ctx: &NodeCtx<u64, u64>, req: u64) -> u64 {
            ctx.call_many(vec![(self.a, req), (self.b, req)])
                .expect("fan-out")
                .into_iter()
                .sum()
        }
    }

    #[test]
    fn call_many_runs_targets_in_parallel() {
        // The cluster is typed by ONE handler type H, so express the mix
        // of node behaviours with a single enum handler.
        enum Mixed {
            Sleep(Sleeper),
            Fan(FanOut),
        }
        impl Handler for Mixed {
            type Req = u64;
            type Resp = u64;
            fn handle(&mut self, ctx: &NodeCtx<u64, u64>, req: u64) -> u64 {
                match self {
                    Mixed::Sleep(s) => s.handle(ctx, req),
                    Mixed::Fan(f) => f.handle(ctx, req),
                }
            }
        }
        let cluster: Cluster<Mixed> = Cluster::new(CostModel::zero());
        let a = cluster.spawn(Mixed::Sleep(Sleeper));
        let b = cluster.spawn(Mixed::Sleep(Sleeper));
        let fan = cluster.spawn(Mixed::Fan(FanOut { a, b }));
        let start = Instant::now();
        assert_eq!(cluster.call(fan, 5), Ok(10));
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_millis(115),
            "parallel fan-out took {elapsed:?} (sequential would be ≥120ms)"
        );
        cluster.shutdown();
    }

    /// Spawns a child node on demand, then forwards to it.
    struct Spawner {
        child: Option<ComputeNodeId>,
    }
    impl Handler for Spawner {
        type Req = u64;
        type Resp = u64;
        fn handle(&mut self, ctx: &NodeCtx<u64, u64>, req: u64) -> u64 {
            if req == 0 {
                let child = ctx.spawn(Spawner { child: None });
                self.child = Some(child);
                child.0.into()
            } else {
                ctx.call(self.child.expect("child spawned first"), 0)
                    .expect("child answers")
            }
        }
    }

    #[test]
    fn handlers_spawn_nodes_at_runtime() {
        let cluster = Cluster::new(CostModel::zero());
        let root = cluster.spawn(Spawner { child: None });
        assert_eq!(cluster.node_count(), 1);
        let child_id = cluster.call(root, 0).unwrap();
        assert_eq!(cluster.node_count(), 2);
        assert_eq!(child_id, 1);
        // The dynamically spawned child is reachable through the parent.
        let grandchild = cluster.call(root, 1).unwrap();
        assert_eq!(grandchild, 2);
        assert_eq!(cluster.node_count(), 3);
        cluster.shutdown();
    }

    #[test]
    fn cost_model_injects_measurable_delay() {
        let cluster = Cluster::new(CostModel {
            latency: Duration::from_millis(10),
            per_kib: Duration::ZERO,
        });
        let node = cluster.spawn(Echo);
        let start = Instant::now();
        cluster.call(node, 1).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(20)); // req + resp
        let m = cluster.metrics();
        assert!(m.simulated_delay_nanos >= 20_000_000);
        cluster.shutdown();
    }

    #[test]
    fn calling_unknown_node_is_a_typed_error() {
        let cluster: Cluster<Echo> = Cluster::new(CostModel::zero());
        assert_eq!(
            cluster.call(ComputeNodeId(5), 1),
            Err(ClusterError::UnknownNode(ComputeNodeId(5)))
        );
        // Ids owned by another process are equally unknown to a bare
        // channel fabric.
        let foreign = ComputeNodeId::from_parts(2, 0);
        assert_eq!(
            cluster.call(foreign, 1),
            Err(ClusterError::UnknownNode(foreign))
        );
        cluster.shutdown();
    }

    #[test]
    fn calls_after_shutdown_fail_gracefully() {
        let cluster: Cluster<Echo> = Cluster::new(CostModel::zero());
        let node = cluster.spawn(Echo);
        let transport = cluster.transport();
        cluster.shutdown();
        match transport.send(node, 1) {
            Err(ClusterError::UnknownNode(id)) => assert_eq!(id, node),
            other => panic!("expected UnknownNode, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn member_spawns_use_the_installed_factory() {
        let cluster: Cluster<Echo> = Cluster::new(CostModel::zero());
        // Without a factory, member spawns fail with a typed error.
        match cluster.spawn_member() {
            Err(ClusterError::SpawnFailed(msg)) => assert!(msg.contains("factory"), "{msg}"),
            other => panic!("expected SpawnFailed, got {other:?}"),
        }
        cluster.set_node_factory(Box::new(|| Box::new(Echo)));
        let member = cluster.spawn_member().unwrap();
        assert_eq!(cluster.call(member, 3), Ok(3));
        assert_eq!(cluster.node_count(), 1);
        cluster.shutdown();
    }

    #[test]
    fn shutdown_joins_all_threads() {
        let cluster = Cluster::new(CostModel::zero());
        for _ in 0..8 {
            cluster.spawn(Echo);
        }
        cluster.shutdown(); // must not hang
    }
}
