//! FastMap (Faloutsos & Lin, SIGMOD 1995): embed `n` objects into `R^k`
//! given only a pairwise distance oracle.
//!
//! SemTree "leverages the mapping of triples in a vectorial space by
//! means of … a proper semantic distance"; FastMap is the algorithm the
//! paper cites for that mapping. Per dimension it:
//!
//! 1. picks two distant *pivot* objects with the classic
//!    `choose-distant-objects` heuristic (a few farthest-point hops);
//! 2. projects every object onto the pivot line with the cosine law:
//!    `x_i = (d(a,i)² + d(a,b)² − d(b,i)²) / (2·d(a,b))`;
//! 3. recurses on the residual distance
//!    `d'(i,j)² = d(i,j)² − (x_i − x_j)²` (clamped at 0 — the clamp is
//!    required because a semantic distance need not be Euclidean).
//!
//! The [`Embedding`] retains the pivot pairs so *out-of-sample* objects
//! (query triples that were never indexed) can be projected into the same
//! space — see [`Embedding::project_with`] and DESIGN.md §5.
//!
//! # Example
//!
//! ```
//! use semtree_fastmap::FastMap;
//!
//! // Points on a line, distance = |i − j| · 0.1.
//! let d = |i: usize, j: usize| (i as f64 - j as f64).abs() * 0.1;
//! let emb = FastMap::new(2).with_seed(7).embed(10, &d);
//! // A 1-D structure embeds (near-)isometrically in 2-D.
//! let err = (emb.embedded_distance(0, 9) - d(0, 9)).abs();
//! assert!(err < 1e-9);
//! ```

mod embedding;
mod quality;

pub use embedding::{Embedding, FastMap, PivotPair};
pub use quality::{stress, DistortionStats};
