//! The FastMap algorithm and its output.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use semtree_par::Pool;

/// Number of farthest-point hops in `choose-distant-objects` (the constant
/// the original paper uses).
const PIVOT_HOPS: usize = 5;

/// One pivot pair: the two objects spanning a FastMap axis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PivotPair {
    /// Index of the first pivot in the build set.
    pub a: usize,
    /// Index of the second pivot in the build set.
    pub b: usize,
    /// Projected distance between the pivots on this axis's residual space.
    pub d_ab: f64,
}

/// FastMap configuration: target dimensionality, RNG seed, and worker
/// count for the parallel scans.
#[derive(Debug, Clone, Copy)]
pub struct FastMap {
    k: usize,
    seed: u64,
    /// Worker count for the distance scans; `0` means "size to the
    /// machine". The output is byte-identical for every value.
    threads: usize,
}

impl FastMap {
    /// Embed into `k` dimensions.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "target dimensionality must be at least 1");
        FastMap {
            k,
            seed: 0x5EED_FA57,
            threads: 0,
        }
    }

    /// Fix the pivot-selection seed (embedding is deterministic per seed).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Fix the worker count for the parallel pivot scans and coordinate
    /// columns (`0` = one worker per hardware thread, the default).
    /// Thread count never changes the embedding: the parallel schedule
    /// reproduces the sequential result bit-for-bit.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Target dimensionality.
    #[must_use]
    pub fn dimensions(&self) -> usize {
        self.k
    }

    /// Run FastMap over `n` objects with distance oracle `dist`
    /// (symmetric, non-negative, `dist(i,i) = 0`). The oracle must be
    /// `Sync`: per-axis pivot scans and coordinate columns are computed
    /// by the `semtree-par` work-stealing pool, which calls `dist`
    /// concurrently on disjoint object ranges.
    #[must_use]
    pub fn embed<F>(&self, n: usize, dist: &F) -> Embedding
    where
        F: Fn(usize, usize) -> f64 + Sync,
    {
        let pool = if self.threads == 0 {
            Pool::new()
        } else {
            Pool::sequential().with_threads(self.threads)
        };
        let mut coords = vec![0.0f64; n * self.k];
        let mut pivots = Vec::with_capacity(self.k);
        let mut rng = StdRng::seed_from_u64(self.seed);

        for h in 0..self.k {
            if n < 2 {
                pivots.push(PivotPair {
                    a: 0,
                    b: 0,
                    d_ab: 0.0,
                });
                continue;
            }
            // Residual (projected) squared distance at level h.
            let proj2 = |i: usize, j: usize, coords: &[f64]| -> f64 {
                let mut d2 = dist(i, j).powi(2);
                for m in 0..h {
                    let diff = coords[i * self.k + m] - coords[j * self.k + m];
                    d2 -= diff * diff;
                }
                d2.max(0.0)
            };

            // choose-distant-objects: start random, hop to the farthest.
            // The parallel argmax replicates `Iterator::max_by` exactly:
            // within a chunk the later index wins ties (`>=`), and chunk
            // results combine in ascending order with the later chunk
            // winning ties, so the reduction returns the *last* maximal
            // index — the same object the sequential scan picks.
            let mut a = rng.random_range(0..n);
            let mut b = a;
            for _ in 0..PIVOT_HOPS {
                let far = pool
                    .reduce(
                        n,
                        &|start, end| {
                            let mut best = (start, proj2(b, start, &coords));
                            for x in start + 1..end {
                                let key = proj2(b, x, &coords);
                                if key >= best.1 {
                                    best = (x, key);
                                }
                            }
                            best
                        },
                        &|acc, next| if next.1 >= acc.1 { next } else { acc },
                    )
                    .map_or(b, |(idx, _)| idx);
                if far == a {
                    break;
                }
                a = b;
                b = far;
            }
            let d_ab2 = proj2(a, b, &coords);
            if d_ab2 <= f64::EPSILON {
                // All residual distances are zero: remaining axes are 0.
                pivots.push(PivotPair { a, b, d_ab: 0.0 });
                continue;
            }
            let d_ab = d_ab2.sqrt();

            let column = pool.map(n, &|i| {
                (proj2(a, i, &coords) + d_ab2 - proj2(b, i, &coords)) / (2.0 * d_ab)
            });
            for (i, x) in column.into_iter().enumerate() {
                coords[i * self.k + h] = x;
            }
            pivots.push(PivotPair { a, b, d_ab });
        }

        Embedding {
            n,
            k: self.k,
            coords,
            pivots,
        }
    }
}

/// The result of a FastMap run: per-object coordinates plus the pivot pairs
/// needed to project out-of-sample objects.
#[derive(Debug, Clone)]
pub struct Embedding {
    n: usize,
    k: usize,
    coords: Vec<f64>,
    pivots: Vec<PivotPair>,
}

impl Embedding {
    /// Number of embedded objects.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the embedding is over zero objects.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Dimensionality `k`.
    #[must_use]
    pub fn dimensions(&self) -> usize {
        self.k
    }

    /// Coordinates of object `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn point(&self, i: usize) -> &[f64] {
        &self.coords[i * self.k..(i + 1) * self.k]
    }

    /// The pivot pairs, one per dimension.
    #[must_use]
    pub fn pivots(&self) -> &[PivotPair] {
        &self.pivots
    }

    /// Euclidean distance between two embedded objects.
    #[must_use]
    pub fn embedded_distance(&self, i: usize, j: usize) -> f64 {
        semtree_par::metric::euclidean(self.point(i), self.point(j))
    }

    /// Project an out-of-sample object into the embedding.
    ///
    /// `dist_to(p)` must return the *original-space* distance between the
    /// new object and build-set object `p`; the projection then replays the
    /// cosine-law formula against the stored pivots, subtracting the
    /// already-assigned coordinates exactly as the build did.
    #[must_use]
    pub fn project_with(&self, dist_to: &dyn Fn(usize) -> f64) -> Vec<f64> {
        let mut q = vec![0.0f64; self.k];
        // Cache original distances to each distinct pivot object.
        for (h, piv) in self.pivots.iter().enumerate() {
            if piv.d_ab <= f64::EPSILON {
                q[h] = 0.0;
                continue;
            }
            let mut da2 = dist_to(piv.a).powi(2);
            let mut db2 = dist_to(piv.b).powi(2);
            let pa = self.point(piv.a);
            let pb = self.point(piv.b);
            for m in 0..h {
                da2 -= (q[m] - pa[m]).powi(2);
                db2 -= (q[m] - pb[m]).powi(2);
            }
            da2 = da2.max(0.0);
            db2 = db2.max(0.0);
            q[h] = (da2 + piv.d_ab * piv.d_ab - db2) / (2.0 * piv.d_ab);
        }
        q
    }

    /// Iterate all points as `(index, coordinates)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[f64])> {
        (0..self.n).map(move |i| (i, self.point(i)))
    }

    /// Reassemble an embedding from its serialized parts (coordinates in
    /// row-major order plus the per-dimension pivot pairs).
    ///
    /// # Panics
    /// Panics when the part sizes are inconsistent (`coords.len()` must be
    /// `n·k` with `k = pivots.len() > 0`, and pivot indices must be within
    /// the build set).
    #[must_use]
    pub fn from_parts(n: usize, coords: Vec<f64>, pivots: Vec<PivotPair>) -> Self {
        let k = pivots.len();
        assert!(k > 0, "at least one dimension is required");
        assert_eq!(coords.len(), n * k, "coordinate buffer size mismatch");
        for p in &pivots {
            assert!(p.a < n.max(1) && p.b < n.max(1), "pivot index out of range");
        }
        Embedding {
            n,
            k,
            coords,
            pivots,
        }
    }

    /// Append an out-of-sample point (previously computed with
    /// [`Embedding::project_with`]) so it becomes addressable like a build
    /// point. The pivots are untouched: they always reference the original
    /// build set, so later projections are unaffected.
    ///
    /// # Panics
    /// Panics if `coords.len() != dimensions()`.
    pub fn push_point(&mut self, coords: &[f64]) {
        assert_eq!(coords.len(), self.k, "dimensionality mismatch");
        self.coords.extend_from_slice(coords);
        self.n += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_dist(i: usize, j: usize) -> f64 {
        (i as f64 - j as f64).abs()
    }

    #[test]
    fn one_dimensional_data_embeds_isometrically() {
        let emb = FastMap::new(1).with_seed(1).embed(20, &line_dist);
        for i in 0..20 {
            for j in 0..20 {
                let err = (emb.embedded_distance(i, j) - line_dist(i, j)).abs();
                assert!(err < 1e-9, "({i},{j}) err {err}");
            }
        }
    }

    #[test]
    fn extra_dimensions_collapse_to_zero_for_line_data() {
        let emb = FastMap::new(3).with_seed(1).embed(10, &line_dist);
        for (_, p) in emb.iter() {
            assert!(p[1].abs() < 1e-9 && p[2].abs() < 1e-9, "{p:?}");
        }
    }

    #[test]
    fn embedded_distance_is_contractive_for_euclidean_input() {
        // 2-D grid under true Euclidean distance: FastMap never expands
        // distances when the input is Euclidean.
        let pts: Vec<(f64, f64)> = (0..5)
            .flat_map(|x| (0..5).map(move |y| (x as f64, y as f64)))
            .collect();
        let d = move |i: usize, j: usize| {
            let (x1, y1) = pts[i];
            let (x2, y2) = pts[j];
            ((x1 - x2).powi(2) + (y1 - y2).powi(2)).sqrt()
        };
        let emb = FastMap::new(2).with_seed(42).embed(25, &d);
        for i in 0..25 {
            for j in 0..25 {
                assert!(emb.embedded_distance(i, j) <= d(i, j) + 1e-6);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let e1 = FastMap::new(4).with_seed(9).embed(30, &line_dist);
        let e2 = FastMap::new(4).with_seed(9).embed(30, &line_dist);
        for i in 0..30 {
            assert_eq!(e1.point(i), e2.point(i));
        }
    }

    #[test]
    fn handles_tiny_inputs() {
        let e0 = FastMap::new(3).with_seed(1).embed(0, &line_dist);
        assert!(e0.is_empty());
        let e1 = FastMap::new(3).with_seed(1).embed(1, &line_dist);
        assert_eq!(e1.len(), 1);
        assert_eq!(e1.point(0), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn identical_objects_land_on_the_same_point() {
        let d = |_: usize, _: usize| 0.0;
        let emb = FastMap::new(2).with_seed(3).embed(5, &d);
        for i in 0..5 {
            assert_eq!(emb.point(i), emb.point(0));
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_dimensions_panics() {
        let _ = FastMap::new(0);
    }

    #[test]
    fn out_of_sample_projection_matches_in_sample() {
        // Projecting object 7 as if it were new must land where the build
        // put it: the projection formula is the build formula.
        let emb = FastMap::new(2).with_seed(11).embed(15, &line_dist);
        let q = emb.project_with(&|p| line_dist(7, p));
        let built = emb.point(7);
        for (qa, qb) in q.iter().zip(built) {
            assert!((qa - qb).abs() < 1e-9, "{q:?} vs {built:?}");
        }
    }

    #[test]
    fn out_of_sample_projection_preserves_neighbourhoods() {
        // Embed even integers; project an odd one — it must land between
        // its neighbours.
        let d = |i: usize, j: usize| ((2 * i) as f64 - (2 * j) as f64).abs();
        let emb = FastMap::new(1).with_seed(5).embed(10, &d);
        // New object with value 7 (between build objects 3→6 and 4→8).
        let q = emb.project_with(&|p| (7.0 - (2 * p) as f64).abs());
        let lo = emb.point(3)[0].min(emb.point(4)[0]);
        let hi = emb.point(3)[0].max(emb.point(4)[0]);
        assert!(q[0] > lo && q[0] < hi, "{q:?} not within ({lo}, {hi})");
    }

    #[test]
    fn thread_count_never_changes_the_embedding() {
        let seq = FastMap::new(3)
            .with_seed(6)
            .with_threads(1)
            .embed(40, &line_dist);
        for threads in [2, 3, 8] {
            let par = FastMap::new(3)
                .with_seed(6)
                .with_threads(threads)
                .embed(40, &line_dist);
            for i in 0..40 {
                for (x, y) in par.point(i).iter().zip(seq.point(i)) {
                    assert_eq!(x.to_bits(), y.to_bits(), "threads={threads} object {i}");
                }
            }
            assert_eq!(par.pivots(), seq.pivots(), "threads={threads}");
        }
    }

    #[test]
    fn pivots_are_recorded_per_dimension() {
        let emb = FastMap::new(3).with_seed(2).embed(12, &line_dist);
        assert_eq!(emb.pivots().len(), 3);
        let p0 = emb.pivots()[0];
        assert_ne!(p0.a, p0.b);
        assert!(p0.d_ab > 0.0);
    }

    #[test]
    fn first_axis_pivots_are_far_apart() {
        // The heuristic should find (or approach) the diameter 0..19.
        let emb = FastMap::new(1).with_seed(8).embed(20, &line_dist);
        let p = emb.pivots()[0];
        assert!(p.d_ab >= 15.0, "pivot spread {} too small", p.d_ab);
    }
}
