//! Embedding-quality metrics: stress and distortion statistics.

use crate::embedding::Embedding;

/// Kruskal-style normalised stress:
/// `sqrt( Σ (d̂(i,j) − d(i,j))² / Σ d(i,j)² )` over all pairs.
/// 0 means a perfect (isometric) embedding. Returns 0 for < 2 objects.
#[must_use]
pub fn stress(emb: &Embedding, dist: &dyn Fn(usize, usize) -> f64) -> f64 {
    let n = emb.len();
    let mut num = 0.0;
    let mut den = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            let d = dist(i, j);
            let dh = emb.embedded_distance(i, j);
            num += (dh - d) * (dh - d);
            den += d * d;
        }
    }
    if den <= 0.0 {
        0.0
    } else {
        (num / den).sqrt()
    }
}

/// Per-pair distortion statistics of an embedding: how the embedded
/// distance relates to the original one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistortionStats {
    /// Mean of `d̂/d` over pairs with `d > 0`.
    pub mean_ratio: f64,
    /// Largest expansion `max d̂/d`.
    pub max_expansion: f64,
    /// Largest contraction `min d̂/d`.
    pub max_contraction: f64,
    /// Number of pairs measured.
    pub pairs: usize,
}

impl DistortionStats {
    /// Measure an embedding against its source distance.
    #[must_use]
    pub fn measure(emb: &Embedding, dist: &dyn Fn(usize, usize) -> f64) -> Self {
        let n = emb.len();
        let mut sum = 0.0;
        let mut max_e = f64::NEG_INFINITY;
        let mut min_e = f64::INFINITY;
        let mut pairs = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                let d = dist(i, j);
                if d <= 0.0 {
                    continue;
                }
                let r = emb.embedded_distance(i, j) / d;
                sum += r;
                max_e = max_e.max(r);
                min_e = min_e.min(r);
                pairs += 1;
            }
        }
        if pairs == 0 {
            DistortionStats {
                mean_ratio: 1.0,
                max_expansion: 1.0,
                max_contraction: 1.0,
                pairs: 0,
            }
        } else {
            DistortionStats {
                mean_ratio: sum / pairs as f64,
                max_expansion: max_e,
                max_contraction: min_e,
                pairs,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedding::FastMap;

    fn line_dist(i: usize, j: usize) -> f64 {
        (i as f64 - j as f64).abs()
    }

    #[test]
    fn perfect_embedding_has_zero_stress() {
        let emb = FastMap::new(1).with_seed(1).embed(12, &line_dist);
        assert!(stress(&emb, &line_dist) < 1e-9);
    }

    #[test]
    fn lossy_embedding_has_positive_stress() {
        // Random-ish high-dimensional structure squashed into 1-D.
        let d = |i: usize, j: usize| {
            if i == j {
                0.0
            } else {
                1.0 + (((i * 31 + j * 17) % 7) as f64) / 7.0
            }
        };
        let sym = |i: usize, j: usize| (d(i.min(j), i.max(j)) + d(i.min(j), i.max(j))) / 2.0;
        let emb = FastMap::new(1).with_seed(2).embed(10, &sym);
        assert!(stress(&emb, &sym) > 0.01);
    }

    #[test]
    fn stress_degenerate_cases() {
        let emb = FastMap::new(2).with_seed(1).embed(1, &line_dist);
        assert_eq!(stress(&emb, &line_dist), 0.0);
        let zero = |_: usize, _: usize| 0.0;
        let emb = FastMap::new(2).with_seed(1).embed(4, &zero);
        assert_eq!(stress(&emb, &zero), 0.0);
    }

    #[test]
    fn distortion_of_perfect_embedding_is_one() {
        let emb = FastMap::new(1).with_seed(1).embed(10, &line_dist);
        let s = DistortionStats::measure(&emb, &line_dist);
        assert!((s.mean_ratio - 1.0).abs() < 1e-9);
        assert!((s.max_expansion - 1.0).abs() < 1e-9);
        assert!((s.max_contraction - 1.0).abs() < 1e-9);
        assert_eq!(s.pairs, 45);
    }

    #[test]
    fn distortion_empty_input() {
        let emb = FastMap::new(1).with_seed(1).embed(0, &line_dist);
        let s = DistortionStats::measure(&emb, &line_dist);
        assert_eq!(s.pairs, 0);
        assert_eq!(s.mean_ratio, 1.0);
    }

    #[test]
    fn more_dimensions_do_not_increase_stress() {
        // A fixed pseudo-metric: stress should be monotone non-increasing
        // as k grows (each extra axis explains residual distance).
        let d = |i: usize, j: usize| {
            if i == j {
                0.0
            } else {
                let (a, b) = (i.min(j), i.max(j));
                1.0 + (((a * 131 + b * 313) % 97) as f64) / 97.0
            }
        };
        let s1 = stress(&FastMap::new(1).with_seed(3).embed(15, &d), &d);
        let s4 = stress(&FastMap::new(4).with_seed(3).embed(15, &d), &d);
        assert!(s4 <= s1 + 1e-9, "s1={s1} s4={s4}");
    }
}
