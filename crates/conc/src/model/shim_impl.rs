//! The [`ModelShim`] primitives: every operation is a schedule point.

use std::ops::{Deref, DerefMut};
use std::panic::panic_any;
use std::sync::{Arc, PoisonError};

use super::{current, op, Execution, ModelAbort, Status};
use crate::shim::Shim;

/// Shim whose primitives run under the deterministic scheduler. Only
/// usable inside [`crate::explore`] executions; any operation outside
/// one panics with a clear message.
#[derive(Debug, Clone, Copy, Default)]
pub struct ModelShim;

/// Scheduler-mediated mutex. The inner `std` mutex is pure storage —
/// ownership is granted by the scheduler, so it is never contended.
#[derive(Debug)]
pub struct ModelMutex<T> {
    id: u64,
    storage: std::sync::Mutex<T>,
}

/// Guard for [`ModelMutex`]; releasing it wakes scheduler-blocked
/// waiters.
pub struct ModelGuard<'a, T: Send + 'static> {
    mutex: &'a ModelMutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

/// Scheduler-mediated condition variable (an id; all state lives in the
/// execution).
#[derive(Debug)]
pub struct ModelCondvar {
    id: u64,
}

/// Atomic counter whose every access is a schedule point.
#[derive(Debug)]
pub struct ModelAtomicU64 {
    id: u64,
    value: std::sync::atomic::AtomicU64,
}

/// Join handle for a model-managed thread.
#[derive(Debug)]
pub struct ModelJoinHandle<T> {
    tid: usize,
    slot: Arc<std::sync::Mutex<Option<T>>>,
}

impl<T: Send + 'static> ModelMutex<T> {
    fn model_lock(&self) -> ModelGuard<'_, T> {
        let (exec, tid) = current();
        exec.schedule_point(tid, op::YIELD, self.id);
        let mut st = exec.lock_state();
        loop {
            if st.aborting {
                drop(st);
                panic_any(ModelAbort);
            }
            if let std::collections::hash_map::Entry::Vacant(slot) = st.mutex_owners.entry(self.id)
            {
                slot.insert(tid);
                Execution::record(&mut st, tid, op::ACQUIRE, self.id);
                break;
            }
            st = exec.yield_to_scheduler(st, tid, Status::BlockedMutex(self.id));
        }
        drop(st);
        ModelGuard {
            mutex: self,
            inner: Some(self.storage.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }
}

impl<T: Send + 'static> Deref for ModelGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("model guard used after release")
    }
}

impl<T: Send + 'static> DerefMut for ModelGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("model guard used after release")
    }
}

impl<T: Send + 'static> Drop for ModelGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_none() {
            return; // released by a condvar wait
        }
        // Never panic out of a Drop: tolerate a missing execution (the
        // thread-local is cleared only after every guard is gone in
        // well-formed tests, but a leaked guard must not abort).
        let Some((exec, tid)) = super::CURRENT.with(|c| c.borrow().clone()) else {
            return;
        };
        let mut st = exec.lock_state();
        st.mutex_owners.remove(&self.mutex.id);
        Execution::record(&mut st, tid, op::RELEASE, self.mutex.id);
        let id = self.mutex.id;
        for t in &mut st.threads {
            if t.status == Status::BlockedMutex(id) {
                t.status = Status::Runnable;
            }
        }
    }
}

impl ModelCondvar {
    /// Shared body of `wait` / `wait_timeout`.
    fn model_wait<'a, T: Send + 'static>(
        &self,
        mut guard: ModelGuard<'a, T>,
        mutex: &'a ModelMutex<T>,
        timeout_nanos: Option<u64>,
    ) -> (ModelGuard<'a, T>, bool) {
        let (exec, tid) = current();
        drop(guard.inner.take()); // storage guard first, then scheduler release
        let mut st = exec.lock_state();
        if st.aborting {
            drop(st);
            panic_any(ModelAbort);
        }
        if guard.mutex.id != mutex.id || st.mutex_owners.get(&mutex.id) != Some(&tid) {
            exec.fail(
                &mut st,
                "condvar wait without holding the paired mutex".to_string(),
            );
            drop(st);
            panic_any(ModelAbort);
        }
        st.mutex_owners.remove(&mutex.id);
        let mid = mutex.id;
        for t in &mut st.threads {
            if t.status == Status::BlockedMutex(mid) {
                t.status = Status::Runnable;
            }
        }
        Execution::record(&mut st, tid, op::WAIT, self.id);
        let deadline = timeout_nanos.map(|n| st.clock.saturating_add(n));
        let mut st = exec.yield_to_scheduler(
            st,
            tid,
            Status::BlockedCondvar {
                cv: self.id,
                deadline,
            },
        );
        let timed_out = st.threads[tid].wake_timed_out;
        st.threads[tid].wake_timed_out = false;
        Execution::record(&mut st, tid, op::WAKE, self.id);
        drop(st);
        (mutex.model_lock(), timed_out)
    }

    fn model_notify(&self, all: bool) {
        let (exec, tid) = current();
        exec.schedule_point(tid, op::NOTIFY, self.id);
        let mut st = exec.lock_state();
        for t in &mut st.threads {
            if let Status::BlockedCondvar { cv, .. } = t.status {
                if cv == self.id {
                    t.status = Status::Runnable;
                    t.wake_timed_out = false;
                    if !all {
                        break;
                    }
                }
            }
        }
    }
}

impl ModelAtomicU64 {
    fn touch(&self) -> usize {
        let (exec, tid) = current();
        exec.schedule_point(tid, op::ATOMIC, self.id);
        tid
    }
}

impl Shim for ModelShim {
    type Mutex<T: Send + 'static> = ModelMutex<T>;
    type Guard<'a, T: Send + 'static> = ModelGuard<'a, T>;
    type Condvar = ModelCondvar;
    type AtomicU64 = ModelAtomicU64;
    type JoinHandle<T: Send + 'static> = ModelJoinHandle<T>;

    fn mutex<T: Send + 'static>(value: T) -> Self::Mutex<T> {
        let (exec, _) = current();
        ModelMutex {
            id: exec.alloc_object_id(),
            storage: std::sync::Mutex::new(value),
        }
    }

    fn lock<T: Send + 'static>(mutex: &Self::Mutex<T>) -> Self::Guard<'_, T> {
        mutex.model_lock()
    }

    fn condvar() -> Self::Condvar {
        let (exec, _) = current();
        ModelCondvar {
            id: exec.alloc_object_id(),
        }
    }

    fn wait<'a, T: Send + 'static>(
        cv: &Self::Condvar,
        guard: Self::Guard<'a, T>,
        mutex: &'a Self::Mutex<T>,
    ) -> Self::Guard<'a, T> {
        cv.model_wait(guard, mutex, None).0
    }

    fn wait_timeout<'a, T: Send + 'static>(
        cv: &Self::Condvar,
        guard: Self::Guard<'a, T>,
        mutex: &'a Self::Mutex<T>,
        timeout_nanos: u64,
    ) -> (Self::Guard<'a, T>, bool) {
        cv.model_wait(guard, mutex, Some(timeout_nanos))
    }

    fn notify_all(cv: &Self::Condvar) {
        cv.model_notify(true);
    }

    fn notify_one(cv: &Self::Condvar) {
        cv.model_notify(false);
    }

    fn atomic_u64(value: u64) -> Self::AtomicU64 {
        let (exec, _) = current();
        ModelAtomicU64 {
            id: exec.alloc_object_id(),
            value: std::sync::atomic::AtomicU64::new(value),
        }
    }

    fn fetch_add(atomic: &Self::AtomicU64, value: u64) -> u64 {
        atomic.touch();
        atomic
            .value
            .fetch_add(value, std::sync::atomic::Ordering::SeqCst)
    }

    fn load(atomic: &Self::AtomicU64) -> u64 {
        atomic.touch();
        atomic.value.load(std::sync::atomic::Ordering::SeqCst)
    }

    fn store(atomic: &Self::AtomicU64, value: u64) {
        atomic.touch();
        atomic
            .value
            .store(value, std::sync::atomic::Ordering::SeqCst);
    }

    // The model serializes every atomic access through the scheduler,
    // so SeqCst already subsumes the acquire/release orderings: the
    // ordered variants only need to be schedule points like the rest.
    fn load_acquire(atomic: &Self::AtomicU64) -> u64 {
        atomic.touch();
        atomic.value.load(std::sync::atomic::Ordering::SeqCst)
    }

    fn store_release(atomic: &Self::AtomicU64, value: u64) {
        atomic.touch();
        atomic
            .value
            .store(value, std::sync::atomic::Ordering::SeqCst);
    }

    fn now_nanos() -> u64 {
        let (exec, _) = current();
        let st = exec.lock_state();
        st.clock
    }

    fn spawn<F, T>(f: F) -> Self::JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let (exec, tid) = current();
        exec.schedule_point(tid, op::SPAWN, 0);
        let slot = Arc::new(std::sync::Mutex::new(None));
        let out = Arc::clone(&slot);
        let child = exec.spawn_managed(move || {
            let value = f();
            *out.lock().unwrap_or_else(PoisonError::into_inner) = Some(value);
        });
        ModelJoinHandle { tid: child, slot }
    }

    fn join<T: Send + 'static>(handle: Self::JoinHandle<T>) -> T {
        let (exec, tid) = current();
        exec.schedule_point(tid, op::JOIN, handle.tid as u64);
        let st = exec.lock_state();
        if st.aborting {
            drop(st);
            panic_any(ModelAbort);
        }
        if st.threads[handle.tid].status == Status::Finished {
            drop(st);
        } else {
            drop(exec.yield_to_scheduler(st, tid, Status::BlockedJoin(handle.tid)));
        }
        match handle
            .slot
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
        {
            Some(value) => value,
            // The child panicked; the failure is already recorded and
            // the execution is aborting — unwind this thread too.
            None => panic_any(ModelAbort),
        }
    }
}
