//! Loom-style deterministic scheduler.
//!
//! Threads under the model are real OS threads, but only one is ever
//! *active*: every shim operation first yields to the central scheduler
//! ([`Execution`]), which picks the next thread to run from the enabled
//! set according to a decision sequence. Re-running with the same
//! decisions reproduces the identical execution — that is what makes a
//! printed seed replayable — and enumerating decision sequences (see
//! [`crate::explore`]) visits distinct interleavings exhaustively.
//!
//! Model semantics:
//! - **Timed waits** never sleep. A thread parked in `wait_timeout` adds
//!   an always-enabled scheduling choice "fire this timeout", which
//!   advances a logical nanosecond clock to the wait's deadline and
//!   wakes the thread with `timed_out = true`.
//! - **Spurious wakeups** are scheduling choices too, with a small
//!   per-execution budget, so predicate loops are exercised without
//!   making the tree unbounded.
//! - **Deadlock** (no enabled choice while threads remain) is a model
//!   failure, reported with every thread's blocked state.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, PoisonError};

mod shim_impl;

pub use shim_impl::{
    ModelAtomicU64, ModelCondvar, ModelGuard, ModelJoinHandle, ModelMutex, ModelShim,
};

/// Panic payload used to unwind managed threads when an execution
/// aborts (failure found, or another thread panicked). Caught by the
/// per-thread `catch_unwind`; never escapes the model.
struct ModelAbort;

/// Operation codes folded into the execution fingerprint.
mod op {
    pub const ACQUIRE: u8 = 1;
    pub const RELEASE: u8 = 2;
    pub const WAIT: u8 = 3;
    pub const WAKE: u8 = 4;
    pub const NOTIFY: u8 = 5;
    pub const ATOMIC: u8 = 6;
    pub const SPAWN: u8 = 7;
    pub const JOIN: u8 = 8;
    pub const FINISH: u8 = 9;
    pub const YIELD: u8 = 10;
}

/// How the scheduler resolves branch points past the replay prefix.
#[derive(Debug, Clone)]
pub(crate) enum Mode {
    /// Always take option 0 (the explorer increments the prefix between
    /// runs to walk the whole tree).
    Dfs,
    /// SplitMix64-driven choices.
    Random { state: u64 },
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    BlockedMutex(u64),
    BlockedCondvar { cv: u64, deadline: Option<u64> },
    BlockedJoin(usize),
    Finished,
}

#[derive(Debug)]
struct ThreadInfo {
    status: Status,
    /// Set when the thread was woken from a condvar by the timeout
    /// choice (as opposed to a notify or a spurious wake).
    wake_timed_out: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Choice {
    Run(usize),
    FireTimeout(usize),
    Spurious(usize),
}

pub(crate) struct SchedState {
    threads: Vec<ThreadInfo>,
    active: Option<usize>,
    clock: u64,
    spurious_budget: u32,
    prefix: Vec<u32>,
    mode: Mode,
    /// Every branch taken this run: (chosen index, arity). Forced moves
    /// (arity 1) are not recorded — they cannot branch.
    decisions: Vec<(u32, u32)>,
    /// FNV-1a running hash over (tid, op, object) events.
    fingerprint: u64,
    ops: usize,
    failure: Option<String>,
    aborting: bool,
    completed: bool,
    next_object_id: u64,
    mutex_owners: HashMap<u64, usize>,
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

/// One model execution: scheduler state plus the condvar every managed
/// thread parks on.
pub(crate) struct Execution {
    state: std::sync::Mutex<SchedState>,
    cv: std::sync::Condvar,
}

/// Outcome of a single execution, consumed by the explorer.
#[derive(Debug, Clone)]
pub(crate) struct ExecOutcome {
    pub(crate) decisions: Vec<(u32, u32)>,
    pub(crate) fingerprint: u64,
    pub(crate) ops: usize,
    pub(crate) failure: Option<String>,
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Execution>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

fn current() -> (Arc<Execution>, usize) {
    CURRENT.with(|c| {
        c.borrow()
            .clone()
            .expect("model primitive used outside a model execution (use StdShim in production)")
    })
}

type StateGuard<'a> = std::sync::MutexGuard<'a, SchedState>;

impl Execution {
    fn new(prefix: Vec<u32>, mode: Mode, spurious_budget: u32) -> Self {
        Execution {
            state: std::sync::Mutex::new(SchedState {
                threads: Vec::new(),
                active: None,
                clock: 0,
                spurious_budget,
                prefix,
                mode,
                decisions: Vec::new(),
                fingerprint: 0xcbf2_9ce4_8422_2325,
                ops: 0,
                failure: None,
                aborting: false,
                completed: false,
                next_object_id: 0,
                mutex_owners: HashMap::new(),
                os_handles: Vec::new(),
            }),
            cv: std::sync::Condvar::new(),
        }
    }

    fn lock_state(&self) -> StateGuard<'_> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn alloc_object_id(&self) -> u64 {
        let mut st = self.lock_state();
        st.next_object_id += 1;
        st.next_object_id
    }

    fn record(st: &mut SchedState, tid: usize, opcode: u8, object: u64) {
        for byte in [tid as u64, u64::from(opcode), object] {
            st.fingerprint ^= byte;
            st.fingerprint = st.fingerprint.wrapping_mul(0x0000_0100_0000_01B3);
        }
        st.ops += 1;
    }

    fn enabled(st: &SchedState) -> Vec<Choice> {
        let mut options = Vec::new();
        for (tid, t) in st.threads.iter().enumerate() {
            if t.status == Status::Runnable {
                options.push(Choice::Run(tid));
            }
        }
        for (tid, t) in st.threads.iter().enumerate() {
            if let Status::BlockedCondvar {
                deadline: Some(_), ..
            } = t.status
            {
                options.push(Choice::FireTimeout(tid));
            }
        }
        if st.spurious_budget > 0 {
            for (tid, t) in st.threads.iter().enumerate() {
                if matches!(t.status, Status::BlockedCondvar { .. }) {
                    options.push(Choice::Spurious(tid));
                }
            }
        }
        options
    }

    fn fail(&self, st: &mut SchedState, message: String) {
        if st.failure.is_none() {
            st.failure = Some(message);
        }
        st.aborting = true;
        self.cv.notify_all();
    }

    /// Resolve the next scheduling choice and make that thread active.
    /// Must be called with `active == None`.
    fn pick_next(&self, st: &mut SchedState) {
        debug_assert!(st.active.is_none());
        if st.aborting || st.completed {
            self.cv.notify_all();
            return;
        }
        let options = Self::enabled(st);
        if options.is_empty() {
            if st.threads.iter().all(|t| t.status == Status::Finished) {
                st.completed = true;
                self.cv.notify_all();
                return;
            }
            let blocked: Vec<String> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.status != Status::Finished)
                .map(|(tid, t)| format!("thread {tid}: {:?}", t.status))
                .collect();
            self.fail(
                st,
                format!("deadlock: no enabled thread [{}]", blocked.join("; ")),
            );
            return;
        }
        let index = if options.len() == 1 {
            0
        } else {
            let arity = u32::try_from(options.len()).unwrap_or(u32::MAX);
            let depth = st.decisions.len();
            let chosen = if depth < st.prefix.len() {
                let wanted = st.prefix[depth];
                if wanted >= arity {
                    self.fail(
                        st,
                        format!(
                            "replay diverged: decision {depth} wants option {wanted} \
                             but only {arity} are enabled"
                        ),
                    );
                    return;
                }
                wanted
            } else {
                match &mut st.mode {
                    Mode::Dfs => 0,
                    Mode::Random { state } => {
                        #[allow(clippy::cast_possible_truncation)]
                        {
                            (splitmix64(state) % u64::from(arity)) as u32
                        }
                    }
                }
            };
            st.decisions.push((chosen, arity));
            chosen as usize
        };
        match options[index] {
            Choice::Run(tid) => st.active = Some(tid),
            Choice::FireTimeout(tid) => {
                if let Status::BlockedCondvar {
                    deadline: Some(d), ..
                } = st.threads[tid].status
                {
                    st.clock = st.clock.max(d);
                }
                st.threads[tid].status = Status::Runnable;
                st.threads[tid].wake_timed_out = true;
                st.active = Some(tid);
            }
            Choice::Spurious(tid) => {
                st.spurious_budget -= 1;
                st.threads[tid].status = Status::Runnable;
                st.threads[tid].wake_timed_out = false;
                st.active = Some(tid);
            }
        }
        self.cv.notify_all();
    }

    /// Give up activity with `new_status`, let the scheduler pick the
    /// next thread, park until this thread is active again, and return
    /// the re-acquired state guard. Panics with [`ModelAbort`] when the
    /// execution is aborting.
    fn yield_to_scheduler<'a>(
        &'a self,
        mut st: StateGuard<'a>,
        tid: usize,
        new_status: Status,
    ) -> StateGuard<'a> {
        st.threads[tid].status = new_status;
        st.active = None;
        self.pick_next(&mut st);
        loop {
            if st.aborting {
                drop(st);
                std::panic::panic_any(ModelAbort);
            }
            if st.active == Some(tid) {
                return st;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Pre-operation preemption point: other threads may run before the
    /// caller's next operation. Records `(tid, opcode, object)` once the
    /// caller is active again, so the fingerprint reflects execution
    /// order.
    fn schedule_point(&self, tid: usize, opcode: u8, object: u64) {
        let st = self.lock_state();
        if st.aborting {
            drop(st);
            std::panic::panic_any(ModelAbort);
        }
        let mut st = self.yield_to_scheduler(st, tid, Status::Runnable);
        Self::record(&mut st, tid, opcode, object);
    }

    /// Park until this thread is made active for the first time (used
    /// by freshly spawned threads). Returns `false` when the execution
    /// aborted before the thread ever ran.
    fn wait_until_active(&self, tid: usize) -> bool {
        let mut st = self.lock_state();
        loop {
            if st.aborting {
                return false;
            }
            if st.active == Some(tid) {
                return true;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Mark `tid` finished, wake its joiners and hand activity to the
    /// next choice.
    fn finish(&self, tid: usize) {
        let mut st = self.lock_state();
        st.threads[tid].status = Status::Finished;
        st.threads[tid].wake_timed_out = false;
        Self::record(&mut st, tid, op::FINISH, 0);
        for t in &mut st.threads {
            if t.status == Status::BlockedJoin(tid) {
                t.status = Status::Runnable;
            }
        }
        if st.active == Some(tid) {
            st.active = None;
        }
        if st.threads.iter().all(|t| t.status == Status::Finished) {
            st.completed = true;
            self.cv.notify_all();
            return;
        }
        if st.active.is_none() {
            self.pick_next(&mut st);
        }
    }

    fn record_thread_panic(&self, tid: usize, payload: Box<dyn std::any::Any + Send>) {
        if payload.downcast_ref::<ModelAbort>().is_some() {
            return;
        }
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        let mut st = self.lock_state();
        self.fail(&mut st, format!("thread {tid} panicked: {message}"));
    }

    /// Register a new managed thread and spawn its OS carrier. The
    /// caller (the spawning managed thread) stays active.
    fn spawn_managed<F>(self: &Arc<Self>, body: F) -> usize
    where
        F: FnOnce() + Send + 'static,
    {
        let mut st = self.lock_state();
        let tid = st.threads.len();
        st.threads.push(ThreadInfo {
            status: Status::Runnable,
            wake_timed_out: false,
        });
        let exec = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("model-{tid}"))
            .spawn(move || {
                CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), tid)));
                if exec.wait_until_active(tid) {
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(body)) {
                        exec.record_thread_panic(tid, payload);
                    }
                }
                exec.finish(tid);
                CURRENT.with(|c| *c.borrow_mut() = None);
            });
        match handle {
            Ok(h) => st.os_handles.push(h),
            Err(e) => {
                st.threads[tid].status = Status::Finished;
                self.fail(&mut st, format!("could not spawn model thread: {e}"));
            }
        }
        tid
    }
}

/// Run `f` once under the scheduler with the given replay `prefix` and
/// post-prefix `mode`; block until every managed thread has finished.
pub(crate) fn run_once(
    f: &Arc<dyn Fn() + Send + Sync>,
    prefix: Vec<u32>,
    mode: Mode,
    spurious_budget: u32,
) -> ExecOutcome {
    let exec = Arc::new(Execution::new(prefix, mode, spurious_budget));
    let root = Arc::clone(f);
    let tid = exec.spawn_managed(move || root());
    {
        // The root thread starts active; everything else waits its turn.
        let mut st = exec.lock_state();
        if !st.aborting {
            st.active = Some(tid);
        }
        exec.cv.notify_all();
    }
    let handles = {
        let mut st = exec.lock_state();
        while !(st.completed
            || st.aborting && st.threads.iter().all(|t| t.status == Status::Finished))
        {
            st = exec.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        std::mem::take(&mut st.os_handles)
    };
    for h in handles {
        let _ = h.join();
    }
    let st = exec.lock_state();
    ExecOutcome {
        decisions: st.decisions.clone(),
        fingerprint: st.fingerprint,
        ops: st.ops,
        failure: st.failure.clone(),
    }
}
