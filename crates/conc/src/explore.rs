//! Drives the model scheduler over many executions.
//!
//! Three modes:
//! - [`explore`] — bounded exhaustive DFS over the scheduling-choice
//!   tree. Run 1 takes option 0 at every branch while recording each
//!   branch's arity; between runs the deepest incrementable decision is
//!   bumped, so every leaf of the (bounded) tree is visited exactly
//!   once. Deterministic by construction.
//! - [`explore_random`] — seeded SplitMix64 choices, useful as a
//!   cheap extra sweep past the DFS bound. Same seed, same schedules.
//! - [`replay`] — re-run one exact schedule from a printed seed.
//!
//! A failing execution's seed is the textual form of its decision
//! vector (`d3,0,1,...`), so any failure — assertion, deadlock,
//! panicking thread — is reproducible with [`replay`] regardless of
//! which mode found it.

use std::collections::HashSet;
use std::sync::Arc;

use crate::model::{run_once, ExecOutcome, Mode};

/// Tuning knobs for an exploration.
#[derive(Debug, Clone)]
pub struct Options {
    /// Stop DFS after this many executions even if the tree has more
    /// leaves (the tree for three-plus threads is effectively
    /// unbounded once timeouts and spurious wakes join the choice set).
    pub max_interleavings: usize,
    /// How many spurious condvar wakeups the scheduler may inject per
    /// execution.
    pub spurious_budget: u32,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            max_interleavings: 2_000,
            spurious_budget: 1,
        }
    }
}

/// What an exploration saw.
#[derive(Debug, Clone)]
pub struct Report {
    /// Executions run with pairwise-distinct schedules.
    pub interleavings: usize,
    /// `true` when DFS drained the whole tree under the bound.
    pub exhausted: bool,
    /// First failure found, if any (exploration stops on it).
    pub failure: Option<Failure>,
}

/// A failing execution, replayable from `seed`.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Decision-vector seed accepted by [`replay`] / `--replay`.
    pub seed: String,
    /// The assertion, panic or deadlock message.
    pub message: String,
}

/// Outcome of one replayed execution.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Order-sensitive hash of every (thread, operation, object) event;
    /// two runs of the same schedule must produce the same value.
    pub fingerprint: u64,
    /// Scheduler operations performed.
    pub ops: usize,
    /// The failure this schedule reproduces, if any.
    pub failure: Option<String>,
}

/// Render a decision vector as a replayable seed string.
#[must_use]
pub fn format_seed(decisions: &[(u32, u32)]) -> String {
    let parts: Vec<String> = decisions.iter().map(|(c, _)| c.to_string()).collect();
    format!("d{}", parts.join(","))
}

/// Parse a seed produced by [`format_seed`].
///
/// # Errors
/// Returns a description of the malformed component when `seed` is not
/// `d<idx>,<idx>,...`.
pub fn parse_seed(seed: &str) -> Result<Vec<u32>, String> {
    let body = seed
        .strip_prefix('d')
        .ok_or_else(|| format!("seed must start with 'd': {seed:?}"))?;
    if body.is_empty() {
        return Ok(Vec::new());
    }
    body.split(',')
        .map(|part| {
            part.parse::<u32>()
                .map_err(|e| format!("bad seed component {part:?}: {e}"))
        })
        .collect()
}

fn as_failure(outcome: &ExecOutcome) -> Option<Failure> {
    outcome.failure.as_ref().map(|message| Failure {
        seed: format_seed(&outcome.decisions),
        message: message.clone(),
    })
}

/// Bounded exhaustive DFS over every scheduling choice of `f`.
pub fn explore<F>(options: &Options, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let mut prefix: Vec<(u32, u32)> = Vec::new();
    let mut interleavings = 0;
    loop {
        let choices: Vec<u32> = prefix.iter().map(|&(c, _)| c).collect();
        let outcome = run_once(&f, choices, Mode::Dfs, options.spurious_budget);
        interleavings += 1;
        if let Some(failure) = as_failure(&outcome) {
            return Report {
                interleavings,
                exhausted: false,
                failure: Some(failure),
            };
        }
        if interleavings >= options.max_interleavings {
            return Report {
                interleavings,
                exhausted: false,
                failure: None,
            };
        }
        // Backtrack: bump the deepest decision that still has an
        // untaken sibling, dropping everything below it.
        prefix = outcome.decisions;
        loop {
            match prefix.last_mut() {
                None => {
                    return Report {
                        interleavings,
                        exhausted: true,
                        failure: None,
                    };
                }
                Some((choice, arity)) if *choice + 1 < *arity => {
                    *choice += 1;
                    break;
                }
                Some(_) => {
                    prefix.pop();
                }
            }
        }
    }
}

/// `iterations` executions with SplitMix64-seeded choices. Reports the
/// number of *distinct* schedules seen (random draws may repeat).
pub fn explore_random<F>(options: &Options, base_seed: u64, iterations: usize, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let mut seen = HashSet::new();
    for round in 0..iterations {
        let state = base_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(round as u64);
        let outcome = run_once(
            &f,
            Vec::new(),
            Mode::Random { state },
            options.spurious_budget,
        );
        seen.insert(outcome.fingerprint);
        if let Some(failure) = as_failure(&outcome) {
            return Report {
                interleavings: seen.len(),
                exhausted: false,
                failure: Some(failure),
            };
        }
    }
    Report {
        interleavings: seen.len(),
        exhausted: false,
        failure: None,
    }
}

/// Re-run the exact schedule encoded in `seed`.
///
/// # Errors
/// Returns the parse error when `seed` is malformed.
pub fn replay<F>(seed: &str, f: F) -> Result<ReplayOutcome, String>
where
    F: Fn() + Send + Sync + 'static,
{
    let choices = parse_seed(seed)?;
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    // Spurious wakes are replayed from the decision vector itself, so
    // the budget only needs to admit them as choices.
    let outcome = run_once(&f, choices, Mode::Dfs, u32::MAX);
    Ok(ReplayOutcome {
        fingerprint: outcome.fingerprint,
        ops: outcome.ops,
        failure: outcome.failure,
    })
}

/// Convenience for `#[test]` functions: explore and panic with the
/// replayable seed when a failing interleaving exists.
///
/// # Panics
/// Panics when any explored interleaving fails, with the seed in the
/// message.
pub fn check<F>(options: &Options, f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let report = explore(options, f);
    if let Some(failure) = report.failure {
        panic!(
            "model failure after {} interleavings — replay with seed {}: {}",
            report.interleavings, failure.seed, failure.message
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelShim;
    use crate::shim::Shim;
    use std::sync::Arc;

    #[test]
    fn seed_round_trips() {
        let decisions = [(3, 5), (0, 2), (11, 12)];
        let seed = format_seed(&decisions);
        assert_eq!(seed, "d3,0,11");
        assert_eq!(parse_seed(&seed).unwrap(), vec![3, 0, 11]);
        assert_eq!(parse_seed("d").unwrap(), Vec::<u32>::new());
        assert!(parse_seed("x1").is_err());
        assert!(parse_seed("d1,,2").is_err());
    }

    #[test]
    fn single_thread_program_has_one_interleaving() {
        let report = explore(&Options::default(), || {
            let m = ModelShim::mutex(0u64);
            *ModelShim::lock(&m) += 1;
            assert_eq!(*ModelShim::lock(&m), 1);
        });
        assert!(report.exhausted);
        assert_eq!(report.interleavings, 1);
        assert!(report.failure.is_none());
    }

    #[test]
    fn two_increments_explore_multiple_interleavings_and_stay_correct() {
        let report = explore(&Options::default(), || {
            let m = Arc::new(ModelShim::mutex(0u64));
            let m2 = Arc::clone(&m);
            let t = ModelShim::spawn(move || *ModelShim::lock(&m2) += 1);
            *ModelShim::lock(&m) += 1;
            ModelShim::join(t);
            assert_eq!(*ModelShim::lock(&m), 2);
        });
        assert!(report.exhausted, "small tree should drain fully");
        assert!(report.interleavings > 1, "spawn/lock must branch");
        assert!(report.failure.is_none());
    }

    #[test]
    fn lost_update_race_is_found_and_replays() {
        // Classic read-modify-write race: both threads read, then both
        // write read+1. Some interleaving must lose an update.
        let racy = || {
            let m = Arc::new(ModelShim::mutex(0u64));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let m = Arc::clone(&m);
                handles.push(ModelShim::spawn(move || {
                    let read = *ModelShim::lock(&m);
                    *ModelShim::lock(&m) = read + 1;
                }));
            }
            for h in handles {
                ModelShim::join(h);
            }
            assert_eq!(*ModelShim::lock(&m), 2, "lost update");
        };
        let report = explore(&Options::default(), racy);
        let failure = report.failure.expect("DFS must find the lost update");
        assert!(failure.message.contains("lost update"));

        // The printed seed reproduces the identical failing execution.
        let a = replay(&failure.seed, racy).unwrap();
        let b = replay(&failure.seed, racy).unwrap();
        assert!(a.failure.is_some(), "replay must reproduce the failure");
        assert_eq!(a.fingerprint, b.fingerprint, "replay must be deterministic");
    }

    #[test]
    fn deadlock_is_reported_with_thread_states() {
        // Two locks taken in opposite orders: some interleaving
        // deadlocks.
        let report = explore(&Options::default(), || {
            let a = Arc::new(ModelShim::mutex(()));
            let b = Arc::new(ModelShim::mutex(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = ModelShim::spawn(move || {
                let _ga = ModelShim::lock(&a2);
                let _gb = ModelShim::lock(&b2);
            });
            let _gb = ModelShim::lock(&b);
            let _ga = ModelShim::lock(&a);
            drop((_ga, _gb));
            ModelShim::join(t);
        });
        let failure = report.failure.expect("opposite lock orders must deadlock");
        assert!(failure.message.contains("deadlock"), "{}", failure.message);
    }

    #[test]
    fn condvar_handshake_needs_timeout_or_notify() {
        // Waiter with a deadline + a notifier: no interleaving hangs,
        // because the timeout choice is always enabled.
        let report = explore(&Options::default(), || {
            let pair = Arc::new((ModelShim::mutex(false), ModelShim::condvar()));
            let p2 = Arc::clone(&pair);
            let t = ModelShim::spawn(move || {
                *ModelShim::lock(&p2.0) = true;
                ModelShim::notify_all(&p2.1);
            });
            let mut ready = ModelShim::lock(&pair.0);
            let mut waited = 0;
            while !*ready {
                let (g, timed_out) = ModelShim::wait_timeout(&pair.1, ready, &pair.0, 1_000);
                ready = g;
                if timed_out {
                    waited += 1;
                    if waited > 3 {
                        break;
                    }
                }
            }
            drop(ready);
            ModelShim::join(t);
        });
        assert!(report.failure.is_none(), "{:?}", report.failure);
        assert!(report.interleavings > 1);
    }

    #[test]
    fn random_mode_is_deterministic_per_seed() {
        let body = || {
            let m = Arc::new(ModelShim::mutex(0u64));
            let m2 = Arc::clone(&m);
            let t = ModelShim::spawn(move || *ModelShim::lock(&m2) += 1);
            *ModelShim::lock(&m) += 1;
            ModelShim::join(t);
        };
        let a = explore_random(&Options::default(), 42, 20, body);
        let b = explore_random(&Options::default(), 42, 20, body);
        assert_eq!(a.interleavings, b.interleavings);
        assert!(a.failure.is_none());
    }

    #[test]
    fn check_panics_with_a_seed_on_failure() {
        let caught = std::panic::catch_unwind(|| {
            check(&Options::default(), || {
                let flag = Arc::new(ModelShim::mutex(false));
                let f2 = Arc::clone(&flag);
                let t = ModelShim::spawn(move || *ModelShim::lock(&f2) = true);
                // Asserting before joining: some interleaving sees false.
                assert!(*ModelShim::lock(&flag), "observed stale flag");
                ModelShim::join(t);
            });
        });
        let payload = caught.expect_err("check must panic");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(message.contains("replay with seed d"), "{message}");
    }
}
