//! Poison-recovering wrappers over `std::sync`.
//!
//! `std`'s locks poison themselves when a holder panics, turning every
//! later `lock()` into a `Result` that production code has to `unwrap()`
//! or `expect()`. For this workspace the protected state is either
//! rebuilt on reconnect (peer maps, pending tables) or guarded by its
//! own integrity checks (the WAL's CRC framing), so recovering the inner
//! value is always the right move. These wrappers do exactly that and
//! nothing else — same shapes, same guard semantics, no `Result`.

use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion lock whose `lock()` cannot fail.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap `value` in a new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering the data if a previous holder
    /// panicked.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose `read()`/`write()` cannot fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap `value` in a new unlocked rwlock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, recovering from poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard, recovering from poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A condition variable paired with [`Mutex`]; waits recover from
/// poison just like the lock itself.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// New condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Block until notified, releasing `guard` while parked.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.0.wait(guard).unwrap_or_else(PoisonError::into_inner)
    }

    /// Block until notified or `timeout` elapses; the boolean is `true`
    /// when the wait timed out.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        let (guard, result) = self
            .0
            .wait_timeout(guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        (guard, result.timed_out())
    }

    /// Wake one parked waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake every parked waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_recovers_after_a_panicked_holder() {
        let m = Arc::new(Mutex::new(41));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // A std mutex would now return Err; ours hands the data back.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn rwlock_recovers_after_a_panicked_writer() {
        let l = Arc::new(RwLock::new(vec![1, 2, 3]));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison it");
        })
        .join();
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn condvar_handshake_works() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock();
        while !*ready {
            ready = cv.wait(ready);
        }
        t.join().unwrap();
    }

    #[test]
    fn wait_timeout_reports_expiry() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let g = m.lock();
        let (_g, timed_out) = cv.wait_timeout(g, Duration::from_millis(1));
        assert!(timed_out);
    }
}
