//! Concurrency toolkit for the SemTree workspace.
//!
//! Three layers, from boring to exotic:
//!
//! 1. [`sync`] — drop-in, poison-recovering wrappers around
//!    `std::sync::{Mutex, RwLock, Condvar}`. A thread that panicked while
//!    holding a lock leaves the protected data in whatever state it was
//!    in, but subsequent holders get the data back instead of an
//!    unrecoverable [`std::sync::PoisonError`]. Production code uses
//!    these so lock acquisition never needs an `unwrap()`.
//!
//! 2. [`shim`] — the [`shim::Shim`] trait abstracts every primitive a
//!    concurrency-critical unit touches (mutexes, condvars, atomics,
//!    spawning, the clock) so the unit can be written once and
//!    instantiated twice: with [`shim::StdShim`] in production and with
//!    [`model::ModelShim`] under the model checker.
//!
//! 3. [`model`] + [`explore`] — a vendored loom-style deterministic
//!    scheduler. Threads run one at a time; before every shim operation
//!    the active thread yields to a central scheduler which picks the
//!    next thread from the enabled set. The [`explore::Explorer`] drives
//!    bounded exhaustive DFS over that choice tree (plus seeded-random
//!    and replay modes), so a model test visits thousands of distinct
//!    interleavings deterministically and any failure is reproducible
//!    from its printed seed.

pub mod explore;
pub mod model;
pub mod shim;
pub mod sync;
