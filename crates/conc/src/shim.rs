//! The [`Shim`] trait: every primitive a concurrency-critical unit
//! touches, behind one generic parameter.
//!
//! A unit written as `struct Gate<S: Shim> { gen: S::Mutex<u64>, .. }`
//! compiles twice: once with [`StdShim`] (real OS threads, real locks,
//! real clock — zero overhead beyond the poison-recovering wrappers) and
//! once with [`crate::model::ModelShim`] (every operation is a schedule
//! point under the deterministic explorer). Production code only ever
//! names `StdShim`; model tests only ever name `ModelShim`.
//!
//! Time is expressed as a monotonic nanosecond counter rather than
//! `std::time::Instant` so the model can drive a logical clock: a timed
//! wait under the model is an always-enabled scheduling choice that
//! advances the clock to the wait's deadline.

use std::ops::DerefMut;

/// Abstraction over sync primitives, threads and the clock.
///
/// All methods are associated functions (no `self`); the implementing
/// type is a zero-sized token. Bounds on the GATs mirror what
/// `std::sync` provides so `StdShim` is a transparent passthrough.
pub trait Shim: Sized + Send + Sync + 'static {
    /// Mutual-exclusion lock for `T`.
    type Mutex<T: Send + 'static>: Send + Sync;
    /// Guard for [`Self::Mutex`]; dereferences to `T`.
    type Guard<'a, T: Send + 'static>: DerefMut<Target = T>;
    /// Condition variable paired with [`Self::Mutex`].
    type Condvar: Send + Sync;
    /// Monotonic 64-bit counter.
    type AtomicU64: Send + Sync;
    /// Handle for a spawned thread returning `T`.
    type JoinHandle<T: Send + 'static>;

    /// Create a mutex holding `value`.
    fn mutex<T: Send + 'static>(value: T) -> Self::Mutex<T>;
    /// Acquire the lock (recovering from poison where applicable).
    fn lock<T: Send + 'static>(mutex: &Self::Mutex<T>) -> Self::Guard<'_, T>;

    /// Create a condition variable.
    fn condvar() -> Self::Condvar;
    /// Park on `cv`, releasing `guard`; returns a reacquired guard.
    /// `mutex` is the lock `guard` came from (the model needs it to
    /// reacquire; `StdShim` ignores it).
    fn wait<'a, T: Send + 'static>(
        cv: &Self::Condvar,
        guard: Self::Guard<'a, T>,
        mutex: &'a Self::Mutex<T>,
    ) -> Self::Guard<'a, T>;
    /// Like [`Shim::wait`] with a deadline `timeout_nanos` from now; the
    /// boolean is `true` when the wait expired.
    fn wait_timeout<'a, T: Send + 'static>(
        cv: &Self::Condvar,
        guard: Self::Guard<'a, T>,
        mutex: &'a Self::Mutex<T>,
        timeout_nanos: u64,
    ) -> (Self::Guard<'a, T>, bool);
    /// Wake every waiter parked on `cv`.
    fn notify_all(cv: &Self::Condvar);
    /// Wake one waiter parked on `cv`.
    fn notify_one(cv: &Self::Condvar);

    /// Create an atomic counter starting at `value`.
    fn atomic_u64(value: u64) -> Self::AtomicU64;
    /// Atomically add `value`, returning the previous value.
    fn fetch_add(atomic: &Self::AtomicU64, value: u64) -> u64;
    /// Read the current value.
    fn load(atomic: &Self::AtomicU64) -> u64;
    /// Overwrite the current value.
    fn store(atomic: &Self::AtomicU64, value: u64);
    /// Read the current value with `Acquire` ordering: every write the
    /// storing thread published (with [`Shim::store_release`]) before
    /// the stored value is visible after this load. The seqlock read
    /// side of the versioned KD-tree is built on this pairing.
    fn load_acquire(atomic: &Self::AtomicU64) -> u64;
    /// Overwrite the current value with `Release` ordering: pairs with
    /// [`Shim::load_acquire`] to publish everything written before the
    /// store.
    fn store_release(atomic: &Self::AtomicU64, value: u64);

    /// Monotonic clock reading in nanoseconds. Only differences are
    /// meaningful; the epoch is arbitrary (process start for `StdShim`,
    /// zero for the model's logical clock).
    fn now_nanos() -> u64;

    /// Spawn a thread running `f`.
    fn spawn<F, T>(f: F) -> Self::JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static;
    /// Join a spawned thread, propagating its panic.
    fn join<T: Send + 'static>(handle: Self::JoinHandle<T>) -> T;
}

/// Production shim: `std` threads and the poison-recovering wrappers
/// from [`crate::sync`].
#[derive(Debug, Clone, Copy, Default)]
pub struct StdShim;

impl Shim for StdShim {
    type Mutex<T: Send + 'static> = crate::sync::Mutex<T>;
    type Guard<'a, T: Send + 'static> = crate::sync::MutexGuard<'a, T>;
    type Condvar = crate::sync::Condvar;
    type AtomicU64 = std::sync::atomic::AtomicU64;
    type JoinHandle<T: Send + 'static> = std::thread::JoinHandle<T>;

    fn mutex<T: Send + 'static>(value: T) -> Self::Mutex<T> {
        crate::sync::Mutex::new(value)
    }

    fn lock<T: Send + 'static>(mutex: &Self::Mutex<T>) -> Self::Guard<'_, T> {
        mutex.lock()
    }

    fn condvar() -> Self::Condvar {
        crate::sync::Condvar::new()
    }

    fn wait<'a, T: Send + 'static>(
        cv: &Self::Condvar,
        guard: Self::Guard<'a, T>,
        _mutex: &'a Self::Mutex<T>,
    ) -> Self::Guard<'a, T> {
        cv.wait(guard)
    }

    fn wait_timeout<'a, T: Send + 'static>(
        cv: &Self::Condvar,
        guard: Self::Guard<'a, T>,
        _mutex: &'a Self::Mutex<T>,
        timeout_nanos: u64,
    ) -> (Self::Guard<'a, T>, bool) {
        cv.wait_timeout(guard, std::time::Duration::from_nanos(timeout_nanos))
    }

    fn notify_all(cv: &Self::Condvar) {
        cv.notify_all();
    }

    fn notify_one(cv: &Self::Condvar) {
        cv.notify_one();
    }

    fn atomic_u64(value: u64) -> Self::AtomicU64 {
        std::sync::atomic::AtomicU64::new(value)
    }

    fn fetch_add(atomic: &Self::AtomicU64, value: u64) -> u64 {
        atomic.fetch_add(value, std::sync::atomic::Ordering::Relaxed)
    }

    fn load(atomic: &Self::AtomicU64) -> u64 {
        atomic.load(std::sync::atomic::Ordering::Relaxed)
    }

    fn store(atomic: &Self::AtomicU64, value: u64) {
        atomic.store(value, std::sync::atomic::Ordering::Relaxed)
    }

    fn load_acquire(atomic: &Self::AtomicU64) -> u64 {
        atomic.load(std::sync::atomic::Ordering::Acquire)
    }

    fn store_release(atomic: &Self::AtomicU64, value: u64) {
        atomic.store(value, std::sync::atomic::Ordering::Release)
    }

    fn now_nanos() -> u64 {
        use std::sync::OnceLock;
        use std::time::Instant;
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        let epoch = *EPOCH.get_or_init(Instant::now);
        u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn spawn<F, T>(f: F) -> Self::JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        std::thread::spawn(f)
    }

    fn join<T: Send + 'static>(handle: Self::JoinHandle<T>) -> T {
        match handle.join() {
            Ok(value) => value,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    // A tiny generic unit, exercised through StdShim, proving the trait
    // is usable the way the real units use it.
    struct Counter<S: Shim> {
        total: S::AtomicU64,
    }

    impl<S: Shim> Counter<S> {
        fn new() -> Self {
            Counter {
                total: S::atomic_u64(0),
            }
        }
        fn add(&self, n: u64) {
            S::fetch_add(&self.total, n);
        }
        fn get(&self) -> u64 {
            S::load(&self.total)
        }
    }

    #[test]
    fn generic_counter_over_std_shim() {
        let c = Arc::new(Counter::<StdShim>::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&c);
            handles.push(StdShim::spawn(move || {
                for _ in 0..100 {
                    c.add(1);
                }
            }));
        }
        for h in handles {
            StdShim::join(h);
        }
        assert_eq!(c.get(), 400);
    }

    #[test]
    fn wait_timeout_expires_on_std() {
        let m = StdShim::mutex(0u64);
        let cv = StdShim::condvar();
        let g = StdShim::lock(&m);
        let (_g, timed_out) = StdShim::wait_timeout(&cv, g, &m, 1_000_000);
        assert!(timed_out);
    }

    #[test]
    fn now_nanos_is_monotonic() {
        let a = StdShim::now_nanos();
        let b = StdShim::now_nanos();
        assert!(b >= a);
    }
}
