//! Model suite: exhaustively explores the workspace's
//! concurrency-critical units under the deterministic scheduler.
//!
//! Runs as a plain binary (`harness = false`) so it can take flags:
//!
//! ```text
//! cargo test -p semtree-conc --test models                      # all targets
//! cargo test -p semtree-conc --test models -- --target wal_order
//! cargo test -p semtree-conc --test models -- --target wal_order --replay d1,0,2
//! cargo test -p semtree-conc --test models -- --iters 500       # random rounds
//! cargo test -p semtree-conc --test models -- --list
//! ```
//!
//! Every failure prints a seed; `--replay <seed>` re-runs that exact
//! schedule. `SEMTREE_MODEL_SEED` fixes the base seed of the random
//! supplement (echoed on every run, so CI logs are reproducible).

use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use semtree_cluster::{ClusterMetricsG, MembershipGate};
use semtree_conc::explore::{explore, explore_random, replay, Options};
use semtree_conc::model::ModelShim;
use semtree_conc::shim::Shim;
use semtree_distance::MemoizedDistance;
use semtree_kdtree::{KdConfig, VersionedKdTree};
use semtree_net::ConnRegistry;
use semtree_par::ChunkedQueue;
use semtree_reactor::{Push, ServeQueue};
use semtree_wal::{Appended, RecordSink, SequencedLog, WalRecord};

/// Acceptance floor: every target must explore at least this many
/// distinct interleavings.
const MIN_INTERLEAVINGS: usize = 1_000;
/// DFS bound per target (trees here are far larger; the bound keeps the
/// suite's wall-clock sane while staying well above the floor).
const MAX_INTERLEAVINGS: usize = 3_000;
/// Default rounds for the seeded-random supplement sweep.
const DEFAULT_RANDOM_ITERS: usize = 200;

struct Target {
    name: &'static str,
    what: &'static str,
    body: fn(),
    /// Spurious-wakeup injections allowed per execution (only matters
    /// for condvar targets).
    spurious_budget: u32,
}

const TARGETS: &[Target] = &[
    Target {
        name: "gate_handshake",
        what: "MembershipGate wait_until/notify: no lost wakeup, no hang, spurious-safe",
        body: gate_handshake,
        spurious_budget: 1,
    },
    Target {
        name: "metrics_aggregation",
        what: "ClusterMetricsG concurrent record/snapshot: totals exact, snapshots sane",
        body: metrics_aggregation,
        spurious_budget: 0,
    },
    Target {
        name: "mesh_connect_race",
        what: "ConnRegistry rejoin vs stale-reader eviction: fresh connection never dropped",
        body: mesh_connect_race,
        spurious_budget: 0,
    },
    Target {
        name: "wal_order",
        what: "SequencedLog append-flush-apply: no mutation applied before its record is durable",
        body: wal_order,
        spurious_budget: 0,
    },
    Target {
        name: "par_steal_join",
        what: "ChunkedQueue steal/join: every chunk claimed exactly once, drain is a join barrier",
        body: par_steal_join,
        spurious_budget: 0,
    },
    Target {
        name: "memo_shard_race",
        what: "Sharded MemoizedDistance: racing readers agree, symmetric pairs share one entry",
        body: memo_shard_race,
        spurious_budget: 0,
    },
    Target {
        name: "kdtree_read_split",
        what: "Versioned KD-tree optimistic knn vs insert/split: every validated read equals the prefix its version names",
        body: kdtree_read_split,
        spurious_budget: 0,
    },
    Target {
        name: "reactor_queue_close",
        what: "ServeQueue admit/complete vs connection close: slots released exactly once, no underflow",
        body: reactor_queue_close,
        spurious_budget: 1,
    },
    Target {
        name: "reactor_shard_wake",
        what: "Shard inbox handoff under coalescing wakes: no socket stranded, no lost wakeup",
        body: reactor_shard_wake,
        spurious_budget: 1,
    },
    Target {
        name: "pipelined_worker_hop",
        what: "ReplyToken executor→demux hop: every slot released exactly once, completions precede their wake",
        body: pipelined_worker_hop,
        spurious_budget: 1,
    },
];

// ---------------------------------------------------------------------
// Target 1: the membership gate's condvar handshake.
// ---------------------------------------------------------------------

/// A waiter blocks on "2 peers joined"; two joiners each bump the count
/// and notify. No interleaving — including spurious wakeups and timeout
/// firings — may lose the wakeup: whenever the wait returns `Ok`, both
/// joins must be visible, and an `Err` is only legal via the explicit
/// logical-timeout choice (never a hang, never a missed notify).
fn gate_handshake() {
    let gate = Arc::new(MembershipGate::<ModelShim>::new());
    let peers = Arc::new(ModelShim::atomic_u64(0));

    let mut joiners = Vec::new();
    for _ in 0..2 {
        let gate = Arc::clone(&gate);
        let peers = Arc::clone(&peers);
        joiners.push(ModelShim::spawn(move || {
            ModelShim::fetch_add(&peers, 1);
            gate.notify();
        }));
    }

    let waiter = {
        let gate = Arc::clone(&gate);
        let peers = Arc::clone(&peers);
        ModelShim::spawn(move || gate.wait_until(1_000_000, || ModelShim::load(&peers) >= 2))
    };

    for j in joiners {
        ModelShim::join(j);
    }
    let outcome = ModelShim::join(waiter);
    if outcome.is_ok() {
        assert_eq!(
            ModelShim::load(&peers),
            2,
            "gate reported ready before both joins landed"
        );
    }
    // An Err outcome means the scheduler chose to fire the logical
    // deadline while peers < 2 — a legal schedule. The predicate
    // re-check inside wait_until makes a *false* timeout (erroring when
    // the condition already held) impossible; gate unit tests cover the
    // sequential form of that guarantee.
}

// ---------------------------------------------------------------------
// Target 2: metrics counter aggregation.
// ---------------------------------------------------------------------

/// Two recorders and a snapshotting reader race; after joining, totals
/// must be exact, and every mid-flight snapshot must stay within the
/// envelope the per-field counters allow.
fn metrics_aggregation() {
    let metrics = Arc::new(ClusterMetricsG::<ModelShim>::new_in());

    let writers: Vec<_> = [(100usize, 5u64), (50, 10)]
        .into_iter()
        .map(|(bytes, delay)| {
            let metrics = Arc::clone(&metrics);
            ModelShim::spawn(move || {
                metrics.record_message(bytes, delay);
                metrics.record_response_bytes(bytes / 2);
            })
        })
        .collect();

    let reader = {
        let metrics = Arc::clone(&metrics);
        ModelShim::spawn(move || {
            let snap = metrics.snapshot();
            // Counters only grow; a snapshot can never exceed the final
            // totals.
            assert!(snap.messages <= 2, "impossible message count");
            assert!(snap.bytes <= 150, "impossible byte count");
            assert!(snap.response_bytes <= 75, "impossible response bytes");
            assert!(snap.simulated_delay_nanos <= 15, "impossible delay");
        })
    };

    for w in writers {
        ModelShim::join(w);
    }
    ModelShim::join(reader);

    let total = metrics.snapshot();
    assert_eq!(total.messages, 2, "a recorded message was lost");
    assert_eq!(total.bytes, 150, "recorded bytes were lost");
    assert_eq!(total.response_bytes, 75, "response bytes were lost");
    assert_eq!(total.simulated_delay_nanos, 15, "delay accounting lost");
}

// ---------------------------------------------------------------------
// Target 3: the peer-mesh connection registry.
// ---------------------------------------------------------------------

/// A rejoin replaces peer 7's connection while the stale reader (still
/// draining the old one) races to evict, and a broadcaster snapshots.
/// The fresh connection must survive every interleaving.
fn mesh_connect_race() {
    let registry: Arc<ConnRegistry<Arc<u32>, ModelShim>> = Arc::new(ConnRegistry::new());
    let old = Arc::new(1u32);
    let fresh = Arc::new(2u32);
    registry.insert(7, Arc::clone(&old));

    let rejoin = {
        let registry = Arc::clone(&registry);
        let fresh = Arc::clone(&fresh);
        ModelShim::spawn(move || {
            // The readmit path: drop the dead incarnation, install the
            // replacement.
            registry.remove(7);
            registry.insert(7, fresh);
        })
    };
    let stale_reader = {
        let registry = Arc::clone(&registry);
        let old = Arc::clone(&old);
        ModelShim::spawn(move || {
            // The dying read_loop: evict only our own connection.
            registry.evict_if(7, |c| Arc::ptr_eq(c, &old))
        })
    };
    let broadcaster = {
        let registry = Arc::clone(&registry);
        ModelShim::spawn(move || {
            // Snapshot for a broadcast; at most one connection to peer 7
            // exists at any instant.
            assert!(registry.values().len() <= 1, "duplicate peer connection");
            registry.len()
        })
    };

    ModelShim::join(rejoin);
    let evicted_old = ModelShim::join(stale_reader);
    ModelShim::join(broadcaster);

    // The identity re-check inside evict_if makes this unconditional:
    // whatever the interleaving, the stale reader can only have removed
    // the OLD connection, so the rejoin's fresh one is still installed.
    let current = registry.get(7).expect("fresh connection was evicted");
    assert!(
        Arc::ptr_eq(&current, &fresh),
        "stale reader evicted the rejoin's replacement (evicted_old={evicted_old})"
    );
}

// ---------------------------------------------------------------------
// Target 4: WAL append-flush-apply ordering.
// ---------------------------------------------------------------------

/// In-memory sink with an externally observable durable watermark (a
/// real `AtomicU64` bumped on flush — safe under the model because the
/// scheduler runs exactly one thread at a time).
struct ProbeSink {
    next_lsn: u64,
    staged: Vec<u64>,
    durable: Arc<AtomicU64>,
}

impl RecordSink for ProbeSink {
    type Error = std::convert::Infallible;

    fn stage(&mut self, _record: &WalRecord) -> Result<Appended, Self::Error> {
        self.next_lsn += 1;
        self.staged.push(self.next_lsn);
        Ok(Appended {
            lsn: self.next_lsn,
            snapshot_due: false,
        })
    }

    fn flush(&mut self) -> Result<(), Self::Error> {
        if let Some(&top) = self.staged.last() {
            self.durable.store(top, Ordering::SeqCst);
        }
        self.staged.clear();
        Ok(())
    }
}

fn wal_record(payload: u64) -> WalRecord {
    WalRecord::PointInsert {
        partition: 7,
        node: 0,
        point: Vec::new(),
        payload,
    }
}

/// Two partition actors append-and-apply concurrently while a reader
/// polls the published watermark. Assert, at every apply, that the
/// record is already durable — no interleaving may apply a mutation
/// before its record is flushed — and that the watermark the sequencer
/// publishes never runs ahead of the sink's actual durable LSN.
fn wal_order() {
    let durable = Arc::new(AtomicU64::new(0));
    let log: Arc<SequencedLog<ProbeSink, ModelShim>> = Arc::new(SequencedLog::new(ProbeSink {
        next_lsn: 0,
        staged: Vec::new(),
        durable: Arc::clone(&durable),
    }));

    let actors: Vec<_> = (0..2)
        .map(|i| {
            let log = Arc::clone(&log);
            let durable = Arc::clone(&durable);
            ModelShim::spawn(move || {
                let (appended, ()) = log
                    .apply_after_flush(&wal_record(i), |a| {
                        // THE invariant: the mutation runs only once its
                        // record is durable in the sink.
                        assert!(
                            durable.load(Ordering::SeqCst) >= a.lsn,
                            "mutation applied before its record was flushed"
                        );
                    })
                    .unwrap();
                appended.lsn
            })
        })
        .collect();

    let reader = {
        let log = Arc::clone(&log);
        let durable = Arc::clone(&durable);
        ModelShim::spawn(move || {
            for _ in 0..2 {
                let published = log.flushed_lsn();
                assert!(
                    durable.load(Ordering::SeqCst) >= published,
                    "published watermark ran ahead of the durable LSN"
                );
            }
        })
    };

    let mut lsns: Vec<u64> = actors.into_iter().map(ModelShim::join).collect();
    ModelShim::join(reader);
    lsns.sort_unstable();
    assert_eq!(lsns, vec![1, 2], "LSNs must be contiguous and unique");
    assert_eq!(log.flushed_lsn(), 2);
    assert_eq!(durable.load(Ordering::SeqCst), 2);
}

// ---------------------------------------------------------------------
// Target 5: the work-stealing pool's chunk queue.
// ---------------------------------------------------------------------

/// Two workers drain a three-chunk queue: worker 1 owns one chunk and
/// must steal the rest from worker 0's deque while worker 0 pops its
/// own front. No interleaving may claim a chunk twice, lose one, or
/// leave the queue undrained after both workers exit — the exactly-once
/// claim is what makes the pool's drained-queue join sound.
fn par_steal_join() {
    // 6 items, chunk size 2, 2 workers → chunks 0..3 dealt round-robin.
    let queue = Arc::new(ChunkedQueue::<ModelShim>::new(6, 2, 2));
    // Bitmask of claimed chunk indices; fetch_add doubles as a
    // double-claim detector (the old value must not contain the bit).
    let seen = Arc::new(ModelShim::atomic_u64(0));

    let workers: Vec<_> = (0..2)
        .map(|w| {
            let queue = Arc::clone(&queue);
            let seen = Arc::clone(&seen);
            ModelShim::spawn(move || {
                let mut claimed = 0u64;
                while let Some(chunk) = queue.claim(w) {
                    assert!(
                        chunk.start < chunk.end && chunk.end <= 6,
                        "bad chunk bounds"
                    );
                    let prev = ModelShim::fetch_add(&seen, 1 << chunk.index);
                    assert_eq!(prev & (1 << chunk.index), 0, "chunk claimed twice");
                    claimed += 1;
                }
                claimed
            })
        })
        .collect();

    let total: u64 = workers.into_iter().map(ModelShim::join).sum();
    assert_eq!(total, 3, "a chunk was lost or duplicated");
    assert_eq!(ModelShim::load(&seen), 0b111, "claimed set is not 0..3");
    assert!(queue.is_drained(), "drained queue is the join condition");
    assert_eq!(queue.claimed(), 3);
}

// ---------------------------------------------------------------------
// Target 6: the lock-sharded distance cache.
// ---------------------------------------------------------------------

/// Three readers race the same sharded cache, two of them asking for
/// the same pair in opposite argument orders. Every interleaving must
/// return the inner function's value, collapse the symmetric pair to a
/// single cache entry, and leave the shards consistent for later reads
/// — the benign compute-twice race may never produce two entries or a
/// wrong value.
fn memo_shard_race() {
    let memo = Arc::new(MemoizedDistance::<_, ModelShim>::new_in(
        |i: usize, j: usize| (i.min(j) * 10 + i.max(j)) as f64,
        1, // two shards, so racing pairs can land on the same lock
    ));

    let workers: Vec<_> = [(0usize, 1usize), (1, 0), (0, 2)]
        .into_iter()
        .map(|(i, j)| {
            let memo = Arc::clone(&memo);
            ModelShim::spawn(move || memo.distance(i, j))
        })
        .collect();
    let vals: Vec<f64> = workers.into_iter().map(ModelShim::join).collect();

    assert_eq!(vals[0], 1.0, "distance(0,1)");
    assert_eq!(vals[1], 1.0, "distance(1,0) must agree with distance(0,1)");
    assert_eq!(vals[2], 2.0, "distance(0,2)");
    // The two argument orders of the racing pair share one key.
    assert_eq!(memo.cached_pairs(), 2, "symmetric pair cached twice");
    assert_eq!(memo.distance(0, 1), 1.0, "cache left inconsistent");
    assert_eq!(memo.shard_count(), 2);
}

// ---------------------------------------------------------------------
// Target 7: the reactor's bounded admission queue.
// ---------------------------------------------------------------------

/// Two connections race a one-slot global queue against a single
/// executor, and each connection closes while its jobs may still be in
/// flight — the queue-full / connection-close race from the serving
/// fabric. No interleaving may release a slot twice (underflow), leak
/// one (global count must drain to zero), or lose track of a push
/// (granted + shed covers every attempt).
fn reactor_queue_close() {
    let queue: Arc<ServeQueue<u32, ModelShim>> = Arc::new(ServeQueue::new(1));
    let granted = Arc::new(ModelShim::atomic_u64(0));

    let producers: Vec<_> = [7u64, 8]
        .into_iter()
        .map(|conn| {
            let queue = Arc::clone(&queue);
            let granted = Arc::clone(&granted);
            ModelShim::spawn(move || {
                let mut shed = 0u64;
                for job in 0..2u32 {
                    match queue.push(conn, job) {
                        Push::Granted => {
                            ModelShim::fetch_add(&granted, 1);
                        }
                        Push::GlobalFull => shed += 1,
                        Push::Closed => panic!("queue closed while still serving"),
                    }
                }
                // The connection goes away with its jobs possibly still
                // queued or executing.
                queue.close_conn(conn);
                shed
            })
        })
        .collect();

    let executor = {
        let queue = Arc::clone(&queue);
        ModelShim::spawn(move || {
            let mut completed = 0u64;
            while let Some((conn, _job)) = queue.pop() {
                // Completion may land before or after close_conn; the
                // global slot must be released exactly once either way.
                queue.complete(conn);
                completed += 1;
            }
            completed
        })
    };

    let shed: u64 = producers.into_iter().map(ModelShim::join).sum();
    queue.shutdown();
    let completed = ModelShim::join(executor);

    assert!(!queue.underflowed(), "a slot release underflowed");
    assert_eq!(
        queue.global_in_flight(),
        0,
        "admitted slots failed to drain"
    );
    assert_eq!(
        ModelShim::load(&granted),
        completed,
        "every granted job must complete exactly once"
    );
    assert_eq!(
        ModelShim::load(&granted) + shed,
        4,
        "every push attempt must be either granted or shed"
    );
    assert_eq!(queue.conn_in_flight(7), 0, "closed conn 7 kept accounting");
    assert_eq!(queue.conn_in_flight(8), 0, "closed conn 8 kept accounting");
}

// ---------------------------------------------------------------------
// Target 8: the versioned KD-tree's optimistic read vs insert/split.
// ---------------------------------------------------------------------

/// One writer inserts three 1-D points into a `bucket_size = 1` tree
/// (the second and third inserts split leaves copy-on-write) while a
/// reader runs a bounded optimistic 2-NN. The seqlock names the state:
/// a read validated at version `2n` must return exactly the answer for
/// the n-insert prefix — never a torn split, never a missing committed
/// point, never a phantom. The expected answers are precomputed
/// constants so the reference adds no schedule points of its own.
fn kdtree_read_split() {
    // Inserts, in order: 2.0 → payload 0, 0.0 → payload 1, 3.0 → 2.
    // 2-NN of query 3.1, by prefix length (payloads, nearest first):
    const EXPECTED: [&[u64]; 4] = [&[], &[0], &[0, 1], &[2, 0]];

    let mut tree = VersionedKdTree::<ModelShim>::new(KdConfig::new(1).with_bucket_size(1));
    let reader = tree.reader();

    let writer = ModelShim::spawn(move || {
        assert!(tree.insert(&[2.0], 0), "arena cannot exhaust here");
        assert!(tree.insert(&[0.0], 1), "arena cannot exhaust here");
        assert!(tree.insert(&[3.0], 2), "arena cannot exhaust here");
        tree
    });

    let observer = {
        let reader = reader.clone();
        ModelShim::spawn(move || {
            // Bounded retries: an unbounded seqlock retry loop would be
            // an unbounded schedule for the explorer. Exhaustion just
            // means every attempt raced the writer — a legal outcome.
            if let Some((hits, stats)) = reader.knn_bounded(&[3.1], 2, 4) {
                assert_eq!(stats.version % 2, 0, "validated against an odd version");
                let prefix = usize::try_from(stats.version / 2).unwrap_or(usize::MAX);
                assert!(
                    prefix <= 3,
                    "version {} names a phantom prefix",
                    stats.version
                );
                let got: Vec<u64> = hits.iter().map(|h| h.payload).collect();
                assert_eq!(
                    got, EXPECTED[prefix],
                    "read validated at version {} must equal its prefix",
                    stats.version
                );
            }
        })
    };

    let tree = ModelShim::join(writer);
    ModelShim::join(observer);

    // Quiescent read: all writes joined, so the first attempt validates
    // and must see the full 3-insert state.
    let (hits, stats) = reader.knn(&[3.1], 2);
    assert_eq!(stats.retries, 0, "no writer left to race");
    assert_eq!(stats.version, 6, "three inserts, one transaction each");
    let got: Vec<u64> = hits.iter().map(|h| h.payload).collect();
    assert_eq!(got, EXPECTED[3]);
    drop(tree);
}

// ---------------------------------------------------------------------
// Target 9: the reactor shard's wake-pipe handoff protocol.
// ---------------------------------------------------------------------

/// Condvar stand-in for one reactor shard's wake pipe. `wake` is the
/// nonblocking byte write of `ShardPort::wake` — a full pipe (`pending`
/// already set) means a wake is already queued, so overwriting is
/// success, exactly the coalescing the real pipe gives. `await_wake` is
/// poller readiness plus the drain-the-pipe read the shard loop
/// performs *before* taking the inbox or completion list. That pairing
/// is load-bearing: producers push-then-wake and the consumer
/// clears-then-drains, so every post strictly precedes the drain that
/// its wake enables. Inverting either side lets a post consume its own
/// wake and strand the item — which the explorer reports as a deadlock.
struct WakePipe<S: Shim> {
    pending: S::Mutex<bool>,
    cv: S::Condvar,
}

impl<S: Shim> WakePipe<S> {
    fn new() -> Self {
        WakePipe {
            pending: S::mutex(false),
            cv: S::condvar(),
        }
    }

    /// The nonblocking wake write: idempotent while a wake is pending.
    fn wake(&self) {
        *S::lock(&self.pending) = true;
        S::notify_all(&self.cv);
    }

    /// Block until a wake is pending, then consume it (drain the pipe).
    fn await_wake(&self) {
        let mut pending = S::lock(&self.pending);
        while !*pending {
            pending = S::wait(&self.cv, pending, &self.pending);
        }
        *pending = false;
    }
}

/// Two accept-side producers each hand a socket to the owning shard —
/// lock-push into its inbox, then poke its wake pipe (`accept_balance`'s
/// cross-shard branch) — while the shard loop sleeps until woken, drains
/// the pipe, and only then takes the inbox. Every interleaving must
/// adopt both sockets exactly once: coalesced wakes (the second write
/// landing while the first is still pending) may collapse two pokes
/// into one, but can never strand a handed-off socket, and the consumer
/// may never hang (a lost wakeup here would park the shard with a live
/// socket in its inbox).
fn reactor_shard_wake() {
    let inbox = Arc::new(ModelShim::mutex(Vec::<u64>::new()));
    let pipe = Arc::new(WakePipe::<ModelShim>::new());

    let producers: Vec<_> = [1u64, 2]
        .into_iter()
        .map(|socket| {
            let inbox = Arc::clone(&inbox);
            let pipe = Arc::clone(&pipe);
            ModelShim::spawn(move || {
                ModelShim::lock(&inbox).push(socket);
                pipe.wake();
            })
        })
        .collect();

    let consumer = {
        let inbox = Arc::clone(&inbox);
        let pipe = Arc::clone(&pipe);
        ModelShim::spawn(move || {
            let mut adopted = Vec::new();
            while adopted.len() < 2 {
                pipe.await_wake();
                // The shard's `mem::take` of its inbox.
                adopted.append(&mut *ModelShim::lock(&inbox));
            }
            adopted
        })
    };

    for p in producers {
        ModelShim::join(p);
    }
    let mut adopted = ModelShim::join(consumer);
    adopted.sort_unstable();
    assert_eq!(
        adopted,
        vec![1, 2],
        "a handed-off socket was stranded or adopted twice"
    );
    assert!(
        ModelShim::lock(&inbox).is_empty(),
        "the drain left a socket behind"
    );
}

// ---------------------------------------------------------------------
// Target 10: the pipelined worker hop's reply token.
// ---------------------------------------------------------------------

/// The shared surface a [`HopToken`] completes into: the admission
/// queue whose slot it owes, the owning shard's completion list, and
/// that shard's wake pipe.
struct HopFabric {
    queue: ServeQueue<u64, ModelShim>,
    completions: <ModelShim as Shim>::Mutex<Vec<(u64, u64)>>,
    shard: WakePipe<ModelShim>,
}

/// `ReplyToken`, transcribed move for move: `complete` disarms, pushes
/// the correlated completion, releases the queue slot, then wakes the
/// owning shard — in that order, so the wake the shard consumes always
/// trails the completion it announces. An armed token dropped without
/// an answer (the service-bug path) still releases its slot and wakes
/// the shard, so the connection cannot wedge.
struct HopToken {
    conn: u64,
    corr: u64,
    fabric: Arc<HopFabric>,
    armed: bool,
}

impl HopToken {
    fn complete(mut self) {
        self.armed = false;
        ModelShim::lock(&self.fabric.completions).push((self.conn, self.corr));
        self.fabric.queue.complete(self.conn);
        self.fabric.shard.wake();
    }
}

impl Drop for HopToken {
    fn drop(&mut self) {
        if self.armed {
            self.fabric.queue.complete(self.conn);
            self.fabric.shard.wake();
        }
    }
}

/// One connection pipelines three requests through the full hop: the
/// executor answers request 0 inline (`Dispatch::Sync`), hands request
/// 1's token across threads to a demux reader that completes it later
/// (`Dispatch::Completed` — the worker hop), and *drops* request 2's
/// token armed (a service bug). The shard consumer sleeps on its wake
/// pipe and drains the completion list until both answered requests
/// land. No interleaving may release a slot twice (underflow), leak one
/// (global count drains to zero even through the dropped token), lose a
/// completion, or hang the shard — the push-completion-before-wake
/// order is what guarantees the drain that consumes a wake sees the
/// completion that wake announced.
fn pipelined_worker_hop() {
    let fabric = Arc::new(HopFabric {
        queue: ServeQueue::new(3),
        completions: ModelShim::mutex(Vec::new()),
        shard: WakePipe::new(),
    });
    // The demux handoff: where the executor parks request 1's token for
    // the reader thread (a `Pending::Call` slot, boiled to its bones).
    let hop_slot = Arc::new(ModelShim::mutex(Option::<HopToken>::None));
    let hop_pipe = Arc::new(WakePipe::<ModelShim>::new());

    let producer = {
        let fabric = Arc::clone(&fabric);
        ModelShim::spawn(move || {
            for corr in 0..3u64 {
                assert_eq!(
                    fabric.queue.push(7, corr),
                    Push::Granted,
                    "three pushes fit a three-slot queue"
                );
            }
        })
    };

    let executor = {
        let fabric = Arc::clone(&fabric);
        let hop_slot = Arc::clone(&hop_slot);
        let hop_pipe = Arc::clone(&hop_pipe);
        ModelShim::spawn(move || {
            for _ in 0..3 {
                let (conn, corr) = fabric.queue.pop().expect("queue is not shut down");
                let token = HopToken {
                    conn,
                    corr,
                    fabric: Arc::clone(&fabric),
                    armed: true,
                };
                match corr {
                    // Dispatch::Sync — answered on this thread.
                    0 => token.complete(),
                    // Dispatch::Completed — carried to the demux reader.
                    1 => {
                        *ModelShim::lock(&hop_slot) = Some(token);
                        hop_pipe.wake();
                    }
                    // The service discarded the token without answering.
                    _ => drop(token),
                }
            }
        })
    };

    let demux = {
        let hop_slot = Arc::clone(&hop_slot);
        let hop_pipe = Arc::clone(&hop_pipe);
        ModelShim::spawn(move || {
            hop_pipe.await_wake();
            let token = ModelShim::lock(&hop_slot)
                .take()
                .expect("the wake trails the parked token");
            token.complete();
        })
    };

    let consumer = {
        let fabric = Arc::clone(&fabric);
        ModelShim::spawn(move || {
            let mut landed = Vec::new();
            while landed.len() < 2 {
                fabric.shard.await_wake();
                landed.append(&mut *ModelShim::lock(&fabric.completions));
            }
            landed
        })
    };

    ModelShim::join(producer);
    ModelShim::join(executor);
    ModelShim::join(demux);
    let mut landed = ModelShim::join(consumer);
    landed.sort_unstable();
    assert_eq!(
        landed,
        vec![(7, 0), (7, 1)],
        "answered completions must land exactly once each"
    );
    assert!(!fabric.queue.underflowed(), "a slot release underflowed");
    assert_eq!(
        fabric.queue.global_in_flight(),
        0,
        "the dropped token must still release its slot"
    );
    assert_eq!(
        fabric.queue.conn_in_flight(7),
        0,
        "per-conn accounting leaked"
    );
}

// ---------------------------------------------------------------------
// Driver.
// ---------------------------------------------------------------------

struct Cli {
    targets: Vec<String>,
    replay_seed: Option<String>,
    iters: usize,
    list: bool,
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        targets: Vec::new(),
        replay_seed: None,
        iters: DEFAULT_RANDOM_ITERS,
        list: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--target" => {
                let name = args.next().ok_or("--target needs a name")?;
                cli.targets.push(name);
            }
            "--replay" => {
                let seed = args.next().ok_or("--replay needs a seed")?;
                cli.replay_seed = Some(seed);
            }
            "--iters" => {
                let n = args.next().ok_or("--iters needs a count")?;
                cli.iters = n.parse().map_err(|e| format!("bad --iters: {e}"))?;
            }
            "--list" => cli.list = true,
            // Flags the default harness accepts; tolerate them so
            // `cargo test -- --nocapture` and friends keep working.
            "--nocapture" | "--quiet" | "-q" | "--show-output" | "--exact" | "--ignored"
            | "--include-ignored" => {}
            "--test-threads" | "--format" | "--color" | "-Z" => {
                let _ = args.next();
            }
            other if !other.starts_with('-') => cli.targets.push(other.to_string()),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(cli)
}

fn base_seed() -> u64 {
    match std::env::var("SEMTREE_MODEL_SEED") {
        Ok(raw) => raw
            .trim()
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("SEMTREE_MODEL_SEED must be a u64, got {raw:?}")),
        Err(_) => 0x5EED_7EE5,
    }
}

fn run_target(target: &Target, iters: usize, seed: u64) -> bool {
    let options = Options {
        max_interleavings: MAX_INTERLEAVINGS,
        spurious_budget: target.spurious_budget,
    };
    let body = target.body;
    let report = explore(&options, body);
    if let Some(failure) = &report.failure {
        println!(
            "model {}: FAILED after {} interleavings: {}",
            target.name, report.interleavings, failure.message
        );
        println!(
            "  replay with: cargo test -p semtree-conc --test models -- --target {} --replay {}",
            target.name, failure.seed
        );
        return false;
    }

    // Seeded-random supplement past the DFS bound.
    let random = explore_random(&options, seed, iters, body);
    if let Some(failure) = &random.failure {
        println!(
            "model {}: FAILED in random sweep (base seed {seed}): {}",
            target.name, failure.message
        );
        println!(
            "  replay with: cargo test -p semtree-conc --test models -- --target {} --replay {}",
            target.name, failure.seed
        );
        return false;
    }

    // Determinism self-check: replaying one fixed schedule twice must
    // produce byte-identical executions (same event fingerprint).
    let a = replay("d", body).expect("replaying the first path");
    let b = replay("d", body).expect("replaying the first path");
    if a.fingerprint != b.fingerprint {
        println!(
            "model {}: FAILED replay determinism check ({:#x} != {:#x})",
            target.name, a.fingerprint, b.fingerprint
        );
        return false;
    }

    let total = report.interleavings;
    println!(
        "model {}: ok — {} interleavings explored (dfs{}), {} distinct random schedules (seed {seed}), replay deterministic",
        target.name,
        total,
        if report.exhausted { ", exhausted" } else { "" },
        random.interleavings,
    );
    if total < MIN_INTERLEAVINGS {
        println!(
            "model {}: FAILED coverage floor: {} < {} interleavings",
            target.name, total, MIN_INTERLEAVINGS
        );
        return false;
    }
    true
}

fn run_replay(target: &Target, seed: &str) -> bool {
    match replay(seed, target.body) {
        Ok(outcome) => {
            println!(
                "replay {} {}: fingerprint {:#018x}, {} scheduler ops",
                target.name, seed, outcome.fingerprint, outcome.ops
            );
            match outcome.failure {
                Some(message) => {
                    println!("replay reproduces the failure: {message}");
                    false
                }
                None => {
                    println!("replay completed without failure");
                    true
                }
            }
        }
        Err(e) => {
            println!("bad seed {seed:?}: {e}");
            false
        }
    }
}

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("models: {e}");
            eprintln!("usage: models [--list] [--target NAME]... [--replay SEED] [--iters N]");
            return ExitCode::from(2);
        }
    };

    if cli.list {
        for t in TARGETS {
            println!("{:<20} {}", t.name, t.what);
        }
        return ExitCode::SUCCESS;
    }

    let selected: Vec<&Target> = if cli.targets.is_empty() {
        TARGETS.iter().collect()
    } else {
        let mut picked = Vec::new();
        for name in &cli.targets {
            match TARGETS.iter().find(|t| t.name == *name) {
                Some(t) => picked.push(t),
                None => {
                    eprintln!("models: unknown target {name:?} (see --list)");
                    return ExitCode::from(2);
                }
            }
        }
        picked
    };

    if let Some(seed) = &cli.replay_seed {
        let [target] = selected.as_slice() else {
            eprintln!("models: --replay needs exactly one --target");
            return ExitCode::from(2);
        };
        return if run_replay(target, seed) {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let seed = base_seed();
    println!(
        "model suite: {} targets, dfs bound {MAX_INTERLEAVINGS}, random iters {} (SEMTREE_MODEL_SEED={seed})",
        selected.len(),
        cli.iters
    );
    let mut ok = true;
    for target in selected {
        ok &= run_target(target, cli.iters, seed);
    }
    if ok {
        println!("model suite: all targets passed");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
