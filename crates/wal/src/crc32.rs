//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the checksum
//! guarding every WAL record frame and snapshot file. Table-driven and
//! dependency-free; the table is built at compile time.

const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// Checksum of `bytes` (standard init `!0`, final xor `!0` — matches
/// zlib/`cksum -o 3`/PNG).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_reference_check_value() {
        // The canonical CRC-32 check input from the rocksoft model.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input_and_sensitivity() {
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"semtree"), crc32(b"semtreE"));
        assert_ne!(crc32(b"\x00"), crc32(b"\x00\x00"));
    }
}
