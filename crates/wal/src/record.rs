//! The WAL record vocabulary: one binary record per state-changing event
//! of a partition actor, encoded with the same little-endian codec the
//! TCP fabric uses ([`semtree_net::Encode`]/[`semtree_net::Decode`]).
//!
//! Records are *logical* operations, not page images: replay re-executes
//! them against an in-memory partition store. Splits are logged
//! explicitly (rather than re-derived from inserts) so replay is
//! log-driven — the recovered arena has exactly the node ids the live
//! store had, which is what lets cross-partition `Remote` links survive
//! a restart unchanged.

use semtree_net::{Decode, DecodeError, Encode};

/// One durable event in a partition's history.
///
/// `partition` is always the raw `ComputeNodeId` of the partition actor
/// the event belongs to; node fields are local node ids within that
/// partition's arena.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A partition came into existence on this process (build-partition
    /// target side): it adopted `bucket` as its root leaf at `depth`.
    PartitionCreate {
        /// Compute-node id of the new partition actor.
        partition: u32,
        /// Global tree depth of the adopted root leaf.
        depth: usize,
        /// The points handed over, in arrival order.
        bucket: Vec<(Vec<f64>, u64)>,
    },
    /// A point was stored in a leaf of `partition`.
    PointInsert {
        /// Compute-node id of the owning partition actor.
        partition: u32,
        /// Local node id the insertion *started* from (the navigation
        /// re-runs on replay and lands in the same leaf).
        node: u32,
        /// The point coordinates.
        point: Vec<f64>,
        /// The caller's payload.
        payload: u64,
    },
    /// A saturated leaf split into two children.
    LeafSplit {
        /// Compute-node id of the owning partition actor.
        partition: u32,
        /// Local id of the leaf that became a routing node.
        leaf: u32,
        /// Split dimension `Sr`.
        split_dim: usize,
        /// Split value `Sv`.
        split_val: f64,
        /// Local id assigned to the left child.
        left: u32,
        /// Local id assigned to the right child.
        right: u32,
    },
    /// Build-partition (source side): leaf `evicted` was migrated out and
    /// replaced by a `Remote` link to `target_partition`/`target_node`.
    LeafMigration {
        /// Compute-node id of the source partition actor.
        partition: u32,
        /// Local id of the evicted leaf (now a remote link).
        evicted: u32,
        /// Compute-node id of the partition that adopted the leaf.
        target_partition: u32,
        /// Local root id inside the target partition.
        target_node: u32,
    },
}

impl WalRecord {
    /// The partition actor this record belongs to.
    pub fn partition(&self) -> u32 {
        match *self {
            WalRecord::PartitionCreate { partition, .. }
            | WalRecord::PointInsert { partition, .. }
            | WalRecord::LeafSplit { partition, .. }
            | WalRecord::LeafMigration { partition, .. } => partition,
        }
    }

    /// Short record-type name for reports (`semtree recover`).
    pub fn kind(&self) -> &'static str {
        match self {
            WalRecord::PartitionCreate { .. } => "partition-create",
            WalRecord::PointInsert { .. } => "point-insert",
            WalRecord::LeafSplit { .. } => "leaf-split",
            WalRecord::LeafMigration { .. } => "leaf-migration",
        }
    }
}

impl Encode for WalRecord {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WalRecord::PartitionCreate {
                partition,
                depth,
                bucket,
            } => {
                out.push(0);
                partition.encode(out);
                depth.encode(out);
                bucket.encode(out);
            }
            WalRecord::PointInsert {
                partition,
                node,
                point,
                payload,
            } => {
                out.push(1);
                partition.encode(out);
                node.encode(out);
                point.encode(out);
                payload.encode(out);
            }
            WalRecord::LeafSplit {
                partition,
                leaf,
                split_dim,
                split_val,
                left,
                right,
            } => {
                out.push(2);
                partition.encode(out);
                leaf.encode(out);
                split_dim.encode(out);
                split_val.encode(out);
                left.encode(out);
                right.encode(out);
            }
            WalRecord::LeafMigration {
                partition,
                evicted,
                target_partition,
                target_node,
            } => {
                out.push(3);
                partition.encode(out);
                evicted.encode(out);
                target_partition.encode(out);
                target_node.encode(out);
            }
        }
    }
}

impl Decode for WalRecord {
    fn decode(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        match u8::decode(buf)? {
            0 => Ok(WalRecord::PartitionCreate {
                partition: u32::decode(buf)?,
                depth: usize::decode(buf)?,
                bucket: Vec::decode(buf)?,
            }),
            1 => Ok(WalRecord::PointInsert {
                partition: u32::decode(buf)?,
                node: u32::decode(buf)?,
                point: Vec::decode(buf)?,
                payload: u64::decode(buf)?,
            }),
            2 => Ok(WalRecord::LeafSplit {
                partition: u32::decode(buf)?,
                leaf: u32::decode(buf)?,
                split_dim: usize::decode(buf)?,
                split_val: f64::decode(buf)?,
                left: u32::decode(buf)?,
                right: u32::decode(buf)?,
            }),
            3 => Ok(WalRecord::LeafMigration {
                partition: u32::decode(buf)?,
                evicted: u32::decode(buf)?,
                target_partition: u32::decode(buf)?,
                target_node: u32::decode(buf)?,
            }),
            other => Err(DecodeError::new(format!("bad WalRecord tag {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use semtree_net::decode_exact;

    use super::*;

    fn samples() -> Vec<WalRecord> {
        vec![
            WalRecord::PartitionCreate {
                partition: 0x0002_0001,
                depth: 3,
                bucket: vec![(vec![1.0, 2.0], 7), (vec![-0.5, 9.25], 8)],
            },
            WalRecord::PointInsert {
                partition: 1,
                node: 0,
                point: vec![3.5, 4.5],
                payload: u64::MAX,
            },
            WalRecord::LeafSplit {
                partition: 1,
                leaf: 4,
                split_dim: 1,
                split_val: 12.5,
                left: 5,
                right: 6,
            },
            WalRecord::LeafMigration {
                partition: 1,
                evicted: 5,
                target_partition: 0x0003_0000,
                target_node: 0,
            },
        ]
    }

    #[test]
    fn records_round_trip_through_the_codec() {
        for record in samples() {
            let bytes = record.to_bytes();
            assert_eq!(bytes.len(), record.encoded_len(), "{record:?}");
            let back: WalRecord = decode_exact(&bytes).expect("round trip");
            assert_eq!(back, record);
        }
    }

    #[test]
    fn partition_and_kind_accessors() {
        let kinds: Vec<&str> = samples().iter().map(WalRecord::kind).collect();
        assert_eq!(
            kinds,
            [
                "partition-create",
                "point-insert",
                "leaf-split",
                "leaf-migration"
            ]
        );
        assert_eq!(samples()[0].partition(), 0x0002_0001);
    }

    #[test]
    fn corrupt_tags_are_rejected() {
        for record in samples() {
            let mut bytes = record.to_bytes();
            bytes[0] = 0xEE;
            assert!(decode_exact::<WalRecord>(&bytes).is_err());
        }
    }
}
