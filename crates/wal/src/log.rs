//! The on-disk log: manifest, segment files, per-partition snapshot
//! files, and the [`Wal`] manager that owns them.
//!
//! # Layout
//!
//! ```text
//! <wal-dir>/
//!   MANIFEST                  magic, version, process index, config blob, crc
//!   segments/seg-000001.wal   ["SSEG" ver codec] [u32 len][u32 crc][u64 lsn][record]…
//!   snapshots/part-65537.snap magic, version, partition, covered lsn, [format], blob, crc
//! ```
//!
//! Segment files carry an optional 6-byte header (`SSEG`, version,
//! codec). Headerless files are the legacy v0 row format and stay fully
//! readable — the magic cannot collide with a v0 frame because read as
//! a frame length it exceeds [`MAX_RECORD_LEN`]. Codec 0 is
//! row-oriented frames (the hot tail — appends never pay encode
//! latency); codec 1 is one `semtree-colz` columnar block, produced
//! when a segment seals (and by compaction, for sealed row segments a
//! resumed v0 directory left behind — see [`crate::colseg`]). Snapshot files similarly version their payload:
//! v1 files hold a verbatim blob, v2 files add a payload-format byte
//! (see [`SNAPSHOT_FORMAT_VERBATIM`] / [`SNAPSHOT_FORMAT_COLUMNAR`]).
//!
//! Every record frame and every snapshot file is CRC-32 checksummed.
//! Appends are written and flushed record-by-record (a killed *process*
//! loses nothing; surviving a machine crash would additionally need the
//! `sync_data` that rotation, snapshots and [`Wal::sync`] perform).
//! Manifest and snapshot files are written to a `.tmp` sibling and
//! renamed into place so readers never observe a half-written file.
//!
//! # Snapshots and compaction
//!
//! A snapshot of partition `p` at LSN `n` makes every record of `p` with
//! `lsn ≤ n` dead. A **sealed** segment is deleted once, for every
//! partition appearing in it, the partition's snapshot LSN has reached
//! the segment's highest LSN for that partition. Taking a snapshot seals
//! the current segment when that makes it immediately reclaimable, so a
//! quiescent worker's WAL directory stays at one manifest, one snapshot
//! per partition, and one (empty) open segment.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use semtree_conc::sync::Mutex;

use semtree_net::{decode_exact, Decode, DecodeError, Encode};

use crate::crc32::crc32;
use crate::record::WalRecord;

/// `b"SWAL"` — first four bytes of a manifest.
const MANIFEST_MAGIC: u32 = u32::from_le_bytes(*b"SWAL");
/// `b"SNAP"` — first four bytes of a snapshot file.
const SNAPSHOT_MAGIC: u32 = u32::from_le_bytes(*b"SNAP");
/// On-disk format version of the manifest.
const FORMAT_VERSION: u32 = 1;
/// Upper bound on a single record frame; larger lengths mean corruption.
const MAX_RECORD_LEN: u32 = 256 * 1024 * 1024;

/// `b"SSEG"` — first four bytes of a versioned segment file. A legacy
/// v0 segment cannot start with these bytes: read as a v0 frame length
/// they are `0x4745_5353`, far above [`MAX_RECORD_LEN`].
const SEGMENT_MAGIC: [u8; 4] = *b"SSEG";
/// Version byte following the segment magic.
const SEGMENT_VERSION: u8 = 1;
/// Segment codec byte: row-oriented record frames (appendable).
const SEGMENT_CODEC_ROWS: u8 = 0;
/// Segment codec byte: one columnar block (compaction output).
const SEGMENT_CODEC_COLUMNAR: u8 = 1;
/// Total length of a versioned segment header: magic, version, codec.
const SEGMENT_HEADER_LEN: usize = 6;

/// Snapshot file version whose payload is the bare blob (legacy v0
/// layout — what every pre-columnar build wrote and still reads).
const SNAPSHOT_VERSION_V1: u32 = 1;
/// Snapshot file version that carries a payload-format byte before the
/// blob.
const SNAPSHOT_VERSION_V2: u32 = 2;

/// Snapshot payload format: the blob is the store image verbatim.
/// Snapshots written with this format use the legacy v1 file layout
/// byte-for-byte, so old readers still accept them.
pub const SNAPSHOT_FORMAT_VERBATIM: u8 = 0;
/// Snapshot payload format: the blob is a columnar-compressed store
/// image (`semtree-dist` owns the column layout).
pub const SNAPSHOT_FORMAT_COLUMNAR: u8 = 1;

/// A WAL failure: I/O, or on-disk state that fails validation.
#[derive(Debug)]
pub enum WalError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// A file is malformed: bad magic, bad checksum, truncated interior
    /// segment, or an undecodable record.
    Corrupt(String),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
            WalError::Corrupt(msg) => write!(f, "wal corrupt: {msg}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

impl From<DecodeError> for WalError {
    fn from(e: DecodeError) -> Self {
        WalError::Corrupt(e.to_string())
    }
}

/// Tuning knobs for the log.
#[derive(Debug, Clone, Copy)]
pub struct WalOptions {
    /// Seal the current segment once it holds at least this many bytes.
    pub segment_bytes: u64,
    /// Report a partition as snapshot-due after this many records since
    /// its last snapshot.
    pub snapshot_every: u64,
    /// Write versioned segment headers and columnar-compress sealed
    /// segments at compaction time. When false the WAL produces
    /// byte-identical legacy v0 output (headerless row segments); either
    /// setting reads both formats.
    pub columnar: bool,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            segment_bytes: 4 * 1024 * 1024,
            snapshot_every: 256,
            columnar: true,
        }
    }
}

impl WalOptions {
    /// Seal segments at this size (consuming builder, like the
    /// `with_*` methods on `KdConfig`/`DistConfig`).
    #[must_use]
    pub fn with_segment_bytes(mut self, segment_bytes: u64) -> Self {
        self.segment_bytes = segment_bytes;
        self
    }

    /// Report a partition snapshot-due after this many records.
    #[must_use]
    pub fn with_snapshot_every(mut self, snapshot_every: u64) -> Self {
        self.snapshot_every = snapshot_every;
        self
    }

    /// Toggle columnar segment compression (off = legacy v0 bytes).
    #[must_use]
    pub fn with_columnar(mut self, columnar: bool) -> Self {
        self.columnar = columnar;
        self
    }
}

/// Result of an append: the LSN assigned to the record and whether the
/// record's partition has accumulated enough history to warrant a
/// snapshot.
#[derive(Debug, Clone, Copy)]
pub struct Appended {
    /// Log sequence number of the record just written (starts at 1).
    pub lsn: u64,
    /// True once `snapshot_every` records piled up for this partition.
    pub snapshot_due: bool,
}

/// A decoded snapshot: the opaque store image of one partition and the
/// LSN up to which it covers the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Compute-node id of the partition.
    pub partition: u32,
    /// Every record of this partition with `lsn ≤` this is superseded.
    pub lsn: u64,
    /// Payload format of `blob`: [`SNAPSHOT_FORMAT_VERBATIM`] or
    /// [`SNAPSHOT_FORMAT_COLUMNAR`]. Legacy v1 snapshot files decode as
    /// verbatim.
    pub format: u8,
    /// The serialized store (opaque to the WAL; `semtree-dist` owns the
    /// format).
    pub blob: Vec<u8>,
}

/// Everything a recovery manager needs: the manifest identity, the
/// latest snapshot per partition, and the full record tail in LSN order.
#[derive(Debug, Clone)]
pub struct WalState {
    /// Process index recorded at `create` time (the worker's slot in the
    /// cluster).
    pub process_index: u32,
    /// The deployment config blob recorded at `create` time.
    pub config: Vec<u8>,
    /// Latest snapshot per partition.
    pub snapshots: BTreeMap<u32, Snapshot>,
    /// All records still present in segment files, ascending LSN.
    /// Records covered by a snapshot may still appear here (compaction
    /// is per-segment); filter with [`WalState::covered`].
    pub tail: Vec<(u64, WalRecord)>,
    /// The LSN the next append would receive.
    pub next_lsn: u64,
    /// True when the final segment ended in a torn (partially written)
    /// record — the expected signature of a crash mid-append.
    pub torn_tail: bool,
}

impl WalState {
    /// Is this record superseded by its partition's snapshot?
    pub fn covered(&self, partition: u32, lsn: u64) -> bool {
        self.snapshots
            .get(&partition)
            .is_some_and(|snap| snap.lsn >= lsn)
    }

    /// The records replay must apply: tail entries not covered by a
    /// snapshot, ascending LSN.
    pub fn live_tail(&self) -> impl Iterator<Item = &(u64, WalRecord)> {
        self.tail
            .iter()
            .filter(|(lsn, record)| !self.covered(record.partition(), *lsn))
    }
}

/// What the manager tracks about a sealed segment still on disk.
struct SealedInfo {
    /// partition → highest LSN for it in this segment.
    coverage: HashMap<u32, u64>,
    /// Already stored as a columnar block (nothing left to rewrite).
    columnar: bool,
    /// A torn final frame is tolerable when re-reading this segment —
    /// true only for the pre-resume tail, which may hold a crash scar.
    allow_torn: bool,
}

struct Inner {
    file: File,
    segment_index: u64,
    segment_written: u64,
    next_lsn: u64,
    /// partition → highest LSN written for it in the *current* segment.
    current_coverage: HashMap<u32, u64>,
    /// sealed segment index → what is known about it.
    sealed: BTreeMap<u64, SealedInfo>,
    snapshot_lsn: HashMap<u32, u64>,
    since_snapshot: HashMap<u32, u64>,
}

/// The write-ahead log manager: one per worker process, shared by all
/// partition actors of that process.
pub struct Wal {
    dir: PathBuf,
    process_index: u32,
    options: WalOptions,
    inner: Mutex<Inner>,
}

impl fmt::Debug for Wal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Wal")
            .field("dir", &self.dir)
            .field("process_index", &self.process_index)
            .finish_non_exhaustive()
    }
}

fn segments_dir(dir: &Path) -> PathBuf {
    dir.join("segments")
}

fn snapshots_dir(dir: &Path) -> PathBuf {
    dir.join("snapshots")
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    segments_dir(dir).join(format!("seg-{index:06}.wal"))
}

fn snapshot_path(dir: &Path, partition: u32) -> PathBuf {
    snapshots_dir(dir).join(format!("part-{partition}.snap"))
}

fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("MANIFEST")
}

/// Write `bytes` to `path` atomically: `.tmp` sibling, sync, rename.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), WalError> {
    let tmp = path.with_extension("tmp");
    let mut file = File::create(&tmp)?;
    file.write_all(bytes)?;
    file.sync_all()?;
    drop(file);
    fs::rename(&tmp, path)?;
    Ok(())
}

fn checksummed(mut body: Vec<u8>) -> Vec<u8> {
    let crc = crc32(&body);
    crc.encode(&mut body);
    body
}

fn verify_checksum<'a>(path: &Path, bytes: &'a [u8]) -> Result<&'a [u8], WalError> {
    if bytes.len() < 4 {
        return Err(WalError::Corrupt(format!("{} too short", path.display())));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 4);
    let want = u32::from_le_bytes(tail.try_into().expect("4 bytes"));
    if crc32(body) != want {
        return Err(WalError::Corrupt(format!(
            "{} checksum mismatch",
            path.display()
        )));
    }
    Ok(body)
}

impl Wal {
    /// Does `dir` already hold an initialised WAL (a manifest)?
    pub fn exists(dir: &Path) -> bool {
        manifest_path(dir).is_file()
    }

    /// Initialise a fresh WAL directory for a worker. Fails if one is
    /// already present (use [`Wal::resume`] to pick it back up).
    pub fn create(
        dir: &Path,
        process_index: u32,
        config: &[u8],
        options: WalOptions,
    ) -> Result<Wal, WalError> {
        if Wal::exists(dir) {
            return Err(WalError::Corrupt(format!(
                "{} already holds a WAL; refusing to overwrite",
                dir.display()
            )));
        }
        fs::create_dir_all(segments_dir(dir))?;
        fs::create_dir_all(snapshots_dir(dir))?;

        let mut body = Vec::new();
        MANIFEST_MAGIC.encode(&mut body);
        FORMAT_VERSION.encode(&mut body);
        process_index.encode(&mut body);
        config.to_vec().encode(&mut body);
        write_atomic(&manifest_path(dir), &checksummed(body))?;

        let file = open_segment(dir, 1, options.columnar)?;
        Ok(Wal {
            dir: dir.to_path_buf(),
            process_index,
            options,
            inner: Mutex::new(Inner {
                file,
                segment_index: 1,
                segment_written: 0,
                next_lsn: 1,
                current_coverage: HashMap::new(),
                sealed: BTreeMap::new(),
                snapshot_lsn: HashMap::new(),
                since_snapshot: HashMap::new(),
            }),
        })
    }

    /// Re-open an existing WAL for appending: scan it, return the
    /// recovered [`WalState`], and start a fresh segment after the
    /// highest existing one (the old tail — possibly torn — is left
    /// untouched and stays readable).
    pub fn resume(dir: &Path, options: WalOptions) -> Result<(Wal, WalState), WalError> {
        let scan = scan(dir)?;
        let next_segment = scan.segments.last().map_or(1, |s| s.index + 1);
        let file = open_segment(dir, next_segment, options.columnar)?;

        let mut sealed = BTreeMap::new();
        for (pos, segment) in scan.segments.iter().enumerate() {
            sealed.insert(
                segment.index,
                SealedInfo {
                    coverage: segment.coverage.clone(),
                    columnar: segment.columnar,
                    // Only the previous session's tail segment may carry
                    // a torn final frame.
                    allow_torn: pos + 1 == scan.segments.len(),
                },
            );
        }
        let snapshot_lsn: HashMap<u32, u64> = scan
            .snapshots
            .iter()
            .map(|(&p, snap)| (p, snap.lsn))
            .collect();

        let state = scan.into_state();
        let mut since_snapshot: HashMap<u32, u64> = HashMap::new();
        for (_, record) in state.live_tail() {
            *since_snapshot.entry(record.partition()).or_insert(0) += 1;
        }

        let wal = Wal {
            dir: dir.to_path_buf(),
            process_index: state.process_index,
            options,
            inner: Mutex::new(Inner {
                file,
                segment_index: next_segment,
                segment_written: 0,
                next_lsn: state.next_lsn,
                current_coverage: HashMap::new(),
                sealed,
                snapshot_lsn,
                since_snapshot,
            }),
        };
        Ok((wal, state))
    }

    /// Read-only scan of a WAL directory (what `semtree recover` and the
    /// recovery manager consume).
    pub fn load(dir: &Path) -> Result<WalState, WalError> {
        Ok(scan(dir)?.into_state())
    }

    /// Append one record. The frame is written and flushed before this
    /// returns — callers apply the state change *after* logging it.
    /// (`semtree_wal::SequencedLog` wraps the staged halves of this —
    /// [`Wal::stage_mut`] / [`Wal::flush_mut`] — to make that
    /// flush-before-apply ordering structural.)
    pub fn append(&self, record: &WalRecord) -> Result<Appended, WalError> {
        let mut inner = self.inner.lock();
        let appended = Self::stage_in(&self.options, &mut inner, record)?;
        inner.file.flush()?;
        if inner.segment_written >= self.options.segment_bytes {
            Self::seal_in(&self.dir, &mut inner, self.options.columnar)?;
        }
        Ok(appended)
    }

    /// Frame `record`, assign it the next LSN, and write it to the
    /// current segment — withOUT flushing. The record is not durable
    /// until the next flush.
    fn stage_in(
        options: &WalOptions,
        inner: &mut Inner,
        record: &WalRecord,
    ) -> Result<Appended, WalError> {
        let lsn = inner.next_lsn;
        inner.next_lsn += 1;

        let mut payload = Vec::with_capacity(16 + record.encoded_len());
        lsn.encode(&mut payload);
        record.encode(&mut payload);
        let mut frame = Vec::with_capacity(8 + payload.len());
        let payload_len = u32::try_from(payload.len()).map_err(|_| {
            WalError::Corrupt(format!(
                "record payload {}B exceeds u32 framing",
                payload.len()
            ))
        })?;
        payload_len.encode(&mut frame);
        crc32(&payload).encode(&mut frame);
        frame.extend_from_slice(&payload);

        inner.file.write_all(&frame)?;
        inner.segment_written += frame.len() as u64;

        let partition = record.partition();
        let top = inner.current_coverage.entry(partition).or_insert(0);
        *top = (*top).max(lsn);
        let since = inner.since_snapshot.entry(partition).or_insert(0);
        *since += 1;
        let snapshot_due = *since >= options.snapshot_every;
        Ok(Appended { lsn, snapshot_due })
    }

    /// Stage one record through exclusive access (the
    /// [`RecordSink`](crate::RecordSink) write half — no lock taken, the
    /// caller serializes).
    pub(crate) fn stage_mut(&mut self, record: &WalRecord) -> Result<Appended, WalError> {
        let Wal { options, inner, .. } = self;
        Self::stage_in(options, inner.get_mut(), record)
    }

    /// Flush everything staged so far and rotate the segment if it grew
    /// past the limit (the [`RecordSink`](crate::RecordSink) flush half).
    pub(crate) fn flush_mut(&mut self) -> Result<(), WalError> {
        let Wal {
            dir,
            options,
            inner,
            ..
        } = self;
        let inner = inner.get_mut();
        inner.file.flush()?;
        if inner.segment_written >= options.segment_bytes {
            Self::seal_in(dir, inner, options.columnar)?;
        }
        Ok(())
    }

    /// Persist a snapshot of `partition` covering everything appended so
    /// far, then reclaim any segments it makes fully dead. `format` tags
    /// how the blob is encoded ([`SNAPSHOT_FORMAT_VERBATIM`] or
    /// [`SNAPSHOT_FORMAT_COLUMNAR`]); verbatim snapshots are written in
    /// the legacy v1 file layout so pre-columnar readers accept them.
    /// Returns the covered LSN.
    pub fn snapshot(&self, partition: u32, format: u8, blob: &[u8]) -> Result<u64, WalError> {
        let mut inner = self.inner.lock();
        let lsn = inner.next_lsn - 1;

        let mut body = Vec::new();
        SNAPSHOT_MAGIC.encode(&mut body);
        if format == SNAPSHOT_FORMAT_VERBATIM {
            SNAPSHOT_VERSION_V1.encode(&mut body);
            partition.encode(&mut body);
            lsn.encode(&mut body);
        } else {
            SNAPSHOT_VERSION_V2.encode(&mut body);
            partition.encode(&mut body);
            lsn.encode(&mut body);
            body.push(format);
        }
        blob.to_vec().encode(&mut body);
        write_atomic(&snapshot_path(&self.dir, partition), &checksummed(body))?;

        inner.snapshot_lsn.insert(partition, lsn);
        inner.since_snapshot.insert(partition, 0);

        // Seal the current segment when the snapshot just made all of it
        // reclaimable, so compaction can delete it right away.
        let current_dead = inner.segment_written > 0
            && inner
                .current_coverage
                .iter()
                .all(|(p, &top)| inner.snapshot_lsn.get(p).copied().unwrap_or(0) >= top);
        if current_dead {
            Self::seal_in(&self.dir, &mut inner, self.options.columnar)?;
        }
        self.compact_locked(&mut inner)?;
        Ok(lsn)
    }

    /// Delete every sealed segment whose records are all covered by
    /// snapshots. Returns how many segment files were removed.
    pub fn compact(&self) -> Result<usize, WalError> {
        let mut inner = self.inner.lock();
        self.compact_locked(&mut inner)
    }

    /// `sync_data` the current segment (rotation and snapshots already
    /// sync what they seal/write).
    pub fn sync(&self) -> Result<(), WalError> {
        let inner = self.inner.lock();
        inner.file.sync_data()?;
        Ok(())
    }

    /// The WAL directory this manager writes to.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The process index recorded in the manifest.
    pub fn process_index(&self) -> u32 {
        self.process_index
    }

    /// Whether this manager writes the columnar formats (versioned
    /// segment headers, seal- and compaction-time columnar rewrite) —
    /// what callers consult to pick a snapshot payload format.
    pub fn columnar_enabled(&self) -> bool {
        self.options.columnar
    }

    /// Summarise a WAL directory without mutating it.
    pub fn inspect(dir: &Path) -> Result<WalReport, WalError> {
        WalReport::from_state(dir, &Wal::load(dir)?)
    }

    fn seal_in(dir: &Path, inner: &mut Inner, columnar: bool) -> Result<(), WalError> {
        inner.file.sync_data()?;
        let coverage = std::mem::take(&mut inner.current_coverage);
        let sealed_index = inner.segment_index;
        if columnar {
            // A sealed segment never grows again, so re-encode it as one
            // columnar block right away — cold records shouldn't wait for
            // a compaction cycle to shed their row framing. write_atomic
            // keeps the crash window torn-free: either the old row file
            // or the complete columnar file is on disk.
            let (segment, _) = read_segment(dir, sealed_index, false)?;
            write_atomic(
                &segment_path(dir, sealed_index),
                &columnar_segment_bytes(&segment.records)?,
            )?;
        }
        inner.sealed.insert(
            sealed_index,
            SealedInfo {
                coverage,
                columnar,
                allow_torn: false,
            },
        );
        inner.segment_index += 1;
        inner.segment_written = 0;
        inner.file = open_segment(dir, inner.segment_index, columnar)?;
        Ok(())
    }

    fn compact_locked(&self, inner: &mut Inner) -> Result<usize, WalError> {
        let dead: Vec<u64> = inner
            .sealed
            .iter()
            .filter(|(_, info)| {
                info.coverage
                    .iter()
                    .all(|(p, &top)| inner.snapshot_lsn.get(p).copied().unwrap_or(0) >= top)
            })
            .map(|(&index, _)| index)
            .collect();
        for index in &dead {
            fs::remove_file(segment_path(&self.dir, *index))?;
            inner.sealed.remove(index);
        }
        if self.options.columnar {
            // Rewrite every surviving row segment as one columnar block.
            // Sealed files never grow again, so the rewrite is a pure
            // re-encode; write_atomic keeps crash windows torn-free.
            for (&index, info) in inner.sealed.iter_mut() {
                if info.columnar {
                    continue;
                }
                let (segment, _) = read_segment(&self.dir, index, info.allow_torn)?;
                write_atomic(
                    &segment_path(&self.dir, index),
                    &columnar_segment_bytes(&segment.records)?,
                )?;
                info.columnar = true;
                info.allow_torn = false;
            }
        }
        Ok(dead.len())
    }
}

/// Serialize records as a complete columnar segment file:
/// `SSEG · version · codec · [u32 len] · [u32 crc] · block`.
fn columnar_segment_bytes(records: &[(u64, WalRecord)]) -> Result<Vec<u8>, WalError> {
    let block = crate::colseg::encode_block(records);
    let block_len = u32::try_from(block.len()).map_err(|_| {
        WalError::Corrupt(format!(
            "columnar block {}B exceeds u32 framing",
            block.len()
        ))
    })?;
    let mut bytes = Vec::with_capacity(SEGMENT_HEADER_LEN + 8 + block.len());
    bytes.extend_from_slice(&SEGMENT_MAGIC);
    bytes.push(SEGMENT_VERSION);
    bytes.push(SEGMENT_CODEC_COLUMNAR);
    block_len.encode(&mut bytes);
    crc32(&block).encode(&mut bytes);
    bytes.extend_from_slice(&block);
    Ok(bytes)
}

fn open_segment(dir: &Path, index: u64, versioned: bool) -> Result<File, WalError> {
    let path = segment_path(dir, index);
    let mut file = OpenOptions::new()
        .create_new(true)
        .append(true)
        .open(path)?;
    if versioned {
        file.write_all(&[
            SEGMENT_MAGIC[0],
            SEGMENT_MAGIC[1],
            SEGMENT_MAGIC[2],
            SEGMENT_MAGIC[3],
            SEGMENT_VERSION,
            SEGMENT_CODEC_ROWS,
        ])?;
        file.flush()?;
    }
    Ok(file)
}

struct SegmentScan {
    index: u64,
    records: Vec<(u64, WalRecord)>,
    coverage: HashMap<u32, u64>,
    /// The file held a columnar block (vs row frames).
    columnar: bool,
}

struct Scan {
    process_index: u32,
    config: Vec<u8>,
    segments: Vec<SegmentScan>,
    snapshots: BTreeMap<u32, Snapshot>,
    torn_tail: bool,
}

impl Scan {
    fn into_state(self) -> WalState {
        let mut tail = Vec::new();
        for segment in self.segments {
            tail.extend(segment.records);
        }
        let mut next_lsn = tail.iter().map(|&(lsn, _)| lsn + 1).max().unwrap_or(1);
        for snap in self.snapshots.values() {
            next_lsn = next_lsn.max(snap.lsn + 1);
        }
        WalState {
            process_index: self.process_index,
            config: self.config,
            snapshots: self.snapshots,
            tail,
            next_lsn,
            torn_tail: self.torn_tail,
        }
    }
}

fn scan(dir: &Path) -> Result<Scan, WalError> {
    let manifest_file = manifest_path(dir);
    let bytes = fs::read(&manifest_file)?;
    let body = verify_checksum(&manifest_file, &bytes)?;
    let (magic, version, process_index, config): (u32, u32, u32, Vec<u8>) = decode_exact(body)?;
    if magic != MANIFEST_MAGIC {
        return Err(WalError::Corrupt(format!(
            "{} has bad magic {magic:#x}",
            manifest_file.display()
        )));
    }
    if version != FORMAT_VERSION {
        return Err(WalError::Corrupt(format!(
            "unsupported WAL format version {version}"
        )));
    }

    let mut indices = Vec::new();
    for entry in fs::read_dir(segments_dir(dir))? {
        let name = entry?.file_name();
        let name = name.to_string_lossy();
        if let Some(index) = name
            .strip_prefix("seg-")
            .and_then(|rest| rest.strip_suffix(".wal"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            indices.push(index);
        }
    }
    indices.sort_unstable();

    let mut segments = Vec::new();
    let mut torn_tail = false;
    for (pos, &index) in indices.iter().enumerate() {
        let last = pos + 1 == indices.len();
        let (segment, torn) = read_segment(dir, index, last)?;
        torn_tail |= torn;
        segments.push(segment);
    }

    let mut snapshots = BTreeMap::new();
    if snapshots_dir(dir).is_dir() {
        for entry in fs::read_dir(snapshots_dir(dir))? {
            let path = entry?.path();
            if path.extension().is_some_and(|ext| ext == "snap") {
                let snap = read_snapshot(&path)?;
                snapshots.insert(snap.partition, snap);
            }
        }
    }

    Ok(Scan {
        process_index,
        config,
        segments,
        snapshots,
        torn_tail,
    })
}

/// Read one segment file, dispatching on its header: headerless files
/// are legacy v0 row frames; `SSEG`-headed files are versioned rows or
/// a columnar block. `last` tolerates a torn final frame (row formats
/// only — columnar files are written atomically, so any damage there is
/// corruption).
fn read_segment(dir: &Path, index: u64, last: bool) -> Result<(SegmentScan, bool), WalError> {
    let path = segment_path(dir, index);
    let mut bytes = Vec::new();
    File::open(&path)?.read_to_end(&mut bytes)?;

    let body = if bytes.starts_with(&SEGMENT_MAGIC) {
        if bytes.len() < SEGMENT_HEADER_LEN {
            // A crash between create and header flush can leave a
            // partial header — only acceptable in the newest segment.
            if last {
                return Ok((empty_scan(index), true));
            }
            return Err(WalError::Corrupt(format!(
                "{}: truncated segment header",
                path.display()
            )));
        }
        if bytes[4] != SEGMENT_VERSION {
            return Err(WalError::Corrupt(format!(
                "{}: unsupported segment version {}",
                path.display(),
                bytes[4]
            )));
        }
        match bytes[5] {
            SEGMENT_CODEC_ROWS => &bytes[SEGMENT_HEADER_LEN..],
            SEGMENT_CODEC_COLUMNAR => {
                let records = read_columnar_body(&path, &bytes[SEGMENT_HEADER_LEN..])?;
                return Ok((scan_of(index, records, true), false));
            }
            codec => {
                return Err(WalError::Corrupt(format!(
                    "{}: unsupported segment codec {codec}",
                    path.display()
                )))
            }
        }
    } else {
        &bytes[..]
    };

    let (records, torn) = scan_row_frames(&path, body, last)?;
    Ok((scan_of(index, records, false), torn))
}

/// Build a [`SegmentScan`] from decoded records, deriving coverage.
fn scan_of(index: u64, records: Vec<(u64, WalRecord)>, columnar: bool) -> SegmentScan {
    let mut coverage: HashMap<u32, u64> = HashMap::new();
    for (lsn, record) in &records {
        let top = coverage.entry(record.partition()).or_insert(0);
        *top = (*top).max(*lsn);
    }
    SegmentScan {
        index,
        records,
        coverage,
        columnar,
    }
}

fn empty_scan(index: u64) -> SegmentScan {
    scan_of(index, Vec::new(), false)
}

/// Validate and decode a columnar segment body:
/// `[u32 len] [u32 crc] block` with nothing before or after.
fn read_columnar_body(path: &Path, body: &[u8]) -> Result<Vec<(u64, WalRecord)>, WalError> {
    if body.len() < 8 {
        return Err(WalError::Corrupt(format!(
            "{}: truncated columnar block header",
            path.display()
        )));
    }
    let mut header = &body[0..8];
    let len = u32::decode(&mut header)?;
    let crc = u32::decode(&mut header)?;
    let block = &body[8..];
    if len as usize != block.len() {
        return Err(WalError::Corrupt(format!(
            "{}: columnar block length {} disagrees with file ({} bytes)",
            path.display(),
            len,
            block.len()
        )));
    }
    if crc32(block) != crc {
        return Err(WalError::Corrupt(format!(
            "{}: columnar block checksum mismatch",
            path.display()
        )));
    }
    crate::colseg::decode_block(block)
}

/// Scan row frames, tolerating a torn final frame when `last`.
fn scan_row_frames(
    path: &Path,
    body: &[u8],
    last: bool,
) -> Result<(Vec<(u64, WalRecord)>, bool), WalError> {
    let mut records = Vec::new();
    let mut rest: &[u8] = body;
    let mut torn = false;
    while !rest.is_empty() {
        let frame_ok = (|| -> Result<Option<(u64, WalRecord)>, WalError> {
            if rest.len() < 8 {
                return Ok(None);
            }
            let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes"));
            let crc = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
            if len > MAX_RECORD_LEN {
                return Err(WalError::Corrupt(format!(
                    "{}: record length {len} exceeds {MAX_RECORD_LEN}",
                    path.display()
                )));
            }
            let len = len as usize;
            if rest.len() < 8 + len {
                return Ok(None);
            }
            let payload = &rest[8..8 + len];
            if crc32(payload) != crc {
                return Ok(None);
            }
            let (lsn, record): (u64, WalRecord) = decode_exact(payload)?;
            rest = &rest[8 + len..];
            Ok(Some((lsn, record)))
        })();
        match frame_ok {
            Ok(Some((lsn, record))) => {
                records.push((lsn, record));
            }
            Ok(None) if last => {
                // A partial or checksum-failing frame at the very tail of
                // the newest segment is the signature of a crash mid
                // append: everything before it is intact.
                torn = true;
                break;
            }
            Ok(None) => {
                return Err(WalError::Corrupt(format!(
                    "{}: truncated or corrupt record in interior segment",
                    path.display()
                )));
            }
            Err(e) => return Err(e),
        }
    }

    Ok((records, torn))
}

fn read_snapshot(path: &Path) -> Result<Snapshot, WalError> {
    let bytes = fs::read(path)?;
    let body = verify_checksum(path, &bytes)?;
    let mut rest = body;
    let magic = u32::decode(&mut rest)?;
    let version = u32::decode(&mut rest)?;
    if magic != SNAPSHOT_MAGIC {
        return Err(WalError::Corrupt(format!(
            "{} has bad magic {magic:#x}",
            path.display()
        )));
    }
    if version != SNAPSHOT_VERSION_V1 && version != SNAPSHOT_VERSION_V2 {
        return Err(WalError::Corrupt(format!(
            "unsupported snapshot version {version}"
        )));
    }
    let partition = u32::decode(&mut rest)?;
    let lsn = u64::decode(&mut rest)?;
    let format = if version == SNAPSHOT_VERSION_V2 {
        let (&format, tail) = rest.split_first().ok_or_else(|| {
            WalError::Corrupt(format!("{} missing payload format byte", path.display()))
        })?;
        rest = tail;
        format
    } else {
        SNAPSHOT_FORMAT_VERBATIM
    };
    let blob = Vec::<u8>::decode(&mut rest)?;
    if !rest.is_empty() {
        return Err(WalError::Corrupt(format!(
            "{} has trailing bytes",
            path.display()
        )));
    }
    Ok(Snapshot {
        partition,
        lsn,
        format,
        blob,
    })
}

/// What `semtree recover` prints: a human-readable summary of a WAL
/// directory.
#[derive(Debug, Clone)]
pub struct WalReport {
    /// The WAL directory inspected.
    pub dir: PathBuf,
    /// Process index from the manifest.
    pub process_index: u32,
    /// Number of segment files present.
    pub segments: usize,
    /// Total bytes of all segment files on disk.
    pub segment_disk_bytes: u64,
    /// Total bytes of all snapshot files on disk.
    pub snapshot_disk_bytes: u64,
    /// Total records still on disk.
    pub records: usize,
    /// Records replay would actually apply (not covered by a snapshot).
    pub live_records: usize,
    /// The LSN the next append would receive.
    pub next_lsn: u64,
    /// Whether the newest segment ends in a torn record.
    pub torn_tail: bool,
    /// Per-partition breakdown, ascending partition id.
    pub partitions: Vec<PartitionReport>,
}

/// One partition's durable footprint.
#[derive(Debug, Clone, Default)]
pub struct PartitionReport {
    /// Compute-node id of the partition.
    pub partition: u32,
    /// Covered LSN of its snapshot, if one exists.
    pub snapshot_lsn: Option<u64>,
    /// Size of the snapshot blob in bytes (as stored, after any
    /// columnar compression).
    pub snapshot_bytes: usize,
    /// Size of the whole snapshot file on disk (header + blob + crc).
    pub snapshot_disk_bytes: u64,
    /// Payload format of the snapshot blob ([`SNAPSHOT_FORMAT_VERBATIM`]
    /// or [`SNAPSHOT_FORMAT_COLUMNAR`]).
    pub snapshot_format: u8,
    /// Live `partition-create` records.
    pub creates: usize,
    /// Live `point-insert` records.
    pub inserts: usize,
    /// Live `leaf-split` records.
    pub splits: usize,
    /// Live `leaf-migration` records.
    pub migrations: usize,
}

impl WalReport {
    /// Build a report from an already-loaded state.
    pub fn from_state(dir: &Path, state: &WalState) -> Result<WalReport, WalError> {
        let mut segments = 0;
        let mut segment_disk_bytes = 0;
        for entry in fs::read_dir(segments_dir(dir))? {
            let entry = entry?;
            if entry.file_name().to_string_lossy().ends_with(".wal") {
                segments += 1;
                segment_disk_bytes += entry.metadata()?.len();
            }
        }

        let mut per: BTreeMap<u32, PartitionReport> = BTreeMap::new();
        let mut snapshot_disk_bytes = 0;
        for (partition, snap) in &state.snapshots {
            let entry = per.entry(*partition).or_default();
            entry.partition = *partition;
            entry.snapshot_lsn = Some(snap.lsn);
            entry.snapshot_bytes = snap.blob.len();
            entry.snapshot_format = snap.format;
            entry.snapshot_disk_bytes = fs::metadata(snapshot_path(dir, *partition))?.len();
            snapshot_disk_bytes += entry.snapshot_disk_bytes;
        }
        let mut live_records = 0;
        for (_, record) in state.live_tail() {
            live_records += 1;
            let entry = per.entry(record.partition()).or_default();
            entry.partition = record.partition();
            match record {
                WalRecord::PartitionCreate { .. } => entry.creates += 1,
                WalRecord::PointInsert { .. } => entry.inserts += 1,
                WalRecord::LeafSplit { .. } => entry.splits += 1,
                WalRecord::LeafMigration { .. } => entry.migrations += 1,
            }
        }

        Ok(WalReport {
            dir: dir.to_path_buf(),
            process_index: state.process_index,
            segments,
            segment_disk_bytes,
            snapshot_disk_bytes,
            records: state.tail.len(),
            live_records,
            next_lsn: state.next_lsn,
            torn_tail: state.torn_tail,
            partitions: per.into_values().collect(),
        })
    }
}

impl fmt::Display for WalReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "wal-dir: {}", self.dir.display())?;
        writeln!(f, "process-index: {}", self.process_index)?;
        writeln!(
            f,
            "segments: {} ({} records, {} live, {} bytes on disk)",
            self.segments, self.records, self.live_records, self.segment_disk_bytes
        )?;
        writeln!(f, "snapshot-bytes: {}", self.snapshot_disk_bytes)?;
        writeln!(f, "next-lsn: {}", self.next_lsn)?;
        writeln!(f, "torn-tail: {}", self.torn_tail)?;
        for p in &self.partitions {
            writeln!(
                f,
                "partition {}: snapshot {} ({} bytes), live tail: {} creates, {} inserts, {} splits, {} migrations",
                p.partition,
                p.snapshot_lsn
                    .map_or_else(|| "none".to_string(), |lsn| format!("@{lsn}")),
                p.snapshot_bytes,
                p.creates,
                p.inserts,
                p.splits,
                p.migrations
            )?;
        }
        Ok(())
    }
}
