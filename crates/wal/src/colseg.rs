//! Columnar encoding of sealed WAL segments.
//!
//! Compaction rewrites surviving sealed segments from the row-oriented
//! frame format into one columnar block per file: record fields are
//! regrouped into `semtree-colz` columns so the block compresses like a
//! snapshot instead of a stream of framed rows. The hot (open) segment
//! is never columnar — appends stay row-oriented for latency, and the
//! torn-tail crash signature only applies to row files.
//!
//! Block layout (all columns in order; every count cross-checked on
//! decode):
//!
//! ```text
//! lsns        DeltaColumn     ascending record LSNs
//! kinds       RleColumn       record tag per record (0..=3)
//! partitions  UIntColumn      owning partition per record
//! creates     depths · bucket_lens · bucket payloads · bucket points
//! inserts     nodes · payloads · points
//! splits      leaves · split_dims · lefts · rights · split_vals
//! migrations  evicted · target_partitions · target_nodes
//! ```
//!
//! Per-kind columns hold that kind's records in log order; the `kinds`
//! column is the schedule that interleaves them back.

use semtree_colz::{
    ColumnCodec, ColzError, DeltaColumn, F64Column, PointsColumn, RleColumn, UIntColumn,
};

use crate::log::WalError;
use crate::record::WalRecord;

/// Record tags, matching the row-format discriminants.
const TAG_CREATE: u64 = 0;
const TAG_INSERT: u64 = 1;
const TAG_SPLIT: u64 = 2;
const TAG_MIGRATION: u64 = 3;

impl From<ColzError> for WalError {
    fn from(e: ColzError) -> Self {
        WalError::Corrupt(format!("columnar segment: {e}"))
    }
}

fn tag_of(record: &WalRecord) -> u64 {
    match record {
        WalRecord::PartitionCreate { .. } => TAG_CREATE,
        WalRecord::PointInsert { .. } => TAG_INSERT,
        WalRecord::LeafSplit { .. } => TAG_SPLIT,
        WalRecord::LeafMigration { .. } => TAG_MIGRATION,
    }
}

/// Encode a sealed segment's records as one columnar block.
pub(crate) fn encode_block(records: &[(u64, WalRecord)]) -> Vec<u8> {
    let lsns: Vec<u64> = records.iter().map(|&(lsn, _)| lsn).collect();
    let kinds: Vec<u64> = records.iter().map(|(_, r)| tag_of(r)).collect();
    let partitions: Vec<u64> = records
        .iter()
        .map(|(_, r)| u64::from(r.partition()))
        .collect();

    let mut create_depths = Vec::new();
    let mut create_bucket_lens = Vec::new();
    let mut create_payloads = Vec::new();
    let mut create_points = Vec::new();
    let mut insert_nodes = Vec::new();
    let mut insert_payloads = Vec::new();
    let mut insert_points = Vec::new();
    let mut split_leaves = Vec::new();
    let mut split_dims = Vec::new();
    let mut split_lefts = Vec::new();
    let mut split_rights = Vec::new();
    let mut split_vals = Vec::new();
    let mut mig_evicted = Vec::new();
    let mut mig_target_partitions = Vec::new();
    let mut mig_target_nodes = Vec::new();

    for (_, record) in records {
        match record {
            WalRecord::PartitionCreate { depth, bucket, .. } => {
                create_depths.push(*depth as u64);
                create_bucket_lens.push(bucket.len() as u64);
                for (point, payload) in bucket {
                    create_payloads.push(*payload);
                    create_points.push(point.clone());
                }
            }
            WalRecord::PointInsert {
                node,
                point,
                payload,
                ..
            } => {
                insert_nodes.push(u64::from(*node));
                insert_payloads.push(*payload);
                insert_points.push(point.clone());
            }
            WalRecord::LeafSplit {
                leaf,
                split_dim,
                split_val,
                left,
                right,
                ..
            } => {
                split_leaves.push(u64::from(*leaf));
                split_dims.push(*split_dim as u64);
                split_lefts.push(u64::from(*left));
                split_rights.push(u64::from(*right));
                split_vals.push(*split_val);
            }
            WalRecord::LeafMigration {
                evicted,
                target_partition,
                target_node,
                ..
            } => {
                mig_evicted.push(u64::from(*evicted));
                mig_target_partitions.push(u64::from(*target_partition));
                mig_target_nodes.push(u64::from(*target_node));
            }
        }
    }

    let mut out = Vec::new();
    DeltaColumn::encode(&lsns, &mut out);
    RleColumn::encode(&kinds, &mut out);
    UIntColumn::encode(&partitions, &mut out);
    UIntColumn::encode(&create_depths, &mut out);
    UIntColumn::encode(&create_bucket_lens, &mut out);
    UIntColumn::encode(&create_payloads, &mut out);
    PointsColumn::encode(&create_points, &mut out);
    UIntColumn::encode(&insert_nodes, &mut out);
    UIntColumn::encode(&insert_payloads, &mut out);
    PointsColumn::encode(&insert_points, &mut out);
    UIntColumn::encode(&split_leaves, &mut out);
    UIntColumn::encode(&split_dims, &mut out);
    UIntColumn::encode(&split_lefts, &mut out);
    UIntColumn::encode(&split_rights, &mut out);
    F64Column::encode(&split_vals, &mut out);
    UIntColumn::encode(&mig_evicted, &mut out);
    UIntColumn::encode(&mig_target_partitions, &mut out);
    UIntColumn::encode(&mig_target_nodes, &mut out);
    out
}

fn corrupt(context: &str) -> WalError {
    WalError::Corrupt(format!("columnar segment: {context}"))
}

fn to_u32(value: u64, context: &'static str) -> Result<u32, WalError> {
    u32::try_from(value).map_err(|_| corrupt(context))
}

fn to_usize(value: u64, context: &'static str) -> Result<usize, WalError> {
    usize::try_from(value).map_err(|_| corrupt(context))
}

/// Decode a columnar block back into its records, in log order.
pub(crate) fn decode_block(bytes: &[u8]) -> Result<Vec<(u64, WalRecord)>, WalError> {
    let mut buf = bytes;
    let lsns = DeltaColumn::decode(&mut buf)?;
    let kinds = RleColumn::decode(&mut buf)?;
    let partitions = UIntColumn::decode(&mut buf)?;
    if kinds.len() != lsns.len() || partitions.len() != lsns.len() {
        return Err(corrupt("kind/partition columns disagree with lsn column"));
    }
    let create_depths = UIntColumn::decode(&mut buf)?;
    let create_bucket_lens = UIntColumn::decode(&mut buf)?;
    let create_payloads = UIntColumn::decode(&mut buf)?;
    let create_points = PointsColumn::decode(&mut buf)?;
    let insert_nodes = UIntColumn::decode(&mut buf)?;
    let insert_payloads = UIntColumn::decode(&mut buf)?;
    let insert_points = PointsColumn::decode(&mut buf)?;
    let split_leaves = UIntColumn::decode(&mut buf)?;
    let split_dims = UIntColumn::decode(&mut buf)?;
    let split_lefts = UIntColumn::decode(&mut buf)?;
    let split_rights = UIntColumn::decode(&mut buf)?;
    let split_vals = F64Column::decode(&mut buf)?;
    let mig_evicted = UIntColumn::decode(&mut buf)?;
    let mig_target_partitions = UIntColumn::decode(&mut buf)?;
    let mig_target_nodes = UIntColumn::decode(&mut buf)?;
    if !buf.is_empty() {
        return Err(corrupt("trailing bytes after columns"));
    }
    if create_depths.len() != create_bucket_lens.len() {
        return Err(corrupt("create columns disagree"));
    }
    if insert_nodes.len() != insert_payloads.len() || insert_nodes.len() != insert_points.len() {
        return Err(corrupt("insert columns disagree"));
    }
    if split_leaves.len() != split_dims.len()
        || split_leaves.len() != split_lefts.len()
        || split_leaves.len() != split_rights.len()
        || split_leaves.len() != split_vals.len()
    {
        return Err(corrupt("split columns disagree"));
    }
    if mig_evicted.len() != mig_target_partitions.len()
        || mig_evicted.len() != mig_target_nodes.len()
    {
        return Err(corrupt("migration columns disagree"));
    }

    let mut records = Vec::with_capacity(lsns.len());
    let mut next_create = 0usize;
    let mut bucket_cursor = 0usize;
    let mut next_insert = 0usize;
    let mut next_split = 0usize;
    let mut next_mig = 0usize;
    for (i, (&lsn, &kind)) in lsns.iter().zip(&kinds).enumerate() {
        let partition = to_u32(partitions[i], "partition id exceeds u32")?;
        let record = match kind {
            TAG_CREATE => {
                let depth = *create_depths
                    .get(next_create)
                    .ok_or_else(|| corrupt("create column underflow"))?;
                let bucket_len = to_usize(
                    create_bucket_lens[next_create],
                    "bucket length exceeds usize",
                )?;
                let end = bucket_cursor
                    .checked_add(bucket_len)
                    .filter(|&end| end <= create_points.len() && end <= create_payloads.len())
                    .ok_or_else(|| corrupt("create bucket overruns its columns"))?;
                let bucket = (bucket_cursor..end)
                    .map(|j| (create_points[j].clone(), create_payloads[j]))
                    .collect();
                bucket_cursor = end;
                next_create += 1;
                WalRecord::PartitionCreate {
                    partition,
                    depth: to_usize(depth, "depth exceeds usize")?,
                    bucket,
                }
            }
            TAG_INSERT => {
                let j = next_insert;
                next_insert += 1;
                let (node, point, payload) = insert_nodes
                    .get(j)
                    .zip(insert_points.get(j))
                    .zip(insert_payloads.get(j))
                    .map(|((&n, p), &pay)| (n, p.clone(), pay))
                    .ok_or_else(|| corrupt("insert column underflow"))?;
                WalRecord::PointInsert {
                    partition,
                    node: to_u32(node, "node id exceeds u32")?,
                    point,
                    payload,
                }
            }
            TAG_SPLIT => {
                let j = next_split;
                next_split += 1;
                if j >= split_leaves.len() {
                    return Err(corrupt("split column underflow"));
                }
                WalRecord::LeafSplit {
                    partition,
                    leaf: to_u32(split_leaves[j], "leaf id exceeds u32")?,
                    split_dim: to_usize(split_dims[j], "split dim exceeds usize")?,
                    split_val: split_vals[j],
                    left: to_u32(split_lefts[j], "left id exceeds u32")?,
                    right: to_u32(split_rights[j], "right id exceeds u32")?,
                }
            }
            TAG_MIGRATION => {
                let j = next_mig;
                next_mig += 1;
                if j >= mig_evicted.len() {
                    return Err(corrupt("migration column underflow"));
                }
                WalRecord::LeafMigration {
                    partition,
                    evicted: to_u32(mig_evicted[j], "evicted id exceeds u32")?,
                    target_partition: to_u32(
                        mig_target_partitions[j],
                        "target partition exceeds u32",
                    )?,
                    target_node: to_u32(mig_target_nodes[j], "target node exceeds u32")?,
                }
            }
            _ => return Err(corrupt("unknown record kind tag")),
        };
        records.push((lsn, record));
    }
    // Every per-kind column must be fully consumed, or the kinds column
    // disagrees with the data columns.
    if next_create != create_depths.len()
        || bucket_cursor != create_points.len()
        || bucket_cursor != create_payloads.len()
        || next_insert != insert_nodes.len()
        || next_split != split_leaves.len()
        || next_mig != mig_evicted.len()
    {
        return Err(corrupt("per-kind columns not fully consumed"));
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_records() -> Vec<(u64, WalRecord)> {
        let mut records = Vec::new();
        let mut lsn = 10;
        records.push((
            lsn,
            WalRecord::PartitionCreate {
                partition: 0x0002_0001,
                depth: 3,
                bucket: vec![(vec![1.0, 2.0], 7), (vec![-0.5, 9.25], 8)],
            },
        ));
        for i in 0..200u64 {
            lsn += 1;
            records.push((
                lsn,
                WalRecord::PointInsert {
                    partition: 1 + (i % 3) as u32,
                    node: (i % 5) as u32,
                    point: vec![(i % 7) as f64 * 1.5, (i % 4) as f64 - 2.0],
                    payload: i,
                },
            ));
            if i % 50 == 49 {
                lsn += 1;
                records.push((
                    lsn,
                    WalRecord::LeafSplit {
                        partition: 1,
                        leaf: (i / 50) as u32,
                        split_dim: (i % 2) as usize,
                        split_val: (i as f64) * 0.25,
                        left: 100 + i as u32,
                        right: 101 + i as u32,
                    },
                ));
            }
        }
        lsn += 1;
        records.push((
            lsn,
            WalRecord::LeafMigration {
                partition: 1,
                evicted: 5,
                target_partition: 0x0003_0000,
                target_node: 0,
            },
        ));
        records
    }

    #[test]
    fn blocks_round_trip() {
        for records in [Vec::new(), mixed_records()] {
            let block = encode_block(&records);
            let back = decode_block(&block).expect("round trip");
            assert_eq!(back, records);
        }
    }

    #[test]
    fn blocks_beat_row_frames() {
        use semtree_net::Encode;
        let records = mixed_records();
        let rows: usize = records
            .iter()
            .map(|(lsn, r)| 8 + lsn.encoded_len() + r.encoded_len())
            .sum();
        let block = encode_block(&records);
        assert!(
            block.len() * 3 < rows,
            "columnar {} vs rows {rows}",
            block.len()
        );
    }

    #[test]
    fn truncation_and_trailing_bytes_are_rejected() {
        let block = encode_block(&mixed_records());
        for cut in [0, 1, block.len() / 2, block.len() - 1] {
            assert!(decode_block(&block[..cut]).is_err(), "cut at {cut}");
        }
        let mut extended = block.clone();
        extended.push(0);
        assert!(decode_block(&extended).is_err());
    }

    #[test]
    fn kind_schedule_must_match_data_columns() {
        // An empty block claims one insert record via a hand-built kinds
        // column while the insert columns are empty.
        use semtree_colz::{ColumnCodec, DeltaColumn, RleColumn, UIntColumn};
        let mut bad = Vec::new();
        DeltaColumn::encode(&[1], &mut bad);
        RleColumn::encode(&[TAG_INSERT], &mut bad);
        UIntColumn::encode(&[1], &mut bad);
        // Remaining 15 columns all empty.
        for _ in 0..15 {
            UIntColumn::encode(&[], &mut bad);
        }
        assert!(decode_block(&bad).is_err());
    }
}
