//! Durable partition state for the distributed SemTree — beyond the paper.
//!
//! The paper's cluster keeps every partition's KD-subtree in worker
//! memory only; a single process death loses the partition and forces a
//! full rebuild. This crate is the durability layer underneath
//! `semtree-dist`: a **segmented, append-only, CRC-checksummed
//! write-ahead log** of logical partition events (partition-create,
//! point-insert, leaf-split, leaf-migration), **per-partition
//! snapshots** that truncate the log via segment compaction, and the
//! read-side scan a recovery manager replays to reconstruct the exact
//! partition stores a killed worker was holding.
//!
//! The crate deliberately knows nothing about KD-trees: records carry
//! local node ids and raw points, snapshots carry an opaque store image
//! blob. `semtree-dist` owns both interpretations, so the dependency
//! arrow stays `dist → wal → net` (the WAL reuses the TCP fabric's
//! little-endian [`Encode`]/[`Decode`] codec — one byte-layout contract
//! across the wire *and* the disk).
//!
//! ```
//! use semtree_wal::{Wal, WalOptions, WalRecord};
//!
//! let dir = std::env::temp_dir().join("semtree-wal-doc");
//! let _ = std::fs::remove_dir_all(&dir);
//! let wal = Wal::create(&dir, 1, b"config", WalOptions::default()).unwrap();
//! wal.append(&WalRecord::PointInsert {
//!     partition: 0x0001_0000,
//!     node: 0,
//!     point: vec![1.0, 2.0],
//!     payload: 42,
//! })
//! .unwrap();
//! drop(wal);
//!
//! let state = Wal::load(&dir).unwrap();
//! assert_eq!(state.tail.len(), 1);
//! assert_eq!(state.next_lsn, 2);
//! ```

mod colseg;
mod crc32;
mod log;
mod ordering;
mod record;

pub use crc32::crc32;
pub use log::{
    Appended, PartitionReport, Snapshot, Wal, WalError, WalOptions, WalReport, WalState,
    SNAPSHOT_FORMAT_COLUMNAR, SNAPSHOT_FORMAT_VERBATIM,
};
pub use ordering::{RecordSink, SequencedLog};
pub use record::WalRecord;
pub use semtree_net::{Decode, Encode};

#[cfg(test)]
mod tests {
    use std::path::PathBuf;

    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("semtree-wal-tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn insert(partition: u32, payload: u64) -> WalRecord {
        WalRecord::PointInsert {
            partition,
            node: 0,
            point: vec![payload as f64, -1.0],
            payload,
        }
    }

    #[test]
    fn append_load_round_trips_records_in_lsn_order() {
        let dir = tmpdir("round-trip");
        let wal = Wal::create(&dir, 2, b"cfg", WalOptions::default()).unwrap();
        for i in 0..10 {
            let appended = wal.append(&insert(0x0002_0000, i)).unwrap();
            assert_eq!(appended.lsn, i + 1);
        }
        drop(wal);

        let state = Wal::load(&dir).unwrap();
        assert_eq!(state.process_index, 2);
        assert_eq!(state.config, b"cfg");
        assert!(!state.torn_tail);
        assert_eq!(state.next_lsn, 11);
        let lsns: Vec<u64> = state.tail.iter().map(|&(lsn, _)| lsn).collect();
        assert_eq!(lsns, (1..=10).collect::<Vec<_>>());
        assert_eq!(state.tail[3].1, insert(0x0002_0000, 3));
    }

    #[test]
    fn create_refuses_to_overwrite_an_existing_wal() {
        let dir = tmpdir("no-overwrite");
        Wal::create(&dir, 1, b"", WalOptions::default()).unwrap();
        assert!(Wal::exists(&dir));
        let err = Wal::create(&dir, 1, b"", WalOptions::default()).unwrap_err();
        assert!(matches!(err, WalError::Corrupt(_)), "{err}");
    }

    #[test]
    fn resume_continues_lsns_in_a_new_segment() {
        let dir = tmpdir("resume");
        let wal = Wal::create(&dir, 1, b"cfg", WalOptions::default()).unwrap();
        for i in 0..5 {
            wal.append(&insert(7, i)).unwrap();
        }
        drop(wal);

        let (wal, state) = Wal::resume(&dir, WalOptions::default()).unwrap();
        assert_eq!(state.next_lsn, 6);
        assert_eq!(wal.append(&insert(7, 99)).unwrap().lsn, 6);
        drop(wal);

        let state = Wal::load(&dir).unwrap();
        assert_eq!(state.tail.len(), 6);
        assert_eq!(state.tail.last().unwrap().0, 6);
    }

    #[test]
    fn snapshots_cover_the_tail_and_compaction_reclaims_segments() {
        let dir = tmpdir("compact");
        // Tiny segments: every record seals one.
        let options = WalOptions::default()
            .with_segment_bytes(1)
            .with_snapshot_every(4);
        let wal = Wal::create(&dir, 1, b"", options).unwrap();
        let mut due = false;
        for i in 0..4 {
            due = wal.append(&insert(7, i)).unwrap().snapshot_due;
        }
        assert!(due, "4th record must trip snapshot_every = 4");
        let covered = wal
            .snapshot(7, SNAPSHOT_FORMAT_VERBATIM, b"store-image")
            .unwrap();
        assert_eq!(covered, 4);

        // All four sealed segments held only covered records of
        // partition 7 — compaction (run inside snapshot) removed them.
        let state = Wal::load(&dir).unwrap();
        assert_eq!(state.tail.len(), 0, "covered segments were deleted");
        assert_eq!(state.snapshots[&7].blob, b"store-image");
        assert_eq!(state.snapshots[&7].lsn, 4);
        assert_eq!(state.next_lsn, 5, "lsn clock survives compaction");

        // New appends land after the snapshot and stay live.
        wal.append(&insert(7, 100)).unwrap();
        drop(wal);
        let state = Wal::load(&dir).unwrap();
        assert_eq!(state.live_tail().count(), 1);
        assert!(state.covered(7, 4));
        assert!(!state.covered(7, 5));
    }

    #[test]
    fn segments_with_uncovered_partitions_survive_compaction() {
        let dir = tmpdir("mixed-compact");
        let options = WalOptions::default()
            .with_segment_bytes(1)
            .with_snapshot_every(u64::MAX);
        let wal = Wal::create(&dir, 1, b"", options).unwrap();
        wal.append(&insert(7, 0)).unwrap();
        wal.append(&insert(8, 1)).unwrap();
        wal.snapshot(7, SNAPSHOT_FORMAT_VERBATIM, b"seven").unwrap();

        let state = Wal::load(&dir).unwrap();
        let live: Vec<u32> = state
            .live_tail()
            .map(|(_, record)| record.partition())
            .collect();
        assert_eq!(live, [8], "partition 8's segment must survive");
        drop(wal);
    }

    #[test]
    fn a_torn_final_record_is_tolerated_and_flagged() {
        let dir = tmpdir("torn");
        let wal = Wal::create(&dir, 1, b"", WalOptions::default()).unwrap();
        for i in 0..3 {
            wal.append(&insert(7, i)).unwrap();
        }
        drop(wal);

        // Chop bytes off the single segment's tail — a crash mid-write.
        let seg = std::fs::read_dir(dir.join("segments"))
            .unwrap()
            .next()
            .unwrap()
            .unwrap()
            .path();
        let bytes = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &bytes[..bytes.len() - 5]).unwrap();

        let state = Wal::load(&dir).unwrap();
        assert!(state.torn_tail);
        assert_eq!(state.tail.len(), 2, "intact prefix records survive");
        assert_eq!(state.next_lsn, 3);

        // Resume starts a fresh segment; the torn tail stays behind but
        // appends keep working.
        let (wal, _) = Wal::resume(&dir, WalOptions::default()).unwrap();
        assert_eq!(wal.append(&insert(7, 9)).unwrap().lsn, 3);
    }

    #[test]
    fn corruption_in_an_interior_segment_is_an_error() {
        let dir = tmpdir("interior-corrupt");
        let options = WalOptions::default()
            .with_segment_bytes(1)
            .with_snapshot_every(u64::MAX);
        let wal = Wal::create(&dir, 1, b"", options).unwrap();
        wal.append(&insert(7, 0)).unwrap();
        wal.append(&insert(7, 1)).unwrap();
        drop(wal);

        // Flip a payload byte in the FIRST segment (not the newest).
        let mut paths: Vec<_> = std::fs::read_dir(dir.join("segments"))
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        paths.sort();
        let mut bytes = std::fs::read(&paths[0]).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&paths[0], &bytes).unwrap();

        let err = Wal::load(&dir).unwrap_err();
        assert!(matches!(err, WalError::Corrupt(_)), "{err}");
    }

    #[test]
    fn snapshot_files_with_bad_checksums_are_rejected() {
        let dir = tmpdir("snap-corrupt");
        let wal = Wal::create(&dir, 1, b"", WalOptions::default()).unwrap();
        wal.append(&insert(7, 0)).unwrap();
        wal.snapshot(7, SNAPSHOT_FORMAT_VERBATIM, b"image").unwrap();
        drop(wal);

        let snap = dir.join("snapshots").join("part-7.snap");
        let mut bytes = std::fs::read(&snap).unwrap();
        bytes[8] ^= 0x01;
        std::fs::write(&snap, &bytes).unwrap();

        let err = Wal::load(&dir).unwrap_err();
        assert!(matches!(err, WalError::Corrupt(_)), "{err}");
    }

    #[test]
    fn columnar_compaction_rewrites_surviving_segments() {
        let dir = tmpdir("columnar-compact");
        let options = WalOptions::default()
            .with_segment_bytes(1)
            .with_snapshot_every(u64::MAX)
            .with_columnar(true);
        let wal = Wal::create(&dir, 1, b"", options).unwrap();
        for i in 0..20 {
            wal.append(&insert(7, i)).unwrap();
            wal.append(&insert(8, 100 + i)).unwrap();
        }
        let before = Wal::load(&dir).unwrap();
        // Snapshotting 7 triggers compaction: its single-record segments
        // die, and every surviving sealed segment (all partition 8) is
        // rewritten as a columnar block.
        wal.snapshot(7, SNAPSHOT_FORMAT_VERBATIM, b"seven").unwrap();
        drop(wal);

        let mut sealed_columnar = 0;
        let mut paths: Vec<_> = std::fs::read_dir(dir.join("segments"))
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        paths.sort();
        for path in &paths[..paths.len() - 1] {
            let bytes = std::fs::read(path).unwrap();
            assert_eq!(&bytes[0..4], b"SSEG", "{}", path.display());
            assert_eq!(bytes[5], 1, "sealed segment must use the columnar codec");
            sealed_columnar += 1;
        }
        assert!(sealed_columnar > 0);

        // The rewrite is invisible to readers: the surviving records
        // come back identical, in the same LSN order.
        let survivors: Vec<(u64, WalRecord)> = before
            .tail
            .iter()
            .filter(|(_, r)| r.partition() == 8)
            .cloned()
            .collect();
        let after = Wal::load(&dir).unwrap();
        assert_eq!(after.tail, survivors);
        assert_eq!(after.next_lsn, before.next_lsn);

        // And resume keeps appending on top of columnar history.
        let (wal, state) = Wal::resume(&dir, options).unwrap();
        let lsn = wal.append(&insert(8, 999)).unwrap().lsn;
        assert_eq!(lsn, state.next_lsn);
    }

    #[test]
    fn legacy_mode_writes_headerless_v0_files() {
        let dir = tmpdir("legacy-mode");
        let options = WalOptions::default().with_columnar(false);
        let wal = Wal::create(&dir, 1, b"cfg", options).unwrap();
        for i in 0..5 {
            wal.append(&insert(7, i)).unwrap();
        }
        wal.snapshot(7, SNAPSHOT_FORMAT_VERBATIM, b"image").unwrap();
        wal.append(&insert(7, 9)).unwrap();
        drop(wal);

        // Segment files carry no header: the first bytes are a frame
        // length, not the SSEG magic.
        for entry in std::fs::read_dir(dir.join("segments")).unwrap() {
            let bytes = std::fs::read(entry.unwrap().path()).unwrap();
            if bytes.len() >= 4 {
                assert_ne!(&bytes[0..4], b"SSEG");
            }
        }
        // Verbatim snapshots use the legacy v1 layout: version word 1
        // right after the magic, no format byte.
        let snap = std::fs::read(dir.join("snapshots").join("part-7.snap")).unwrap();
        assert_eq!(u32::from_le_bytes(snap[4..8].try_into().unwrap()), 1);

        let state = Wal::load(&dir).unwrap();
        assert_eq!(state.snapshots[&7].format, SNAPSHOT_FORMAT_VERBATIM);
        assert_eq!(state.snapshots[&7].blob, b"image");
        assert_eq!(state.live_tail().count(), 1);
    }

    #[test]
    fn v2_snapshots_carry_their_payload_format() {
        let dir = tmpdir("snap-format");
        let wal = Wal::create(&dir, 1, b"", WalOptions::default()).unwrap();
        wal.append(&insert(7, 0)).unwrap();
        wal.snapshot(7, SNAPSHOT_FORMAT_COLUMNAR, b"columns")
            .unwrap();
        drop(wal);

        let snap = std::fs::read(dir.join("snapshots").join("part-7.snap")).unwrap();
        assert_eq!(u32::from_le_bytes(snap[4..8].try_into().unwrap()), 2);

        let state = Wal::load(&dir).unwrap();
        assert_eq!(state.snapshots[&7].format, SNAPSHOT_FORMAT_COLUMNAR);
        assert_eq!(state.snapshots[&7].blob, b"columns");
    }

    #[test]
    fn inspect_summarises_partitions_and_kinds() {
        let dir = tmpdir("inspect");
        let wal = Wal::create(&dir, 3, b"", WalOptions::default()).unwrap();
        wal.append(&WalRecord::PartitionCreate {
            partition: 7,
            depth: 1,
            bucket: vec![(vec![0.0], 0)],
        })
        .unwrap();
        wal.append(&insert(7, 1)).unwrap();
        wal.append(&insert(7, 2)).unwrap();
        wal.append(&WalRecord::LeafSplit {
            partition: 7,
            leaf: 0,
            split_dim: 0,
            split_val: 1.0,
            left: 1,
            right: 2,
        })
        .unwrap();
        wal.append(&WalRecord::LeafMigration {
            partition: 7,
            evicted: 2,
            target_partition: 9,
            target_node: 0,
        })
        .unwrap();
        drop(wal);

        let report = Wal::inspect(&dir).unwrap();
        assert_eq!(report.process_index, 3);
        assert_eq!(report.records, 5);
        assert_eq!(report.live_records, 5);
        assert_eq!(report.partitions.len(), 1);
        let p = &report.partitions[0];
        assert_eq!((p.creates, p.inserts, p.splits, p.migrations), (1, 2, 1, 1));
        let text = report.to_string();
        assert!(text.contains("process-index: 3"), "{text}");
        assert!(text.contains("1 creates, 2 inserts"), "{text}");
    }
}
