//! Flush-before-apply ordering for the log: [`SequencedLog`].
//!
//! The WAL's durability contract is that a state mutation may only be
//! applied **after** the record describing it is flushed. The `Wal`
//! manager honors that internally (its `append` flushes before
//! returning), but nothing used to stop a caller from mutating first and
//! logging second. [`SequencedLog`] makes the ordering structural:
//! [`apply_after_flush`](SequencedLog::apply_after_flush) runs the apply
//! closure only once the record's flush has returned, and publishes the
//! durable watermark through
//! [`flushed_lsn`](SequencedLog::flushed_lsn).
//!
//! The type is generic over the concurrency shim
//! ([`semtree_conc::shim::Shim`]) and over the [`RecordSink`] the
//! records land in, so the model checker can exhaustively explore
//! concurrent append/apply/read interleavings against an in-memory sink
//! and assert that no interleaving observes an applied mutation whose
//! record is not yet durable (`wal_order` in `semtree-conc`'s model
//! suite). Production code uses the [`Wal`] sink over real files.
//!
//! # Lock hierarchy
//!
//! The sequencer's sink mutex ranks *above* the `Wal`'s internal state
//! mutex (`wal.ordering.sink` → `wal.log.inner`): sink calls forwarded
//! to [`Wal::snapshot`] / [`Wal::compact`] via
//! [`with_sink`](SequencedLog::with_sink) acquire the inner lock while
//! the sink lock is held, in rank order.

use semtree_conc::shim::{Shim, StdShim};

use crate::log::{Appended, Wal, WalError};
use crate::record::WalRecord;

/// Where sequenced records land: an append-only destination with a
/// staged write half and an explicit flush half.
///
/// `stage` assigns the record its LSN and buffers it; the record is not
/// durable until the next `flush` returns. [`SequencedLog`] is the only
/// intended caller and always pairs the two under one lock.
pub trait RecordSink: Send + 'static {
    /// Sink failure type (I/O for the real log).
    type Error: std::fmt::Debug;

    /// Buffer `record` in log order and assign its LSN.
    fn stage(&mut self, record: &WalRecord) -> Result<Appended, Self::Error>;

    /// Make every staged record durable.
    fn flush(&mut self) -> Result<(), Self::Error>;
}

impl RecordSink for Wal {
    type Error = WalError;

    fn stage(&mut self, record: &WalRecord) -> Result<Appended, WalError> {
        self.stage_mut(record)
    }

    fn flush(&mut self) -> Result<(), WalError> {
        self.flush_mut()
    }
}

/// Serializes appends to a [`RecordSink`] and guarantees
/// flush-before-apply (see module docs).
#[derive(Debug)]
pub struct SequencedLog<W: RecordSink, S: Shim = StdShim> {
    sink: S::Mutex<W>,
    /// Highest LSN whose flush has completed; published after the flush
    /// returns, so readers never observe a watermark ahead of the disk.
    flushed_lsn: S::AtomicU64,
}

impl<W: RecordSink, S: Shim> SequencedLog<W, S> {
    /// Wrap `sink`; no record has been flushed through this sequencer
    /// yet, so the watermark starts at zero.
    pub fn new(sink: W) -> Self {
        SequencedLog {
            sink: S::mutex(sink),
            flushed_lsn: S::atomic_u64(0),
        }
    }

    /// Append one record: stage, flush, then publish the watermark.
    /// When this returns `Ok`, the record is durable.
    pub fn append(&self, record: &WalRecord) -> Result<Appended, W::Error> {
        let mut sink = S::lock(&self.sink);
        let appended = sink.stage(record)?;
        sink.flush()?;
        S::store(&self.flushed_lsn, appended.lsn);
        Ok(appended)
    }

    /// Append `record` and, only after its flush has completed, run
    /// `apply` (the state mutation the record describes). The closure
    /// runs outside the sink lock — the record is already durable, so
    /// the mutation cannot outrun it no matter how threads interleave.
    pub fn apply_after_flush<T>(
        &self,
        record: &WalRecord,
        apply: impl FnOnce(Appended) -> T,
    ) -> Result<(Appended, T), W::Error> {
        let appended = self.append(record)?;
        debug_assert!(self.flushed_lsn() >= appended.lsn);
        Ok((appended, apply(appended)))
    }

    /// Highest LSN known durable. Monotone; readable without the sink
    /// lock.
    pub fn flushed_lsn(&self) -> u64 {
        S::load(&self.flushed_lsn)
    }

    /// Run `f` with exclusive access to the sink (snapshot, compaction,
    /// sync — operations beyond the append path).
    pub fn with_sink<R>(&self, f: impl FnOnce(&mut W) -> R) -> R {
        f(&mut S::lock(&self.sink))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// In-memory sink: records staged into a buffer, moved to `durable`
    /// on flush.
    #[derive(Default)]
    struct MemSink {
        next_lsn: u64,
        staged: Vec<(u64, WalRecord)>,
        durable: Vec<(u64, WalRecord)>,
    }

    impl RecordSink for MemSink {
        type Error = std::convert::Infallible;

        fn stage(&mut self, record: &WalRecord) -> Result<Appended, Self::Error> {
            self.next_lsn += 1;
            self.staged.push((self.next_lsn, record.clone()));
            Ok(Appended {
                lsn: self.next_lsn,
                snapshot_due: false,
            })
        }

        fn flush(&mut self) -> Result<(), Self::Error> {
            self.durable.append(&mut self.staged);
            Ok(())
        }
    }

    fn insert(payload: u64) -> WalRecord {
        WalRecord::PointInsert {
            partition: 7,
            node: 0,
            point: vec![payload as f64],
            payload,
        }
    }

    #[test]
    fn append_publishes_the_watermark_after_flush() {
        let log: SequencedLog<MemSink> = SequencedLog::new(MemSink::default());
        assert_eq!(log.flushed_lsn(), 0);
        let a = log.append(&insert(1)).unwrap();
        assert_eq!(a.lsn, 1);
        assert_eq!(log.flushed_lsn(), 1);
        log.with_sink(|sink| {
            assert!(sink.staged.is_empty(), "append must flush what it stages");
            assert_eq!(sink.durable.len(), 1);
        });
    }

    #[test]
    fn apply_runs_only_once_the_record_is_durable() {
        let log: SequencedLog<MemSink> = SequencedLog::new(MemSink::default());
        let (appended, seen) = log
            .apply_after_flush(&insert(9), |a| {
                // At apply time the watermark must already cover us.
                (log.flushed_lsn(), a.lsn)
            })
            .unwrap();
        assert_eq!(appended.lsn, 1);
        assert_eq!(seen, (1, 1));
    }

    #[test]
    fn lsns_are_contiguous_across_threads() {
        let log: std::sync::Arc<SequencedLog<MemSink>> =
            std::sync::Arc::new(SequencedLog::new(MemSink::default()));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let log = std::sync::Arc::clone(&log);
                std::thread::spawn(move || {
                    for i in 0..25 {
                        log.append(&insert(t * 100 + i)).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(log.flushed_lsn(), 100);
        log.with_sink(|sink| {
            let lsns: Vec<u64> = sink.durable.iter().map(|&(lsn, _)| lsn).collect();
            assert_eq!(lsns, (1..=100).collect::<Vec<_>>());
        });
    }
}
