//! Error type for the vocabulary substrate.

use std::fmt;

/// Errors produced by taxonomy construction and similarity queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VocabError {
    /// A concept name was referenced but never added.
    UnknownConcept(String),
    /// A concept was added twice.
    DuplicateConcept(String),
    /// The IS-A edges contain a cycle reachable from this concept.
    Cycle(String),
    /// A parent was referenced before being defined and never defined later.
    UnknownParent {
        /// The concept declaring the parent.
        concept: String,
        /// The missing parent name.
        parent: String,
    },
}

impl fmt::Display for VocabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VocabError::UnknownConcept(c) => write!(f, "unknown concept '{c}'"),
            VocabError::DuplicateConcept(c) => write!(f, "concept '{c}' added twice"),
            VocabError::Cycle(c) => write!(f, "IS-A cycle involving concept '{c}'"),
            VocabError::UnknownParent { concept, parent } => {
                write!(f, "concept '{concept}' names unknown parent '{parent}'")
            }
        }
    }
}

impl std::error::Error for VocabError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        assert!(VocabError::UnknownConcept("x".into())
            .to_string()
            .contains("unknown"));
        assert!(VocabError::DuplicateConcept("x".into())
            .to_string()
            .contains("twice"));
        assert!(VocabError::Cycle("x".into()).to_string().contains("cycle"));
        assert!(VocabError::UnknownParent {
            concept: "a".into(),
            parent: "b".into()
        }
        .to_string()
        .contains("parent"));
    }
}
