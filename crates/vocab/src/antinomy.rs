//! Antinomy (antonym) relations between concepts.
//!
//! The case study's inconsistency rule (§II): two triples are inconsistent
//! iff same subject, same object, and "the two predicates are linked by an
//! antinomy relationship in a given vocabulary". The evaluation's target
//! triples take "as predicate an antinomic term (retrieved using an ad-hoc
//! requirements vocabulary)".

use std::collections::{BTreeMap, BTreeSet};

/// A symmetric antonym relation over concept names.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AntinomyTable {
    pairs: BTreeMap<String, BTreeSet<String>>,
}

impl AntinomyTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        AntinomyTable::default()
    }

    /// Declare `a` and `b` antonyms (stored symmetrically; self-antinomies
    /// are ignored).
    pub fn declare(&mut self, a: impl Into<String>, b: impl Into<String>) {
        let a = a.into();
        let b = b.into();
        if a == b {
            return;
        }
        self.pairs.entry(a.clone()).or_default().insert(b.clone());
        self.pairs.entry(b).or_default().insert(a);
    }

    /// Whether `a` and `b` are declared antonyms.
    #[must_use]
    pub fn are_antonyms(&self, a: &str, b: &str) -> bool {
        self.pairs.get(a).is_some_and(|s| s.contains(b))
    }

    /// All antonyms of `a`, in lexicographic order.
    #[must_use]
    pub fn antonyms_of(&self, a: &str) -> Vec<&str> {
        self.pairs
            .get(a)
            .map(|s| s.iter().map(String::as_str).collect())
            .unwrap_or_default()
    }

    /// The canonical (lexicographically first) antonym of `a`, if any —
    /// how the evaluation picks *the* antinomic predicate for a target
    /// triple.
    #[must_use]
    pub fn canonical_antonym(&self, a: &str) -> Option<&str> {
        self.pairs
            .get(a)
            .and_then(|s| s.iter().next())
            .map(String::as_str)
    }

    /// Number of concepts that have at least one antonym.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no antinomies are declared.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterate each unordered pair exactly once, lexicographically.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (&str, &str)> {
        self.pairs.iter().flat_map(|(a, set)| {
            set.iter()
                .filter(move |b| a < *b)
                .map(move |b| (a.as_str(), b.as_str()))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AntinomyTable {
        let mut t = AntinomyTable::new();
        t.declare("accept_cmd", "block_cmd");
        t.declare("start-up", "shut-down");
        t.declare("accept_cmd", "reject_cmd");
        t
    }

    #[test]
    fn declared_pairs_are_symmetric() {
        let t = sample();
        assert!(t.are_antonyms("accept_cmd", "block_cmd"));
        assert!(t.are_antonyms("block_cmd", "accept_cmd"));
        assert!(!t.are_antonyms("accept_cmd", "start-up"));
        assert!(!t.are_antonyms("ghost", "block_cmd"));
    }

    #[test]
    fn multiple_antonyms_sorted() {
        let t = sample();
        assert_eq!(t.antonyms_of("accept_cmd"), vec!["block_cmd", "reject_cmd"]);
        assert_eq!(t.canonical_antonym("accept_cmd"), Some("block_cmd"));
        assert_eq!(t.canonical_antonym("ghost"), None);
        assert!(t.antonyms_of("ghost").is_empty());
    }

    #[test]
    fn self_antinomy_ignored() {
        let mut t = AntinomyTable::new();
        t.declare("x", "x");
        assert!(t.is_empty());
        assert!(!t.are_antonyms("x", "x"));
    }

    #[test]
    fn iter_pairs_yields_each_once() {
        let t = sample();
        let pairs: Vec<_> = t.iter_pairs().collect();
        assert_eq!(
            pairs,
            vec![
                ("accept_cmd", "block_cmd"),
                ("accept_cmd", "reject_cmd"),
                ("shut-down", "start-up"),
            ]
        );
    }

    #[test]
    fn redeclaring_is_idempotent() {
        let mut t = sample();
        let before = t.clone();
        t.declare("block_cmd", "accept_cmd");
        assert_eq!(t, before);
    }

    #[test]
    fn len_counts_concepts_with_antonyms() {
        let t = sample();
        assert_eq!(t.len(), 5); // accept, block, reject, start-up, shut-down
        assert!(!t.is_empty());
    }
}
